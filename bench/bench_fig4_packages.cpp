// Fig. 4: new and changed packages containing executables, per daily
// update, over the 31-day run.
#include <cstdio>

#include "common/log.hpp"
#include "experiments/report.hpp"

int main() {
  cia::set_log_level(cia::LogLevel::kError);
  cia::experiments::DynamicRunOptions options;
  options.days = 31;
  options.update_period_days = 1;
  const auto daily = cia::experiments::run_dynamic_policy_experiment(options);
  std::printf("%s\n", cia::experiments::render_fig4(daily).c_str());
  if (cia::experiments::write_updates_csv("fig4_packages.csv", daily)) {
    std::printf("series written to fig4_packages.csv\n");
  }
  return 0;
}
