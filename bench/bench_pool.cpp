// Scaling the verifier: sharded pool + indexed appraisal vs the single
// linear verifier, plus a PolicyIndex microbenchmark at production policy
// scale (hundreds of thousands of entries, a long exclude-glob list).
//
// Two effects compound here:
//   * PolicyIndex turns every IMA appraisal from "scan the whole exclude
//     list, then walk a std::map" into one hash probe with the exclusion
//     bit precomputed — this is the per-entry win, visible on any host;
//   * sharding runs N verification stacks concurrently — this multiplies
//     by up to the core count, so single-core CI shows ~1x from it while
//     a production host shows ~N x.
//
// Part 4 measures the policy-store delta pipeline at the paper's §III-C
// shape (a ~1.3k-line daily update against a ~300k-entry base) and emits
// a BENCH_policy.json baseline; `bench_pool --check BENCH_policy.json`
// runs only that part and gates both the hard §III-C ratios (delta push
// must move <2% of the bytes and take <10% of the index-build time of a
// full push) and drift against the checked-in baseline.
//
// CIA_BENCH_POOL_AGENTS / CIA_BENCH_POOL_ROUNDS override the fleet
// shape; CIA_BENCH_POLICY_ENTRIES / CIA_BENCH_POLICY_DELTA_LINES the
// Part 4 policy shape.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/strutil.hpp"
#include "crypto/sha256.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/policy_store/store.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

double wall_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  const std::size_t parsed =
      static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  return parsed == 0 ? fallback : parsed;
}

/// A production-shaped exclude list. Real deployments accumulate long
/// lists of suffix and infix patterns (churn files: logs, caches,
/// editor backups, bytecode) — each one forces the backtracking matcher
/// to walk the whole path, and RuntimePolicy::check runs the full list
/// on EVERY appraisal, policy hits included. PolicyIndex precomputes the
/// exclusion bit per indexed path and compiles "DIR/*" patterns to hash
/// probes, so appraisal stops paying for the list's length.
void add_exclude_list(keylime::RuntimePolicy& policy, std::size_t globs) {
  const char* suffixes[] = {"log", "tmp", "swp", "pyc", "bak", "cache",
                            "old", "lock"};
  for (std::size_t i = 0; i < globs; ++i) {
    switch (i % 4) {
      case 0:  // churn-file suffixes: *.log.3, *.pyc.17, ...
        policy.exclude(strformat("*.%s.%zu", suffixes[i % 8], i / 4));
        break;
      case 1:  // per-service spool/cache trees anywhere in the fs
        policy.exclude(strformat("*/spool-%03zu/*", i));
        break;
      case 2:  // tool-versioned scratch dirs (shares "tool-" with the
               // fleet's binary paths, so partial matches backtrack)
        policy.exclude(strformat("*/tool-scratch-%03zu/*", i));
        break;
      default:  // plain directory excludes (compiled to prefix probes)
        policy.exclude(strformat("/var/cache/app-%03zu/*", i));
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Part 1: PolicyIndex vs linear RuntimePolicy::check at 300k entries.

struct IndexBenchResult {
  double linear_ms = 0;
  double indexed_ms = 0;
  double build_ms = 0;
  std::size_t probes = 0;
  std::size_t entries = 0;
};

IndexBenchResult bench_policy_index() {
  IndexBenchResult result;
  const std::size_t kPaths = 150000;
  const std::size_t kHashesPerPath = 2;
  const std::size_t kGlobs = 96;

  keylime::RuntimePolicy policy;
  add_exclude_list(policy, kGlobs);
  for (std::size_t i = 0; i < kPaths; ++i) {
    const std::string path =
        strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                  i / 4, i % 4);
    for (std::size_t h = 0; h < kHashesPerPath; ++h) {
      policy.allow(path, crypto::digest_hex(crypto::sha256(
                             strformat("content-%zu-%zu", i, h))));
    }
  }
  result.entries = policy.entry_count();

  auto start = std::chrono::steady_clock::now();
  const auto index = keylime::PolicyIndex::build(policy, 1);
  result.build_ms = wall_ms(start);

  // Probe mix modelled on a real appraisal stream: overwhelmingly
  // policy hits (installed files being re-measured), a few stale hashes,
  // a sprinkle of unknown and excluded paths.
  struct Probe {
    std::string path;
    std::string hash;
  };
  std::vector<Probe> probes;
  const std::size_t kProbes = 200000;
  probes.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) {
    const std::size_t r = i % 40;
    if (r < 36) {  // hit: known path, acceptable hash
      const std::size_t p = (i * 7919) % kPaths;
      probes.push_back(
          {strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                     p / 4, p % 4),
           crypto::digest_hex(crypto::sha256(
               strformat("content-%zu-%zu", p, i % kHashesPerPath)))});
    } else if (r < 38) {  // known path, stale hash
      const std::size_t p = (i * 104729) % kPaths;
      probes.push_back(
          {strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                     p / 4, p % 4),
           crypto::digest_hex(crypto::sha256("stale"))});
    } else if (r == 38) {  // unknown path
      probes.push_back({strformat("/opt/unknown/bin-%zu", i),
                        crypto::digest_hex(crypto::sha256("x"))});
    } else {  // excluded path (a compiled directory glob)
      probes.push_back({strformat("/var/cache/app-%03zu/obj-%zu",
                                  (i % 8) * 4 + 3, i),
                        crypto::digest_hex(crypto::sha256("x"))});
    }
  }
  result.probes = probes.size();

  // Fold match outcomes into a checksum so the compiler cannot elide
  // either loop, and so both paths can be cross-checked for agreement.
  std::uint64_t linear_sum = 0, indexed_sum = 0;
  start = std::chrono::steady_clock::now();
  for (const Probe& probe : probes) {
    linear_sum = linear_sum * 31 +
                 static_cast<std::uint64_t>(policy.check(probe.path, probe.hash));
  }
  result.linear_ms = wall_ms(start);

  start = std::chrono::steady_clock::now();
  for (const Probe& probe : probes) {
    indexed_sum = indexed_sum * 31 +
                  static_cast<std::uint64_t>(index->check(probe.path, probe.hash));
  }
  result.indexed_ms = wall_ms(start);

  if (linear_sum != indexed_sum) {
    std::printf("  !! DIVERGENCE: linear and indexed verdicts differ\n");
  }
  return result;
}

// ---------------------------------------------------------------------
// Part 2: fleet throughput, single linear verifier vs sharded pool.

struct FleetBenchResult {
  std::size_t polls = 0;
  std::uint64_t appraised = 0;
  double ms = 0;
  /// Virtual seconds the slowest shard needed to complete the rounds —
  /// the fleet's attestation round latency. Network latency is charged
  /// per call to the owning shard's clock, so N shards polling
  /// concurrently finish a fleet round in ~1/N the virtual time of one
  /// verifier polling everyone back to back. Deterministic (independent
  /// of host core count): this is the sharding win, where wall-clock
  /// polls/s is the indexed-appraisal win.
  SimTime virtual_elapsed = 0;
};

FleetBenchResult bench_fleet(std::size_t shards, bool indexed,
                             std::size_t agents, std::size_t rounds) {
  PoolFleetOptions options;
  options.agents = agents;
  options.shards = shards;
  options.seed = 7;
  // An update-heavy day: every round each agent measures a few hundred
  // fresh files (a dist-upgrade rewrites thousands), so appraisal — not
  // the fixed per-quote crypto — is what the verifier spends time on.
  options.binaries_per_machine = 480;
  options.execs_per_round = 240;
  options.retrying_transport = false;  // no faults; measure the verifier
  PoolFleet fleet(options);
  FleetBenchResult result;
  if (!fleet.init_status().ok()) {
    std::printf("  !! fleet construction failed: %s\n",
                fleet.init_status().error().message.c_str());
    return result;
  }

  keylime::RuntimePolicy policy = fleet.fleet_policy();
  add_exclude_list(policy, 128);
  if (indexed) {
    (void)fleet.pool().set_fleet_policy(policy);
  } else {
    // The pre-pool architecture: per-agent pushes through the legacy
    // path, linear appraisal on every entry.
    for (const std::string& id : fleet.agent_ids()) {
      (void)fleet.pool().verifier(fleet.pool().shard_for(id))
          .set_policy(id, policy);
    }
  }

  // Every quote RPC costs one virtual second of network latency, charged
  // to the owning shard's clock — round latency is how long the fleet
  // actually goes between attestations of the same agent.
  netsim::FaultProfile latency_only;
  latency_only.latency = 1;
  fleet.pool().set_fleet_faults(latency_only);

  std::vector<SimTime> clock_start(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    clock_start[s] = fleet.pool().clock(s).now();
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    fleet.run_workload_round(r);
    fleet.pool().run_round();
  }
  result.ms = wall_ms(start);
  for (std::size_t s = 0; s < shards; ++s) {
    result.virtual_elapsed = std::max(
        result.virtual_elapsed, fleet.pool().clock(s).now() - clock_start[s]);
  }
  result.polls = fleet.pool().stats().polls;
  const auto stats = fleet.pool().stats();
  result.appraised = stats.index_hits + stats.index_misses;
  return result;
}

// ---------------------------------------------------------------------
// Part 3: live resharding cost — what one ring resize charges the fleet.

struct ResizeBenchResult {
  std::size_t moved = 0;
  std::size_t agents = 0;
  double ms = 0;
  std::uint64_t bytes = 0;
};

ResizeBenchResult bench_resize(std::size_t from, std::size_t to,
                               std::size_t agents) {
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = agents;
  options.shards = from;
  options.seed = 7;
  options.binaries_per_machine = 64;
  options.execs_per_round = 16;
  options.retrying_transport = false;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  ResizeBenchResult result;
  result.agents = agents;
  if (!fleet.init_status().ok()) {
    std::printf("  !! fleet construction failed: %s\n",
                fleet.init_status().error().message.c_str());
    return result;
  }
  (void)fleet.pool().set_fleet_policy(fleet.fleet_policy());
  // Give every agent real state to carry: log cursors past boot, audit
  // sub-chains, scheduler history — the resize serializes all of it.
  for (std::size_t r = 0; r < 2; ++r) {
    fleet.run_workload_round(r);
    fleet.pool().run_round();
  }

  const auto start = std::chrono::steady_clock::now();
  if (Status s = fleet.pool().resize(to); !s.ok()) {
    std::printf("  !! resize failed: %s\n", s.error().message.c_str());
    return result;
  }
  result.ms = wall_ms(start);
  const auto& mig = fleet.pool().migration_stats();
  result.moved = mig.ok + mig.fallback;
  const auto snap = metrics.snapshot();
  if (const auto* p = snap.find("cia_pool_migration_bytes")) {
    result.bytes = static_cast<std::uint64_t>(p->histogram.sum);
  }
  return result;
}

// ---------------------------------------------------------------------
// Part 4: delta push vs full push at the paper's §III-C shape.
//
// A daily runtime-policy update is ~1,271 lines (0.16 MB) against a
// 323,734-line (46 MB) base, yet the pre-store pipeline moved the full
// policy and rebuilt the index from scratch on every push. Both costs
// side by side: bytes on the wire (canonical JSON of the full policy vs
// the serialized PolicyDelta) and index time (PolicyIndex::build vs
// apply() + build_incremental). Ratios are what matters — they are
// host-independent, so the --check gate pins them hard.

struct DeltaBenchResult {
  std::size_t base_entries = 0;
  std::size_t delta_lines = 0;
  std::uint64_t full_bytes = 0;
  std::uint64_t delta_bytes = 0;
  double full_build_ms = 0;
  double delta_push_ms = 0;  // build_incremental — what push_revision pays
  /// One-time delta-ingestion cost upstream of the pool: apply() with
  /// both provenance digests recomputed over the canonical JSON (the
  /// whole 46 MB base serialized + hashed twice). Informational — it is
  /// paid once per update at the orchestrator, not per shard push, and
  /// digest-binding is the point of the subsystem.
  double apply_verify_ms = 0;
  double bytes_ratio = 0;
  double build_ratio = 0;
  bool diverged = false;
};

DeltaBenchResult bench_policy_delta(std::size_t entries, std::size_t reps) {
  using namespace cia::keylime;
  DeltaBenchResult result;

  // Same base shape as Part 1: entries/2 paths with two acceptable
  // hashes each, plus a production-length exclude list (the exclude scan
  // is the dominant full-build cost the incremental path skips).
  const std::size_t paths = entries / 2;
  RuntimePolicy base;
  add_exclude_list(base, 96);
  for (std::size_t i = 0; i < paths; ++i) {
    const std::string path =
        strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                  i / 4, i % 4);
    for (std::size_t h = 0; h < 2; ++h) {
      base.allow(path, crypto::digest_hex(crypto::sha256(
                           strformat("content-%zu-%zu", i, h))));
    }
  }
  result.base_entries = base.entry_count();

  // A daily-update-shaped edit script, scaled to the base so the
  // 1271-vs-323734 proportion holds at any CIA_BENCH_POLICY_ENTRIES:
  // mostly replaced hash lists (upgraded packages), some new files, a
  // few removals.
  const std::size_t delta_lines = env_size(
      "CIA_BENCH_POLICY_DELTA_LINES",
      std::max<std::size_t>(4, (result.base_entries * 1271) / 323734));
  const std::size_t removes = std::max<std::size_t>(1, delta_lines / 10);
  const std::size_t adds = std::max<std::size_t>(1, (delta_lines * 3) / 10);
  const std::size_t replaces =
      std::max<std::size_t>(1, (delta_lines - removes - adds) / 2);

  RuntimePolicy target = base;
  const std::size_t unique_paths = paths / 4;  // 4 libs share a pkg dir
  for (std::size_t i = 0; i < replaces; ++i) {
    const std::size_t p = (i * 7919) % unique_paths;
    const std::string path = strformat(
        "/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-0.so.0", p);
    target.set_hashes(path,
                      {crypto::digest_hex(crypto::sha256(
                           strformat("upgraded-%zu-0", p))),
                       crypto::digest_hex(crypto::sha256(
                           strformat("upgraded-%zu-1", p)))});
  }
  for (std::size_t i = 0; i < adds; ++i) {
    target.allow(strformat("/opt/daily/new-%05zu", i),
                 crypto::sha256(strformat("fresh-%zu", i)));
  }
  for (std::size_t i = 0; i < removes; ++i) {
    (void)target.remove_path(strformat(
        "/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-3.so.0", i * 13 + 1));
  }

  const policy_store::PolicyDelta delta = policy_store::diff(base, target);
  result.delta_lines = delta.entry_count();
  result.full_bytes = target.to_json().dump().size();
  result.delta_bytes = delta.byte_size();

  // Ingestion: apply() once, provenance-verified — the orchestrator
  // does this when the delta arrives, before any shard sees it.
  auto ingest_start = std::chrono::steady_clock::now();
  auto applied = policy_store::apply(base, delta);
  result.apply_verify_ms = wall_ms(ingest_start);
  if (!applied.ok()) {
    std::printf("  !! delta apply failed: %s\n",
                applied.error().message.c_str());
    result.diverged = true;
    return result;
  }

  const auto base_index = PolicyIndex::build(base, 1);
  std::shared_ptr<const PolicyIndex> full_index, incr_index;
  result.full_build_ms = 1e300;
  result.delta_push_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    full_index = PolicyIndex::build(target, 2);
    result.full_build_ms = std::min(result.full_build_ms, wall_ms(start));

    // The per-push cost: VerifierPool::push_revision rebases the cached
    // head index by the delta; apply() is NOT re-run per push.
    start = std::chrono::steady_clock::now();
    incr_index =
        PolicyIndex::build_incremental(base_index, applied.value(), delta, 2);
    result.delta_push_ms = std::min(result.delta_push_ms, wall_ms(start));
  }
  result.bytes_ratio = result.full_bytes > 0
                           ? static_cast<double>(result.delta_bytes) /
                                 static_cast<double>(result.full_bytes)
                           : 0;
  result.build_ratio = result.full_build_ms > 0
                           ? result.delta_push_ms / result.full_build_ms
                           : 0;

  // Equivalence spot check (the full battery lives in
  // policy_store_test.cpp): both indexes must agree on every touched
  // path class.
  if (full_index->entry_count() != incr_index->entry_count() ||
      full_index->path_count() != incr_index->path_count()) {
    result.diverged = true;
  }
  for (std::size_t i = 0; i < 64 && !result.diverged; ++i) {
    const std::string path =
        i % 3 == 0 ? strformat("/opt/daily/new-%05zu", i % adds)
        : i % 3 == 1
            ? strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-0.so.0",
                        (i * 7919) % unique_paths)
            : strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-3.so.0",
                        i * 13 + 1);
    const std::string probe = crypto::digest_hex(crypto::sha256("probe"));
    if (full_index->check(path, probe) != incr_index->check(path, probe)) {
      result.diverged = true;
    }
  }
  if (result.diverged) {
    std::printf("  !! DIVERGENCE: incremental and full index differ\n");
  }
  return result;
}

json::Value delta_bench_to_json(const DeltaBenchResult& r) {
  json::Value doc;
  doc.set("bench", "policy_delta");
  doc.set("base_entries", static_cast<std::int64_t>(r.base_entries));
  doc.set("delta_lines", static_cast<std::int64_t>(r.delta_lines));
  json::Value full;
  full.set("bytes", static_cast<std::int64_t>(r.full_bytes));
  full.set("index_build_ms", r.full_build_ms);
  doc.set("full_push", std::move(full));
  json::Value delta;
  delta.set("bytes", static_cast<std::int64_t>(r.delta_bytes));
  delta.set("incremental_build_ms", r.delta_push_ms);
  delta.set("apply_verify_ms", r.apply_verify_ms);
  doc.set("delta_push", std::move(delta));
  json::Value ratios;
  ratios.set("bytes", r.bytes_ratio);
  ratios.set("build_ms", r.build_ratio);
  doc.set("ratios", std::move(ratios));
  return doc;
}

void print_delta_bench(const DeltaBenchResult& r) {
  std::printf(
      "Delta push vs full push (§III-C shape: %zu-line update, %zu-entry "
      "base)\n\n",
      r.delta_lines, r.base_entries);
  std::printf("  path         bytes_moved    index_ms\n");
  std::printf("  full push    %11llu    %8.1f\n",
              static_cast<unsigned long long>(r.full_bytes), r.full_build_ms);
  std::printf("  delta push   %11llu    %8.1f\n",
              static_cast<unsigned long long>(r.delta_bytes), r.delta_push_ms);
  std::printf("  ratio        %10.2f%%    %7.2f%%\n", r.bytes_ratio * 100,
              r.build_ratio * 100);
  std::printf("  (one-time delta ingestion, apply + both provenance digests:"
              " %.1fms)\n\n",
              r.apply_verify_ms);
}

// The §III-C acceptance gates are hard-coded (host-independent ratios);
// the baseline adds a drift check on top so a slow regression inside the
// gate still trips CI.
int run_policy_check(const std::string& baseline_path, double tolerance,
                     const DeltaBenchResult& r) {
  if (r.diverged) return 1;
  std::printf("Gate check vs %s (drift tolerance %.0f%%)\n",
              baseline_path.c_str(), tolerance * 100);
  int failures = 0;
  const auto gate = [&](const char* name, double measured, double limit) {
    const bool ok = measured < limit;
    std::printf("  %-22s %s  %.3f%% vs hard limit %.0f%%\n", name,
                ok ? "PASS" : "FAIL", measured * 100, limit * 100);
    if (!ok) ++failures;
  };
  gate("bytes ratio", r.bytes_ratio, 0.02);
  gate("index-build ratio", r.build_ratio, 0.10);

  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "bench_pool: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = json::parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_pool: baseline is not valid JSON: %s\n",
                 parsed.error().message.c_str());
    return 2;
  }
  const json::Value* ratios = parsed.value().find("ratios");
  if (ratios == nullptr || !ratios->is_object()) {
    std::fprintf(stderr, "bench_pool: baseline has no ratios object\n");
    return 2;
  }
  const auto drift = [&](const char* key, double measured) {
    const json::Value* base = ratios->find(key);
    if (base == nullptr || !base->is_number()) {
      std::printf("  %-22s SKIP (not in baseline)\n", key);
      return;
    }
    const double ceiling = base->as_number() * (1.0 + tolerance);
    const bool ok = measured <= ceiling;
    std::printf("  %-22s %s  %.3f%% vs baseline %.3f%% (ceiling %.3f%%)\n",
                key, ok ? "PASS" : "FAIL", measured * 100,
                base->as_number() * 100, ceiling * 100);
    if (!ok) ++failures;
  };
  drift("bytes", r.bytes_ratio);
  drift("build_ms", r.build_ratio);

  if (failures > 0) {
    std::fprintf(stderr, "bench_pool: %d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("  all gates within limits\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(cia::LogLevel::kError);

  std::string baseline_path;
  std::string out_path = "BENCH_policy.json";
  double tolerance = 1.0;
  bool check_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_mode = true;
      baseline_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_pool [--check BENCH_policy.json]"
                   " [--tolerance 1.0] [--out BENCH_policy.json]\n");
      return 2;
    }
  }

  const std::size_t policy_entries =
      env_size("CIA_BENCH_POLICY_ENTRIES", 300000);
  const std::size_t policy_reps = env_size("CIA_BENCH_POLICY_REPS", 3);

  // --check is the CI gate: only the ratio-pinned Part 4 runs (Parts 1-3
  // report host-dependent throughput with no baseline to gate against).
  if (check_mode) {
    const DeltaBenchResult dr =
        bench_policy_delta(policy_entries, policy_reps);
    print_delta_bench(dr);
    return run_policy_check(baseline_path, tolerance, dr);
  }

  std::printf("PolicyIndex vs linear scan (one policy revision)\n\n");
  const IndexBenchResult ib = bench_policy_index();
  std::printf("  entries   probes    build     linear     indexed   speedup\n");
  std::printf("  %7zu   %6zu   %5.0fms   %6.0fms   %7.1fms   %6.1fx\n\n",
              ib.entries, ib.probes, ib.build_ms, ib.linear_ms, ib.indexed_ms,
              ib.indexed_ms > 0 ? ib.linear_ms / ib.indexed_ms : 0.0);

  const std::size_t agents = env_size("CIA_BENCH_POOL_AGENTS", 1000);
  const std::size_t rounds = env_size("CIA_BENCH_POOL_ROUNDS", 2);
  std::printf("Fleet attestation throughput (%zu agents, %zu rounds)\n\n",
              agents, rounds);
  std::printf(
      "  config                        polls   round_virt_s   polls/virt_s"
      "   speedup   wall_ms   polls/s\n");
  const FleetBenchResult base = bench_fleet(1, /*indexed=*/false, agents, rounds);
  const double base_vrate =
      base.virtual_elapsed > 0
          ? static_cast<double>(base.polls) / base.virtual_elapsed
          : 0;
  const double base_rate = base.ms > 0 ? base.polls / (base.ms / 1000.0) : 0;
  std::printf(
      "  1 shard, linear (baseline)  %7zu   %12lld   %12.1f     1.0x   %7.0f   %7.0f\n",
      base.polls, static_cast<long long>(base.virtual_elapsed), base_vrate,
      base.ms, base_rate);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const FleetBenchResult r = bench_fleet(shards, /*indexed=*/true, agents, rounds);
    const double vrate = r.virtual_elapsed > 0
                             ? static_cast<double>(r.polls) / r.virtual_elapsed
                             : 0;
    const double rate = r.ms > 0 ? r.polls / (r.ms / 1000.0) : 0;
    std::printf(
        "  %zu shards, indexed           %7zu   %12lld   %12.1f   %5.1fx   %7.0f   %7.0f\n",
        shards, r.polls, static_cast<long long>(r.virtual_elapsed), vrate,
        base_vrate > 0 ? vrate / base_vrate : 0, r.ms, rate);
  }
  std::printf(
      "\n  polls/virt_s is fleet round latency: N shards poll concurrently,\n"
      "  so the fleet is re-attested ~N x as often for the same per-link\n"
      "  cost — deterministic, independent of host cores. wall_ms shows the\n"
      "  indexed-appraisal win on this host; on a multi-core verifier the\n"
      "  shard parallelism multiplies it by up to the core count.\n");

  const std::size_t resize_agents =
      env_size("CIA_BENCH_POOL_RESIZE_AGENTS", 400);
  std::printf("\nLive resharding cost (%zu agents with warm state)\n\n",
              resize_agents);
  std::printf(
      "  resize      moved    wall_ms   ms/moved   payload_KB   KB/moved\n");
  struct Shape {
    std::size_t from, to;
  };
  for (const Shape shape : {Shape{2, 4}, Shape{4, 8}, Shape{8, 2}}) {
    const ResizeBenchResult r = bench_resize(shape.from, shape.to,
                                             resize_agents);
    const double kb = static_cast<double>(r.bytes) / 1024.0;
    std::printf(
        "  %zu -> %-5zu %6zu   %8.1f   %8.2f   %10.1f   %8.2f\n",
        shape.from, shape.to, r.moved, r.ms,
        r.moved > 0 ? r.ms / static_cast<double>(r.moved) : 0.0, kb,
        r.moved > 0 ? kb / static_cast<double>(r.moved) : 0.0);
  }
  std::printf(
      "\n  only ring-moved agents pay a handoff; the rest of the fleet\n"
      "  never blocks beyond the round-boundary drain. ms/moved is the\n"
      "  marginal cost of migrating one agent's full verification state\n"
      "  (log cursor, audit tail, scheduler slot) over the handoff link.\n\n");

  const DeltaBenchResult dr = bench_policy_delta(policy_entries, policy_reps);
  print_delta_bench(dr);
  std::printf(
      "  a delta push moves the base digest + patched lines and patches\n"
      "  the index in place; the full-push column is what every daily\n"
      "  update used to cost. Ratios are host-independent and gated by\n"
      "  `bench_pool --check BENCH_policy.json` in CI.\n");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_pool: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << delta_bench_to_json(dr).pretty() << "\n";
  std::printf("\n  wrote %s\n", out_path.c_str());
  return dr.diverged ? 1 : 0;
}
