// Scaling the verifier: sharded pool + indexed appraisal vs the single
// linear verifier, plus a PolicyIndex microbenchmark at production policy
// scale (hundreds of thousands of entries, a long exclude-glob list).
//
// Two effects compound here:
//   * PolicyIndex turns every IMA appraisal from "scan the whole exclude
//     list, then walk a std::map" into one hash probe with the exclusion
//     bit precomputed — this is the per-entry win, visible on any host;
//   * sharding runs N verification stacks concurrently — this multiplies
//     by up to the core count, so single-core CI shows ~1x from it while
//     a production host shows ~N x.
//
// CIA_BENCH_POOL_AGENTS / CIA_BENCH_POOL_ROUNDS override the fleet shape.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "common/strutil.hpp"
#include "crypto/sha256.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/policy_index.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

double wall_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  const std::size_t parsed =
      static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  return parsed == 0 ? fallback : parsed;
}

/// A production-shaped exclude list. Real deployments accumulate long
/// lists of suffix and infix patterns (churn files: logs, caches,
/// editor backups, bytecode) — each one forces the backtracking matcher
/// to walk the whole path, and RuntimePolicy::check runs the full list
/// on EVERY appraisal, policy hits included. PolicyIndex precomputes the
/// exclusion bit per indexed path and compiles "DIR/*" patterns to hash
/// probes, so appraisal stops paying for the list's length.
void add_exclude_list(keylime::RuntimePolicy& policy, std::size_t globs) {
  const char* suffixes[] = {"log", "tmp", "swp", "pyc", "bak", "cache",
                            "old", "lock"};
  for (std::size_t i = 0; i < globs; ++i) {
    switch (i % 4) {
      case 0:  // churn-file suffixes: *.log.3, *.pyc.17, ...
        policy.exclude(strformat("*.%s.%zu", suffixes[i % 8], i / 4));
        break;
      case 1:  // per-service spool/cache trees anywhere in the fs
        policy.exclude(strformat("*/spool-%03zu/*", i));
        break;
      case 2:  // tool-versioned scratch dirs (shares "tool-" with the
               // fleet's binary paths, so partial matches backtrack)
        policy.exclude(strformat("*/tool-scratch-%03zu/*", i));
        break;
      default:  // plain directory excludes (compiled to prefix probes)
        policy.exclude(strformat("/var/cache/app-%03zu/*", i));
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Part 1: PolicyIndex vs linear RuntimePolicy::check at 300k entries.

struct IndexBenchResult {
  double linear_ms = 0;
  double indexed_ms = 0;
  double build_ms = 0;
  std::size_t probes = 0;
  std::size_t entries = 0;
};

IndexBenchResult bench_policy_index() {
  IndexBenchResult result;
  const std::size_t kPaths = 150000;
  const std::size_t kHashesPerPath = 2;
  const std::size_t kGlobs = 96;

  keylime::RuntimePolicy policy;
  add_exclude_list(policy, kGlobs);
  for (std::size_t i = 0; i < kPaths; ++i) {
    const std::string path =
        strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                  i / 4, i % 4);
    for (std::size_t h = 0; h < kHashesPerPath; ++h) {
      policy.allow(path, crypto::digest_hex(crypto::sha256(
                             strformat("content-%zu-%zu", i, h))));
    }
  }
  result.entries = policy.entry_count();

  auto start = std::chrono::steady_clock::now();
  const auto index = keylime::PolicyIndex::build(policy, 1);
  result.build_ms = wall_ms(start);

  // Probe mix modelled on a real appraisal stream: overwhelmingly
  // policy hits (installed files being re-measured), a few stale hashes,
  // a sprinkle of unknown and excluded paths.
  struct Probe {
    std::string path;
    std::string hash;
  };
  std::vector<Probe> probes;
  const std::size_t kProbes = 200000;
  probes.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) {
    const std::size_t r = i % 40;
    if (r < 36) {  // hit: known path, acceptable hash
      const std::size_t p = (i * 7919) % kPaths;
      probes.push_back(
          {strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                     p / 4, p % 4),
           crypto::digest_hex(crypto::sha256(
               strformat("content-%zu-%zu", p, i % kHashesPerPath)))});
    } else if (r < 38) {  // known path, stale hash
      const std::size_t p = (i * 104729) % kPaths;
      probes.push_back(
          {strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                     p / 4, p % 4),
           crypto::digest_hex(crypto::sha256("stale"))});
    } else if (r == 38) {  // unknown path
      probes.push_back({strformat("/opt/unknown/bin-%zu", i),
                        crypto::digest_hex(crypto::sha256("x"))});
    } else {  // excluded path (a compiled directory glob)
      probes.push_back({strformat("/var/cache/app-%03zu/obj-%zu",
                                  (i % 8) * 4 + 3, i),
                        crypto::digest_hex(crypto::sha256("x"))});
    }
  }
  result.probes = probes.size();

  // Fold match outcomes into a checksum so the compiler cannot elide
  // either loop, and so both paths can be cross-checked for agreement.
  std::uint64_t linear_sum = 0, indexed_sum = 0;
  start = std::chrono::steady_clock::now();
  for (const Probe& probe : probes) {
    linear_sum = linear_sum * 31 +
                 static_cast<std::uint64_t>(policy.check(probe.path, probe.hash));
  }
  result.linear_ms = wall_ms(start);

  start = std::chrono::steady_clock::now();
  for (const Probe& probe : probes) {
    indexed_sum = indexed_sum * 31 +
                  static_cast<std::uint64_t>(index->check(probe.path, probe.hash));
  }
  result.indexed_ms = wall_ms(start);

  if (linear_sum != indexed_sum) {
    std::printf("  !! DIVERGENCE: linear and indexed verdicts differ\n");
  }
  return result;
}

// ---------------------------------------------------------------------
// Part 2: fleet throughput, single linear verifier vs sharded pool.

struct FleetBenchResult {
  std::size_t polls = 0;
  std::uint64_t appraised = 0;
  double ms = 0;
  /// Virtual seconds the slowest shard needed to complete the rounds —
  /// the fleet's attestation round latency. Network latency is charged
  /// per call to the owning shard's clock, so N shards polling
  /// concurrently finish a fleet round in ~1/N the virtual time of one
  /// verifier polling everyone back to back. Deterministic (independent
  /// of host core count): this is the sharding win, where wall-clock
  /// polls/s is the indexed-appraisal win.
  SimTime virtual_elapsed = 0;
};

FleetBenchResult bench_fleet(std::size_t shards, bool indexed,
                             std::size_t agents, std::size_t rounds) {
  PoolFleetOptions options;
  options.agents = agents;
  options.shards = shards;
  options.seed = 7;
  // An update-heavy day: every round each agent measures a few hundred
  // fresh files (a dist-upgrade rewrites thousands), so appraisal — not
  // the fixed per-quote crypto — is what the verifier spends time on.
  options.binaries_per_machine = 480;
  options.execs_per_round = 240;
  options.retrying_transport = false;  // no faults; measure the verifier
  PoolFleet fleet(options);
  FleetBenchResult result;
  if (!fleet.init_status().ok()) {
    std::printf("  !! fleet construction failed: %s\n",
                fleet.init_status().error().message.c_str());
    return result;
  }

  keylime::RuntimePolicy policy = fleet.fleet_policy();
  add_exclude_list(policy, 128);
  if (indexed) {
    (void)fleet.pool().set_fleet_policy(policy);
  } else {
    // The pre-pool architecture: per-agent pushes through the legacy
    // path, linear appraisal on every entry.
    for (const std::string& id : fleet.agent_ids()) {
      (void)fleet.pool().verifier(fleet.pool().shard_for(id))
          .set_policy(id, policy);
    }
  }

  // Every quote RPC costs one virtual second of network latency, charged
  // to the owning shard's clock — round latency is how long the fleet
  // actually goes between attestations of the same agent.
  netsim::FaultProfile latency_only;
  latency_only.latency = 1;
  fleet.pool().set_fleet_faults(latency_only);

  std::vector<SimTime> clock_start(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    clock_start[s] = fleet.pool().clock(s).now();
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    fleet.run_workload_round(r);
    fleet.pool().run_round();
  }
  result.ms = wall_ms(start);
  for (std::size_t s = 0; s < shards; ++s) {
    result.virtual_elapsed = std::max(
        result.virtual_elapsed, fleet.pool().clock(s).now() - clock_start[s]);
  }
  result.polls = fleet.pool().stats().polls;
  const auto stats = fleet.pool().stats();
  result.appraised = stats.index_hits + stats.index_misses;
  return result;
}

// ---------------------------------------------------------------------
// Part 3: live resharding cost — what one ring resize charges the fleet.

struct ResizeBenchResult {
  std::size_t moved = 0;
  std::size_t agents = 0;
  double ms = 0;
  std::uint64_t bytes = 0;
};

ResizeBenchResult bench_resize(std::size_t from, std::size_t to,
                               std::size_t agents) {
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = agents;
  options.shards = from;
  options.seed = 7;
  options.binaries_per_machine = 64;
  options.execs_per_round = 16;
  options.retrying_transport = false;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  ResizeBenchResult result;
  result.agents = agents;
  if (!fleet.init_status().ok()) {
    std::printf("  !! fleet construction failed: %s\n",
                fleet.init_status().error().message.c_str());
    return result;
  }
  (void)fleet.pool().set_fleet_policy(fleet.fleet_policy());
  // Give every agent real state to carry: log cursors past boot, audit
  // sub-chains, scheduler history — the resize serializes all of it.
  for (std::size_t r = 0; r < 2; ++r) {
    fleet.run_workload_round(r);
    fleet.pool().run_round();
  }

  const auto start = std::chrono::steady_clock::now();
  if (Status s = fleet.pool().resize(to); !s.ok()) {
    std::printf("  !! resize failed: %s\n", s.error().message.c_str());
    return result;
  }
  result.ms = wall_ms(start);
  const auto& mig = fleet.pool().migration_stats();
  result.moved = mig.ok + mig.fallback;
  const auto snap = metrics.snapshot();
  if (const auto* p = snap.find("cia_pool_migration_bytes")) {
    result.bytes = static_cast<std::uint64_t>(p->histogram.sum);
  }
  return result;
}

}  // namespace

int main() {
  set_log_level(cia::LogLevel::kError);

  std::printf("PolicyIndex vs linear scan (one policy revision)\n\n");
  const IndexBenchResult ib = bench_policy_index();
  std::printf("  entries   probes    build     linear     indexed   speedup\n");
  std::printf("  %7zu   %6zu   %5.0fms   %6.0fms   %7.1fms   %6.1fx\n\n",
              ib.entries, ib.probes, ib.build_ms, ib.linear_ms, ib.indexed_ms,
              ib.indexed_ms > 0 ? ib.linear_ms / ib.indexed_ms : 0.0);

  const std::size_t agents = env_size("CIA_BENCH_POOL_AGENTS", 1000);
  const std::size_t rounds = env_size("CIA_BENCH_POOL_ROUNDS", 2);
  std::printf("Fleet attestation throughput (%zu agents, %zu rounds)\n\n",
              agents, rounds);
  std::printf(
      "  config                        polls   round_virt_s   polls/virt_s"
      "   speedup   wall_ms   polls/s\n");
  const FleetBenchResult base = bench_fleet(1, /*indexed=*/false, agents, rounds);
  const double base_vrate =
      base.virtual_elapsed > 0
          ? static_cast<double>(base.polls) / base.virtual_elapsed
          : 0;
  const double base_rate = base.ms > 0 ? base.polls / (base.ms / 1000.0) : 0;
  std::printf(
      "  1 shard, linear (baseline)  %7zu   %12lld   %12.1f     1.0x   %7.0f   %7.0f\n",
      base.polls, static_cast<long long>(base.virtual_elapsed), base_vrate,
      base.ms, base_rate);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const FleetBenchResult r = bench_fleet(shards, /*indexed=*/true, agents, rounds);
    const double vrate = r.virtual_elapsed > 0
                             ? static_cast<double>(r.polls) / r.virtual_elapsed
                             : 0;
    const double rate = r.ms > 0 ? r.polls / (r.ms / 1000.0) : 0;
    std::printf(
        "  %zu shards, indexed           %7zu   %12lld   %12.1f   %5.1fx   %7.0f   %7.0f\n",
        shards, r.polls, static_cast<long long>(r.virtual_elapsed), vrate,
        base_vrate > 0 ? vrate / base_vrate : 0, r.ms, rate);
  }
  std::printf(
      "\n  polls/virt_s is fleet round latency: N shards poll concurrently,\n"
      "  so the fleet is re-attested ~N x as often for the same per-link\n"
      "  cost — deterministic, independent of host cores. wall_ms shows the\n"
      "  indexed-appraisal win on this host; on a multi-core verifier the\n"
      "  shard parallelism multiplies it by up to the core count.\n");

  const std::size_t resize_agents =
      env_size("CIA_BENCH_POOL_RESIZE_AGENTS", 400);
  std::printf("\nLive resharding cost (%zu agents with warm state)\n\n",
              resize_agents);
  std::printf(
      "  resize      moved    wall_ms   ms/moved   payload_KB   KB/moved\n");
  struct Shape {
    std::size_t from, to;
  };
  for (const Shape shape : {Shape{2, 4}, Shape{4, 8}, Shape{8, 2}}) {
    const ResizeBenchResult r = bench_resize(shape.from, shape.to,
                                             resize_agents);
    const double kb = static_cast<double>(r.bytes) / 1024.0;
    std::printf(
        "  %zu -> %-5zu %6zu   %8.1f   %8.2f   %10.1f   %8.2f\n",
        shape.from, shape.to, r.moved, r.ms,
        r.moved > 0 ? r.ms / static_cast<double>(r.moved) : 0.0, kb,
        r.moved > 0 ? kb / static_cast<double>(r.moved) : 0.0);
  }
  std::printf(
      "\n  only ring-moved agents pay a handoff; the rest of the fleet\n"
      "  never blocks beyond the round-boundary drain. ms/moved is the\n"
      "  marginal cost of migrating one agent's full verification state\n"
      "  (log cursor, audit tail, scheduler slot) over the handoff link.\n");
  return 0;
}
