// Table II: the eight attack samples against stock and mitigated
// Keylime/IMA stacks.
#include <cstdio>

#include "common/log.hpp"
#include "experiments/report.hpp"

int main() {
  cia::set_log_level(cia::LogLevel::kError);
  cia::experiments::FnExperimentOptions options;
  const auto reports = cia::experiments::run_fn_experiment(options);
  std::printf("%s\n", cia::experiments::render_table2(reports).c_str());
  return 0;
}
