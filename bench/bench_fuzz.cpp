// Throughput microbenchmarks for the testkit fuzzing stack: how many
// executions per second each layer sustains bounds how deep the CI
// fuzz-smoke budget (~30 s/target) actually explores. Run to size
// --iters when adding a target or fattening a generator.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/generators.hpp"
#include "testkit/mutator.hpp"
#include "testkit/shrink.hpp"
#include "testkit/targets.hpp"

namespace cia::testkit {
namespace {

void BM_MutatorMutate(benchmark::State& state) {
  ByteMutator mutator(7);
  Rng rng(7);
  const Bytes input = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutator.mutate(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MutatorMutate)->Arg(64)->Arg(1024)->Arg(16384);

void BM_GenLogEntry(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen_log_entry(rng));
  }
}
BENCHMARK(BM_GenLogEntry);

void BM_GenWireFrame(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen_wire_frame(rng));
  }
}
BENCHMARK(BM_GenWireFrame);

// One fuzz execution per iteration, against a generated (i.e. mostly
// accepted — the expensive path) input for each registered target.
void BM_TargetRun(benchmark::State& state) {
  const FuzzTarget& target =
      all_targets()[static_cast<std::size_t>(state.range(0))];
  Rng rng(17);
  std::vector<Bytes> inputs;
  for (int i = 0; i < 32; ++i) inputs.push_back(target.generate(rng));
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target.run(inputs[next]));
    next = (next + 1) % inputs.size();
  }
  state.SetLabel(target.name);
}
BENCHMARK(BM_TargetRun)->DenseRange(0, 5);

void BM_ShrinkToMinimal(benchmark::State& state) {
  // Shrink a 256-byte input down to the single byte the predicate needs:
  // the cost model for minimizing a real finding.
  Rng rng(23);
  Bytes input = rng.bytes(256);
  input[137] = 0xEE;
  const auto failing = [](const Bytes& b) {
    for (const auto byte : b) {
      if (byte == 0xEE) return true;
    }
    return false;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(shrink(input, failing));
  }
}
BENCHMARK(BM_ShrinkToMinimal);

}  // namespace
}  // namespace cia::testkit

BENCHMARK_MAIN();
