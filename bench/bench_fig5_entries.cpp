// Fig. 5: file entries added to the policy per daily update, over the
// 31-day run.
#include <cstdio>

#include "common/log.hpp"
#include "experiments/report.hpp"

int main() {
  cia::set_log_level(cia::LogLevel::kError);
  cia::experiments::DynamicRunOptions options;
  options.days = 31;
  options.update_period_days = 1;
  const auto daily = cia::experiments::run_dynamic_policy_experiment(options);
  std::printf("%s\n", cia::experiments::render_fig5(daily).c_str());
  if (cia::experiments::write_updates_csv("fig5_entries.csv", daily)) {
    std::printf("series written to fig5_entries.csv\n");
  }
  return 0;
}
