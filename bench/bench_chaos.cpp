// Chaos suite: every named fault scenario against a live fleet.
//
// The table this prints is the robustness claim of the reproduction: under
// link loss, crash loops, component outages, a verifier crash/restore, and
// a mirror partition on an update day, the pipeline produces zero
// transport-attributable false positives, recovers every agent within a
// bounded window, keeps the signed audit chain intact — and still catches
// the one genuine violation injected into the lossiest scenario.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/log.hpp"
#include "experiments/chaos_experiment.hpp"
#include "telemetry/export.hpp"

int main() {
  using namespace cia;
  using namespace cia::experiments;
  set_log_level(LogLevel::kError);

  // CIA_TELEMETRY_OUT=prefix makes every scenario export its metrics
  // snapshot to prefix-<scenario>.json alongside the printed table.
  const char* telemetry_out = std::getenv("CIA_TELEMETRY_OUT");

  std::printf("Chaos scenarios (6 nodes, 5 days, retrying transport)\n\n");
  std::printf(
      "  scenario           FPs  genuine  comms  recovery  retries  drops"
      "  dups  t/outs  defer  audit\n");
  bool all_ok = true;
  for (const std::string& scenario : chaos_scenarios()) {
    ChaosOptions options;
    options.scenario = scenario;
    options.nodes = 6;
    options.days = 5;
    options.archive.base_package_count = 200;
    telemetry::MetricsRegistry registry;
    if (telemetry_out) options.metrics = &registry;
    const ChaosReport r = run_chaos_experiment(options);
    if (telemetry_out) {
      const std::string path =
          std::string(telemetry_out) + "-" + scenario + ".json";
      std::ofstream out(path, std::ios::binary);
      out << telemetry::to_json(registry.snapshot()).dump() << "\n";
    }
    const bool scenario_ok =
        r.valid && r.transport_false_positives == 0 && r.liveness_ok &&
        r.audit_chain_ok && (!r.violation_injected || r.genuine_detected) &&
        r.checkpoint_roundtrip_ok;
    all_ok = all_ok && scenario_ok;
    std::printf(
        "  %-17s  %3zu  %7zu  %5zu  %6llds  %7llu  %5llu  %4llu  %6llu"
        "  %5llu  %s%s\n",
        r.scenario.c_str(), r.transport_false_positives, r.genuine_alerts,
        r.comms_alerts, static_cast<long long>(r.recovery_time),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.drops),
        static_cast<unsigned long long>(r.duplicates),
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.updates_deferred),
        r.audit_chain_ok ? "intact" : "BROKEN",
        scenario_ok ? "" : "  <-- FAILED");
    if (r.verifier_restarted) {
      std::printf(
          "  %-17s  (verifier crash/restore mid-run: checkpoint "
          "round-trip %s, %zu audit records span the restart)\n",
          "", r.checkpoint_roundtrip_ok ? "byte-identical" : "DIVERGED",
          r.audit_records);
    }
  }

  // Ablation: the same 10%-loss run without the retry layer shows what
  // the RetryingTransport absorbs (comms alerts, not false positives —
  // the alert taxonomy already keeps transport faults out of policy
  // verdicts; retries keep them out of the ops pager too).
  std::printf("\nAblation: wan-loss with vs without RetryingTransport\n\n");
  std::printf("  transport   comms-alerts  giveups  recovered  polls\n");
  for (const bool retrying : {true, false}) {
    ChaosOptions options;
    options.scenario = "wan-loss";
    options.nodes = 6;
    options.days = 5;
    options.archive.base_package_count = 200;
    options.retrying_transport = retrying;
    const ChaosReport r = run_chaos_experiment(options);
    std::printf("  %-9s   %12zu  %7llu  %9llu  %5zu\n",
                retrying ? "retrying" : "raw", r.comms_alerts,
                static_cast<unsigned long long>(r.giveups),
                static_cast<unsigned long long>(r.recovered_calls), r.polls);
  }

  std::printf(
      "\n  comms faults cost retries and backoff, never a policy alert; the\n"
      "  injected backdoor is still caught through 10%% loss; the audit\n"
      "  chain stays verifiable across a verifier crash and restore.\n");
  std::printf("\n  overall: %s\n", all_ok ? "ALL SCENARIOS PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
