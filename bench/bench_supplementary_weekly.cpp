// The paper's supplementary material: the weekly-update experiment in the
// same per-update detail as Figs. 3-5 give the daily one (35 days, 5
// updates), plus the coalescing analysis that explains Table I's
// sub-linear weekly costs.
#include <cstdio>

#include "common/log.hpp"
#include "common/stats.hpp"
#include <algorithm>

#include "common/strutil.hpp"
#include "experiments/fp_experiment.hpp"

int main() {
  using namespace cia;
  using namespace cia::experiments;
  set_log_level(LogLevel::kError);

  DynamicRunOptions options;
  options.days = 35;
  options.update_period_days = 7;
  options.seed = 43;
  const auto run = run_dynamic_policy_experiment(options);

  std::printf("Supplementary — weekly-update experiment (35 days, %d updates)\n\n",
              run.updates_run);
  std::printf("  update   pkgs   high-pri   lines added   minutes\n");
  std::vector<double> pkgs, lines, minutes;
  for (std::size_t i = 0; i < run.updates.size(); ++i) {
    const auto& u = run.updates[i];
    std::printf("  %6zu  %5zu   %8zu   %11zu   %7.2f\n", i + 1,
                u.packages_processed, u.packages_high_priority, u.lines_added,
                u.seconds / 60.0);
    pkgs.push_back(static_cast<double>(u.packages_processed));
    lines.push_back(static_cast<double>(u.lines_added));
    minutes.push_back(u.seconds / 60.0);
  }
  const Summary sp = summarize(pkgs);
  const Summary sl = summarize(lines);
  const Summary sm = summarize(minutes);
  std::printf("\n  per-update means: %.1f packages (paper 79.0 incl. high-pri),"
              " %.0f lines (paper 5,513), %.2f min (paper 7.50)\n",
              sp.mean, sl.mean, sm.mean);

  // Coalescing analysis: a week of daily updates vs one weekly batch.
  DynamicRunOptions daily_options;
  daily_options.days = 35;
  daily_options.update_period_days = 1;
  daily_options.seed = 43;
  const auto daily = run_dynamic_policy_experiment(daily_options);
  double daily_pkgs = 0;
  for (const auto& u : daily.updates) {
    daily_pkgs += static_cast<double>(u.packages_processed);
  }
  const double weekly_pkgs =
      sp.mean * static_cast<double>(run.updates.size());
  std::printf(
      "\n  coalescing: the same 35-day stream processed daily touches %.0f\n"
      "  package-updates; weekly batches coalesce repeats to %.0f\n"
      "  (%.2fx fewer) — the Zipf-hot head updates repeatedly within a\n"
      "  week. false positives: %zu (daily) / %zu (weekly).\n",
      daily_pkgs, weekly_pkgs, daily_pkgs / std::max(1.0, weekly_pkgs),
      daily.false_positives, run.false_positives);
  return 0;
}
