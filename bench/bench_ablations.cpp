// Ablations of the design choices DESIGN.md calls out:
//
//   A1. IMA measurement-cache keying — the P4 mechanism. With the stock
//       (fs, inode) key the staged-move attack evades; adding the path to
//       the key flips it to detected.
//   A2. Verifier failure semantics — the P2 mechanism. Stop-on-failure
//       leaves the payload unevaluated; continue-on-failure flips it.
//   A3. Incremental policy refresh vs full regeneration — the generator's
//       append-only design is what makes daily updates cheap.
//   A4. Kernel tracking — without it, every stale kernel's modules stay
//       admitted forever and the policy keeps growing.
#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "common/strutil.hpp"
#include "core/policy_generator.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/testbed.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

/// A1/A2: run the Mortem-qBot-style staged move under four verifier/IMA
/// configurations and report who detects it.
void ablate_p4_and_p2() {
  std::printf("A1/A2 — P4 cache keying x P2 failure semantics\n");
  std::printf("  %-34s %-34s %s\n", "ima cache key", "verifier on failure",
              "staged-move attack");
  for (const bool reevaluate : {false, true}) {
    for (const bool continue_on_failure : {false, true}) {
      TestbedOptions options;
      options.provision_extra = 10;
      options.ima_config.reevaluate_on_path_change = reevaluate;
      options.verifier_config.continue_on_failure = continue_on_failure;
      Testbed bed(options);
      if (!bed.enroll().ok()) return;
      keylime::RuntimePolicy policy = scan_machine_policy(bed.machine, true);
      (void)bed.verifier.set_policy(bed.agent_id(), policy);
      bed.attest();

      // Plant a decoy FP (P2 bait), then stage in /tmp, move, execute.
      (void)bed.machine.fs().create_file("/usr/local/bin/decoy",
                                         to_bytes("elf:decoy"), true);
      (void)bed.machine.exec("/usr/local/bin/decoy");
      bed.attest();
      (void)bed.machine.fs().create_file("/tmp/stage/payload",
                                         to_bytes("elf:payload"), true);
      (void)bed.machine.exec("/tmp/stage/payload");
      (void)bed.machine.fs().rename("/tmp/stage/payload", "/usr/bin/payload");
      (void)bed.machine.exec("/usr/bin/payload");
      for (int i = 0; i < 3; ++i) bed.attest();

      bool detected = false;
      for (const auto& alert : bed.verifier.alerts()) {
        if (alert.path.find("payload") != std::string::npos) detected = true;
      }
      std::printf("  %-34s %-34s %s\n",
                  reevaluate ? "(fs, inode, path)  [mitigated]"
                             : "(fs, inode)        [stock]",
                  continue_on_failure ? "keep evaluating    [mitigated]"
                                      : "halt               [stock]",
                  detected ? "DETECTED" : "evaded");
    }
  }
  std::printf("\n");
}

/// A3: cost of incremental refresh vs regenerating the base policy.
void ablate_incremental() {
  std::printf("A3 — incremental refresh vs full regeneration\n");
  TestbedOptions options;
  options.provision_extra = 10;
  Testbed bed(options);
  bed.mirror.sync(0);
  core::GeneratorConfig gen_config;
  core::DynamicPolicyGenerator generator(&bed.mirror, gen_config);
  core::PolicyUpdateStats base_stats;
  keylime::RuntimePolicy policy =
      generator.generate_base(bed.machine.kernel_version(), &base_stats);

  // One day of releases lands on the mirror.
  (void)bed.archive.release_day(0);
  bed.mirror.sync(kDay);

  const auto incremental =
      generator.refresh(policy, bed.machine.kernel_version());

  core::DynamicPolicyGenerator fresh(&bed.mirror, gen_config);
  core::PolicyUpdateStats regen_stats;
  (void)fresh.generate_base(bed.machine.kernel_version(), &regen_stats);

  std::printf("  full regeneration: %8.1f virtual min (%zu packages)\n",
              regen_stats.seconds / 60.0, regen_stats.packages_processed);
  std::printf("  incremental:       %8.1f virtual min (%zu packages)  — %.0fx cheaper\n\n",
              incremental.seconds / 60.0, incremental.packages_processed,
              regen_stats.seconds / std::max(incremental.seconds, 1.0));
}

/// A4: kernel tracking keeps stale kernels out of the policy.
void ablate_kernel_tracking() {
  std::printf("A4 — kernel-module tracking (%s)\n",
              "policy admits only the running + pending kernels");
  for (const bool tracking : {true, false}) {
    TestbedOptions options;
    options.provision_extra = 10;
    options.archive.kernel_release_prob = 0.5;  // force frequent kernels
    Testbed bed(options);
    bed.mirror.sync(0);
    core::GeneratorConfig gen_config;
    gen_config.kernel_tracking = tracking;
    core::DynamicPolicyGenerator generator(&bed.mirror, gen_config);
    keylime::RuntimePolicy policy =
        generator.generate_base(bed.machine.kernel_version());
    std::size_t stale_admitted = 0;
    for (int day = 0; day < 20; ++day) {
      (void)bed.archive.release_day(day);
      bed.mirror.sync((day + 1) * kDay);
      const auto stats =
          generator.refresh(policy, bed.machine.kernel_version());
      (void)stats;
    }
    // Count module entries for kernels other than the running one.
    const std::string running = "/lib/modules/" +
                                bed.machine.kernel_version() + "/";
    const auto parsed = keylime::RuntimePolicy::parse(policy.serialize());
    if (parsed.ok()) {
      // Count stale-kernel lines directly from the serialized form.
      for (const std::string& line : split(policy.serialize(), '\n')) {
        if (starts_with(line, "/lib/modules/") && !starts_with(line, running)) {
          ++stale_admitted;
        }
      }
    }
    std::printf("  tracking %-3s -> %6zu stale-kernel module entries, %zu total lines\n",
                tracking ? "ON" : "OFF", stale_admitted, policy.entry_count());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  std::printf("Design-choice ablations\n\n");
  ablate_p4_and_p2();
  ablate_incremental();
  ablate_kernel_tracking();
  return 0;
}
