// Fleet-scale operation of the dynamic-policy scheme: N nodes, staggered
// polling over a lossy network, daily pre-emptive policy pushes, and a
// durable audit chain — the deployment shape the paper targets.
#include <cstdio>

#include "common/log.hpp"
#include "experiments/fleet_experiment.hpp"

int main() {
  using namespace cia;
  using namespace cia::experiments;
  set_log_level(LogLevel::kError);

  std::printf("Fleet operation (dynamic policy + scheduler + audit)\n\n");
  std::printf("  nodes   days   updates   polls   comms-fail   FPs   audit\n");
  for (const std::size_t nodes : {2u, 5u, 10u}) {
    FleetRunOptions options;
    options.nodes = nodes;
    options.days = 7;
    options.archive.base_package_count = 300;
    options.provision_extra = 40;
    const auto result = run_fleet_experiment(options);
    std::printf("  %5zu   %4d   %7d   %5zu   %10zu   %3zu   %s\n",
                result.nodes, result.days, result.updates_run, result.polls,
                result.comms_failures, result.false_positives,
                result.audit_chain_intact ? "intact" : "BROKEN");
  }
  std::printf(
      "\n  every node stays in policy through its own daily upgrades; packet\n"
      "  loss costs retries (backoff), never false alerts; the signed audit\n"
      "  chain covers every poll across the fleet.\n");
  return 0;
}
