// Fleet-scale operation of the dynamic-policy scheme: N nodes, staggered
// polling over a lossy network, daily pre-emptive policy pushes, and a
// durable audit chain — the deployment shape the paper targets.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/log.hpp"
#include "common/strutil.hpp"
#include "experiments/fleet_experiment.hpp"
#include "telemetry/export.hpp"

int main() {
  using namespace cia;
  using namespace cia::experiments;
  set_log_level(LogLevel::kError);

  // CIA_TELEMETRY_OUT=prefix makes every fleet size export its metrics
  // snapshot to prefix-fleetN.json alongside the printed table.
  const char* telemetry_out = std::getenv("CIA_TELEMETRY_OUT");

  std::printf("Fleet operation (dynamic policy + scheduler + audit)\n\n");
  std::printf("  nodes   days   updates   polls   comms-fail   FPs   audit\n");
  for (const std::size_t nodes : {2u, 5u, 10u}) {
    FleetRunOptions options;
    options.nodes = nodes;
    options.days = 7;
    options.archive.base_package_count = 300;
    options.provision_extra = 40;
    telemetry::MetricsRegistry registry;
    if (telemetry_out) options.metrics = &registry;
    const auto result = run_fleet_experiment(options);
    if (telemetry_out) {
      const std::string path =
          std::string(telemetry_out) + strformat("-fleet%zu.json", nodes);
      std::ofstream out(path, std::ios::binary);
      out << telemetry::to_json(registry.snapshot()).dump() << "\n";
    }
    std::printf("  %5zu   %4d   %7d   %5zu   %10zu   %3zu   %s\n",
                result.nodes, result.days, result.updates_run, result.polls,
                result.comms_failures, result.false_positives,
                result.audit_chain_intact ? "intact" : "BROKEN");
  }
  std::printf(
      "\n  every node stays in policy through its own daily upgrades; packet\n"
      "  loss costs retries (backoff), never false alerts; the signed audit\n"
      "  chain covers every poll across the fleet.\n");
  return 0;
}
