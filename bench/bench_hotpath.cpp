// Hot-path appraisal benchmark: the verifier-side stages rebuilt for
// throughput, each measured against the pre-rebuild shape on the same
// 300k-entry log.
//
// Stages (all reported as entries/second):
//   parse        zero-copy QuoteResponseView::decode vs the owning
//                QuoteResponse::decode (per-entry string allocations)
//   hash_batch   sha256_batch on template-hash-shaped records, multi-lane
//                auto dispatch vs the same harness pinned to the scalar
//                backend — isolates the lane kernels' contribution
//   verify_fold  block-pipelined template-check + PCR fold (gather →
//                sha256_batch → compare → fused pcr_fold)
//                vs the old two-loop shape: a fresh scalar Sha256 and a
//                digest_bytes() heap copy per record
//   policy_probe PolicyIndex + AppraisalCache verdict lookup vs
//                digest_hex() + RuntimePolicy::check per record
//   end_to_end   all of the above chained, one appraisal round
//
// The legacy side reproduces the pre-rebuild implementation faithfully,
// including the scalar compression function (SHA-NI dispatch landed with
// the rebuild) and the byte-at-a-time finish() padding.
//
// Emits BENCH_hotpath.json (schema below). `--check <baseline.json>
// [--tolerance 0.30]` re-runs the suite and exits non-zero when any
// stage's fast-vs-legacy speedup regressed more than the tolerance
// against the checked-in baseline — speedups are same-host ratios, so
// the gate is meaningful across machines of different absolute speed.
// Hash-bound stages are skipped when the host's SHA-NI availability
// differs from the baseline's (the ratio is not comparable then).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/strutil.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "ima/ima.hpp"
#include "keylime/appraisal_cache.hpp"
#include "keylime/messages.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/runtime_policy.hpp"
#include "tpm/tpm.hpp"

namespace {

using namespace cia;

double wall_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

// ---------------------------------------------------------------------
// The pre-rebuild SHA-256: scalar compression only (no SHA-NI dispatch)
// and finish() padding fed through update() one byte at a time. This is
// what every legacy-side hash below runs on, so the crypto rework's
// contribution is part of the measured delta.
class ScalarSha256 {
 public:
  ScalarSha256() { reset(); }

  void reset() {
    static constexpr std::uint32_t kInit[8] = {
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    std::memcpy(state_, kInit, sizeof(state_));
    total_len_ = 0;
    buffer_len_ = 0;
  }

  void update(const std::uint8_t* data, std::size_t len) {
    total_len_ += len;
    while (len > 0) {
      if (buffer_len_ == 0 && len >= 64) {
        const std::size_t blocks = len / 64;
        crypto::detail::sha256_compress_scalar(state_, data, blocks);
        data += blocks * 64;
        len -= blocks * 64;
        continue;
      }
      const std::size_t take = std::min(len, 64 - buffer_len_);
      std::memcpy(buffer_ + buffer_len_, data, take);
      buffer_len_ += take;
      data += take;
      len -= take;
      if (buffer_len_ == 64) {
        crypto::detail::sha256_compress_scalar(state_, buffer_, 1);
        buffer_len_ = 0;
      }
    }
  }
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  crypto::Digest finish() {
    const std::uint64_t bits = total_len_ * 8;
    std::uint8_t byte = 0x80;
    update(&byte, 1);
    byte = 0;
    while (buffer_len_ != 56) update(&byte, 1);
    for (int shift = 56; shift >= 0; shift -= 8) {
      byte = static_cast<std::uint8_t>(bits >> shift);
      update(&byte, 1);
    }
    crypto::Digest out{};
    for (std::size_t i = 0; i < 8; ++i) {
      out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
      out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
      out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
      out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
  }

 private:
  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

// ---------------------------------------------------------------------
// Workload: one appraisal round's worth of log entries. Paths repeat
// (a fleet of machines built from the same image re-measures the same
// binaries), which is exactly the redundancy the verdict cache exploits.
// The probe mix mirrors bench_pool: overwhelmingly policy hits, a few
// stale hashes, a sprinkle of unknown and excluded paths.

struct Workload {
  std::vector<ima::LogEntry> log;
  keylime::RuntimePolicy policy;
  std::shared_ptr<const keylime::PolicyIndex> index;
  Bytes encoded;  // the wire form of the whole round
  std::size_t unique_files = 0;
};

void add_exclude_list(keylime::RuntimePolicy& policy, std::size_t globs) {
  for (std::size_t i = 0; i < globs; ++i) {
    switch (i % 4) {
      case 0:
        policy.exclude(strformat("*.cache-%03zu.tmp", i));
        break;
      case 1:
        policy.exclude(strformat("*/spool-%03zu/*", i));
        break;
      case 2:
        policy.exclude(strformat("*/tool-scratch-%03zu/*", i));
        break;
      default:
        policy.exclude(strformat("/var/cache/app-%03zu/*", i));
        break;
    }
  }
}

Workload build_workload(std::size_t entries) {
  Workload w;
  w.unique_files = std::max<std::size_t>(1, entries / 6);

  std::vector<std::string> paths(w.unique_files);
  std::vector<crypto::Digest> hashes(w.unique_files);
  for (std::size_t i = 0; i < w.unique_files; ++i) {
    paths[i] = strformat("/usr/lib/x86_64-linux-gnu/pkg-%05zu/libtool-%zu.so.0",
                         i / 4, i % 4);
    hashes[i] = crypto::sha256(strformat("content-%zu", i));
  }

  add_exclude_list(w.policy, 64);
  for (std::size_t i = 0; i < w.unique_files; ++i) {
    w.policy.allow(paths[i], crypto::digest_hex(hashes[i]));
  }
  w.index = keylime::PolicyIndex::build(w.policy, 1);

  w.log.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    ima::LogEntry e;
    const std::size_t r = i % 40;
    if (r < 36) {  // known path, acceptable hash
      const std::size_t p = (i * 7919) % w.unique_files;
      e.path = paths[p];
      e.file_hash = hashes[p];
    } else if (r < 38) {  // known path, stale hash
      const std::size_t p = (i * 104729) % w.unique_files;
      e.path = paths[p];
      e.file_hash = crypto::sha256(strformat("stale-%zu", i));
    } else if (r == 38) {  // unknown path
      e.path = strformat("/opt/unknown/bin-%zu", i);
      e.file_hash = crypto::sha256("x");
    } else {  // excluded path (a compiled directory glob)
      e.path = strformat("/var/cache/app-%03zu/obj-%zu", (i % 16) * 4 + 3, i);
      e.file_hash = crypto::sha256("x");
    }
    e.template_hash = crypto::template_hash_of(e.file_hash, e.path);
    w.log.push_back(std::move(e));
  }

  const crypto::CertificateAuthority ca("mfg", to_bytes("bench-seed"));
  tpm::Tpm2 tpm("bench", to_bytes("bench-seed"), ca);
  w.encoded = keylime::encode_quote_response(
      tpm.quote(to_bytes("nonce"), {tpm::kImaPcr}), w.log, w.log.size(), 1);
  return w;
}

// ---------------------------------------------------------------------
// Stage measurements. Every loop folds its outcome into a checksum so
// the compiler cannot elide work, and so fast/legacy agreement can be
// cross-checked where the stage produces verdicts.

struct StageResult {
  double fast_ms = 0;
  double legacy_ms = 0;
  std::uint64_t fast_sum = 0;
  std::uint64_t legacy_sum = 0;
};

std::uint64_t digest_word(const crypto::Digest& d) {
  std::uint64_t word = 0;
  std::memcpy(&word, d.data(), sizeof(word));
  return word;
}

StageResult bench_parse(const Workload& w, std::size_t reps) {
  StageResult r;
  r.fast_ms = r.legacy_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto view = keylime::QuoteResponseView::decode(w.encoded);
    double ms = wall_ms(start);
    std::uint64_t sum = 0;
    if (view.ok()) {
      for (const keylime::LogEntryView& e : view.value().entries) {
        sum = sum * 31 + e.path.size() + digest_word(e.file_hash);
      }
    }
    r.fast_ms = std::min(r.fast_ms, ms);
    r.fast_sum = sum;

    start = std::chrono::steady_clock::now();
    auto owned = keylime::QuoteResponse::decode(w.encoded);
    ms = wall_ms(start);
    sum = 0;
    if (owned.ok()) {
      for (const ima::LogEntry& e : owned.value().entries) {
        sum = sum * 31 + e.path.size() + digest_word(e.file_hash);
      }
    }
    r.legacy_ms = std::min(r.legacy_ms, ms);
    r.legacy_sum = sum;
  }
  return r;
}

// The lane-dispatch contribution in isolation: the same sha256_batch
// harness over template-hash-shaped records, multi-lane auto dispatch vs
// the batch API pinned to the scalar backend. This is the ratio CI gates
// to catch a lane kernel silently falling back to single-stream.
StageResult bench_hash_batch(const Workload& w, std::size_t reps) {
  constexpr std::size_t kBlock = 128;
  crypto::HashInput inputs[kBlock];
  crypto::Digest computed[kBlock];
  const std::size_t total = w.log.size();

  const auto run = [&]() {
    std::uint64_t sum = 0;
    for (std::size_t base = 0; base < total; base += kBlock) {
      const std::size_t count = std::min(kBlock, total - base);
      for (std::size_t i = 0; i < count; ++i) {
        const ima::LogEntry& e = w.log[base + i];
        inputs[i] = {e.file_hash.data(), e.file_hash.size(),
                     reinterpret_cast<const std::uint8_t*>(e.path.data()),
                     e.path.size()};
      }
      crypto::sha256_batch(inputs, count, computed);
      for (std::size_t i = 0; i < count; ++i) {
        sum = sum * 31 + digest_word(computed[i]);
      }
    }
    return sum;
  };

  StageResult r;
  r.fast_ms = r.legacy_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    r.fast_sum = run();
    r.fast_ms = std::min(r.fast_ms, wall_ms(start));

    crypto::force_backend(crypto::Sha256Backend::kScalar);
    start = std::chrono::steady_clock::now();
    r.legacy_sum = run();
    r.legacy_ms = std::min(r.legacy_ms, wall_ms(start));
    crypto::force_backend(crypto::Sha256Backend::kAuto);
  }
  return r;
}

StageResult bench_verify_fold(const Workload& w, std::size_t reps) {
  StageResult r;
  r.fast_ms = r.legacy_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Fast: the block-pipelined shape attest_once runs now — gather a
    // block, batch-hash it across lanes, compare in order, fold.
    constexpr std::size_t kBlock = 128;
    crypto::HashInput inputs[kBlock];
    crypto::Digest computed[kBlock];
    auto start = std::chrono::steady_clock::now();
    crypto::Digest folded = crypto::zero_digest();
    std::uint64_t mismatches = 0;
    const std::size_t total = w.log.size();
    for (std::size_t base = 0; base < total; base += kBlock) {
      const std::size_t count = std::min(kBlock, total - base);
      for (std::size_t i = 0; i < count; ++i) {
        const ima::LogEntry& e = w.log[base + i];
        inputs[i] = {e.file_hash.data(), e.file_hash.size(),
                     reinterpret_cast<const std::uint8_t*>(e.path.data()),
                     e.path.size()};
      }
      crypto::sha256_batch(inputs, count, computed);
      for (std::size_t i = 0; i < count; ++i) {
        if (computed[i] != w.log[base + i].template_hash) ++mismatches;
      }
      for (std::size_t i = 0; i < count; ++i) {
        folded = crypto::pcr_fold(folded, computed[i]);
      }
    }
    r.fast_ms = std::min(r.fast_ms, wall_ms(start));
    r.fast_sum = digest_word(folded) + mismatches;

    // Legacy: two separate loops, a fresh scalar context and a
    // digest_bytes() heap copy per record — the pre-rebuild shape.
    start = std::chrono::steady_clock::now();
    mismatches = 0;
    for (const ima::LogEntry& e : w.log) {
      ScalarSha256 ctx;
      ctx.update(crypto::digest_bytes(e.file_hash));
      ctx.update(e.path);
      if (ctx.finish() != e.template_hash) ++mismatches;
    }
    crypto::Digest pcr = crypto::zero_digest();
    for (const ima::LogEntry& e : w.log) {
      ScalarSha256 ctx;
      ctx.update(crypto::digest_bytes(pcr));
      ctx.update(crypto::digest_bytes(e.template_hash));
      pcr = ctx.finish();
    }
    r.legacy_ms = std::min(r.legacy_ms, wall_ms(start));
    r.legacy_sum = digest_word(pcr) + mismatches;
  }
  return r;
}

StageResult bench_policy_probe(const Workload& w, std::size_t reps) {
  StageResult r;
  r.fast_ms = r.legacy_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Fast: verdict cache keyed on (template_hash, index uid), cold at
    // the start of every rep; misses fall through to the PolicyIndex.
    keylime::AppraisalCache cache;
    const std::uint64_t uid = w.index->uid();
    auto start = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (const ima::LogEntry& e : w.log) {
      keylime::PolicyMatch verdict;
      if (const auto cached = cache.lookup(e.template_hash, uid)) {
        verdict = *cached;
      } else {
        bool known = false;
        verdict = w.index->check(e.path, e.file_hash, &known);
        cache.insert(e.template_hash, uid, verdict);
      }
      sum = sum * 31 + static_cast<std::uint64_t>(verdict);
    }
    r.fast_ms = std::min(r.fast_ms, wall_ms(start));
    r.fast_sum = sum;

    // Legacy: hex-encode the hash and take the ordered-map + glob-scan
    // RuntimePolicy::check on every record.
    start = std::chrono::steady_clock::now();
    sum = 0;
    for (const ima::LogEntry& e : w.log) {
      sum = sum * 31 + static_cast<std::uint64_t>(w.policy.check(
                           e.path, crypto::digest_hex(e.file_hash)));
    }
    r.legacy_ms = std::min(r.legacy_ms, wall_ms(start));
    r.legacy_sum = sum;
  }
  return r;
}

StageResult bench_end_to_end(const Workload& w, std::size_t reps) {
  StageResult r;
  r.fast_ms = r.legacy_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Fast: decode views, fused verify+fold, cached indexed appraisal —
    // the round shape Verifier::attest_once runs now.
    keylime::AppraisalCache cache;
    const std::uint64_t uid = w.index->uid();
    constexpr std::size_t kBlock = 128;
    crypto::HashInput inputs[kBlock];
    crypto::Digest computed[kBlock];
    auto start = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    auto view = keylime::QuoteResponseView::decode(w.encoded);
    if (view.ok()) {
      const auto& entries = view.value().entries;
      crypto::Digest folded = crypto::zero_digest();
      for (std::size_t base = 0; base < entries.size(); base += kBlock) {
        const std::size_t count = std::min(kBlock, entries.size() - base);
        for (std::size_t i = 0; i < count; ++i) {
          const keylime::LogEntryView& e = entries[base + i];
          inputs[i] = {e.file_hash.data(), e.file_hash.size(),
                       reinterpret_cast<const std::uint8_t*>(e.path.data()),
                       e.path.size()};
        }
        crypto::sha256_batch(inputs, count, computed);
        for (std::size_t i = 0; i < count; ++i) {
          const keylime::LogEntryView& e = entries[base + i];
          if (computed[i] != e.template_hash) ++sum;
          keylime::PolicyMatch verdict;
          if (const auto cached = cache.lookup(computed[i], uid)) {
            verdict = *cached;
          } else {
            bool known = false;
            verdict = w.index->check(e.path, e.file_hash, &known);
            cache.insert(computed[i], uid, verdict);
          }
          sum = sum * 31 + static_cast<std::uint64_t>(verdict);
        }
        for (std::size_t i = 0; i < count; ++i) {
          folded = crypto::pcr_fold(folded, computed[i]);
        }
      }
      sum += digest_word(folded);
    }
    r.fast_ms = std::min(r.fast_ms, wall_ms(start));
    r.fast_sum = sum;

    // Legacy: owning decode, two-loop scalar verify with per-record
    // allocations, hex + linear policy check — the pre-rebuild round.
    start = std::chrono::steady_clock::now();
    sum = 0;
    auto owned = keylime::QuoteResponse::decode(w.encoded);
    if (owned.ok()) {
      std::uint64_t mismatches = 0;
      for (const ima::LogEntry& e : owned.value().entries) {
        ScalarSha256 ctx;
        ctx.update(crypto::digest_bytes(e.file_hash));
        ctx.update(e.path);
        if (ctx.finish() != e.template_hash) ++mismatches;
      }
      crypto::Digest pcr = crypto::zero_digest();
      for (const ima::LogEntry& e : owned.value().entries) {
        ScalarSha256 ctx;
        ctx.update(crypto::digest_bytes(pcr));
        ctx.update(crypto::digest_bytes(e.template_hash));
        pcr = ctx.finish();
      }
      sum = mismatches;
      for (const ima::LogEntry& e : owned.value().entries) {
        sum = sum * 31 + static_cast<std::uint64_t>(w.policy.check(
                             e.path, crypto::digest_hex(e.file_hash)));
      }
      sum += digest_word(pcr);
    }
    r.legacy_ms = std::min(r.legacy_ms, wall_ms(start));
    r.legacy_sum = sum;
  }
  return r;
}

// ---------------------------------------------------------------------

struct StageReport {
  const char* name;
  bool hash_bound;  // ratio not comparable across SHA-NI availability
  StageResult result;
  double fast_eps = 0;
  double legacy_eps = 0;
  double speedup = 0;
};

json::Value to_json(const StageReport& s) {
  json::Value v;
  v.set("fast_entries_per_sec", s.fast_eps);
  v.set("legacy_entries_per_sec", s.legacy_eps);
  v.set("speedup", s.speedup);
  v.set("hash_bound", s.hash_bound);
  return v;
}

int run_check(const std::string& baseline_path, double tolerance,
              const std::vector<StageReport>& stages, bool hw) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "bench_hotpath: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = json::parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_hotpath: baseline is not valid JSON: %s\n",
                 parsed.error().message.c_str());
    return 2;
  }
  const json::Value& base = parsed.value();
  const json::Value* base_hw = base.find("sha256_hw_accelerated");
  const bool hw_matches =
      base_hw != nullptr && base_hw->is_bool() && base_hw->as_bool() == hw;
  const json::Value* base_stages = base.find("stages");
  if (base_stages == nullptr || !base_stages->is_object()) {
    std::fprintf(stderr, "bench_hotpath: baseline has no stages object\n");
    return 2;
  }

  std::printf("\nRegression check vs %s (tolerance %.0f%%)\n",
              baseline_path.c_str(), tolerance * 100);
  int failures = 0;
  for (const StageReport& s : stages) {
    const json::Value* bs = base_stages->find(s.name);
    const json::Value* bspeed =
        bs != nullptr ? bs->find("speedup") : nullptr;
    if (bspeed == nullptr || !bspeed->is_number()) {
      std::printf("  %-12s SKIP (not in baseline)\n", s.name);
      continue;
    }
    if (s.hash_bound && !hw_matches) {
      std::printf("  %-12s SKIP (SHA-NI availability differs from baseline;"
                  " hash-bound ratio not comparable)\n", s.name);
      continue;
    }
    const double floor = bspeed->as_number() * (1.0 - tolerance);
    const bool ok = s.speedup >= floor;
    std::printf("  %-12s %s  speedup %.2fx vs baseline %.2fx (floor %.2fx)\n",
                s.name, ok ? "PASS" : "FAIL", s.speedup, bspeed->as_number(),
                floor);
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_hotpath: %d stage(s) regressed beyond tolerance\n",
                 failures);
    return 1;
  }
  std::printf("  all stages within tolerance\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(cia::LogLevel::kError);

  std::string baseline_path;
  std::string out_path = "BENCH_hotpath.json";
  double tolerance = 0.30;
  bool check_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_mode = true;
      baseline_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--check baseline.json]"
                   " [--tolerance 0.30] [--out BENCH_hotpath.json]\n");
      return 2;
    }
  }

  const std::size_t entries = env_size("CIA_BENCH_HOTPATH_ENTRIES", 300000);
  const std::size_t reps = env_size("CIA_BENCH_HOTPATH_REPS", 3);
  const bool hw = crypto::sha256_hw_accelerated();

  std::printf("Hot-path appraisal stages, %zu-entry round (%zu reps, best)\n",
              entries, reps);
  std::printf("SHA-NI: %s\n\n", hw ? "yes" : "no (scalar dispatch)");

  const Workload w = build_workload(entries);

  std::vector<StageReport> stages = {
      {"parse", false, bench_parse(w, reps)},
      {"hash_batch", true, bench_hash_batch(w, reps)},
      {"verify_fold", true, bench_verify_fold(w, reps)},
      {"policy_probe", false, bench_policy_probe(w, reps)},
      {"end_to_end", true, bench_end_to_end(w, reps)},
  };

  std::printf("  stage          fast entries/s   legacy entries/s   speedup\n");
  bool diverged = false;
  for (StageReport& s : stages) {
    const double n = static_cast<double>(entries);
    s.fast_eps = s.result.fast_ms > 0 ? n / (s.result.fast_ms / 1000.0) : 0;
    s.legacy_eps =
        s.result.legacy_ms > 0 ? n / (s.result.legacy_ms / 1000.0) : 0;
    s.speedup = s.legacy_eps > 0 ? s.fast_eps / s.legacy_eps : 0;
    std::printf("  %-12s %16.0f %18.0f %8.1fx\n", s.name, s.fast_eps,
                s.legacy_eps, s.speedup);
    // parse/policy_probe checksums are verdict/content folds computed
    // identically on both sides; divergence means the fast path changed
    // observable behaviour, which the differential tests forbid.
    if (std::strcmp(s.name, "policy_probe") == 0 &&
        s.result.fast_sum != s.result.legacy_sum) {
      std::printf("  !! DIVERGENCE: cached/indexed and linear verdicts"
                  " differ\n");
      diverged = true;
    }
    if (std::strcmp(s.name, "parse") == 0 &&
        s.result.fast_sum != s.result.legacy_sum) {
      std::printf("  !! DIVERGENCE: view and owning decode differ\n");
      diverged = true;
    }
    // hash_batch runs the same records through the lane kernels and the
    // scalar backend; any digest difference is a broken kernel.
    if (std::strcmp(s.name, "hash_batch") == 0 &&
        s.result.fast_sum != s.result.legacy_sum) {
      std::printf("  !! DIVERGENCE: lane kernels and scalar backend"
                  " disagree\n");
      diverged = true;
    }
  }
  if (diverged) return 1;

  if (check_mode) {
    return run_check(baseline_path, tolerance, stages, hw);
  }

  json::Value doc;
  doc.set("bench", "hotpath");
  doc.set("entries", entries);
  doc.set("unique_files", w.unique_files);
  doc.set("sha256_hw_accelerated", hw);
  json::Value stage_obj;
  for (const StageReport& s : stages) stage_obj.set(s.name, to_json(s));
  doc.set("stages", stage_obj);
  std::ofstream out(out_path);
  out << doc.pretty() << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
