// §III-D: effectiveness of dynamic policy generation over the full 66-day
// evaluation (31-day daily run with the injected day-31 operator error,
// plus the 35-day weekly run).
#include <cstdio>

#include "common/log.hpp"
#include "experiments/report.hpp"

int main() {
  cia::set_log_level(cia::LogLevel::kError);
  cia::experiments::DynamicRunOptions daily_options;
  daily_options.days = 31;
  daily_options.update_period_days = 1;
  daily_options.inject_mirror_race = true;
  daily_options.race_day = 30;
  const auto daily =
      cia::experiments::run_dynamic_policy_experiment(daily_options);

  cia::experiments::DynamicRunOptions weekly_options;
  weekly_options.days = 35;
  weekly_options.update_period_days = 7;
  weekly_options.seed = 43;
  const auto weekly =
      cia::experiments::run_dynamic_policy_experiment(weekly_options);

  std::printf("%s\n",
              cia::experiments::render_fp_effectiveness(daily, weekly).c_str());
  return 0;
}
