// Table I: per-update averages of the daily (31-day) and weekly (35-day)
// schedules.
#include <cstdio>

#include "common/log.hpp"
#include "experiments/report.hpp"

int main() {
  cia::set_log_level(cia::LogLevel::kError);
  cia::experiments::DynamicRunOptions daily_options;
  daily_options.days = 31;
  daily_options.update_period_days = 1;
  const auto daily =
      cia::experiments::run_dynamic_policy_experiment(daily_options);

  cia::experiments::DynamicRunOptions weekly_options;
  weekly_options.days = 35;
  weekly_options.update_period_days = 7;
  weekly_options.seed = 43;
  const auto weekly =
      cia::experiments::run_dynamic_policy_experiment(weekly_options);

  std::printf("%s\n",
              cia::experiments::render_table1(daily, weekly).c_str());
  return 0;
}
