// bench_alerts — the alert pipeline's clean-path overhead gate.
//
// The pipeline's contract is to be ~free when nothing is wrong: shard
// workers only advance a cursor over the verifier's (empty) alert list,
// and the round-boundary drain folds nothing. This benchmark runs the
// SAME alert-free fleet campaign twice — pipeline detached vs attached
// (with telemetry) — and reports the relative overhead of the attached
// run. Self-relative on one host in one process, so no baseline file is
// needed.
//
//   bench_alerts [--check] [--tolerance 0.25]
//
// With --check the process exits non-zero when the attached run is more
// than `tolerance` slower than the detached run (the CI perf-smoke
// stage). Workload size via CIA_BENCH_ALERTS_AGENTS /
// CIA_BENCH_ALERTS_BINARIES / CIA_BENCH_ALERTS_REPS; the defaults
// appraise ~300k IMA entries per run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/alert_pipeline/pipeline.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

struct RunResult {
  double seconds = 0;
  std::size_t entries = 0;
};

/// One full alert-free campaign: every binary on every machine gets
/// measured and appraised exactly once across the rounds. Returns the
/// time spent driving the pool (workload execution excluded — it is
/// identical in both configurations and involves no verifier code).
RunResult run_campaign(std::size_t agents, std::size_t binaries,
                       bool with_pipeline) {
  PoolFleetOptions options;
  options.agents = agents;
  options.shards = 8;
  options.seed = 7;
  options.binaries_per_machine = binaries;
  options.execs_per_round = 64;
  options.verifier.continue_on_failure = true;
  PoolFleet fleet(options);
  if (!fleet.init_status().ok()) {
    std::fprintf(stderr, "fleet init failed: %s\n",
                 fleet.init_status().error().message.c_str());
    std::exit(2);
  }
  if (!fleet.push_fleet_policy().ok()) std::exit(2);

  telemetry::MetricsRegistry metrics;
  keylime::alert_pipeline::AlertPipeline pipeline;
  if (with_pipeline) {
    pipeline.use_telemetry(&metrics);
    fleet.pool().use_alert_pipeline(&pipeline);
  }

  const std::size_t rounds =
      (binaries + options.execs_per_round - 1) / options.execs_per_round;
  double driving = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    fleet.run_workload_round(round);
    const auto start = std::chrono::steady_clock::now();
    fleet.pool().run_round();
    driving += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  }

  // The gate only means something if the campaign really was clean.
  if (!fleet.pool().alerts().empty() ||
      (with_pipeline && !pipeline.emitted().empty())) {
    std::fprintf(stderr, "campaign was not alert-free; bench invalid\n");
    std::exit(2);
  }
  RunResult result;
  result.seconds = driving;
  result.entries = agents * binaries;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  bool check_mode = false;
  double tolerance = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_alerts [--check] [--tolerance 0.25]\n");
      return 2;
    }
  }

  const std::size_t agents = env_size("CIA_BENCH_ALERTS_AGENTS", 96);
  const std::size_t binaries = env_size("CIA_BENCH_ALERTS_BINARIES", 3200);
  const std::size_t reps = env_size("CIA_BENCH_ALERTS_REPS", 3);

  std::printf("Alert-pipeline clean-path overhead: %zu agents x %zu entries"
              " (%zu reps, best)\n",
              agents, binaries, reps);

  double off = 1e100;
  double on = 1e100;
  std::size_t entries = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const RunResult detached = run_campaign(agents, binaries, false);
    const RunResult attached = run_campaign(agents, binaries, true);
    off = std::min(off, detached.seconds);
    on = std::min(on, attached.seconds);
    entries = detached.entries;
  }

  const double overhead = (on - off) / off;
  std::printf("  pipeline off : %8.3f s  (%.0f entries/s)\n", off,
              static_cast<double>(entries) / off);
  std::printf("  pipeline on  : %8.3f s  (%.0f entries/s)\n", on,
              static_cast<double>(entries) / on);
  std::printf("  overhead     : %+7.2f%%  (tolerance %.0f%%)\n",
              overhead * 100.0, tolerance * 100.0);

  if (check_mode && overhead > tolerance) {
    std::fprintf(stderr,
                 "FAIL: clean-path overhead %.2f%% exceeds %.2f%%\n",
                 overhead * 100.0, tolerance * 100.0);
    return 1;
  }
  return 0;
}
