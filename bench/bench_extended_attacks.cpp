// Extension of the false-negative study (the paper's §V future work):
// three additional samples chosen to probe the *boundaries* of continuous
// integrity attestation.
//
//   * XMRig-miner        — in scope; evades via P1/P3 until mitigated.
//   * SSH-key-backdoor   — data-only persistence; invisible by design,
//                          with or without mitigations (the §V "Keylime
//                          is not an IDS" lesson).
//   * GRUB-bootkit       — below IMA entirely; caught only by
//                          measured-boot refstate checking at reboot.
#include <cstdio>

#include "attacks/extended.hpp"
#include "common/log.hpp"
#include "core/policy_generator.hpp"
#include "experiments/testbed.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

enum class Posture { kStock, kMitigated };

const char* outcome(bool immediate, bool on_reboot) {
  if (immediate) return "detected";
  if (on_reboot) return "detected-on-reboot";
  return "evaded";
}

bool payload_alerted(const keylime::Verifier& verifier,
                     const attacks::Attack& attack) {
  for (const auto& alert : verifier.alerts()) {
    if (alert.type == keylime::AlertType::kMeasuredBootMismatch &&
        attack.category() == "Bootkit") {
      return true;  // the refstate mismatch *is* the bootkit detection
    }
    for (const auto& marker : attack.payload_markers()) {
      if (alert.path.find(marker) != std::string::npos) return true;
    }
  }
  return false;
}

std::string run_one(attacks::Attack& attack, Posture posture) {
  TestbedOptions options;
  options.provision_extra = 30;
  options.archive.base_package_count = 200;
  if (posture == Posture::kMitigated) {
    options.ima_policy = ima::ImaPolicy::enriched();
    options.ima_config.reevaluate_on_path_change = true;
    options.ima_config.script_exec_control = true;
    options.verifier_config.continue_on_failure = true;
  }
  Testbed bed(options);
  if (!bed.enroll().ok()) return "rig-error";

  bed.mirror.sync(0);
  core::DynamicPolicyGenerator generator(&bed.mirror, core::GeneratorConfig{});
  auto policy = generator.generate_base(bed.machine.kernel_version());
  if (posture == Posture::kStock) policy.exclude("/tmp/*");
  (void)bed.verifier.set_policy(bed.agent_id(), policy);
  if (posture == Posture::kMitigated) {
    // The mitigated posture also pins the boot chain.
    (void)bed.verifier.set_mb_refstate(
        bed.agent_id(), keylime::MbRefstate::capture(bed.machine.tpm()));
  }
  bed.attest();

  attacks::AttackContext ctx;
  ctx.machine = &bed.machine;
  ctx.attestation_round = [&bed] { bed.attest(); };
  if (!attack.run_adaptive(ctx).ok()) return "attack-error";
  for (int i = 0; i < 3; ++i) bed.attest();
  const bool immediate = payload_alerted(bed.verifier, attack);

  (void)bed.verifier.resolve_failure(bed.agent_id());
  bed.machine.reboot();
  bed.attest();
  (void)attack.post_reboot_activity(ctx);
  for (int i = 0; i < 3; ++i) bed.attest();
  const bool on_reboot = !immediate && payload_alerted(bed.verifier, attack);
  return outcome(immediate, on_reboot);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  std::printf("Extended attack matrix (beyond Table II)\n\n");
  std::printf("  %-18s %-22s %-20s %s\n", "name", "category", "stock stack",
              "mitigated (+MB refstate)");
  for (const auto& attack : attacks::extended_attacks()) {
    const std::string stock = run_one(*attack, Posture::kStock);
    const std::string mitigated = run_one(*attack, Posture::kMitigated);
    std::printf("  %-18s %-22s %-20s %s\n", attack->name().c_str(),
                attack->category().c_str(), stock.c_str(), mitigated.c_str());
  }
  std::printf(
      "\n  lessons: the miner behaves like Table II (mitigations catch it);\n"
      "  the SSH-key backdoor never touches an executable, so no integrity-\n"
      "  attestation fix can see it (use Keylime for compliance, not as an\n"
      "  IDS — §V); the bootkit sits below IMA and only the measured-boot\n"
      "  refstate exposes it, on the reboot after implantation.\n");
  return 0;
}
