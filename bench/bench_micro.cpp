// Micro-benchmarks of the substrates (google-benchmark): hashing, quote
// signing/verification, IMA measurement, log replay, policy matching, and
// wire serialization. These establish that the verifier-side costs scale
// to fleet-sized deployments.
#include <benchmark/benchmark.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"
#include "crypto/schnorr.hpp"
#include "ima/ima.hpp"
#include "keylime/messages.hpp"
#include "keylime/runtime_policy.hpp"
#include "tpm/tpm.hpp"
#include "vfs/vfs.hpp"

namespace {

using namespace cia;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

// The template-hash shape the verifier's appraisal loop feeds
// sha256_batch: a 32-byte file hash plus a ~68-character path, two
// segments, ~100 bytes per record. Lanes vs the same harness pinned to
// the retained scalar loop — the per-record speedup the block-pipelined
// verify+fold inherits.
struct BatchShape {
  std::vector<crypto::Digest> file_hashes;
  std::vector<std::string> paths;
  std::vector<crypto::HashInput> in;
  std::vector<crypto::Digest> out;

  explicit BatchShape(std::size_t n)
      : file_hashes(n), paths(n), in(n), out(n) {
    for (std::size_t i = 0; i < n; ++i) {
      file_hashes[i] = crypto::sha256("content" + std::to_string(i));
      paths[i] = "/usr/lib/x86_64-linux-gnu/package-staging-area/libtool-" +
                 std::to_string(i) + ".so.0";
      in[i] = {file_hashes[i].data(), file_hashes[i].size(),
               reinterpret_cast<const std::uint8_t*>(paths[i].data()),
               paths[i].size()};
    }
  }
};

void BM_Sha256BatchLanes(benchmark::State& state) {
  BatchShape shape(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::sha256_batch(shape.in.data(), shape.in.size(), shape.out.data());
    benchmark::DoNotOptimize(shape.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256BatchLanes)->Arg(128)->Arg(1024);

void BM_Sha256BatchScalarLoop(benchmark::State& state) {
  BatchShape shape(static_cast<std::size_t>(state.range(0)));
  crypto::force_backend(crypto::Sha256Backend::kScalar);
  for (auto _ : state) {
    crypto::sha256_batch(shape.in.data(), shape.in.size(), shape.out.data());
    benchmark::DoNotOptimize(shape.out.data());
  }
  crypto::force_backend(crypto::Sha256Backend::kAuto);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256BatchScalarLoop)->Arg(128)->Arg(1024);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_SchnorrSign(benchmark::State& state) {
  const auto key = crypto::derive_keypair(to_bytes("seed"), "bench");
  const Bytes msg = to_bytes("attestation message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(key, msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const auto key = crypto::derive_keypair(to_bytes("seed"), "bench");
  const Bytes msg = to_bytes("attestation message");
  const auto sig = crypto::sign(key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(key.pub, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_TpmQuote(benchmark::State& state) {
  const crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  tpm::Tpm2 tpm("bench", to_bytes("seed"), ca);
  tpm.extend(tpm::kImaPcr, crypto::sha256(std::string("m")));
  const Bytes nonce = to_bytes("nonce");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpm.quote(nonce, {tpm::kImaPcr}));
  }
}
BENCHMARK(BM_TpmQuote);

void BM_ImaMeasureExec(benchmark::State& state) {
  const crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  tpm::Tpm2 tpm("bench", to_bytes("seed"), ca);
  vfs::Vfs fs;
  ima::Ima ima(ima::ImaPolicy::keylime_recommended(), ima::ImaConfig{}, &fs,
               &tpm);
  ima.on_boot("bench");
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = "/usr/bin/tool" + std::to_string(i++);
    (void)fs.create_file(path, to_bytes("elf:" + path), true);
    state.ResumeTiming();
    ima.on_exec(path);
  }
}
BENCHMARK(BM_ImaMeasureExec);

void BM_LogReplay(benchmark::State& state) {
  std::vector<ima::LogEntry> log(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < log.size(); ++i) {
    log[i].template_hash = crypto::sha256("entry" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ima::replay_log(log));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LogReplay)->Arg(1000)->Arg(10000);

void BM_LogReplayFreshContext(benchmark::State& state) {
  // The pre-optimization replay_log shape: a fresh Sha256 per entry,
  // finalized with the old byte-at-a-time padding it implied. Kept as a
  // baseline against BM_LogReplay (one context reused via reset()) so
  // the delta of the satellite fix stays measurable.
  std::vector<ima::LogEntry> log(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < log.size(); ++i) {
    log[i].template_hash = crypto::sha256("entry" + std::to_string(i));
  }
  for (auto _ : state) {
    crypto::Digest pcr = crypto::zero_digest();
    for (const ima::LogEntry& e : log) {
      crypto::Sha256 ctx;
      ctx.update(pcr.data(), pcr.size());
      ctx.update(e.template_hash.data(), e.template_hash.size());
      pcr = ctx.finish();
    }
    benchmark::DoNotOptimize(pcr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LogReplayFreshContext)->Arg(1000)->Arg(10000);

void BM_PolicyCheck(benchmark::State& state) {
  keylime::RuntimePolicy policy;
  for (int i = 0; i < state.range(0); ++i) {
    policy.allow("/usr/bin/tool" + std::to_string(i),
                 crypto::digest_hex(crypto::sha256(std::to_string(i))));
  }
  policy.exclude("/tmp/*");
  const std::string probe = "/usr/bin/tool" + std::to_string(state.range(0) / 2);
  const std::string hash = crypto::digest_hex(
      crypto::sha256(std::to_string(state.range(0) / 2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.check(probe, hash));
  }
}
BENCHMARK(BM_PolicyCheck)->Arg(1000)->Arg(100000);

void BM_PolicySerialize(benchmark::State& state) {
  keylime::RuntimePolicy policy;
  for (int i = 0; i < 10000; ++i) {
    policy.allow("/usr/bin/tool" + std::to_string(i),
                 crypto::digest_hex(crypto::sha256(std::to_string(i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.serialize());
  }
}
BENCHMARK(BM_PolicySerialize);

void BM_QuoteResponseRoundTrip(benchmark::State& state) {
  const crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  tpm::Tpm2 tpm("bench", to_bytes("seed"), ca);
  keylime::QuoteResponse resp;
  resp.quote = tpm.quote(to_bytes("nonce"), {tpm::kImaPcr});
  resp.entries.resize(64);
  for (std::size_t i = 0; i < resp.entries.size(); ++i) {
    resp.entries[i].path = "/usr/bin/tool" + std::to_string(i);
    resp.entries[i].file_hash = crypto::sha256(std::to_string(i));
    resp.entries[i].template_hash = crypto::sha256("t" + std::to_string(i));
  }
  resp.total_log_length = 64;
  resp.boot_count = 1;
  for (auto _ : state) {
    const Bytes encoded = resp.encode();
    benchmark::DoNotOptimize(keylime::QuoteResponse::decode(encoded));
  }
}
BENCHMARK(BM_QuoteResponseRoundTrip);

void BM_VfsCreateRename(benchmark::State& state) {
  vfs::Vfs fs;
  int i = 0;
  for (auto _ : state) {
    const std::string src = "/tmp/f" + std::to_string(i);
    const std::string dst = "/usr/bin/f" + std::to_string(i);
    ++i;
    (void)fs.create_file(src, to_bytes("x"), true);
    (void)fs.rename(src, dst);
  }
}
BENCHMARK(BM_VfsCreateRename);

void BM_FleetAttestAll(benchmark::State& state) {
  // End-to-end verifier throughput: N healthy agents, one attest_all
  // sweep per iteration (quote verify dominates).
  const auto n = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  netsim::SimNetwork network(&clock, 1);
  const crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  keylime::Registrar registrar(&network, &clock, 2);
  registrar.trust_manufacturer(ca.public_key());
  keylime::Verifier verifier(&network, &clock, 3);
  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<keylime::Agent>> agents;
  for (std::size_t i = 0; i < n; ++i) {
    oskernel::MachineConfig cfg;
    cfg.hostname = "fleet-" + std::to_string(i);
    cfg.seed = i + 1;
    machines.push_back(std::make_unique<oskernel::Machine>(cfg, ca, &clock));
    agents.push_back(std::make_unique<keylime::Agent>(machines.back().get(),
                                                      &network));
    (void)agents.back()->register_with(keylime::Registrar::address());
    (void)verifier.add_agent(cfg.hostname, agents.back()->address());
    (void)verifier.set_policy(cfg.hostname, keylime::RuntimePolicy{});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.attest_all());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FleetAttestAll)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
