// §III-B: one week of benign operation under a static scan-derived policy
// with unattended upgrades and a SNAP installed — reproduces the paper's
// false-positive causes.
#include <cstdio>

#include "common/log.hpp"
#include "experiments/report.hpp"

int main() {
  cia::set_log_level(cia::LogLevel::kError);
  cia::experiments::FpBaselineOptions options;
  const auto result = cia::experiments::run_fp_baseline(options);
  std::printf("%s\n", cia::experiments::render_fp_baseline(result).c_str());
  return 0;
}
