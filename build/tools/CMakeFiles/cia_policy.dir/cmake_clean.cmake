file(REMOVE_RECURSE
  "CMakeFiles/cia_policy.dir/cia_policy.cpp.o"
  "CMakeFiles/cia_policy.dir/cia_policy.cpp.o.d"
  "cia_policy"
  "cia_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
