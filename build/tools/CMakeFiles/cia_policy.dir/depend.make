# Empty dependencies file for cia_policy.
# This may be replaced when dependencies are built.
