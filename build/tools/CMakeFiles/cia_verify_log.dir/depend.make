# Empty dependencies file for cia_verify_log.
# This may be replaced when dependencies are built.
