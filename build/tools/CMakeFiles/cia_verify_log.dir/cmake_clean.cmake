file(REMOVE_RECURSE
  "CMakeFiles/cia_verify_log.dir/cia_verify_log.cpp.o"
  "CMakeFiles/cia_verify_log.dir/cia_verify_log.cpp.o.d"
  "cia_verify_log"
  "cia_verify_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_verify_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
