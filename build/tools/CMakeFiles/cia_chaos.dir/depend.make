# Empty dependencies file for cia_chaos.
# This may be replaced when dependencies are built.
