file(REMOVE_RECURSE
  "CMakeFiles/cia_chaos.dir/cia_chaos.cpp.o"
  "CMakeFiles/cia_chaos.dir/cia_chaos.cpp.o.d"
  "cia_chaos"
  "cia_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
