
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cia_chaos.cpp" "tools/CMakeFiles/cia_chaos.dir/cia_chaos.cpp.o" "gcc" "tools/CMakeFiles/cia_chaos.dir/cia_chaos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/cia_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/cia_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/keylime/CMakeFiles/cia_keylime.dir/DependInfo.cmake"
  "/root/repo/build/src/pkg/CMakeFiles/cia_pkg.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cia_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/cia_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/cia_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cia_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/cia_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cia_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
