file(REMOVE_RECURSE
  "CMakeFiles/cia_audit.dir/cia_audit.cpp.o"
  "CMakeFiles/cia_audit.dir/cia_audit.cpp.o.d"
  "cia_audit"
  "cia_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
