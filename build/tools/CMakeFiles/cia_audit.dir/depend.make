# Empty dependencies file for cia_audit.
# This may be replaced when dependencies are built.
