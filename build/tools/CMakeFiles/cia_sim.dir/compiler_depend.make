# Empty compiler generated dependencies file for cia_sim.
# This may be replaced when dependencies are built.
