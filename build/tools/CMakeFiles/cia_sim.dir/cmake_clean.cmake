file(REMOVE_RECURSE
  "CMakeFiles/cia_sim.dir/cia_sim.cpp.o"
  "CMakeFiles/cia_sim.dir/cia_sim.cpp.o.d"
  "cia_sim"
  "cia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
