file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_packages.dir/bench_fig4_packages.cpp.o"
  "CMakeFiles/bench_fig4_packages.dir/bench_fig4_packages.cpp.o.d"
  "bench_fig4_packages"
  "bench_fig4_packages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_packages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
