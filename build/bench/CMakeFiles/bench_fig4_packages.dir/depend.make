# Empty dependencies file for bench_fig4_packages.
# This may be replaced when dependencies are built.
