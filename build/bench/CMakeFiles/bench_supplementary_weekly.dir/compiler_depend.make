# Empty compiler generated dependencies file for bench_supplementary_weekly.
# This may be replaced when dependencies are built.
