file(REMOVE_RECURSE
  "CMakeFiles/bench_supplementary_weekly.dir/bench_supplementary_weekly.cpp.o"
  "CMakeFiles/bench_supplementary_weekly.dir/bench_supplementary_weekly.cpp.o.d"
  "bench_supplementary_weekly"
  "bench_supplementary_weekly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supplementary_weekly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
