# Empty compiler generated dependencies file for bench_fp_baseline.
# This may be replaced when dependencies are built.
