file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_baseline.dir/bench_fp_baseline.cpp.o"
  "CMakeFiles/bench_fp_baseline.dir/bench_fp_baseline.cpp.o.d"
  "bench_fp_baseline"
  "bench_fp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
