file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_entries.dir/bench_fig5_entries.cpp.o"
  "CMakeFiles/bench_fig5_entries.dir/bench_fig5_entries.cpp.o.d"
  "bench_fig5_entries"
  "bench_fig5_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
