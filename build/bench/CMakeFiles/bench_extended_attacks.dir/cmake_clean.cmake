file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_attacks.dir/bench_extended_attacks.cpp.o"
  "CMakeFiles/bench_extended_attacks.dir/bench_extended_attacks.cpp.o.d"
  "bench_extended_attacks"
  "bench_extended_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
