# Empty dependencies file for bench_extended_attacks.
# This may be replaced when dependencies are built.
