file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_dynamic.dir/bench_fp_dynamic.cpp.o"
  "CMakeFiles/bench_fp_dynamic.dir/bench_fp_dynamic.cpp.o.d"
  "bench_fp_dynamic"
  "bench_fp_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
