# Empty compiler generated dependencies file for bench_fp_dynamic.
# This may be replaced when dependencies are built.
