
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pkg/apt.cpp" "src/pkg/CMakeFiles/cia_pkg.dir/apt.cpp.o" "gcc" "src/pkg/CMakeFiles/cia_pkg.dir/apt.cpp.o.d"
  "/root/repo/src/pkg/archive.cpp" "src/pkg/CMakeFiles/cia_pkg.dir/archive.cpp.o" "gcc" "src/pkg/CMakeFiles/cia_pkg.dir/archive.cpp.o.d"
  "/root/repo/src/pkg/cost_model.cpp" "src/pkg/CMakeFiles/cia_pkg.dir/cost_model.cpp.o" "gcc" "src/pkg/CMakeFiles/cia_pkg.dir/cost_model.cpp.o.d"
  "/root/repo/src/pkg/mirror.cpp" "src/pkg/CMakeFiles/cia_pkg.dir/mirror.cpp.o" "gcc" "src/pkg/CMakeFiles/cia_pkg.dir/mirror.cpp.o.d"
  "/root/repo/src/pkg/package.cpp" "src/pkg/CMakeFiles/cia_pkg.dir/package.cpp.o" "gcc" "src/pkg/CMakeFiles/cia_pkg.dir/package.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cia_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/cia_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/cia_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cia_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/cia_tpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
