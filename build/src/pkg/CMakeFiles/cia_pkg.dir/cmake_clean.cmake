file(REMOVE_RECURSE
  "CMakeFiles/cia_pkg.dir/apt.cpp.o"
  "CMakeFiles/cia_pkg.dir/apt.cpp.o.d"
  "CMakeFiles/cia_pkg.dir/archive.cpp.o"
  "CMakeFiles/cia_pkg.dir/archive.cpp.o.d"
  "CMakeFiles/cia_pkg.dir/cost_model.cpp.o"
  "CMakeFiles/cia_pkg.dir/cost_model.cpp.o.d"
  "CMakeFiles/cia_pkg.dir/mirror.cpp.o"
  "CMakeFiles/cia_pkg.dir/mirror.cpp.o.d"
  "CMakeFiles/cia_pkg.dir/package.cpp.o"
  "CMakeFiles/cia_pkg.dir/package.cpp.o.d"
  "libcia_pkg.a"
  "libcia_pkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_pkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
