# Empty compiler generated dependencies file for cia_pkg.
# This may be replaced when dependencies are built.
