file(REMOVE_RECURSE
  "libcia_pkg.a"
)
