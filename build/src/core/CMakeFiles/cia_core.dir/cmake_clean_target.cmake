file(REMOVE_RECURSE
  "libcia_core.a"
)
