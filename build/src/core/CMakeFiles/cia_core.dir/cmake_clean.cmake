file(REMOVE_RECURSE
  "CMakeFiles/cia_core.dir/policy_analyzer.cpp.o"
  "CMakeFiles/cia_core.dir/policy_analyzer.cpp.o.d"
  "CMakeFiles/cia_core.dir/policy_generator.cpp.o"
  "CMakeFiles/cia_core.dir/policy_generator.cpp.o.d"
  "CMakeFiles/cia_core.dir/update_orchestrator.cpp.o"
  "CMakeFiles/cia_core.dir/update_orchestrator.cpp.o.d"
  "libcia_core.a"
  "libcia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
