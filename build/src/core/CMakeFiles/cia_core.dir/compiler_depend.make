# Empty compiler generated dependencies file for cia_core.
# This may be replaced when dependencies are built.
