file(REMOVE_RECURSE
  "libcia_tpm.a"
)
