# Empty dependencies file for cia_tpm.
# This may be replaced when dependencies are built.
