file(REMOVE_RECURSE
  "CMakeFiles/cia_tpm.dir/tpm.cpp.o"
  "CMakeFiles/cia_tpm.dir/tpm.cpp.o.d"
  "libcia_tpm.a"
  "libcia_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
