file(REMOVE_RECURSE
  "CMakeFiles/cia_oskernel.dir/container.cpp.o"
  "CMakeFiles/cia_oskernel.dir/container.cpp.o.d"
  "CMakeFiles/cia_oskernel.dir/machine.cpp.o"
  "CMakeFiles/cia_oskernel.dir/machine.cpp.o.d"
  "libcia_oskernel.a"
  "libcia_oskernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_oskernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
