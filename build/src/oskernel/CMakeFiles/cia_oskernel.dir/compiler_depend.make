# Empty compiler generated dependencies file for cia_oskernel.
# This may be replaced when dependencies are built.
