file(REMOVE_RECURSE
  "libcia_oskernel.a"
)
