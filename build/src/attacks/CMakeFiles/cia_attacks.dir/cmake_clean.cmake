file(REMOVE_RECURSE
  "CMakeFiles/cia_attacks.dir/attack.cpp.o"
  "CMakeFiles/cia_attacks.dir/attack.cpp.o.d"
  "CMakeFiles/cia_attacks.dir/botnets.cpp.o"
  "CMakeFiles/cia_attacks.dir/botnets.cpp.o.d"
  "CMakeFiles/cia_attacks.dir/extended.cpp.o"
  "CMakeFiles/cia_attacks.dir/extended.cpp.o.d"
  "CMakeFiles/cia_attacks.dir/ransomware.cpp.o"
  "CMakeFiles/cia_attacks.dir/ransomware.cpp.o.d"
  "CMakeFiles/cia_attacks.dir/rootkits.cpp.o"
  "CMakeFiles/cia_attacks.dir/rootkits.cpp.o.d"
  "libcia_attacks.a"
  "libcia_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
