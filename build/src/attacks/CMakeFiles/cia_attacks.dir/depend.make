# Empty dependencies file for cia_attacks.
# This may be replaced when dependencies are built.
