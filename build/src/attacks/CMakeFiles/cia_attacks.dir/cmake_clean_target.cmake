file(REMOVE_RECURSE
  "libcia_attacks.a"
)
