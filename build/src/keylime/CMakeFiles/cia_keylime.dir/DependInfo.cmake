
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keylime/agent.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/agent.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/agent.cpp.o.d"
  "/root/repo/src/keylime/audit.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/audit.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/audit.cpp.o.d"
  "/root/repo/src/keylime/messages.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/messages.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/messages.cpp.o.d"
  "/root/repo/src/keylime/registrar.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/registrar.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/registrar.cpp.o.d"
  "/root/repo/src/keylime/runtime_policy.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/runtime_policy.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/runtime_policy.cpp.o.d"
  "/root/repo/src/keylime/scheduler.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/scheduler.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/scheduler.cpp.o.d"
  "/root/repo/src/keylime/tenant.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/tenant.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/tenant.cpp.o.d"
  "/root/repo/src/keylime/verifier.cpp" "src/keylime/CMakeFiles/cia_keylime.dir/verifier.cpp.o" "gcc" "src/keylime/CMakeFiles/cia_keylime.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cia_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cia_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/cia_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/cia_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/cia_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cia_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
