file(REMOVE_RECURSE
  "libcia_keylime.a"
)
