# Empty dependencies file for cia_keylime.
# This may be replaced when dependencies are built.
