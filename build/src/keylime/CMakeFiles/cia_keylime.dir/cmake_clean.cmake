file(REMOVE_RECURSE
  "CMakeFiles/cia_keylime.dir/agent.cpp.o"
  "CMakeFiles/cia_keylime.dir/agent.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/audit.cpp.o"
  "CMakeFiles/cia_keylime.dir/audit.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/messages.cpp.o"
  "CMakeFiles/cia_keylime.dir/messages.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/registrar.cpp.o"
  "CMakeFiles/cia_keylime.dir/registrar.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/runtime_policy.cpp.o"
  "CMakeFiles/cia_keylime.dir/runtime_policy.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/scheduler.cpp.o"
  "CMakeFiles/cia_keylime.dir/scheduler.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/tenant.cpp.o"
  "CMakeFiles/cia_keylime.dir/tenant.cpp.o.d"
  "CMakeFiles/cia_keylime.dir/verifier.cpp.o"
  "CMakeFiles/cia_keylime.dir/verifier.cpp.o.d"
  "libcia_keylime.a"
  "libcia_keylime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_keylime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
