file(REMOVE_RECURSE
  "CMakeFiles/cia_experiments.dir/chaos_experiment.cpp.o"
  "CMakeFiles/cia_experiments.dir/chaos_experiment.cpp.o.d"
  "CMakeFiles/cia_experiments.dir/fleet_experiment.cpp.o"
  "CMakeFiles/cia_experiments.dir/fleet_experiment.cpp.o.d"
  "CMakeFiles/cia_experiments.dir/fn_experiment.cpp.o"
  "CMakeFiles/cia_experiments.dir/fn_experiment.cpp.o.d"
  "CMakeFiles/cia_experiments.dir/fp_experiment.cpp.o"
  "CMakeFiles/cia_experiments.dir/fp_experiment.cpp.o.d"
  "CMakeFiles/cia_experiments.dir/report.cpp.o"
  "CMakeFiles/cia_experiments.dir/report.cpp.o.d"
  "CMakeFiles/cia_experiments.dir/testbed.cpp.o"
  "CMakeFiles/cia_experiments.dir/testbed.cpp.o.d"
  "CMakeFiles/cia_experiments.dir/workload.cpp.o"
  "CMakeFiles/cia_experiments.dir/workload.cpp.o.d"
  "libcia_experiments.a"
  "libcia_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
