# Empty compiler generated dependencies file for cia_experiments.
# This may be replaced when dependencies are built.
