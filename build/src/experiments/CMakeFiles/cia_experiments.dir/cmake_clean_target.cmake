file(REMOVE_RECURSE
  "libcia_experiments.a"
)
