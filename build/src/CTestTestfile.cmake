# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("vfs")
subdirs("ima")
subdirs("tpm")
subdirs("oskernel")
subdirs("netsim")
subdirs("pkg")
subdirs("keylime")
subdirs("core")
subdirs("attacks")
subdirs("experiments")
