# Empty compiler generated dependencies file for cia_crypto.
# This may be replaced when dependencies are built.
