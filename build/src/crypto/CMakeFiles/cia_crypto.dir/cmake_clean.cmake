file(REMOVE_RECURSE
  "CMakeFiles/cia_crypto.dir/cert.cpp.o"
  "CMakeFiles/cia_crypto.dir/cert.cpp.o.d"
  "CMakeFiles/cia_crypto.dir/hmac.cpp.o"
  "CMakeFiles/cia_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/cia_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/cia_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/cia_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/cia_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/cia_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cia_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/cia_crypto.dir/u256.cpp.o"
  "CMakeFiles/cia_crypto.dir/u256.cpp.o.d"
  "libcia_crypto.a"
  "libcia_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
