file(REMOVE_RECURSE
  "libcia_crypto.a"
)
