file(REMOVE_RECURSE
  "CMakeFiles/cia_netsim.dir/network.cpp.o"
  "CMakeFiles/cia_netsim.dir/network.cpp.o.d"
  "CMakeFiles/cia_netsim.dir/transport.cpp.o"
  "CMakeFiles/cia_netsim.dir/transport.cpp.o.d"
  "CMakeFiles/cia_netsim.dir/wire.cpp.o"
  "CMakeFiles/cia_netsim.dir/wire.cpp.o.d"
  "libcia_netsim.a"
  "libcia_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
