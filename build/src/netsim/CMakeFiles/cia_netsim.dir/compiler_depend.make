# Empty compiler generated dependencies file for cia_netsim.
# This may be replaced when dependencies are built.
