
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/network.cpp" "src/netsim/CMakeFiles/cia_netsim.dir/network.cpp.o" "gcc" "src/netsim/CMakeFiles/cia_netsim.dir/network.cpp.o.d"
  "/root/repo/src/netsim/transport.cpp" "src/netsim/CMakeFiles/cia_netsim.dir/transport.cpp.o" "gcc" "src/netsim/CMakeFiles/cia_netsim.dir/transport.cpp.o.d"
  "/root/repo/src/netsim/wire.cpp" "src/netsim/CMakeFiles/cia_netsim.dir/wire.cpp.o" "gcc" "src/netsim/CMakeFiles/cia_netsim.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cia_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
