file(REMOVE_RECURSE
  "libcia_netsim.a"
)
