file(REMOVE_RECURSE
  "CMakeFiles/cia_vfs.dir/vfs.cpp.o"
  "CMakeFiles/cia_vfs.dir/vfs.cpp.o.d"
  "libcia_vfs.a"
  "libcia_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
