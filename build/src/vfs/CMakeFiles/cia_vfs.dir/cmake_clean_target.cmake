file(REMOVE_RECURSE
  "libcia_vfs.a"
)
