# Empty compiler generated dependencies file for cia_vfs.
# This may be replaced when dependencies are built.
