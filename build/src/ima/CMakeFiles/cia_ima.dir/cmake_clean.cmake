file(REMOVE_RECURSE
  "CMakeFiles/cia_ima.dir/ima.cpp.o"
  "CMakeFiles/cia_ima.dir/ima.cpp.o.d"
  "CMakeFiles/cia_ima.dir/ima_policy.cpp.o"
  "CMakeFiles/cia_ima.dir/ima_policy.cpp.o.d"
  "libcia_ima.a"
  "libcia_ima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
