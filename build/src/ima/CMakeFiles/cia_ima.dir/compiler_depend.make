# Empty compiler generated dependencies file for cia_ima.
# This may be replaced when dependencies are built.
