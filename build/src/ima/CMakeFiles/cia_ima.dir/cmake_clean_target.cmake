file(REMOVE_RECURSE
  "libcia_ima.a"
)
