# Empty compiler generated dependencies file for cia_common.
# This may be replaced when dependencies are built.
