file(REMOVE_RECURSE
  "CMakeFiles/cia_common.dir/hex.cpp.o"
  "CMakeFiles/cia_common.dir/hex.cpp.o.d"
  "CMakeFiles/cia_common.dir/json.cpp.o"
  "CMakeFiles/cia_common.dir/json.cpp.o.d"
  "CMakeFiles/cia_common.dir/log.cpp.o"
  "CMakeFiles/cia_common.dir/log.cpp.o.d"
  "CMakeFiles/cia_common.dir/rng.cpp.o"
  "CMakeFiles/cia_common.dir/rng.cpp.o.d"
  "CMakeFiles/cia_common.dir/sim_clock.cpp.o"
  "CMakeFiles/cia_common.dir/sim_clock.cpp.o.d"
  "CMakeFiles/cia_common.dir/stats.cpp.o"
  "CMakeFiles/cia_common.dir/stats.cpp.o.d"
  "CMakeFiles/cia_common.dir/strutil.cpp.o"
  "CMakeFiles/cia_common.dir/strutil.cpp.o.d"
  "libcia_common.a"
  "libcia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cia_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
