file(REMOVE_RECURSE
  "libcia_common.a"
)
