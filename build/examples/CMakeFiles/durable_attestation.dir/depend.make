# Empty dependencies file for durable_attestation.
# This may be replaced when dependencies are built.
