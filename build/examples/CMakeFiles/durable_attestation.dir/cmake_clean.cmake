file(REMOVE_RECURSE
  "CMakeFiles/durable_attestation.dir/durable_attestation.cpp.o"
  "CMakeFiles/durable_attestation.dir/durable_attestation.cpp.o.d"
  "durable_attestation"
  "durable_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
