file(REMOVE_RECURSE
  "CMakeFiles/dynamic_policy_demo.dir/dynamic_policy_demo.cpp.o"
  "CMakeFiles/dynamic_policy_demo.dir/dynamic_policy_demo.cpp.o.d"
  "dynamic_policy_demo"
  "dynamic_policy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_policy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
