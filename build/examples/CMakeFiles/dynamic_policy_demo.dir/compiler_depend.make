# Empty compiler generated dependencies file for dynamic_policy_demo.
# This may be replaced when dependencies are built.
