# Empty compiler generated dependencies file for cia_tests.
# This may be replaced when dependencies are built.
