
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/appraisal_test.cpp" "tests/CMakeFiles/cia_tests.dir/appraisal_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/appraisal_test.cpp.o.d"
  "/root/repo/tests/attacks_test.cpp" "tests/CMakeFiles/cia_tests.dir/attacks_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/attacks_test.cpp.o.d"
  "/root/repo/tests/audit_test.cpp" "tests/CMakeFiles/cia_tests.dir/audit_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/audit_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/cia_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/container_test.cpp" "tests/CMakeFiles/cia_tests.dir/container_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/container_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/cia_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/cia_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/experiments_test.cpp" "tests/CMakeFiles/cia_tests.dir/experiments_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/experiments_test.cpp.o.d"
  "/root/repo/tests/ima_test.cpp" "tests/CMakeFiles/cia_tests.dir/ima_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/ima_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/cia_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/keylime_test.cpp" "tests/CMakeFiles/cia_tests.dir/keylime_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/keylime_test.cpp.o.d"
  "/root/repo/tests/machine_test.cpp" "tests/CMakeFiles/cia_tests.dir/machine_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/machine_test.cpp.o.d"
  "/root/repo/tests/measured_boot_test.cpp" "tests/CMakeFiles/cia_tests.dir/measured_boot_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/measured_boot_test.cpp.o.d"
  "/root/repo/tests/messages_test.cpp" "tests/CMakeFiles/cia_tests.dir/messages_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/messages_test.cpp.o.d"
  "/root/repo/tests/netsim_test.cpp" "tests/CMakeFiles/cia_tests.dir/netsim_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/netsim_test.cpp.o.d"
  "/root/repo/tests/pkg_test.cpp" "tests/CMakeFiles/cia_tests.dir/pkg_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/pkg_test.cpp.o.d"
  "/root/repo/tests/problems_test.cpp" "tests/CMakeFiles/cia_tests.dir/problems_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/problems_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/cia_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/cia_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/cia_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/tpm_test.cpp" "tests/CMakeFiles/cia_tests.dir/tpm_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/tpm_test.cpp.o.d"
  "/root/repo/tests/u256_property_test.cpp" "tests/CMakeFiles/cia_tests.dir/u256_property_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/u256_property_test.cpp.o.d"
  "/root/repo/tests/vfs_test.cpp" "tests/CMakeFiles/cia_tests.dir/vfs_test.cpp.o" "gcc" "tests/CMakeFiles/cia_tests.dir/vfs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/cia_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/cia_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/keylime/CMakeFiles/cia_keylime.dir/DependInfo.cmake"
  "/root/repo/build/src/pkg/CMakeFiles/cia_pkg.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cia_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/cia_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/cia_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/cia_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cia_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cia_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
