#include "testkit/fuzzer.hpp"

#include <algorithm>

#include "testkit/shrink.hpp"

namespace cia::testkit {

Fuzzer::Fuzzer(FuzzTarget target, FuzzOptions options)
    : target_(std::move(target)),
      options_(options),
      mutator_(options.seed,
               MutatorOptions{options.max_input, target_.dictionary}) {}

void Fuzzer::add_seed(Bytes data) {
  if (data.size() > options_.max_input) data.resize(options_.max_input);
  pool_.push_back(std::move(data));
}

FuzzOutcome Fuzzer::execute(const Bytes& input, FuzzReport& report) {
  const FuzzOutcome outcome = target_.run(input);
  switch (outcome.verdict) {
    case FuzzVerdict::kAccepted: ++report.accepted; break;
    case FuzzVerdict::kRejected: ++report.rejected; break;
    case FuzzVerdict::kViolation: {
      ++report.violations;
      if (!report.first_violation) {
        report.first_violation_detail = outcome.detail;
        report.first_violation_original_size = input.size();
        Bytes minimized = input;
        if (options_.shrink) {
          minimized = shrink(
              minimized,
              [this](const Bytes& candidate) {
                return target_.run(candidate).verdict ==
                       FuzzVerdict::kViolation;
              },
              options_.shrink_attempts);
          // Report the detail of the *minimized* case — shrinking may
          // have walked to a different (smaller) manifestation.
          report.first_violation_detail = target_.run(minimized).detail;
        }
        report.first_violation = std::move(minimized);
      }
      break;
    }
  }
  return outcome;
}

FuzzReport Fuzzer::run() {
  FuzzReport report;
  report.target = target_.name;
  report.seeds = pool_.size();

  // Replay every seed verbatim first: regressions and corpus entries
  // must hold before mutation explores around them.
  for (const Bytes& seed : pool_) {
    ++report.iterations;
    (void)execute(seed, report);
  }

  Rng& rng = mutator_.rng();
  for (std::uint64_t i = 0; i < options_.iterations; ++i) {
    ++report.iterations;
    Bytes input;
    const std::uint64_t source = rng.uniform(10);
    if (target_.generate && (pool_.empty() || source < 3)) {
      // Fresh structured seed; mutate it half the time.
      input = target_.generate(rng);
      if (rng.chance(0.5)) input = mutator_.mutate(input);
    } else if (pool_.size() >= 2 && source == 3) {
      const Bytes& a = pool_[rng.uniform(pool_.size())];
      const Bytes& b = pool_[rng.uniform(pool_.size())];
      input = mutator_.splice(a, b);
    } else if (!pool_.empty()) {
      input = mutator_.mutate(pool_[rng.uniform(pool_.size())]);
    } else {
      input = mutator_.mutate(Bytes{});
    }

    const FuzzOutcome outcome = execute(input, report);
    // Accepted mutants are interesting: they sit just inside the grammar,
    // so keep them as future mutation bases (bounded reservoir).
    if (outcome.verdict == FuzzVerdict::kAccepted &&
        pool_.size() < options_.max_pool) {
      pool_.push_back(std::move(input));
    }
  }
  return report;
}

}  // namespace cia::testkit
