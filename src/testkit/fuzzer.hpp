// The corpus-driven fuzz loop.
//
// A FuzzTarget wraps one untrusted parse surface behind a uniform
// contract: for any input bytes the target must return kAccepted (parsed,
// and every downstream invariant — typically a parse/serialize round
// trip — held), kRejected (a clean Result error), or kViolation (the
// contract broke: round-trip divergence, unexpected accept, internal
// inconsistency). Crashes and sanitizer aborts are the fourth outcome;
// they kill the process, which is exactly the signal CI needs.
//
// The Fuzzer interleaves three input sources each iteration: a mutated
// corpus/pool pick, a structurally generated seed (when the target has a
// generator), and occasional splices of two pool members. Everything
// derives from one Rng, so a (target, seed, iterations) triple replays
// byte-for-byte. On the first violation the input is greedily shrunk
// against the same target before being reported.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "testkit/mutator.hpp"

namespace cia::testkit {

enum class FuzzVerdict {
  kAccepted,   // parsed; downstream contract held
  kRejected,   // clean, recoverable error
  kViolation,  // contract broken — this is a finding
};

struct FuzzOutcome {
  FuzzVerdict verdict = FuzzVerdict::kAccepted;
  std::string detail;  // set for violations

  static FuzzOutcome accepted() { return {FuzzVerdict::kAccepted, {}}; }
  static FuzzOutcome rejected() { return {FuzzVerdict::kRejected, {}}; }
  static FuzzOutcome violation(std::string detail) {
    return {FuzzVerdict::kViolation, std::move(detail)};
  }
};

struct FuzzTarget {
  std::string name;
  /// The contract under test. Must be deterministic and side-effect free
  /// across calls (the shrinker re-invokes it thousands of times).
  std::function<FuzzOutcome(const Bytes&)> run;
  /// Optional structured seed source (fresh valid inputs each call).
  std::function<Bytes(Rng&)> generate;
  /// Format keywords for the mutator's dictionary strategy.
  std::vector<std::string> dictionary;
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 1000;
  std::size_t max_input = 1 << 14;
  bool shrink = true;
  std::size_t shrink_attempts = 4000;
  /// Keep at most this many interesting inputs in the live pool.
  std::size_t max_pool = 256;
};

struct FuzzReport {
  std::string target;
  std::uint64_t iterations = 0;
  std::uint64_t seeds = 0;       // corpus entries loaded
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t violations = 0;  // total violating executions
  std::optional<Bytes> first_violation;  // minimized when shrink is on
  std::string first_violation_detail;
  std::size_t first_violation_original_size = 0;

  bool clean() const { return violations == 0; }
};

class Fuzzer {
 public:
  Fuzzer(FuzzTarget target, FuzzOptions options);

  /// Add a corpus seed (replayed once up front, then mutated).
  void add_seed(Bytes data);

  /// Replay seeds, then run `options.iterations` mutation rounds.
  FuzzReport run();

 private:
  FuzzOutcome execute(const Bytes& input, FuzzReport& report);

  FuzzTarget target_;
  FuzzOptions options_;
  ByteMutator mutator_;
  std::vector<Bytes> pool_;
};

}  // namespace cia::testkit
