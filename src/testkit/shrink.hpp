// Greedy input minimization for failing fuzz cases.
//
// Given a failing input and a predicate that re-runs the target, the
// shrinker repeatedly tries structurally smaller candidates — drop a
// chunk (halves first, then smaller windows), then simplify surviving
// bytes toward '0' — keeping any candidate that still fails. The loop is
// deterministic (no randomness) and bounded by `max_attempts`, so a
// minimized reproducer is stable enough to commit under
// tests/corpus/regressions/ and replay forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace cia::testkit {

struct ShrinkStats {
  std::size_t attempts = 0;      // candidate executions
  std::size_t improvements = 0;  // candidates that kept failing
};

/// Minimize `input` while `still_failing` holds. The predicate is only
/// trusted on candidates; `input` itself is assumed failing.
Bytes shrink(Bytes input, const std::function<bool(const Bytes&)>& still_failing,
             std::size_t max_attempts = 4000, ShrinkStats* stats = nullptr);

/// Text convenience wrapper.
std::string shrink_text(
    const std::string& input,
    const std::function<bool(const std::string&)>& still_failing,
    std::size_t max_attempts = 4000, ShrinkStats* stats = nullptr);

}  // namespace cia::testkit
