#include "testkit/shrink.hpp"

#include <algorithm>

namespace cia::testkit {

Bytes shrink(Bytes input, const std::function<bool(const Bytes&)>& still_failing,
             std::size_t max_attempts, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& s = stats ? *stats : local;

  const auto try_candidate = [&](const Bytes& candidate) {
    if (s.attempts >= max_attempts) return false;
    ++s.attempts;
    if (still_failing(candidate)) {
      ++s.improvements;
      return true;
    }
    return false;
  };

  // Phase 1: chunk removal, window size halving from n/2 down to 1.
  bool progress = true;
  while (progress && s.attempts < max_attempts) {
    progress = false;
    for (std::size_t window = std::max<std::size_t>(input.size() / 2, 1);
         window >= 1; window /= 2) {
      for (std::size_t start = 0;
           start < input.size() && s.attempts < max_attempts;) {
        const std::size_t len = std::min(window, input.size() - start);
        Bytes candidate;
        candidate.reserve(input.size() - len);
        candidate.insert(candidate.end(), input.begin(),
                         input.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(
            candidate.end(),
            input.begin() + static_cast<std::ptrdiff_t>(start + len),
            input.end());
        if (try_candidate(candidate)) {
          input = std::move(candidate);
          progress = true;
          // Do not advance: the next chunk slid into this position.
        } else {
          start += window;
        }
      }
      if (window == 1) break;
    }
  }

  // Phase 2: byte simplification toward canonical fillers.
  static const std::uint8_t kFillers[] = {'0', 'a', ' ', 0};
  for (std::size_t i = 0; i < input.size() && s.attempts < max_attempts; ++i) {
    for (std::uint8_t filler : kFillers) {
      if (input[i] == filler) break;
      Bytes candidate = input;
      candidate[i] = filler;
      if (try_candidate(candidate)) {
        input = std::move(candidate);
        break;
      }
    }
  }
  return input;
}

std::string shrink_text(
    const std::string& input,
    const std::function<bool(const std::string&)>& still_failing,
    std::size_t max_attempts, ShrinkStats* stats) {
  const Bytes minimized = shrink(
      to_bytes(input),
      [&](const Bytes& candidate) { return still_failing(to_string(candidate)); },
      max_attempts, stats);
  return to_string(minimized);
}

}  // namespace cia::testkit
