#include "testkit/generators.hpp"

#include <algorithm>

#include "common/hex.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "tpm/tpm.hpp"

namespace cia::testkit {

namespace {

crypto::Digest gen_digest(Rng& rng) {
  crypto::Digest d;
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.uniform(256));
  return d;
}

std::string gen_component(Rng& rng) {
  switch (rng.uniform(8)) {
    case 0: return rng.ident(1 + rng.uniform(12));
    case 1: return rng.ident(3) + " " + rng.ident(3);  // embedded space
    case 2: return rng.ident(2) + "." + rng.ident(2);
    case 3: return "..";
    case 4: return std::string(1 + rng.uniform(3), '.');
    case 5: {
      // Raw high bytes — a non-UTF8 filename, perfectly legal on ext4.
      std::string s = rng.ident(2);
      s.push_back(static_cast<char>(0x80 + rng.uniform(0x7f)));
      return s;
    }
    case 6: return rng.ident(40 + rng.uniform(80));  // long component
    default: return rng.ident(4);
  }
}

}  // namespace

std::string gen_path(Rng& rng) {
  switch (rng.uniform(10)) {
    case 0:  // ordinary host binary
      return "/usr/bin/" + gen_component(rng);
    case 1:  // P1: /tmp payloads hidden by the exclude glob
      return "/tmp/" + gen_component(rng);
    case 2:  // P3: tmpfs mounts the stock IMA policy skips
      return "/dev/shm/" + gen_component(rng);
    case 3: {
      // §III-B SNAP: what a host-side scan records...
      return "/snap/" + rng.ident(4) + "/" + std::to_string(rng.uniform(100)) +
             "/usr/bin/" + gen_component(rng);
    }
    case 4:
      // ...vs the namespace-truncated path IMA actually logs.
      return "/usr/bin/" + gen_component(rng);
    case 5:  // container rootfs-relative path (generalized SNAP case)
      return "/" + rng.ident(3) + "/" + gen_component(rng);
    case 6:  // P5: interpreter script
      return "/home/" + rng.ident(4) + "/" + gen_component(rng) + ".py";
    case 7:  // P4: post-rename destination
      return "/moved/" + gen_component(rng);
    case 8: {
      // Deep nesting.
      std::string p;
      const std::size_t depth = 4 + rng.uniform(12);
      for (std::size_t i = 0; i < depth; ++i) p += "/" + rng.ident(2);
      return p;
    }
    default: {
      // Hostile shapes: repeated separators, trailing slash, dot-dots.
      std::string p = "/" + gen_component(rng);
      if (rng.chance(0.4)) p += "//" + gen_component(rng);
      if (rng.chance(0.3)) p += "/../" + gen_component(rng);
      if (rng.chance(0.2)) p += "/";
      return p;
    }
  }
}

ima::LogEntry gen_log_entry(Rng& rng) {
  ima::LogEntry e;
  e.pcr = rng.chance(0.9) ? tpm::kImaPcr
                          : static_cast<int>(rng.uniform(tpm::kNumPcrs));
  e.template_name = rng.chance(0.9) ? "ima-ng" : rng.ident(1 + rng.uniform(8));
  e.file_hash = gen_digest(rng);
  e.path = gen_path(rng);
  // Template hash the way Ima::measure computes it, so generated lists
  // are indistinguishable from organically measured ones.
  crypto::Sha256 ctx;
  ctx.update(crypto::digest_bytes(e.file_hash));
  ctx.update(e.path);
  e.template_hash = ctx.finish();
  return e;
}

std::vector<ima::LogEntry> gen_log(Rng& rng, std::size_t n) {
  std::vector<ima::LogEntry> log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) log.push_back(gen_log_entry(rng));
  return log;
}

json::Value gen_json(Rng& rng, int max_depth) {
  if (max_depth <= 0 || rng.chance(0.35)) {
    // Leaf.
    switch (rng.uniform(6)) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(rng.chance(0.5));
      case 2: {
        // Boundary-heavy numbers (all finite — the parser rejects inf).
        static const double kPool[] = {0.0,    -0.0,   1.0,     -1.0,
                                       0.5,    1e-9,   1e15,    -1e15,
                                       1e300,  -1e300, 2147483647.0,
                                       -2147483648.0,  1e15 - 1};
        return json::Value(rng.chance(0.5)
                               ? kPool[rng.uniform(13)]
                               : static_cast<double>(rng.uniform_range(
                                     -1000000, 1000000)));
      }
      case 3: {
        // Escape-heavy string.
        std::string s;
        const std::size_t len = rng.uniform(24);
        for (std::size_t i = 0; i < len; ++i) {
          switch (rng.uniform(8)) {
            case 0: s.push_back('"'); break;
            case 1: s.push_back('\\'); break;
            case 2: s.push_back('\n'); break;
            case 3: s.push_back('\t'); break;
            case 4: s.push_back(static_cast<char>(rng.uniform(0x20))); break;
            case 5: s.push_back(static_cast<char>(0x80 + rng.uniform(0x7f))); break;
            default: s.push_back(static_cast<char>(0x20 + rng.uniform(0x5f)));
          }
        }
        return json::Value(std::move(s));
      }
      case 4: return json::Value(gen_path(rng));
      default: return json::Value(rng.ident(1 + rng.uniform(8)));
    }
  }
  if (rng.chance(0.5)) {
    json::Array arr;
    const std::size_t n = rng.uniform(5);
    for (std::size_t i = 0; i < n; ++i) {
      arr.push_back(gen_json(rng, max_depth - 1));
    }
    return json::Value(std::move(arr));
  }
  json::Object obj;
  const std::size_t n = rng.uniform(5);
  for (std::size_t i = 0; i < n; ++i) {
    obj[rng.ident(1 + rng.uniform(6))] = gen_json(rng, max_depth - 1);
  }
  return json::Value(std::move(obj));
}

keylime::RuntimePolicy gen_policy(Rng& rng, std::size_t max_paths) {
  keylime::RuntimePolicy policy;
  const std::size_t paths = 1 + rng.uniform(std::max<std::size_t>(1, max_paths));
  for (std::size_t i = 0; i < paths; ++i) {
    const std::string path = gen_path(rng);
    const std::size_t hashes = 1 + rng.uniform(4);
    for (std::size_t j = 0; j < hashes; ++j) {
      policy.allow(path, to_hex(rng.bytes(32)));
    }
  }
  const std::size_t globs = rng.uniform(4);
  for (std::size_t i = 0; i < globs; ++i) {
    switch (rng.uniform(4)) {
      case 0: policy.exclude("/tmp/*"); break;
      case 1: policy.exclude("/" + rng.ident(3) + "/*"); break;
      case 2: policy.exclude("*." + rng.ident(2)); break;
      default: policy.exclude("/?" + rng.ident(2) + "*/" + rng.ident(2)); break;
    }
  }
  return policy;
}

keylime::QuoteResponse gen_quote_response(Rng& rng, std::size_t entries) {
  keylime::QuoteResponse resp;
  resp.quote.device_id = "dev-" + rng.ident(4);
  resp.quote.nonce = rng.bytes(16);
  for (int pcr : {0, 4, 7, tpm::kImaPcr}) {
    resp.quote.pcr_indices.push_back(pcr);
    resp.quote.pcr_values.push_back(gen_digest(rng));
  }
  const auto ak = crypto::derive_keypair(rng.bytes(32), "testkit-ak");
  resp.quote.signature = crypto::sign(ak, resp.quote.attested_message());
  resp.entries = gen_log(rng, entries);
  resp.total_log_length = entries + rng.uniform(8);
  resp.boot_count = static_cast<std::uint32_t>(1 + rng.uniform(4));
  return resp;
}

Bytes gen_wire_frame(Rng& rng) {
  switch (rng.uniform(8)) {
    case 0: {
      keylime::RegisterRequest m;
      m.agent_id = rng.ident(1 + rng.uniform(12));
      m.ek_cert = rng.bytes(rng.uniform(128));
      m.ak_pub = rng.bytes(64);
      return m.encode();
    }
    case 1: {
      keylime::RegisterChallenge m;
      m.blob.ephemeral_pub = rng.bytes(64);
      m.blob.encrypted = rng.bytes(32);
      m.blob.mac = rng.bytes(32);
      m.blob.ak_name = rng.ident(8);
      return m.encode();
    }
    case 2: {
      keylime::ActivateRequest m;
      m.agent_id = rng.ident(8);
      m.proof = rng.bytes(32);
      return m.encode();
    }
    case 3: {
      keylime::GetAgentRequest m;
      m.agent_id = rng.ident(8);
      return m.encode();
    }
    case 4: {
      keylime::GetAgentResponse m;
      m.active = rng.chance(0.5);
      m.ak_pub = rng.bytes(64);
      return m.encode();
    }
    case 5: {
      keylime::QuoteRequest m;
      m.nonce = rng.bytes(16);
      m.log_offset = rng.uniform(1 << 20);
      return m.encode();
    }
    case 6: {
      keylime::BootLogResponse m;
      const std::size_t n = rng.uniform(6);
      for (std::size_t i = 0; i < n; ++i) {
        oskernel::BootEvent e;
        e.pcr = static_cast<int>(rng.uniform(8));
        e.description = rng.ident(1 + rng.uniform(16));
        e.digest = gen_digest(rng);
        m.events.push_back(std::move(e));
      }
      return m.encode();
    }
    default:
      return gen_quote_response(rng, rng.uniform(6)).encode();
  }
}

json::Value gen_scenario(Rng& rng) {
  static const char* kKinds[] = {"chaos", "churn", "storm", "fleet", "attacks"};
  static const char* kScripts[] = {"wan-loss",         "agent-crash-loop",
                                   "verifier-restart", "registrar-outage",
                                   "mirror-partition", "flaky-window"};
  const std::string kind = kKinds[rng.uniform(5)];

  json::Value doc;
  doc.set("version", 1);
  doc.set("name", rng.ident(3 + rng.uniform(10)));
  doc.set("kind", kind);
  if (rng.chance(0.8)) {
    doc.set("seed", static_cast<std::int64_t>(rng.uniform(1u << 20)));
  }

  // Fleet-backed kinds share the topology and fault sections. Optional
  // fields are emitted probabilistically so defaulting paths stay hot.
  const bool fleet_backed = kind == "storm" || kind == "churn" || kind == "fleet";
  const std::int64_t binaries = 2 + static_cast<std::int64_t>(rng.uniform(40));
  if (fleet_backed && rng.chance(0.8)) {
    json::Value fleet;
    fleet.set("agents", static_cast<std::int64_t>(1 + rng.uniform(200)));
    fleet.set("shards", static_cast<std::int64_t>(1 + rng.uniform(12)));
    if (rng.chance(0.5)) fleet.set("binaries_per_machine", binaries);
    if (rng.chance(0.5)) {
      fleet.set("execs_per_round", static_cast<std::int64_t>(1 + rng.uniform(8)));
    }
    // Storm forbids an explicit `true` (retry backoff breaks the
    // partition-invariance contract); the other kinds take either.
    if (kind == "storm") {
      if (rng.chance(0.5)) fleet.set("retrying_transport", false);
    } else if (rng.chance(0.5)) {
      fleet.set("retrying_transport", rng.chance(0.5));
    }
    doc.set("fleet", std::move(fleet));
  }
  if (fleet_backed && rng.chance(0.6)) {
    // Start from an explicit empty object: every field below is
    // optional, and a fieldless `faults` must still be `{}`, not null.
    json::Value faults{json::Object{}};
    if (rng.chance(0.7)) faults.set("drop_rate", rng.uniform01() * 0.3);
    // Storm allows drop faults only; elsewhere timeouts need a latency.
    if (kind != "storm" && rng.chance(0.4)) {
      faults.set("timeout_rate", 0.01 + rng.uniform01() * 0.2);
      faults.set("timeout_latency", static_cast<std::int64_t>(1 + rng.uniform(120)));
    }
    if (kind != "storm" && rng.chance(0.3)) {
      faults.set("duplicate_rate", rng.uniform01() * 0.2);
    }
    doc.set("faults", std::move(faults));
  }

  if (kind == "storm") {
    const std::int64_t storm_rounds = 1 + static_cast<std::int64_t>(rng.uniform(12));
    json::Value storm;
    if (rng.chance(0.7)) {
      storm.set("warmup_rounds", static_cast<std::int64_t>(rng.uniform(4)));
    }
    storm.set("storm_rounds", storm_rounds);
    if (rng.chance(0.6)) {
      storm.set("round_period", static_cast<std::int64_t>(10 + rng.uniform(600)));
    }
    // Stay under binaries_per_machine whether or not fleet emitted it:
    // the default (24) is >= the generated range's floor of 2.
    storm.set("bad_paths", static_cast<std::int64_t>(
                               1 + rng.uniform(static_cast<std::uint64_t>(
                                       std::min<std::int64_t>(binaries, 4)))));
    if (rng.chance(0.3)) {
      json::Value pipeline;
      pipeline.set("cooldown", static_cast<std::int64_t>(60 + rng.uniform(600)));
      pipeline.set("quiet_close",
                   static_cast<std::int64_t>(300 + rng.uniform(1800)));
      if (rng.chance(0.5)) {
        pipeline.set("staleness_after", static_cast<std::int64_t>(rng.uniform(6)));
      }
      storm.set("pipeline", std::move(pipeline));
    }
    doc.set("storm", std::move(storm));
    if (rng.chance(0.4)) {
      json::Value resizes{json::Array{}};
      json::Value ev;
      ev.set("round", static_cast<std::int64_t>(
                          rng.uniform(static_cast<std::uint64_t>(storm_rounds))));
      ev.set("shards", static_cast<std::int64_t>(1 + rng.uniform(12)));
      resizes.push_back(std::move(ev));
      doc.set("resize_at", std::move(resizes));
    }
    // Staged rollout: storms take any bake window (a rollback can trip
    // at any round boundary).
    if (rng.chance(0.3)) {
      json::Value rollout{json::Object{}};
      if (rng.chance(0.7)) {
        rollout.set("canary_fraction", 0.05 + rng.uniform01() * 0.9);
      }
      if (rng.chance(0.7)) {
        rollout.set("bake_rounds", static_cast<std::int64_t>(1 + rng.uniform(8)));
      }
      if (rng.chance(0.5)) {
        rollout.set("alert_budget", static_cast<std::int64_t>(rng.uniform(5)));
      }
      if (rng.chance(0.5)) {
        rollout.set("seed", static_cast<std::int64_t>(rng.uniform(1000)));
      }
      doc.set("policy_rollout", std::move(rollout));
    }
  } else if (kind == "churn") {
    const std::int64_t rounds = 1 + static_cast<std::int64_t>(rng.uniform(16));
    json::Value churn;
    churn.set("rounds", rounds);
    if (rng.chance(0.5)) {
      churn.set("round_period", static_cast<std::int64_t>(30 + rng.uniform(600)));
    }
    if (rng.chance(0.5)) {
      churn.set("max_joins_per_round", static_cast<std::int64_t>(rng.uniform(4)));
    }
    if (rng.chance(0.5)) {
      churn.set("max_leaves_per_round", static_cast<std::int64_t>(rng.uniform(4)));
    }
    if (rng.chance(0.5)) {
      churn.set("max_reboots_per_round", static_cast<std::int64_t>(rng.uniform(4)));
    }
    doc.set("churn", std::move(churn));
    if (rng.chance(0.5)) {
      json::Value resizes{json::Array{}};
      const std::size_t n = 1 + rng.uniform(2);
      for (std::size_t i = 0; i < n; ++i) {
        json::Value ev;
        ev.set("round", static_cast<std::int64_t>(
                            rng.uniform(static_cast<std::uint64_t>(rounds))));
        ev.set("shards", static_cast<std::int64_t>(1 + rng.uniform(12)));
        resizes.push_back(std::move(ev));
      }
      doc.set("resize_at", std::move(resizes));
    }
  } else if (kind == "chaos") {
    json::Value chaos;
    chaos.set("script", kScripts[rng.uniform(6)]);
    if (rng.chance(0.5)) {
      chaos.set("nodes", static_cast<std::int64_t>(1 + rng.uniform(16)));
    }
    if (rng.chance(0.5)) {
      chaos.set("days", static_cast<std::int64_t>(2 + rng.uniform(30)));
    }
    if (rng.chance(0.3)) chaos.set("retrying_transport", rng.chance(0.5));
    if (rng.chance(0.3)) {
      chaos.set("base_packages", static_cast<std::int64_t>(1 + rng.uniform(500)));
    }
    if (rng.chance(0.3)) {
      chaos.set("provision_extra", static_cast<std::int64_t>(rng.uniform(100)));
    }
    doc.set("chaos", std::move(chaos));
  } else if (kind == "fleet") {
    const std::int64_t rounds = 1 + static_cast<std::int64_t>(rng.uniform(20));
    json::Value fleet_run;
    fleet_run.set("rounds", rounds);
    doc.set("fleet_run", std::move(fleet_run));
    // The promote cross-check requires bake_rounds < rounds, so the
    // window is always emitted explicitly here (the default of 3 would
    // invalidate short runs).
    if (rounds >= 2 && rng.chance(0.3)) {
      json::Value rollout{json::Object{}};
      rollout.set("bake_rounds",
                  static_cast<std::int64_t>(
                      1 + rng.uniform(static_cast<std::uint64_t>(rounds - 1))));
      if (rng.chance(0.7)) {
        rollout.set("canary_fraction", 0.05 + rng.uniform01() * 0.9);
      }
      if (rng.chance(0.5)) {
        rollout.set("alert_budget", static_cast<std::int64_t>(rng.uniform(5)));
      }
      if (rng.chance(0.5)) {
        rollout.set("seed", static_cast<std::int64_t>(rng.uniform(1000)));
      }
      doc.set("policy_rollout", std::move(rollout));
    }
  } else {  // attacks
    json::Value attacks;
    attacks.set("archive_packages",
                static_cast<std::int64_t>(50 + rng.uniform(2000)));
    doc.set("attacks", std::move(attacks));
  }
  return doc;
}

}  // namespace cia::testkit
