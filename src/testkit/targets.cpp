#include "testkit/targets.hpp"

#include <memory>

#include "common/hex.hpp"
#include "common/json.hpp"
#include "crypto/cert.hpp"
#include "ima/ima.hpp"
#include "keylime/agent.hpp"
#include "keylime/alert_pipeline/incident.hpp"
#include "keylime/messages.hpp"
#include "keylime/migration.hpp"
#include "keylime/policy_store/store.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/export.hpp"
#include "testkit/generators.hpp"

namespace cia::testkit {

namespace {

// ------------------------------------------------------- ima_log_entry

FuzzOutcome run_ima_log_entry(const Bytes& input) {
  const std::string line = to_string(input);
  auto parsed = ima::LogEntry::parse(line);
  if (!parsed.ok()) return FuzzOutcome::rejected();
  const std::string rendered = parsed.value().to_string();
  auto reparsed = ima::LogEntry::parse(rendered);
  if (!reparsed.ok()) {
    return FuzzOutcome::violation("accepted line failed to re-parse: " +
                                  reparsed.error().to_string());
  }
  if (reparsed.value().to_string() != rendered) {
    return FuzzOutcome::violation("render/parse is not a fixed point");
  }
  return FuzzOutcome::accepted();
}

// ---------------------------------------------------------------- json

FuzzOutcome run_json(const Bytes& input) {
  auto parsed = json::parse(to_string(input));
  if (!parsed.ok()) return FuzzOutcome::rejected();
  const std::string compact = parsed.value().dump();
  auto reparsed = json::parse(compact);
  if (!reparsed.ok()) {
    return FuzzOutcome::violation("dump failed to re-parse: " +
                                  reparsed.error().to_string());
  }
  if (!(reparsed.value() == parsed.value())) {
    return FuzzOutcome::violation("dump/parse changed the value");
  }
  auto from_pretty = json::parse(parsed.value().pretty());
  if (!from_pretty.ok() || !(from_pretty.value() == parsed.value())) {
    return FuzzOutcome::violation("pretty/parse changed the value");
  }
  return FuzzOutcome::accepted();
}

// ------------------------------------------------------ runtime_policy

FuzzOutcome run_runtime_policy(const Bytes& input) {
  auto parsed = keylime::RuntimePolicy::parse(to_string(input));
  if (!parsed.ok()) return FuzzOutcome::rejected();
  const keylime::RuntimePolicy& policy = parsed.value();
  const std::string canonical = policy.serialize();
  auto reparsed = keylime::RuntimePolicy::parse(canonical);
  if (!reparsed.ok()) {
    return FuzzOutcome::violation("serialize failed to re-parse: " +
                                  reparsed.error().to_string());
  }
  if (reparsed.value().serialize() != canonical ||
      reparsed.value().entry_count() != policy.entry_count() ||
      reparsed.value().path_count() != policy.path_count()) {
    return FuzzOutcome::violation("serialize/parse is not a fixed point");
  }
  // The JSON representation must agree with the text one.
  auto from_json = keylime::RuntimePolicy::from_json(policy.to_json());
  if (!from_json.ok()) {
    return FuzzOutcome::violation("to_json failed to re-import: " +
                                  from_json.error().to_string());
  }
  if (from_json.value().serialize() != canonical) {
    return FuzzOutcome::violation("JSON round trip diverged from text form");
  }
  return FuzzOutcome::accepted();
}

// ---------------------------------------------------------------- wire

// Decode the input as every Keylime message; any acceptance must
// re-encode byte-identically (the format is canonical, so decode ∘
// encode is the identity on valid frames).
FuzzOutcome run_wire(const Bytes& input) {
  bool any_accepted = false;
  const auto check = [&](const char* what, const auto& decoded) -> std::string {
    if (!decoded.ok()) return {};
    any_accepted = true;
    if (decoded.value().encode() != input) {
      return std::string(what) + " re-encode diverged from input";
    }
    return {};
  };
  if (auto d = check("RegisterRequest", keylime::RegisterRequest::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d =
          check("RegisterChallenge", keylime::RegisterChallenge::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d = check("ActivateRequest", keylime::ActivateRequest::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d = check("GetAgentRequest", keylime::GetAgentRequest::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d =
          check("GetAgentResponse", keylime::GetAgentResponse::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d = check("QuoteRequest", keylime::QuoteRequest::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d = check("QuoteResponse", keylime::QuoteResponse::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  if (auto d = check("BootLogResponse", keylime::BootLogResponse::decode(input));
      !d.empty()) {
    return FuzzOutcome::violation(d);
  }
  return any_accepted ? FuzzOutcome::accepted() : FuzzOutcome::rejected();
}

// ---------------------------------------------------------- checkpoint

// Seed shared by the sample-checkpoint rig and the restoring verifiers:
// restore() refuses audit chains signed by a different key, so deep
// coverage needs the keys to line up.
constexpr std::uint64_t kCheckpointSeed = 0x5eedc1a0;

/// A minimal enrolled deployment used to mint genuine checkpoints.
struct CheckpointRig {
  SimClock clock;
  crypto::CertificateAuthority ca{"testkit-mfg", to_bytes("testkit-ca-seed")};
  netsim::SimNetwork network{&clock, 0x7357};
  keylime::Registrar registrar{&network, &clock, 0x7357 ^ 1};
  keylime::Verifier verifier{&network, &clock, kCheckpointSeed};
  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<keylime::Agent>> agents;

  CheckpointRig() {
    registrar.trust_manufacturer(ca.public_key());
    for (int i = 0; i < 2; ++i) {
      oskernel::MachineConfig cfg;
      cfg.hostname = "tk-node-" + std::to_string(i);
      cfg.seed = kCheckpointSeed + static_cast<std::uint64_t>(i);
      machines.push_back(std::make_unique<oskernel::Machine>(cfg, ca, &clock));
      agents.push_back(
          std::make_unique<keylime::Agent>(machines.back().get(), &network));
      if (!agents.back()->register_with(keylime::Registrar::address()).ok()) {
        continue;
      }
      (void)verifier.add_agent(cfg.hostname, agents.back()->address());
    }
  }

  void run_activity(bool tamper) {
    for (std::size_t i = 0; i < machines.size(); ++i) {
      auto& machine = *machines[i];
      for (int f = 0; f < 3; ++f) {
        const std::string path =
            "/usr/bin/tk" + std::to_string(i) + "-" + std::to_string(f);
        (void)machine.fs().create_file(path, to_bytes("elf:" + path), true);
        (void)machine.exec(path);
      }
      keylime::RuntimePolicy policy;
      for (const auto& entry : machine.ima().log()) {
        policy.allow(entry.path, entry.file_hash);
      }
      (void)verifier.set_policy(machine.hostname(), policy);
      (void)verifier.attest_once(machine.hostname());
      if (tamper && i == 0) {
        // Leave agent 0 FAILED with pending entries: the checkpoint then
        // covers the quarantine/pending branches of restore().
        const std::string mal = "/tmp/tk-implant";
        (void)machine.fs().create_file(mal, to_bytes("elf:implant"), true);
        (void)machine.exec(mal);
        (void)verifier.attest_once(machine.hostname());
      }
      clock.advance(60);
    }
  }
};

/// Genuine checkpoint documents, minted once: a fresh enrolment, a
/// healthy fleet, and a fleet with a failed agent.
const std::vector<Bytes>& sample_checkpoints() {
  static const std::vector<Bytes> kSamples = [] {
    std::vector<Bytes> samples;
    {
      CheckpointRig rig;
      samples.push_back(to_bytes(rig.verifier.checkpoint().dump()));
      rig.run_activity(/*tamper=*/false);
      samples.push_back(to_bytes(rig.verifier.checkpoint().dump()));
    }
    {
      CheckpointRig rig;
      rig.run_activity(/*tamper=*/true);
      samples.push_back(to_bytes(rig.verifier.checkpoint().dump()));
    }
    return samples;
  }();
  return kSamples;
}

FuzzOutcome run_checkpoint(const Bytes& input) {
  auto doc = json::parse(to_string(input));
  if (!doc.ok()) return FuzzOutcome::rejected();

  // One long-lived restore rig: restore() fully replaces agent and audit
  // state on success and leaves them untouched on failure, so reuse is
  // deterministic and saves a key derivation per execution.
  struct RestoreRig {
    SimClock clock;
    netsim::SimNetwork network{&clock, 1};
    keylime::Verifier primary{&network, &clock, kCheckpointSeed};
    keylime::Verifier secondary{&network, &clock, kCheckpointSeed};
  };
  static RestoreRig* rig = new RestoreRig();

  if (!rig->primary.restore(doc.value()).ok()) return FuzzOutcome::rejected();
  const std::string first = rig->primary.checkpoint().dump();
  auto first_doc = json::parse(first);
  if (!first_doc.ok()) {
    return FuzzOutcome::violation("checkpoint of restored state is not JSON");
  }
  if (!rig->secondary.restore(first_doc.value()).ok()) {
    return FuzzOutcome::violation(
        "checkpoint of restored state failed to restore");
  }
  if (rig->secondary.checkpoint().dump() != first) {
    return FuzzOutcome::violation("checkpoint/restore is not a fixed point");
  }
  return FuzzOutcome::accepted();
}

Bytes gen_checkpoint(Rng& rng) {
  const auto& samples = sample_checkpoints();
  return samples[rng.uniform(samples.size())];
}

// ----------------------------------------------------------- migration

/// Genuine handoff payloads, minted once from an enrolled rig: real
/// agent slices wrapped in real envelopes, the way a pool resize puts
/// them on the wire.
const std::vector<Bytes>& sample_handoffs() {
  static const std::vector<Bytes> kSamples = [] {
    std::vector<Bytes> samples;
    CheckpointRig rig;
    rig.run_activity(/*tamper=*/true);
    std::uint64_t shard = 0;
    for (const std::string& id : rig.verifier.agent_ids()) {
      auto slice = rig.verifier.export_agent(id);
      if (!slice.ok()) continue;
      keylime::HandoffPayload p;
      p.agent_id = id;
      p.source_shard = shard;
      p.dest_shard = shard + 1;
      p.agent_slice = slice.value();
      p.schedule.next_poll = 60 * (shard + 1);
      p.schedule.current_backoff = 30 * shard;
      p.schedule.polls = shard + 2;
      p.schedule.comms_failures = shard;
      samples.push_back(p.encode());
      ++shard;
    }
    return samples;
  }();
  return kSamples;
}

FuzzOutcome run_migration(const Bytes& input) {
  auto decoded = keylime::HandoffPayload::decode(input);
  if (!decoded.ok()) return FuzzOutcome::rejected();
  const keylime::HandoffPayload& p = decoded.value();

  // Accepted payloads must survive a canonical round trip.
  const Bytes wire = p.encode();
  auto redecoded = keylime::HandoffPayload::decode(wire);
  if (!redecoded.ok()) {
    return FuzzOutcome::violation("accepted payload failed to re-decode: " +
                                  redecoded.error().to_string());
  }
  if (redecoded.value().encode() != wire) {
    return FuzzOutcome::violation("encode/decode is not a fixed point");
  }

  // The receiving shard applies a decoded payload via import_agent, which
  // must be transactional: a rejected slice leaves the destination
  // verifier byte-identical (a partial apply here is a forked audit
  // chain waiting to happen). A long-lived rig keeps executions cheap;
  // the baseline restore keeps them deterministic.
  struct ImportRig {
    SimClock clock;
    netsim::SimNetwork network{&clock, 2};
    keylime::Verifier dst{&network, &clock, kCheckpointSeed};
    json::Value baseline;
    ImportRig() : baseline(dst.checkpoint()) {}
  };
  static ImportRig* rig = new ImportRig();

  const std::string before = rig->dst.checkpoint().dump();
  if (rig->dst.import_agent(p.agent_slice).ok()) {
    if (!rig->dst.restore(rig->baseline).ok()) {
      return FuzzOutcome::violation("rig baseline restore failed after import");
    }
  } else if (rig->dst.checkpoint().dump() != before) {
    return FuzzOutcome::violation("failed import partially applied");
  }
  return FuzzOutcome::accepted();
}

Bytes gen_migration(Rng& rng) {
  const auto& samples = sample_handoffs();
  return samples[rng.uniform(samples.size())];
}

// -------------------------------------------------- telemetry_snapshot

FuzzOutcome run_telemetry_snapshot(const Bytes& input) {
  auto doc = json::parse(to_string(input));
  if (!doc.ok()) return FuzzOutcome::rejected();
  auto snap = telemetry::snapshot_from_json(doc.value());
  if (!snap.ok()) return FuzzOutcome::rejected();
  const std::string canonical = telemetry::to_json(snap.value()).dump();
  auto redoc = json::parse(canonical);
  if (!redoc.ok()) {
    return FuzzOutcome::violation("canonical snapshot is not JSON");
  }
  auto resnap = telemetry::snapshot_from_json(redoc.value());
  if (!resnap.ok()) {
    return FuzzOutcome::violation("canonical snapshot failed to re-import: " +
                                  resnap.error().to_string());
  }
  if (telemetry::to_json(resnap.value()).dump() != canonical) {
    return FuzzOutcome::violation("snapshot JSON is not a fixed point");
  }
  // Percentiles over restored histograms must stay finite and ordered.
  for (const auto& point : resnap.value().points) {
    if (point.kind != telemetry::MetricKind::kHistogram) continue;
    const double p50 = point.histogram.percentile(50);
    const double p99 = point.histogram.percentile(99);
    if (!(p50 <= p99) && point.histogram.count > 0) {
      return FuzzOutcome::violation("restored histogram has p50 > p99");
    }
  }
  return FuzzOutcome::accepted();
}

// --------------------------------------------------- incident_snapshot

FuzzOutcome run_incident_snapshot(const Bytes& input) {
  auto doc = json::parse(to_string(input));
  if (!doc.ok()) return FuzzOutcome::rejected();
  auto snap = keylime::alert_pipeline::snapshot_from_json(doc.value());
  if (!snap.ok()) return FuzzOutcome::rejected();
  const std::string canonical =
      keylime::alert_pipeline::to_json(snap.value()).dump();
  auto redoc = json::parse(canonical);
  if (!redoc.ok()) {
    return FuzzOutcome::violation("canonical snapshot is not JSON");
  }
  auto resnap = keylime::alert_pipeline::snapshot_from_json(redoc.value());
  if (!resnap.ok()) {
    return FuzzOutcome::violation("canonical snapshot failed to re-import: " +
                                  resnap.error().to_string());
  }
  if (keylime::alert_pipeline::to_json(resnap.value()).dump() != canonical) {
    return FuzzOutcome::violation("snapshot JSON is not a fixed point");
  }
  // No partial state: everything the decoder accepted must satisfy the
  // incident invariants — a document that slipped past validation with,
  // say, more suppressed alerts than alerts would poison triage math.
  std::uint64_t prev_id = 0;
  for (const auto& inc : resnap.value().incidents) {
    if (inc.id <= prev_id) {
      return FuzzOutcome::violation("incident ids not strictly increasing");
    }
    prev_id = inc.id;
    if (inc.alerts == 0 || inc.suppressed >= inc.alerts ||
        inc.first_seen > inc.last_seen ||
        inc.sample_agents.size() > inc.affected_agents ||
        (inc.open && inc.closed_at != 0)) {
      return FuzzOutcome::violation("accepted incident violates invariants");
    }
  }
  return FuzzOutcome::accepted();
}

Bytes gen_incident_snapshot(Rng& rng) {
  static const char* kSeverities[] = {"integrity_violation", "policy_skew",
                                      "staleness", "transport"};
  static const char* kReasons[] = {"hash_mismatch", "not_in_policy",
                                   "comms_failure", "staleness"};
  json::Value doc;
  doc.set("version", 1);
  json::Value incidents{json::Array{}};
  const std::size_t n = 1 + rng.uniform(4);
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    id += 1 + rng.uniform(3);
    json::Value inc;
    inc.set("id", static_cast<std::int64_t>(id));
    inc.set("severity", kSeverities[rng.uniform(4)]);
    inc.set("reason", kReasons[rng.uniform(4)]);
    inc.set("subject", rng.chance(0.5)
                           ? "/usr/bin/" + rng.ident(5) + "@sha256:" +
                                 rng.ident(8)
                           : std::string());
    inc.set("policy_revision", static_cast<std::int64_t>(rng.uniform(10)));
    const std::uint64_t first = rng.uniform(500);
    const std::uint64_t last = first + rng.uniform(500);
    inc.set("first_seen", static_cast<std::int64_t>(first));
    inc.set("last_seen", static_cast<std::int64_t>(last));
    const std::uint64_t alerts = 1 + rng.uniform(1000);
    inc.set("alerts", static_cast<std::int64_t>(alerts));
    inc.set("suppressed", static_cast<std::int64_t>(rng.uniform(alerts)));
    const std::uint64_t sample = 1 + rng.uniform(5);
    const std::uint64_t affected = sample + rng.uniform(2000);
    inc.set("affected_agents", static_cast<std::int64_t>(affected));
    json::Value ids{json::Array{}};
    std::uint64_t agent = rng.uniform(10);
    for (std::uint64_t s = 0; s < sample; ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "agent-%04llu",
                    static_cast<unsigned long long>(agent));
      ids.push_back(std::string(buf));
      agent += 1 + rng.uniform(3);
    }
    inc.set("sample_agents", std::move(ids));
    const bool open = rng.chance(0.6);
    inc.set("open", open);
    inc.set("closed_at",
            static_cast<std::int64_t>(open ? 0 : last + rng.uniform(900)));
    incidents.push_back(std::move(inc));
  }
  doc.set("incidents", std::move(incidents));
  return to_bytes(doc.dump());
}

// ------------------------------------------------------------ scenario

FuzzOutcome run_scenario_file(const Bytes& input) {
  auto parsed = scenario::Scenario::parse(to_string(input));
  if (!parsed.ok()) return FuzzOutcome::rejected();
  // A validated scenario must survive the canonical round trip: to_json
  // emits every effective knob (defaults included), so a re-parse that
  // fails or drifts means the validator and the serializer disagree
  // about what configuration a file pins — exactly the "ran a different
  // experiment than was written" bug the differential suite exists for.
  const std::string canonical = parsed.value().to_json().dump();
  auto reparsed = scenario::Scenario::parse(canonical);
  if (!reparsed.ok()) {
    return FuzzOutcome::violation("canonical form failed to re-validate: " +
                                  reparsed.error().to_string());
  }
  if (reparsed.value().to_json().dump() != canonical) {
    return FuzzOutcome::violation("to_json/parse is not a fixed point");
  }
  return FuzzOutcome::accepted();
}

// -------------------------------------------------------- policy_delta

// The static apply rig: every parsed delta is applied against one fixed
// base policy, so both provenance gates (wrong base digest, lying target
// digest) and the structural-conflict checks are reachable from fuzzed
// wire bytes — and a rejected delta must leave that shared base
// byte-identical (apply() is pure).
const keylime::RuntimePolicy& delta_base_policy() {
  static const keylime::RuntimePolicy* base = [] {
    auto* policy = new keylime::RuntimePolicy();
    for (int i = 0; i < 8; ++i) {
      const std::string path = "/usr/bin/base-" + std::to_string(i);
      policy->allow(path, crypto::sha256("delta-base:" + path));
    }
    policy->allow("/usr/bin/base-3", crypto::sha256("delta-base:alt"));
    policy->exclude("/tmp/*");
    policy->exclude("*.log");
    return policy;
  }();
  return *base;
}

FuzzOutcome run_policy_delta(const Bytes& input) {
  namespace ps = keylime::policy_store;
  auto parsed = ps::PolicyDelta::parse(to_string(input));
  if (!parsed.ok()) return FuzzOutcome::rejected();
  const ps::PolicyDelta& delta = parsed.value();
  auto reparsed = ps::PolicyDelta::parse(delta.serialize());
  if (!reparsed.ok()) {
    return FuzzOutcome::violation("serialize failed to re-parse: " +
                                  reparsed.error().to_string());
  }
  if (!(reparsed.value() == delta) ||
      reparsed.value().serialize() != delta.serialize()) {
    return FuzzOutcome::violation("serialize/parse is not a fixed point");
  }

  const keylime::RuntimePolicy& base = delta_base_policy();
  const std::string before = base.to_json().dump();
  auto applied = ps::apply(base, delta);
  if (base.to_json().dump() != before) {
    return FuzzOutcome::violation("apply() mutated its base policy");
  }
  if (applied.ok()) {
    if (delta.base_digest != ps::policy_digest(base)) {
      return FuzzOutcome::violation("apply() accepted a wrong-base delta");
    }
    if (ps::policy_digest(applied.value()) != delta.target_digest) {
      return FuzzOutcome::violation(
          "apply() output does not hash to the claimed target digest");
    }
  }
  return FuzzOutcome::accepted();
}

Bytes gen_policy_delta(Rng& rng) {
  namespace ps = keylime::policy_store;
  const keylime::RuntimePolicy& base = delta_base_policy();
  keylime::RuntimePolicy target = base;
  const std::size_t edits = 1 + rng.uniform(5);
  for (std::size_t i = 0; i < edits; ++i) {
    switch (rng.uniform(4)) {
      case 0:
        target.set_hashes("/usr/bin/new-" + rng.ident(4),
                          {crypto::digest_hex(crypto::sha256(rng.ident(8)))});
        break;
      case 1:
        target.remove_path("/usr/bin/base-" + std::to_string(rng.uniform(8)));
        break;
      case 2:
        target.set_hashes("/usr/bin/base-" + std::to_string(rng.uniform(8)),
                          {crypto::digest_hex(crypto::sha256(rng.ident(8)))});
        break;
      default:
        target.exclude("/var/" + rng.ident(3) + "/*");
        break;
    }
  }
  if (ps::policy_digest(target) == ps::policy_digest(base)) {
    target.set_hashes("/usr/bin/forced",
                      {crypto::digest_hex(crypto::sha256("forced"))});
  }
  return to_bytes(ps::diff(base, target).serialize());
}

// ------------------------------------------------------------ registry

std::string sample_log_text(Rng& rng) {
  std::string text;
  const std::size_t n = 1 + rng.uniform(4);
  for (std::size_t i = 0; i < n; ++i) {
    text += gen_log_entry(rng).to_string();
    if (i + 1 < n) text += "\n";
  }
  // LogEntry::parse takes one line; emit just one most of the time.
  return rng.chance(0.8) ? gen_log_entry(rng).to_string() : text;
}

std::vector<FuzzTarget> build_targets() {
  std::vector<FuzzTarget> targets;
  targets.push_back(FuzzTarget{
      "ima_log_entry",
      run_ima_log_entry,
      [](Rng& rng) { return to_bytes(sample_log_text(rng)); },
      {"sha256:", "ima-ng", "boot_aggregate", "10 ", " ", "/snap/",
       "999999999999999999999"}});
  targets.push_back(FuzzTarget{
      "json",
      run_json,
      [](Rng& rng) { return to_bytes(gen_json(rng).dump()); },
      {"{", "}", "[", "]", "\"", "\\u", "\\", "true", "false", "null", "1e999",
       "-", ".", "e+", ","}});
  targets.push_back(FuzzTarget{
      "runtime_policy",
      run_runtime_policy,
      [](Rng& rng) { return to_bytes(gen_policy(rng).serialize()); },
      {"exclude ", " sha256:", "/tmp/*", "\n", "*", "?"}});
  targets.push_back(FuzzTarget{
      "wire",
      run_wire,
      [](Rng& rng) { return gen_wire_frame(rng); },
      {}});
  targets.push_back(FuzzTarget{
      "checkpoint",
      run_checkpoint,
      gen_checkpoint,
      {"agents", "audit", "version", "\"ak\"", "\"state\"", "failed",
       "attesting", "pending", "records", "digests", "mb_refstate",
       "boot_baseline", "log_offset"}});
  targets.push_back(FuzzTarget{
      "migration",
      run_migration,
      gen_migration,
      {"version", "agent", "source_shard", "dest_shard", "slice", "schedule",
       "next_poll", "backoff", "polls", "comms_failures", "nonce_counter",
       "audit_seq", "audit_prev", "\"id\"", "log_offset", "pending"}});
  targets.push_back(FuzzTarget{
      "telemetry_snapshot",
      run_telemetry_snapshot,
      [](Rng& rng) {
        // Mint a plausible snapshot document from generated JSON plus a
        // well-formed skeleton, biased toward the strict histogram path.
        json::Value doc;
        doc.set("version", 1);
        json::Value metrics{json::Array{}};
        const std::size_t n = 1 + rng.uniform(4);
        for (std::size_t i = 0; i < n; ++i) {
          json::Value m;
          m.set("name", "cia_" + rng.ident(6));
          if (rng.chance(0.5)) {
            m.set("kind", rng.chance(0.5) ? "counter" : "gauge");
            m.set("value", static_cast<double>(rng.uniform(1000)));
          } else {
            m.set("kind", "histogram");
            json::Value bounds{json::Array{}};
            json::Value counts{json::Array{}};
            const std::size_t buckets = 1 + rng.uniform(4);
            std::uint64_t total = 0;
            double bound = 0;
            for (std::size_t b = 0; b < buckets; ++b) {
              bound += 1.0 + static_cast<double>(rng.uniform(10));
              bounds.push_back(bound);
            }
            for (std::size_t b = 0; b < buckets + 1; ++b) {
              const std::uint64_t c = rng.uniform(20);
              counts.push_back(static_cast<std::int64_t>(c));
              total += c;
            }
            m.set("bounds", std::move(bounds));
            m.set("counts", std::move(counts));
            m.set("count", static_cast<std::int64_t>(total));
            m.set("sum", static_cast<double>(rng.uniform(5000)));
            m.set("min", 0.5);
            // Above the last bound: the overflow bucket may be occupied.
            m.set("max", bound + 1.0);
          }
          if (rng.chance(0.5)) {
            json::Value labels;
            labels.set("agent", rng.ident(4));
            m.set("labels", std::move(labels));
          }
          metrics.push_back(std::move(m));
        }
        doc.set("metrics", std::move(metrics));
        return to_bytes(doc.dump());
      },
      {"metrics", "kind", "counter", "gauge", "histogram", "bounds", "counts",
       "count", "sum", "labels", "value", "min", "max", "version"}});
  targets.push_back(FuzzTarget{
      "incident_snapshot",
      run_incident_snapshot,
      gen_incident_snapshot,
      {"version", "incidents", "severity", "integrity_violation",
       "policy_skew", "staleness", "transport", "reason", "subject",
       "policy_revision", "first_seen", "last_seen", "alerts", "suppressed",
       "affected_agents", "sample_agents", "open", "closed_at", "\"id\""}});
  targets.push_back(FuzzTarget{
      "scenario",
      run_scenario_file,
      [](Rng& rng) { return to_bytes(gen_scenario(rng).dump()); },
      {"version", "name", "kind", "seed", "chaos", "churn", "storm", "fleet",
       "fleet_run", "attacks", "faults", "resize_at", "round", "shards",
       "agents", "drop_rate", "timeout_rate", "timeout_latency", "script",
       "rounds", "storm_rounds", "bad_paths", "pipeline", "retrying_transport",
       "wan-loss", "flaky-window", "archive_packages", "policy_rollout",
       "canary_fraction", "bake_rounds", "alert_budget"}});
  targets.push_back(FuzzTarget{
      "policy_delta",
      run_policy_delta,
      gen_policy_delta,
      {"version", "base", "target", "entries", "op", "add", "remove",
       "replace", "path", "hashes", "excludes"}});
  return targets;
}

}  // namespace

const std::vector<FuzzTarget>& all_targets() {
  static const std::vector<FuzzTarget> kTargets = build_targets();
  return kTargets;
}

const FuzzTarget* find_target(const std::string& name) {
  for (const FuzzTarget& target : all_targets()) {
    if (target.name == name) return &target;
  }
  return nullptr;
}

}  // namespace cia::testkit
