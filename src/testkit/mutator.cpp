#include "testkit/mutator.hpp"

#include <algorithm>

namespace cia::testkit {

const std::vector<std::uint64_t>& interesting_integers() {
  static const std::vector<std::uint64_t> kValues = {
      0,
      1,
      2,
      7,
      8,
      0x7f,
      0x80,
      0xff,
      0x100,
      0x7fff,
      0x8000,
      0xffff,
      0x10000,
      0x7fffffffull,
      0x80000000ull,
      0xffffffffull,
      0xfffffffeull,
      0x100000000ull,
      0x7fffffffffffffffull,
      0x8000000000000000ull,
      0xfffffffffffffffeull,
      0xffffffffffffffffull,
  };
  return kValues;
}

ByteMutator::ByteMutator(std::uint64_t seed, MutatorOptions options)
    : rng_(seed), options_(std::move(options)) {}

Bytes ByteMutator::mutate(const Bytes& input, int max_stack) {
  Bytes out = input;
  const int stack = 1 + static_cast<int>(rng_.uniform(
                            static_cast<std::uint64_t>(std::max(1, max_stack))));
  for (int i = 0; i < stack; ++i) mutate_once(out);
  if (out.size() > options_.max_output_size) {
    out.resize(options_.max_output_size);
  }
  return out;
}

std::string ByteMutator::mutate(const std::string& input, int max_stack) {
  return to_string(mutate(to_bytes(input), max_stack));
}

Bytes ByteMutator::splice(const Bytes& a, const Bytes& b) {
  const std::size_t cut_a = a.empty() ? 0 : rng_.uniform(a.size() + 1);
  const std::size_t cut_b = b.empty() ? 0 : rng_.uniform(b.size() + 1);
  Bytes out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut_a));
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(cut_b),
             b.end());
  if (out.size() > options_.max_output_size) {
    out.resize(options_.max_output_size);
  }
  return out;
}

void ByteMutator::mutate_once(Bytes& data) {
  if (data.empty()) {
    insert_bytes(data);
    return;
  }
  switch (rng_.uniform(options_.dictionary.empty() ? 6 : 7)) {
    case 0: bit_flip(data); break;
    case 1: byte_set(data); break;
    case 2: erase_range(data); break;
    case 3: duplicate_range(data); break;
    case 4: insert_bytes(data); break;
    case 5: interesting_int(data); break;
    default: dictionary_token(data); break;
  }
}

void ByteMutator::bit_flip(Bytes& data) {
  data[rng_.uniform(data.size())] ^=
      static_cast<std::uint8_t>(1u << rng_.uniform(8));
}

void ByteMutator::byte_set(Bytes& data) {
  data[rng_.uniform(data.size())] =
      static_cast<std::uint8_t>(rng_.uniform(256));
}

void ByteMutator::erase_range(Bytes& data) {
  // Half the time cut the tail (a pure truncation), otherwise remove an
  // interior chunk (a splice-out).
  const std::size_t start = rng_.uniform(data.size());
  std::size_t len = 1 + rng_.uniform(data.size() - start);
  if (rng_.chance(0.5)) len = data.size() - start;  // truncate to `start`
  data.erase(data.begin() + static_cast<std::ptrdiff_t>(start),
             data.begin() + static_cast<std::ptrdiff_t>(start + len));
}

void ByteMutator::duplicate_range(Bytes& data) {
  const std::size_t start = rng_.uniform(data.size());
  const std::size_t len =
      1 + rng_.uniform(std::min<std::size_t>(data.size() - start, 64));
  const Bytes chunk(data.begin() + static_cast<std::ptrdiff_t>(start),
                    data.begin() + static_cast<std::ptrdiff_t>(start + len));
  const std::size_t at = rng_.uniform(data.size() + 1);
  data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
              chunk.end());
}

void ByteMutator::insert_bytes(Bytes& data) {
  const std::size_t len = 1 + rng_.uniform(16);
  Bytes chunk(len);
  // Mostly printable bytes — text formats dominate the parse surfaces —
  // with a raw-byte tail for the binary ones.
  for (auto& b : chunk) {
    b = rng_.chance(0.7)
            ? static_cast<std::uint8_t>(0x20 + rng_.uniform(0x5f))
            : static_cast<std::uint8_t>(rng_.uniform(256));
  }
  const std::size_t at = rng_.uniform(data.size() + 1);
  data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
              chunk.end());
}

void ByteMutator::interesting_int(Bytes& data) {
  const auto& pool = interesting_integers();
  const std::uint64_t value = pool[rng_.uniform(pool.size())];
  static const std::size_t kWidths[] = {1, 2, 4, 8};
  const std::size_t width = kWidths[rng_.uniform(4)];
  if (data.size() < width) return;
  const std::size_t at = rng_.uniform(data.size() - width + 1);
  for (std::size_t i = 0; i < width; ++i) {
    data[at + i] =
        static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)));
  }
}

void ByteMutator::dictionary_token(Bytes& data) {
  const std::string& token =
      options_.dictionary[rng_.uniform(options_.dictionary.size())];
  const std::size_t at = rng_.uniform(data.size() + 1);
  if (rng_.chance(0.5) && data.size() >= token.size()) {
    // Overwrite in place.
    const std::size_t pos = rng_.uniform(data.size() - token.size() + 1);
    std::copy(token.begin(), token.end(),
              data.begin() + static_cast<std::ptrdiff_t>(pos));
  } else {
    data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), token.begin(),
                token.end());
  }
}

}  // namespace cia::testkit
