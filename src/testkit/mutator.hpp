// Seed-deterministic byte-level mutation for fuzzing untrusted parsers.
//
// Every strategy draws exclusively from the owned Rng, so a (seed,
// input) pair always produces the same mutant on every platform — the
// property that makes `cia_fuzz --seed=N --iters=M` reproducible and
// lets a CI failure be replayed locally from just the two numbers.
// The strategy mix follows the classic fuzzing playbook: bit flips,
// byte sets, chunk erase/duplicate (truncations and splices), insertion,
// "interesting" integer overwrites in 1/2/4/8-byte big-endian widths
// (the wire format's byte order), and dictionary token injection for
// format-specific keywords ("sha256:", "exclude ", "digests", ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace cia::testkit {

/// Boundary values that historically break parsers: zero, one-bits at
/// width edges, max/min of every fixed width, off-by-one neighbours.
const std::vector<std::uint64_t>& interesting_integers();

struct MutatorOptions {
  /// Hard cap on mutant size; insertions and duplications respect it.
  std::size_t max_output_size = 1 << 16;
  /// Format-specific tokens spliced into inputs verbatim.
  std::vector<std::string> dictionary;
};

class ByteMutator {
 public:
  explicit ByteMutator(std::uint64_t seed, MutatorOptions options = {});

  /// Apply 1..max_stack randomly chosen mutations to a copy of `input`.
  /// An empty input grows via insertion before other strategies apply.
  Bytes mutate(const Bytes& input, int max_stack = 4);
  std::string mutate(const std::string& input, int max_stack = 4);

  /// Cross-over: a prefix of `a` spliced onto a suffix of `b`.
  Bytes splice(const Bytes& a, const Bytes& b);

  Rng& rng() { return rng_; }

 private:
  void mutate_once(Bytes& data);
  void bit_flip(Bytes& data);
  void byte_set(Bytes& data);
  void erase_range(Bytes& data);
  void duplicate_range(Bytes& data);
  void insert_bytes(Bytes& data);
  void interesting_int(Bytes& data);
  void dictionary_token(Bytes& data);

  Rng rng_;
  MutatorOptions options_;
};

}  // namespace cia::testkit
