// Structured input generators for the untrusted parse surfaces.
//
// Where ByteMutator explores the byte level, these build *semantically
// plausible* inputs — valid IMA measurement lines over adversarial path
// shapes (SNAP/container-truncated, embedded spaces, deep nesting,
// non-UTF8 bytes), JSON value trees up to the parser's depth limit,
// runtime policies with colliding hash sets, and wire frames for every
// Keylime message. Fuzzers mutate these as seeds so coverage starts deep
// inside the grammar instead of bouncing off the first validation check;
// property tests use them directly as random-instance sources.
//
// All generators take an explicit Rng so callers control determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "ima/ima.hpp"
#include "keylime/messages.hpp"
#include "keylime/runtime_policy.hpp"

namespace cia::testkit {

/// A measured-file path drawn from the shapes the paper cares about:
/// ordinary host paths, /tmp and tmpfs locations (P1/P3), SNAP and
/// container namespace-truncated paths (§III-B), interpreter scripts
/// (P5), renamed/moved destinations (P4), plus hostile shapes — embedded
/// spaces, repeated separators, very deep nesting, and raw high bytes.
std::string gen_path(Rng& rng);

/// One well-formed ima-ng log entry (random digests, adversarial path).
ima::LogEntry gen_log_entry(Rng& rng);

/// `n` entries; template hashes are computed the way Ima::measure does,
/// so the list replays like a real measurement list.
std::vector<ima::LogEntry> gen_log(Rng& rng, std::size_t n);

/// A random JSON document: nested arrays/objects/strings/numbers down to
/// `max_depth`, with escape-heavy strings and boundary numbers.
json::Value gen_json(Rng& rng, int max_depth = 6);

/// A random runtime policy: up to `max_paths` paths with 1..4 acceptable
/// hashes each and a handful of exclude globs.
keylime::RuntimePolicy gen_policy(Rng& rng, std::size_t max_paths = 64);

/// A well-formed encoded Keylime wire message of a random kind
/// (register/activate/get-agent/quote request/response, boot log).
/// The embedded signature is a real one, so decode paths past the
/// signature check are reachable.
Bytes gen_wire_frame(Rng& rng);

/// A QuoteResponse with a correctly signed quote over random PCR values
/// and `entries` generated log entries.
keylime::QuoteResponse gen_quote_response(Rng& rng, std::size_t entries);

/// A valid-by-construction scenario document (see docs/SCENARIOS.md):
/// a random kind with in-range section values that satisfy every
/// cross-reference rule, so mutation starts from deep inside the schema
/// instead of bouncing off `$.version`. Kept as plain JSON so testkit
/// does not depend on the scenario library; the fuzz target owns the
/// strict-decode side.
json::Value gen_scenario(Rng& rng);

}  // namespace cia::testkit
