#include "testkit/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/strutil.hpp"

namespace cia::testkit {

namespace fs = std::filesystem;

#ifndef CIA_CORPUS_ROOT
#define CIA_CORPUS_ROOT "tests/corpus"
#endif

std::string default_corpus_root() {
  if (const char* env = std::getenv("CIA_CORPUS_DIR"); env && *env) {
    return env;
  }
  return CIA_CORPUS_ROOT;
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (!item.is_regular_file()) continue;
    std::ifstream in(item.path(), std::ios::binary);
    if (!in) continue;
    CorpusEntry entry;
    entry.name = item.path().filename().string();
    entry.data.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

std::vector<CorpusEntry> load_regressions(const std::string& root,
                                          const std::string& target) {
  std::vector<CorpusEntry> matching;
  for (auto& entry : load_corpus(root + "/regressions")) {
    if (starts_with(entry.name, target + "__")) {
      matching.push_back(std::move(entry));
    }
  }
  return matching;
}

Status save_corpus_entry(const std::string& dir, const std::string& name,
                         const Bytes& data) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return err(Errc::kUnavailable, "cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return err(Errc::kUnavailable, "short write to " + path);
  return Status::ok_status();
}

}  // namespace cia::testkit
