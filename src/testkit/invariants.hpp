// Cross-layer invariant checking over a live fleet simulation.
//
// Fuzzing (fuzzer.hpp) exercises one parse surface at a time; the
// InvariantChecker exercises the whole attestation pipeline and asserts
// the properties that hold only when every layer agrees:
//
//   pcr_replay   folding each machine's IMA log reproduces its TPM's
//                PCR-10 exactly — the root identity the paper's
//                appraisal step (§II) rests on.
//   audit_chain  the verifier's durable-attestation chain verifies
//                offline after every round, never shrinks, and the old
//                head is still in place after a checkpoint/restore
//                "crash" — history is never forked or truncated.
//   checkpoint   checkpoint -> restore into a fresh verifier (same
//                seed) -> checkpoint is byte-identical, and the fleet
//                keeps attesting through the restart.
//   books        telemetry never drifts from ground truth: the
//                cia_verifier_rounds_total / cia_verifier_alerts_total
//                counters equal the checker's own tallies, and the
//                cia_transport_* counters equal RetryingTransport's
//                internal Stats.
//
// Runs are seed-deterministic; a (seed, rounds) pair replays exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "keylime/audit.hpp"

namespace cia::testkit {

struct InvariantOptions {
  std::uint64_t seed = 1;
  std::size_t machines = 3;
  std::size_t rounds = 18;
  /// Crash-and-restore the verifier every this many rounds (0 = never).
  std::size_t checkpoint_every = 5;
  /// Plant an unauthorized binary mid-run so the alert/quarantine/resolve
  /// path is part of what the invariants must survive.
  bool tamper = true;
};

struct InvariantViolation {
  std::string invariant;  // pcr_replay | audit_chain | checkpoint | books
  std::size_t round = 0;
  std::string detail;
};

struct InvariantReport {
  std::size_t rounds = 0;
  std::size_t checks = 0;    // individual assertions evaluated
  std::size_t restarts = 0;  // checkpoint/restore cycles survived
  std::size_t alerts = 0;    // alerts raised by the planted tamper
  std::vector<InvariantViolation> violations;

  bool clean() const { return violations.empty(); }
};

/// Build a fleet (machines + agents + registrar + verifier + retrying
/// transport + metrics), drive `options.rounds` rounds of file activity
/// and attestation, and assert every invariant after each round.
InvariantReport check_invariants(const InvariantOptions& options = {});

/// Cross-shard audit-chain rule for sharded/resharded pools: collect the
/// audit logs of EVERY shard (active and retired) and assert each
/// agent's sub-chain is whole even when its history spans several
/// shards. Per agent, across all logs combined:
///
///   * agent_seq values are exactly 0..n-1 — a duplicate is a forked
///     chain (two shards both extended the same point, e.g. after a
///     botched handoff), a gap is truncated history;
///   * record 0 has the zero agent_prev_hash and every later record's
///     agent_prev_hash equals the previous record's agent_hash() — the
///     linkage is over the partition-independent sub-chain hash, so a
///     legitimate migration is indistinguishable from no migration.
///
/// Returns one violation per broken agent (invariant
/// "cross_shard_chain").
std::vector<InvariantViolation> check_cross_shard_audit_chains(
    const std::vector<const keylime::AuditLog*>& logs);

}  // namespace cia::testkit
