// Seed-corpus plumbing shared by the fuzz CLI and the test suites.
//
// Layout (under tests/corpus/ in the source tree):
//   <target>/<name>         seed inputs for fuzz target <target>
//   regressions/<target>__<name>
//                           minimized reproducers of fixed bugs; every
//                           fuzz run and the fuzz-smoke CI job replay
//                           them first, so a fixed crash stays fixed.
//
// The root resolves, in order: an explicit path, $CIA_CORPUS_DIR, the
// compiled-in source-tree default (CIA_CORPUS_ROOT). Entries load in
// filename order so corpus iteration is deterministic.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace cia::testkit {

struct CorpusEntry {
  std::string name;  // filename within the corpus directory
  Bytes data;
};

/// The corpus root: $CIA_CORPUS_DIR when set, else the compiled-in
/// source-tree tests/corpus path.
std::string default_corpus_root();

/// All regular files directly inside `dir`, sorted by filename.
/// A missing directory is an empty corpus, not an error.
std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// Regression entries for `target`: files named "<target>__*" under
/// `root`/regressions.
std::vector<CorpusEntry> load_regressions(const std::string& root,
                                          const std::string& target);

/// Write one entry (creates the directory if needed).
Status save_corpus_entry(const std::string& dir, const std::string& name,
                         const Bytes& data);

}  // namespace cia::testkit
