// The fuzz-target registry: one FuzzTarget per untrusted parse surface.
//
//   ima_log_entry       ima::LogEntry::parse        (measurement lines)
//   json                json::parse                 (all JSON ingestion)
//   runtime_policy      RuntimePolicy::parse/from_json
//   wire                netsim wire decode of every Keylime message
//   checkpoint          Verifier::restore from a checkpoint document
//   migration           HandoffPayload::decode + transactional import
//   telemetry_snapshot  telemetry::snapshot_from_json
//   incident_snapshot   alert_pipeline::snapshot_from_json
//   scenario            scenario::Scenario::parse   (campaign files)
//   policy_delta        policy_store::PolicyDelta::parse + apply()
//
// Each target enforces the same two contracts the paper's P1–P5 bugs
// motivate: malformed input must come back as a clean Result error
// (never a crash, hang, or unbounded allocation), and accepted input
// must survive a serialize/re-parse round trip unchanged — the
// differential check that catches "parsed into a different policy than
// was written" long before a verifier acts on it.
#pragma once

#include <vector>

#include "testkit/fuzzer.hpp"

namespace cia::testkit {

/// All registered fuzz targets, in a fixed documented order.
const std::vector<FuzzTarget>& all_targets();

/// Look up one target by name; nullptr when unknown.
const FuzzTarget* find_target(const std::string& name);

}  // namespace cia::testkit
