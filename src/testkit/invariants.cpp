#include "testkit/invariants.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/strutil.hpp"
#include "crypto/cert.hpp"
#include "crypto/sha256.hpp"
#include "ima/ima.hpp"
#include "keylime/agent.hpp"
#include "keylime/audit.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "netsim/transport.hpp"
#include "oskernel/machine.hpp"
#include "telemetry/metrics.hpp"
#include "tpm/tpm.hpp"

namespace cia::testkit {

namespace {

struct Node {
  std::unique_ptr<oskernel::Machine> machine;
  std::unique_ptr<keylime::Agent> agent;
  keylime::RuntimePolicy policy;  // the checker's own mirror of the truth
  int next_file = 0;
};

class Fleet {
 public:
  explicit Fleet(const InvariantOptions& options)
      : options_(options),
        rng_(options.seed),
        ca_("testkit-mfg", to_bytes("testkit-invariant-ca")),
        network_(&clock_, options.seed ^ 0x6e657477),
        registrar_(&network_, &clock_, options.seed ^ 0x72656773),
        transport_(&network_, &clock_, options.seed ^ 0x74726e73) {
    registrar_.trust_manufacturer(ca_.public_key());
    transport_.use_telemetry(&metrics_);
    verifier_ = make_verifier();
    for (std::size_t i = 0; i < options.machines; ++i) {
      Node node;
      oskernel::MachineConfig cfg;
      cfg.hostname = "inv-node-" + std::to_string(i);
      cfg.seed = options.seed + i + 1;
      node.machine = std::make_unique<oskernel::Machine>(cfg, ca_, &clock_);
      node.agent =
          std::make_unique<keylime::Agent>(node.machine.get(), &network_);
      if (!node.agent->register_with(keylime::Registrar::address()).ok()) {
        continue;
      }
      if (!verifier_->add_agent(cfg.hostname, node.agent->address()).ok()) {
        continue;
      }
      // Baseline policy: everything the machine measured while booting.
      for (const auto& entry : node.machine->ima().log()) {
        node.policy.allow(entry.path, entry.file_hash);
      }
      (void)verifier_->set_policy(cfg.hostname, node.policy);
      nodes_.push_back(std::move(node));
    }
  }

  InvariantReport run() {
    InvariantReport report;
    const std::size_t tamper_round =
        options_.tamper ? options_.rounds / 2 : options_.rounds;
    for (std::size_t round = 0; round < options_.rounds; ++round) {
      ++report.rounds;
      generate_activity(round == tamper_round);
      attest_all(report);
      check_pcr_replay(round, report);
      check_audit_chain(round, report);
      check_books(round, report);
      if (options_.checkpoint_every != 0 && round > 0 &&
          round % options_.checkpoint_every == 0) {
        crash_and_restore(round, report);
      }
      clock_.advance(60);
    }
    return report;
  }

 private:
  std::unique_ptr<keylime::Verifier> make_verifier() {
    // Always the same seed: restore() only accepts audit chains signed by
    // the key this seed derives, which is exactly the crash-recovery
    // contract a real redeploy relies on.
    auto verifier = std::make_unique<keylime::Verifier>(
        &network_, &clock_, options_.seed ^ 0x76657269);
    verifier->use_transport(&transport_);
    verifier->use_telemetry(&metrics_);
    return verifier;
  }

  void fail(InvariantReport& report, const std::string& invariant,
            std::size_t round, std::string detail) {
    report.violations.push_back({invariant, round, std::move(detail)});
  }

  void generate_activity(bool tamper) {
    // Benign churn: new measured-and-allowed binaries, occasional reruns.
    for (Node& node : nodes_) {
      if (!rng_.chance(0.7)) continue;
      const std::string path = "/usr/local/bin/churn-" +
                               node.machine->hostname() + "-" +
                               std::to_string(node.next_file++);
      const Bytes content = to_bytes("elf:" + path);
      (void)node.machine->fs().create_file(path, content, true);
      node.policy.allow(path, crypto::sha256(content));
      (void)verifier_->set_policy(node.machine->hostname(), node.policy);
      (void)node.machine->exec(path);
      if (rng_.chance(0.3) && node.next_file > 1) {
        (void)node.machine->exec("/usr/local/bin/churn-" +
                                 node.machine->hostname() + "-0");
      }
    }
    if (tamper && !nodes_.empty()) {
      // An implant the policy does not know about: the next round must
      // alert, quarantine, and — once resolved — keep every invariant.
      Node& victim = nodes_[rng_.uniform(nodes_.size())];
      const std::string mal = "/tmp/.inv-implant";
      (void)victim.machine->fs().create_file(mal, to_bytes("elf:implant"),
                                             true);
      (void)victim.machine->exec(mal);
    }
  }

  void attest_all(InvariantReport& report) {
    for (Node& node : nodes_) {
      const std::string& id = node.machine->hostname();
      const std::size_t alerts_before = verifier_->alerts().size();
      auto round = verifier_->attest_once(id);
      if (!round.ok()) continue;
      ++rounds_tallied_;
      const std::size_t raised = verifier_->alerts().size() - alerts_before;
      alerts_tallied_ += raised;
      report.alerts += raised;
      if (raised > 0) {
        // Operator playbook: acknowledge, then trust the implant's hash so
        // the fleet returns to steady state (the checker only plants one).
        (void)verifier_->resolve_failure(id);
        for (const auto& alert : round.value().alerts) {
          if (alert.path.empty() || alert.observed_hash_hex.empty()) continue;
          node.policy.allow(alert.path, alert.observed_hash_hex);
        }
        (void)verifier_->set_policy(id, node.policy);
      }
    }
  }

  void check_pcr_replay(std::size_t round, InvariantReport& report) {
    for (const Node& node : nodes_) {
      ++report.checks;
      const crypto::Digest replayed =
          ima::replay_log(node.machine->ima().log());
      const crypto::Digest quoted =
          node.machine->tpm().pcr_value(tpm::kImaPcr);
      if (!(replayed == quoted)) {
        fail(report, "pcr_replay", round,
             node.machine->hostname() + ": log folds to " +
                 crypto::digest_hex(replayed) + " but PCR-10 is " +
                 crypto::digest_hex(quoted));
      }
    }
  }

  void check_audit_chain(std::size_t round, InvariantReport& report) {
    const auto& records = verifier_->audit().records();
    ++report.checks;
    if (Status s = keylime::verify_audit_chain(
            records, verifier_->audit().public_key());
        !s.ok()) {
      fail(report, "audit_chain", round,
           "chain failed offline verification: " + s.error().to_string());
      return;
    }
    ++report.checks;
    if (records.size() < audit_len_) {
      fail(report, "audit_chain", round,
           strformat("chain shrank from %zu to %zu records", audit_len_,
                     records.size()));
      return;
    }
    if (audit_len_ > 0) {
      ++report.checks;
      if (!(records[audit_len_ - 1].record_hash == audit_head_)) {
        fail(report, "audit_chain", round,
             "previously observed head was rewritten at index " +
                 std::to_string(audit_len_ - 1));
      }
    }
    audit_len_ = records.size();
    if (audit_len_ > 0) audit_head_ = records[audit_len_ - 1].record_hash;
  }

  void check_books(std::size_t round, InvariantReport& report) {
    const telemetry::MetricsSnapshot snap = metrics_.snapshot();
    const auto expect = [&](const char* name, std::uint64_t want) {
      ++report.checks;
      const double got = snap.counter_total(name);
      if (got != static_cast<double>(want)) {
        fail(report, "books", round,
             strformat("%s is %.0f but ground truth is %llu", name, got,
                       static_cast<unsigned long long>(want)));
      }
    };
    expect("cia_verifier_rounds_total", rounds_tallied_);
    expect("cia_verifier_alerts_total", alerts_tallied_);
    const auto& ts = transport_.stats();
    expect("cia_transport_calls_total", ts.calls);
    expect("cia_transport_retries_total", ts.retries);
    expect("cia_transport_giveups_total", ts.giveups);
  }

  void crash_and_restore(std::size_t round, InvariantReport& report) {
    const std::string before = verifier_->checkpoint().dump();
    auto doc = json::parse(before);
    ++report.checks;
    if (!doc.ok()) {
      fail(report, "checkpoint", round,
           "checkpoint is not valid JSON: " + doc.error().to_string());
      return;
    }
    auto revived = make_verifier();
    ++report.checks;
    if (Status s = revived->restore(doc.value()); !s.ok()) {
      fail(report, "checkpoint", round,
           "restore rejected our own checkpoint: " + s.error().to_string());
      return;
    }
    ++report.checks;
    const std::string after = revived->checkpoint().dump();
    if (after != before) {
      fail(report, "checkpoint", round,
           strformat("restore drifted: %zu vs %zu checkpoint bytes",
                     before.size(), after.size()));
      return;
    }
    // The restart takes: all later rounds (and invariants) run against
    // the revived instance.
    verifier_ = std::move(revived);
    ++report.restarts;
  }

  InvariantOptions options_;
  Rng rng_;
  SimClock clock_;
  crypto::CertificateAuthority ca_;
  netsim::SimNetwork network_;
  keylime::Registrar registrar_;
  netsim::RetryingTransport transport_;
  telemetry::MetricsRegistry metrics_;
  std::unique_ptr<keylime::Verifier> verifier_;
  std::vector<Node> nodes_;

  std::uint64_t rounds_tallied_ = 0;
  std::uint64_t alerts_tallied_ = 0;
  std::size_t audit_len_ = 0;
  crypto::Digest audit_head_{};
};

}  // namespace

InvariantReport check_invariants(const InvariantOptions& options) {
  return Fleet(options).run();
}

std::vector<InvariantViolation> check_cross_shard_audit_chains(
    const std::vector<const keylime::AuditLog*>& logs) {
  std::vector<InvariantViolation> violations;
  std::map<std::string, std::vector<const keylime::AuditRecord*>> by_agent;
  for (const keylime::AuditLog* log : logs) {
    if (!log) continue;
    for (const keylime::AuditRecord& rec : log->records()) {
      by_agent[rec.agent_id].push_back(&rec);
    }
  }
  for (auto& [agent, recs] : by_agent) {
    std::sort(recs.begin(), recs.end(),
              [](const keylime::AuditRecord* a, const keylime::AuditRecord* b) {
                return a->agent_seq < b->agent_seq;
              });
    const auto blame = [&](const std::string& detail) {
      violations.push_back({"cross_shard_chain", 0, agent + ": " + detail});
    };
    bool numbered_ok = true;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i]->agent_seq != i) {
        const bool duplicate = i > 0 && recs[i]->agent_seq == i - 1;
        blame(strformat(
            "%s sub-chain at position %zu: expected agent_seq %zu, got %llu",
            duplicate ? "forked" : "gapped", i, i,
            static_cast<unsigned long long>(recs[i]->agent_seq)));
        numbered_ok = false;
        break;
      }
    }
    if (!numbered_ok) continue;  // linkage checks presume clean numbering
    if (!recs.empty() && recs[0]->agent_prev_hash != crypto::Digest{}) {
      blame("sub-chain head does not start from the zero prev hash");
      continue;
    }
    for (std::size_t i = 1; i < recs.size(); ++i) {
      if (recs[i]->agent_prev_hash != recs[i - 1]->agent_hash()) {
        blame(strformat("broken sub-chain link at agent_seq %zu", i));
        break;
      }
    }
  }
  return violations;
}

}  // namespace cia::testkit
