// Extension samples beyond the paper's eight (its §V future work calls
// for "more diverse attack types and attack samples"). Two are chosen to
// probe the *boundaries* of continuous integrity attestation:
//
//   * XMRigMiner — a cryptominer: classic executable-dropping malware,
//     squarely in scope; its adaptive variant composes P1 and P3.
//   * SshAuthorizedKeyBackdoor — persistence that touches *no executable
//     at all* (it appends a key to ~/.ssh/authorized_keys and flips a
//     config line). This is the paper's §V point made executable:
//     Keylime verifies a known list of executables; attacks living
//     entirely in data files are out of scope even for a basic attacker,
//     and no Keylime/IMA mitigation changes that.
//   * GrubBootkit — tampers with the first-stage bootloader: invisible to
//     IMA (which starts after boot), caught only by measured-boot
//     refstate checking on the next reboot.
#pragma once

#include "attacks/attack.hpp"

namespace cia::attacks {

class XMRigMiner : public Attack {
 public:
  std::string name() const override { return "XMRig-miner"; }
  std::string category() const override { return "Cryptominer"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP3};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

class SshAuthorizedKeyBackdoor : public Attack {
 public:
  std::string name() const override { return "SSH-key-backdoor"; }
  std::string category() const override { return "Data-only persistence"; }
  std::vector<Problem> exploits() const override { return {}; }
  bool mitigable() const override { return false; }  // out of scope by design
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

class GrubBootkit : public Attack {
 public:
  std::string name() const override { return "GRUB-bootkit"; }
  std::string category() const override { return "Bootkit"; }
  std::vector<Problem> exploits() const override { return {}; }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

/// The extension registry (kept separate from the paper's Table II set).
std::vector<std::unique_ptr<Attack>> extended_attacks();

}  // namespace cia::attacks
