#include "attacks/botnets.hpp"

#include "attacks/ransomware.hpp"
#include "attacks/rootkits.hpp"

namespace cia::attacks {

namespace {
constexpr const char* kMiraiBot = "elf:mirai-bot";
constexpr const char* kBashliteBot = "elf:bashlite-bot";
constexpr const char* kQbotBin = "elf:mortem-qbot";
constexpr const char* kAoyamaPy = "py:aoyama-bot-main";
}  // namespace

// ------------------------------------------------------------------ Mirai

Status Mirai::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // The classic dropper: fetch the bot, install under /usr/bin with a
  // dotted name, start it, persist via systemd.
  if (Status s = drop_executable(m, "/usr/bin/.mirai", kMiraiBot); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/bin/.mirai"); !r.ok()) return r.error();
  return m.install_systemd_unit("netflood", "/usr/bin/.mirai");
}

Status Mirai::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Dropper script through the interpreter: bash is attested, not the
  // script (P5).
  if (Status s = drop_file(m, "/tmp/mirai-drop.sh", "sh:mirai-dropper");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec_via_interpreter("/usr/bin/bash", "/tmp/mirai-drop.sh");
      !r.ok()) {
    return r.error();
  }
  // The bot lives on tmpfs (P3): IMA produces no measurement at all.
  if (Status s = drop_executable(m, "/dev/shm/.mirai", kMiraiBot); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/dev/shm/.mirai"); !r.ok()) return r.error();
  // Persistence points at tmpfs; the attacker re-drops after reboots.
  return m.install_systemd_unit("netflood", "/dev/shm/.mirai");
}

Status Mirai::post_reboot_activity(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/dev/shm/.mirai", kMiraiBot); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/dev/shm/.mirai"); !r.ok()) return r.error();
  return Status::ok_status();
}

std::vector<std::string> Mirai::payload_markers() const {
  return {".mirai", "mirai-drop.sh"};
}

// --------------------------------------------------------------- BASHLITE

Status Bashlite::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Deployment script executed directly (shebang): the script itself is
  // measured at BPRM_CHECK.
  if (Status s = drop_executable(m, "/opt/gafgyt/deploy.sh",
                                 "#!/usr/bin/bash\nsh:bashlite-deploy");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/opt/gafgyt/deploy.sh"); !r.ok()) return r.error();
  if (Status s = drop_executable(m, "/opt/gafgyt/bot", kBashliteBot); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/opt/gafgyt/bot"); !r.ok()) return r.error();
  return Status::ok_status();
}

Status Bashlite::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Same script, but `bash deploy.sh`: the interpreter is attested, the
  // script is an unmeasured data read (P5).
  if (Status s = drop_file(m, "/tmp/.gafgyt/deploy.sh", "sh:bashlite-deploy");
      !s.ok()) {
    return s;
  }
  if (auto r =
          m.exec_via_interpreter("/usr/bin/bash", "/tmp/.gafgyt/deploy.sh");
      !r.ok()) {
    return r.error();
  }
  // Bot binary under /tmp: measured but excluded (P1).
  if (Status s = drop_executable(m, "/tmp/.gafgyt/bot", kBashliteBot);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/.gafgyt/bot"); !r.ok()) return r.error();
  return Status::ok_status();
}

Status Bashlite::post_reboot_activity(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/tmp/.gafgyt/bot", kBashliteBot);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/.gafgyt/bot"); !r.ok()) return r.error();
  return Status::ok_status();
}

std::vector<std::string> Bashlite::payload_markers() const {
  return {"gafgyt"};
}

// ------------------------------------------------------------ Mortem-qBot

Status MortemQBot::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // The stock deployment script already works out of /tmp — this is the
  // sample that exposed P1 in the paper. Basic attackers still install
  // the bot to a monitored location and run it there.
  if (Status s = drop_executable(m, "/tmp/qbot-src/deploy.py",
                                 "#!/usr/bin/python3\npy:qbot-deploy");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/qbot-src/deploy.py"); !r.ok()) return r.error();
  if (Status s = drop_executable(m, "/usr/local/bin/qbot", kQbotBin); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/local/bin/qbot"); !r.ok()) return r.error();
  return m.install_systemd_unit("qbot", "/usr/local/bin/qbot");
}

Status MortemQBot::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Deployment through the interpreter (P5), working directory /tmp (P1).
  if (Status s = drop_file(m, "/tmp/qbot-src/deploy.py", "py:qbot-deploy");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec_via_interpreter("/usr/bin/python3",
                                      "/tmp/qbot-src/deploy.py");
      !r.ok()) {
    return r.error();
  }
  // Build the bot in /tmp and execute it once there: the measurement is
  // excluded by the policy (P1) but caches the inode.
  if (Status s = drop_executable(m, "/tmp/qbot-src/qbot", kQbotBin); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/qbot-src/qbot"); !r.ok()) return r.error();
  // P4: move to the destination and run from the monitored path — same
  // filesystem, same inode, no fresh measurement.
  if (Status s = m.fs().rename("/tmp/qbot-src/qbot", "/usr/local/bin/qbot");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/local/bin/qbot"); !r.ok()) return r.error();
  return m.install_systemd_unit("qbot", "/usr/local/bin/qbot");
}

Status MortemQBot::post_reboot_activity(AttackContext& ctx) {
  // systemd restarts the bot from /usr/local/bin at boot; the fresh
  // measurement cache finally sees the monitored path.
  (void)ctx;
  return Status::ok_status();
}

std::vector<std::string> MortemQBot::payload_markers() const {
  return {"qbot"};
}

// ----------------------------------------------------------------- Aoyama

Status Aoyama::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Naive deployment: the bot script is made executable and launched
  // directly — the shebang path measures the script itself.
  if (Status s = drop_executable(m, "/opt/aoyama/aoyama.py",
                                 std::string("#!/usr/bin/python3\n") + kAoyamaPy);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/opt/aoyama/aoyama.py"); !r.ok()) return r.error();
  return Status::ok_status();
}

Status Aoyama::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Pure-Python tradecraft: the script is plain data, every run goes
  // through the interpreter (P5). /usr/bin/python3 is in policy, so the
  // measurement list stays spotless.
  if (Status s = drop_file(m, "/opt/.cache/aoyama.py", kAoyamaPy); !s.ok()) {
    return s;
  }
  if (auto r = m.exec_via_interpreter("/usr/bin/python3",
                                      "/opt/.cache/aoyama.py");
      !r.ok()) {
    return r.error();
  }
  // Persistence also routes through the interpreter at boot — a unit that
  // execs python3, which is unremarkable on any host.
  return m.install_systemd_unit("metrics-export", "/usr/bin/python3");
}

Status Aoyama::post_reboot_activity(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (auto r = m.exec_via_interpreter("/usr/bin/python3",
                                      "/opt/.cache/aoyama.py");
      !r.ok()) {
    return r.error();
  }
  return Status::ok_status();
}

std::vector<std::string> Aoyama::payload_markers() const {
  return {"aoyama.py"};
}

// --------------------------------------------------------------- registry

std::vector<std::unique_ptr<Attack>> all_attacks() {
  std::vector<std::unique_ptr<Attack>> out;
  out.push_back(std::make_unique<AvosLocker>());
  out.push_back(std::make_unique<Diamorphine>());
  out.push_back(std::make_unique<Reptile>());
  out.push_back(std::make_unique<Vlany>());
  out.push_back(std::make_unique<Mirai>());
  out.push_back(std::make_unique<Bashlite>());
  out.push_back(std::make_unique<MortemQBot>());
  out.push_back(std::make_unique<Aoyama>());
  return out;
}

}  // namespace cia::attacks
