// Botnet command-and-control samples: Mirai, BASHLITE, Mortem-qBot, Aoyama.
#pragma once

#include "attacks/attack.hpp"

namespace cia::attacks {

/// Mirai — self-replicating bot with a C&C client. Adaptive: the bot runs
/// entirely from /dev/shm (tmpfs, invisible to IMA — P3) with a systemd
/// unit for persistence; the dropper shell script goes through the
/// interpreter (P5).
class Mirai : public Attack {
 public:
  std::string name() const override { return "Mirai"; }
  std::string category() const override { return "Botnet C&C"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

/// BASHLITE (aka Gafgyt) — shell-script-heavy bot. Adaptive: deployment
/// scripts are run as `bash script.sh` so only the interpreter is
/// attested (P5) and the bot binary lives in /tmp (P1).
class Bashlite : public Attack {
 public:
  std::string name() const override { return "BASHLITE"; }
  std::string category() const override { return "Botnet C&C"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

/// Mortem-qBot — the sample whose deployment script led the authors to
/// P1: it uses /tmp as its working directory. Adaptive: unpack and build
/// under /tmp (P1), P4-move the bot into /usr/local/bin, run it there —
/// the monitored location never shows up in the measurement list.
class MortemQBot : public Attack {
 public:
  std::string name() const override { return "Mortem-qBot"; }
  std::string category() const override { return "Botnet C&C"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

/// Aoyama — a bot implemented *entirely in Python*. Adaptive: every
/// invocation goes through the interpreter (P5), so the only thing IMA
/// ever attests is /usr/bin/python3 — which is in policy. Because Python
/// does not participate in script-execution control, this is the one
/// attack the paper's recommended fixes cannot catch (Mitigat. ✗).
class Aoyama : public Attack {
 public:
  std::string name() const override { return "Aoyama"; }
  std::string category() const override { return "Botnet C&C"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  bool mitigable() const override { return false; }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

}  // namespace cia::attacks
