#include "attacks/extended.hpp"

namespace cia::attacks {

namespace {
constexpr const char* kMinerBin = "elf:xmrig-miner";
}  // namespace

// ------------------------------------------------------------ XMRigMiner

Status XMRigMiner::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/opt/xmrig/xmrig", kMinerBin); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/opt/xmrig/xmrig"); !r.ok()) return r.error();
  return m.install_systemd_unit("kworker-helper", "/opt/xmrig/xmrig");
}

Status XMRigMiner::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Miners prize stealth over persistence: run from tmpfs (P3), fall back
  // to /tmp (P1) — nothing in a monitored location.
  if (Status s = drop_executable(m, "/dev/shm/.x/xmrig", kMinerBin); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/dev/shm/.x/xmrig"); !r.ok()) return r.error();
  if (Status s = drop_executable(m, "/tmp/.x/xmrig", kMinerBin); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/.x/xmrig"); !r.ok()) return r.error();
  return Status::ok_status();
}

Status XMRigMiner::post_reboot_activity(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/tmp/.x/xmrig", kMinerBin); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/.x/xmrig"); !r.ok()) return r.error();
  return Status::ok_status();
}

std::vector<std::string> XMRigMiner::payload_markers() const {
  return {"xmrig"};
}

// ---------------------------------------------- SshAuthorizedKeyBackdoor

Status SshAuthorizedKeyBackdoor::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Pure data-file persistence: a public key and a config flip. sshd (in
  // policy) will happily serve the attacker forever. No executable is
  // created, modified, or run.
  if (Status s = drop_file(m, "/root/.ssh/authorized_keys",
                           "ssh-ed25519 AAAA...attacker@c2");
      !s.ok()) {
    return s;
  }
  return drop_file(m, "/etc/ssh/sshd_config", "PermitRootLogin yes");
}

Status SshAuthorizedKeyBackdoor::run_adaptive(AttackContext& ctx) {
  // There is nothing to adapt: the basic variant is already invisible.
  return run_basic(ctx);
}

Status SshAuthorizedKeyBackdoor::post_reboot_activity(AttackContext& ctx) {
  // The key survives the reboot; the attacker simply logs back in —
  // which executes only in-policy binaries.
  auto& m = *ctx.machine;
  if (m.fs().is_file("/usr/bin/bash")) {
    if (auto r = m.exec("/usr/bin/bash"); !r.ok()) return r.error();
  }
  return Status::ok_status();
}

std::vector<std::string> SshAuthorizedKeyBackdoor::payload_markers() const {
  return {"authorized_keys", "sshd_config"};
}

// ------------------------------------------------------------ GrubBootkit

Status GrubBootkit::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Overwrite the first-stage bootloader in place. /boot writes are not
  // measured by IMA (nothing is executed *now*), so the implant lies
  // dormant until the next boot — where only PCR 4 can expose it.
  return m.fs().write_file(oskernel::Machine::kBootloaderPath,
                           to_bytes("efi:grub-implant"));
}

Status GrubBootkit::run_adaptive(AttackContext& ctx) { return run_basic(ctx); }

Status GrubBootkit::post_reboot_activity(AttackContext& ctx) {
  (void)ctx;  // the implant runs as part of the boot chain itself
  return Status::ok_status();
}

std::vector<std::string> GrubBootkit::payload_markers() const {
  return {"grubx64.efi"};
}

// --------------------------------------------------------------- registry

std::vector<std::unique_ptr<Attack>> extended_attacks() {
  std::vector<std::unique_ptr<Attack>> out;
  out.push_back(std::make_unique<XMRigMiner>());
  out.push_back(std::make_unique<SshAuthorizedKeyBackdoor>());
  out.push_back(std::make_unique<GrubBootkit>());
  return out;
}

}  // namespace cia::attacks
