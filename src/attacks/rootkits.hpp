// Rootkit samples: Diamorphine, Reptile, Vlany.
#pragma once

#include "attacks/attack.hpp"

namespace cia::attacks {

/// Diamorphine — a loadable-kernel-module rootkit. The adaptive variant is
/// the paper's flagship P4 case: the module is built and first loaded in
/// /tmp (measured by IMA but excluded by Keylime), then *moved* to
/// /lib/modules and loaded from there — same filesystem, same inode, so
/// IMA's once-per-inode cache never produces a second entry and the
/// monitored location stays clean in the log.
class Diamorphine : public Attack {
 public:
  std::string name() const override { return "Diamorphine"; }
  std::string category() const override { return "Rootkit"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

/// Reptile — LKM rootkit with a userland control client. Adaptive: the
/// module uses the P4 move trick; the client runs from /dev/shm, a tmpfs
/// IMA never measures (P3).
class Reptile : public Attack {
 public:
  std::string name() const override { return "Reptile"; }
  std::string category() const override { return "Rootkit"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

/// Vlany — a userland LD_PRELOAD rootkit: a shared library injected into
/// every process via /etc/ld.so.preload. Adaptive: the installer script
/// runs through bash (P5: only the interpreter is attested) and the
/// library stays under /tmp (P1) where its FILE_MMAP measurements are
/// excluded.
class Vlany : public Attack {
 public:
  std::string name() const override { return "Vlany"; }
  std::string category() const override { return "Rootkit"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4,
            Problem::kP5};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;
};

}  // namespace cia::attacks
