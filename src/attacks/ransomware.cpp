#include "attacks/ransomware.hpp"

namespace cia::attacks {

namespace {
constexpr const char* kLockerBin = "elf:avoslocker:payload";
}  // namespace

Status AvosLocker::encrypt_victim_files(oskernel::Machine& m) const {
  // Encrypt (rewrite + rename) whatever user data exists; create a ransom
  // note. Data files are not measured by IMA, so none of this is visible
  // to attestation — only the locker binary itself can be.
  auto& fs = m.fs();
  for (const std::string& victim : fs.list_files("/home")) {
    if (Status s = fs.write_file(victim, to_bytes("encrypted:" + victim));
        !s.ok()) {
      return s;
    }
    (void)fs.rename(victim, victim + ".avos");
  }
  return drop_file(m, "/home/GET_YOUR_FILES_BACK.txt", "ransom note");
}

Status AvosLocker::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/usr/local/bin/avoslocker", kLockerBin);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/local/bin/avoslocker"); !r.ok()) return r.error();
  return encrypt_victim_files(m);
}

Status AvosLocker::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // P2 first: plant a benign-looking unknown helper and let the verifier
  // trip over it. Stock Keylime halts and stops polling — everything
  // after this point lands in the never-evaluated tail of the log.
  if (Status s = drop_executable(m, "/usr/local/bin/apt-refresh-helper",
                                 "elf:benign-looking-helper");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/local/bin/apt-refresh-helper"); !r.ok()) {
    return r.error();
  }
  ctx.wait_for_attestation();  // the FP fires; polling stops (P2)

  // P1: the payload lives and runs in /tmp, which the policy excludes.
  if (Status s = drop_executable(m, "/tmp/.avos/avoslocker", kLockerBin);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/.avos/avoslocker"); !r.ok()) return r.error();
  return encrypt_victim_files(m);
}

Status AvosLocker::post_reboot_activity(AttackContext& ctx) {
  // /tmp is cleaned at boot; the attacker (still holding access) re-drops
  // the locker for a second extortion round.
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/tmp/.avos/avoslocker", kLockerBin);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/tmp/.avos/avoslocker"); !r.ok()) return r.error();
  return Status::ok_status();
}

std::vector<std::string> AvosLocker::payload_markers() const {
  return {"avoslocker"};
}

}  // namespace cia::attacks
