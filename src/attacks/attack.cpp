#include "attacks/attack.hpp"

namespace cia::attacks {

const char* problem_name(Problem p) {
  switch (p) {
    case Problem::kP1: return "P1";
    case Problem::kP2: return "P2";
    case Problem::kP3: return "P3";
    case Problem::kP4: return "P4";
    case Problem::kP5: return "P5";
  }
  return "?";
}

Status drop_executable(oskernel::Machine& m, const std::string& path,
                       const std::string& content) {
  if (m.fs().exists(path)) {
    if (Status s = m.fs().write_file(path, to_bytes(content)); !s.ok()) return s;
    return m.fs().chmod_exec(path, true);
  }
  return m.fs().create_file(path, to_bytes(content), /*executable=*/true);
}

Status drop_file(oskernel::Machine& m, const std::string& path,
                 const std::string& content) {
  if (m.fs().exists(path)) {
    return m.fs().write_file(path, to_bytes(content));
  }
  return m.fs().create_file(path, to_bytes(content), /*executable=*/false);
}

}  // namespace cia::attacks
