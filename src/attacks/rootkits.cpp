#include "attacks/rootkits.hpp"

namespace cia::attacks {

// ------------------------------------------------------------ Diamorphine

namespace {
constexpr const char* kDiamorphineKo = "ko:diamorphine";
constexpr const char* kReptileKo = "ko:reptile";
constexpr const char* kReptileCmd = "elf:reptile_cmd";
constexpr const char* kVlanyLib = "so:libvlany-hooks";
}  // namespace

Status Diamorphine::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Unpack sources and build in /usr/src (make/gcc are in-policy system
  // binaries; the produced .ko is not).
  if (Status s = drop_file(m, "/usr/src/diamorphine/diamorphine.c", "src");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/bin/bash"); !r.ok()) return r.error();  // make
  if (Status s = drop_file(m, "/usr/src/diamorphine/diamorphine.ko",
                           kDiamorphineKo);
      !s.ok()) {
    return s;
  }
  // insmod: MODULE_CHECK fires on an ext4 path no policy knows.
  if (auto r = m.load_kernel_module("/usr/src/diamorphine/diamorphine.ko");
      !r.ok()) {
    return r.error();
  }
  return Status::ok_status();
}

Status Diamorphine::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Build in /tmp: every measurement lands under the excluded prefix (P1).
  if (Status s = drop_file(m, "/tmp/.build/diamorphine.c", "src"); !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/bin/bash"); !r.ok()) return r.error();  // make
  if (Status s = drop_file(m, "/tmp/.build/diamorphine.ko", kDiamorphineKo);
      !s.ok()) {
    return s;
  }
  // First load from /tmp: IMA measures it (root fs!) but Keylime's
  // exclude swallows the entry.
  if (auto r = m.load_kernel_module("/tmp/.build/diamorphine.ko"); !r.ok()) {
    return r.error();
  }
  // P4: move to the canonical module directory — same filesystem, same
  // inode — and load from the monitored path. No new measurement appears.
  const std::string dest =
      "/lib/modules/" + m.kernel_version() + "/diamorphine.ko";
  if (Status s = m.fs().rename("/tmp/.build/diamorphine.ko", dest); !s.ok()) {
    return s;
  }
  if (auto r = m.load_kernel_module(dest); !r.ok()) return r.error();
  // Persist across reboots.
  return m.install_module_autoload("diamorphine", dest);
}

Status Diamorphine::post_reboot_activity(AttackContext& ctx) {
  // Nothing to do: the modules-load.d entry reloads the rootkit at boot,
  // which is exactly when a fresh measurement can finally appear.
  (void)ctx;
  return Status::ok_status();
}

std::vector<std::string> Diamorphine::payload_markers() const {
  return {"diamorphine.ko"};
}

// ---------------------------------------------------------------- Reptile

Status Reptile::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  if (Status s = drop_file(m, "/reptile/reptile.ko", kReptileKo); !s.ok()) {
    return s;
  }
  if (Status s = drop_executable(m, "/reptile/reptile_cmd", kReptileCmd);
      !s.ok()) {
    return s;
  }
  if (auto r = m.load_kernel_module("/reptile/reptile.ko"); !r.ok()) {
    return r.error();
  }
  if (auto r = m.exec("/reptile/reptile_cmd"); !r.ok()) return r.error();
  return Status::ok_status();
}

Status Reptile::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Module: stage in /tmp (P1), first load there, P4-move to /lib/modules.
  if (Status s = drop_file(m, "/tmp/.r/reptile.ko", kReptileKo); !s.ok()) {
    return s;
  }
  if (auto r = m.load_kernel_module("/tmp/.r/reptile.ko"); !r.ok()) {
    return r.error();
  }
  const std::string dest = "/lib/modules/" + m.kernel_version() + "/reptile.ko";
  if (Status s = m.fs().rename("/tmp/.r/reptile.ko", dest); !s.ok()) return s;
  if (auto r = m.load_kernel_module(dest); !r.ok()) return r.error();
  if (Status s = m.install_module_autoload("reptile", dest); !s.ok()) return s;

  // Userland client: /dev/shm is tmpfs — IMA is blind there (P3).
  if (Status s = drop_executable(m, "/dev/shm/.r/reptile_cmd", kReptileCmd);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/dev/shm/.r/reptile_cmd"); !r.ok()) return r.error();
  return Status::ok_status();
}

Status Reptile::post_reboot_activity(AttackContext& ctx) {
  // Module comes back via autoload; the client must be re-dropped because
  // tmpfs evaporated.
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/dev/shm/.r/reptile_cmd", kReptileCmd);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/dev/shm/.r/reptile_cmd"); !r.ok()) return r.error();
  return Status::ok_status();
}

std::vector<std::string> Reptile::payload_markers() const {
  return {"reptile.ko", "reptile_cmd"};
}

// ------------------------------------------------------------------ Vlany

Status Vlany::run_basic(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // Installer drops the hooking library into /lib and registers it in
  // /etc/ld.so.preload; the library is mmap'd into the next process.
  if (Status s = drop_executable(m, "/lib/libvlany.so", kVlanyLib); !s.ok()) {
    return s;
  }
  if (Status s = drop_file(m, "/etc/ld.so.preload", "/lib/libvlany.so");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/bin/bash"); !r.ok()) return r.error();
  m.mmap_library("/lib/libvlany.so");  // FILE_MMAP measurement
  return Status::ok_status();
}

Status Vlany::run_adaptive(AttackContext& ctx) {
  auto& m = *ctx.machine;
  // The install script is fed to bash explicitly: only /usr/bin/bash hits
  // BPRM_CHECK (P5).
  if (Status s = drop_file(m, "/tmp/.v/install.sh", "sh:vlany-installer");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec_via_interpreter("/usr/bin/bash", "/tmp/.v/install.sh");
      !r.ok()) {
    return r.error();
  }
  // The library stays in /tmp (P1): its FILE_MMAP entries are excluded.
  if (Status s = drop_executable(m, "/tmp/.v/libvlany.so", kVlanyLib);
      !s.ok()) {
    return s;
  }
  if (Status s = drop_file(m, "/etc/ld.so.preload", "/tmp/.v/libvlany.so");
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/bin/bash"); !r.ok()) return r.error();
  m.mmap_library("/tmp/.v/libvlany.so");
  return Status::ok_status();
}

Status Vlany::post_reboot_activity(AttackContext& ctx) {
  // ld.so.preload survived the reboot but the /tmp library did not; the
  // attacker restores it and it is mapped into the first process.
  auto& m = *ctx.machine;
  if (Status s = drop_executable(m, "/tmp/.v/libvlany.so", kVlanyLib);
      !s.ok()) {
    return s;
  }
  if (auto r = m.exec("/usr/bin/bash"); !r.ok()) return r.error();
  m.mmap_library("/tmp/.v/libvlany.so");
  return Status::ok_status();
}

std::vector<std::string> Vlany::payload_markers() const {
  return {"libvlany.so", ".v/install.sh"};
}

}  // namespace cia::attacks
