// Attack-sample framework for the false-negative evaluation (§IV).
//
// Each sample reproduces the *on-disk and exec footprint* of a documented
// real-world attack in two flavours:
//   * basic    — the attacker is unaware of Keylime and behaves naturally;
//   * adaptive — the attacker exploits one or more of the discovered
//                problems (P1-P5) to stay invisible.
//
// Attacks only touch the Machine (drop files, chmod, exec, load modules,
// install persistence); whether Keylime notices is decided entirely by
// the attestation pipeline — nothing here is hard-coded as
// detected/undetected.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "oskernel/machine.hpp"

namespace cia::attacks {

/// The five problems of §IV-B.
enum class Problem { kP1, kP2, kP3, kP4, kP5 };

const char* problem_name(Problem p);

/// Everything an attack may interact with. `attestation_round` lets an
/// adaptive attacker *wait for a verifier poll* — needed to weaponize P2,
/// where a planted false positive must be observed (and halt the
/// verifier) before the payload runs.
struct AttackContext {
  oskernel::Machine* machine = nullptr;
  std::function<void()> attestation_round;  // may be empty

  void wait_for_attestation() const {
    if (attestation_round) attestation_round();
  }
};

class Attack {
 public:
  virtual ~Attack() = default;

  virtual std::string name() const = 0;
  virtual std::string category() const = 0;  // Ransomware / Rootkit / Botnet C&C

  /// Which problems the adaptive variant can exploit (Table II bullets).
  virtual std::vector<Problem> exploits() const = 0;

  /// Expected mitigated-run outcome from the paper's last column: true
  /// for the seven attacks the recommended fixes catch, false for Aoyama.
  virtual bool mitigable() const { return true; }

  /// Run the attack with no knowledge of Keylime.
  virtual Status run_basic(AttackContext& ctx) = 0;

  /// Run the attack exploiting P1-P5.
  virtual Status run_adaptive(AttackContext& ctx) = 0;

  /// The attacker (or their persistence) acts again after a reboot —
  /// this is what "detectable upon reboot / fresh attestation" hinges on.
  virtual Status post_reboot_activity(AttackContext& ctx) = 0;

  /// Substrings identifying this attack's payload files: an alert whose
  /// path contains one of them constitutes *detection of this attack*.
  /// Decoy files planted purely to trigger false positives are excluded.
  virtual std::vector<std::string> payload_markers() const = 0;
};

/// All eight samples of Table II, in the paper's row order.
std::vector<std::unique_ptr<Attack>> all_attacks();

// ------------------------------------------------------- shared helpers

/// Drop an executable payload file (parents created).
Status drop_executable(oskernel::Machine& m, const std::string& path,
                       const std::string& content);

/// Drop a non-executable file (scripts run via interpreters, configs).
Status drop_file(oskernel::Machine& m, const std::string& path,
                 const std::string& content);

}  // namespace cia::attacks
