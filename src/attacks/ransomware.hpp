// Ransomware sample: AvosLocker.
#pragma once

#include "attacks/attack.hpp"

namespace cia::attacks {

/// AvosLocker — Linux variant. A single self-contained binary that
/// enumerates the filesystem and encrypts data files. No scripts, no
/// interpreters, so P5 is not applicable (the one non-P5 row of Table II).
///
/// Basic: the operator-visible behaviour — drop the locker under
/// /usr/local/bin and run it.
/// Adaptive: stage and execute entirely from /tmp. The binary IS measured
/// by IMA (/tmp sits on the root filesystem) but the Keylime policy's
/// "/tmp/*" exclude silences it (P1). A decoy false positive is planted
/// first so a cautious attacker also gets the P2 blind window.
class AvosLocker : public Attack {
 public:
  std::string name() const override { return "AvosLocker"; }
  std::string category() const override { return "Ransomware"; }
  std::vector<Problem> exploits() const override {
    return {Problem::kP1, Problem::kP2, Problem::kP3, Problem::kP4};
  }
  Status run_basic(AttackContext& ctx) override;
  Status run_adaptive(AttackContext& ctx) override;
  Status post_reboot_activity(AttackContext& ctx) override;
  std::vector<std::string> payload_markers() const override;

 private:
  Status encrypt_victim_files(oskernel::Machine& m) const;
};

}  // namespace cia::attacks
