#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>

#include "experiments/chaos_experiment.hpp"

namespace cia::scenario {

namespace {

constexpr std::int64_t kMaxExactInt = 9007199254740992;  // 2^53

/// Typed field access over one JSON object with strict, path-qualified
/// diagnostics. First error wins; later getters become no-ops so a
/// caller can read a whole section unconditionally and check once.
class ObjectReader {
 public:
  ObjectReader(const json::Value& value, std::string path, Error* error)
      : value_(value), path_(std::move(path)), error_(error) {
    if (!failed() && !value_.is_object()) {
      fail(path_ + ": must be a JSON object");
    }
  }

  bool failed() const { return error_->message.empty() ? false : true; }

  /// Reject any key outside `allowed` (call after reading the fields).
  void reject_unknown(std::initializer_list<const char*> allowed) {
    if (failed() || !value_.is_object()) return;
    for (const auto& [key, unused] : value_.as_object()) {
      (void)unused;
      const bool known =
          std::any_of(allowed.begin(), allowed.end(),
                      [&key](const char* a) { return key == a; });
      if (!known) {
        fail(path_ + ": unknown field \"" + key + "\"");
        return;
      }
    }
  }

  bool has(const char* key) const {
    return value_.is_object() && value_.find(key) != nullptr;
  }

  std::int64_t integer(const char* key, std::int64_t def, std::int64_t min,
                       std::int64_t max) {
    if (failed()) return def;
    const json::Value* v = value_.find(key);
    if (!v) return def;
    if (!v->is_number() || v->as_number() != std::floor(v->as_number()) ||
        v->as_number() < -static_cast<double>(kMaxExactInt) ||
        v->as_number() > static_cast<double>(kMaxExactInt)) {
      fail(field(key) + ": must be an integer");
      return def;
    }
    const std::int64_t n = v->as_int();
    if (n < min || n > max) {
      fail(field(key) + ": must be between " + std::to_string(min) + " and " +
           std::to_string(max));
      return def;
    }
    return n;
  }

  double number(const char* key, double def, double min, double max) {
    if (failed()) return def;
    const json::Value* v = value_.find(key);
    if (!v) return def;
    if (!v->is_number()) {
      fail(field(key) + ": must be a number");
      return def;
    }
    const double n = v->as_number();
    if (!(n >= min && n <= max)) {
      fail(field(key) + ": must be between " + format_number(min) + " and " +
           format_number(max));
      return def;
    }
    return n;
  }

  bool boolean(const char* key, bool def) {
    if (failed()) return def;
    const json::Value* v = value_.find(key);
    if (!v) return def;
    if (!v->is_bool()) {
      fail(field(key) + ": must be a boolean");
      return def;
    }
    return v->as_bool();
  }

  std::string string(const char* key, const std::string& def) {
    if (failed()) return def;
    const json::Value* v = value_.find(key);
    if (!v) return def;
    if (!v->is_string()) {
      fail(field(key) + ": must be a string");
      return def;
    }
    return v->as_string();
  }

  /// The raw child value (nullptr when absent); type checks are the
  /// caller's job (nested ObjectReader / array walk).
  const json::Value* child(const char* key) const { return value_.find(key); }

  std::string field(const char* key) const { return path_ + "." + key; }

  void fail(std::string message) {
    if (failed()) return;
    *error_ = err(Errc::kInvalidArgument, std::move(message));
  }

 private:
  static std::string format_number(double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
      return std::to_string(static_cast<std::int64_t>(v));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
  }

  const json::Value& value_;
  std::string path_;
  Error* error_;
};

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 80) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

FleetSection read_fleet(const json::Value& v, Error* error) {
  FleetSection fleet;
  ObjectReader r(v, "$.fleet", error);
  fleet.agents = r.integer("agents", fleet.agents, 1, 100000);
  fleet.shards = r.integer("shards", fleet.shards, 1, 64);
  fleet.binaries_per_machine =
      r.integer("binaries_per_machine", fleet.binaries_per_machine, 1, 4096);
  fleet.execs_per_round =
      r.integer("execs_per_round", fleet.execs_per_round, 1, 4096);
  fleet.retrying_transport =
      r.boolean("retrying_transport", fleet.retrying_transport);
  r.reject_unknown({"agents", "shards", "binaries_per_machine",
                    "execs_per_round", "retrying_transport"});
  return fleet;
}

FaultSection read_faults(const json::Value& v, Error* error) {
  FaultSection faults;
  ObjectReader r(v, "$.faults", error);
  faults.drop_rate = r.number("drop_rate", faults.drop_rate, 0.0, 0.999);
  faults.timeout_rate = r.number("timeout_rate", faults.timeout_rate, 0.0, 0.999);
  faults.duplicate_rate =
      r.number("duplicate_rate", faults.duplicate_rate, 0.0, 0.999);
  faults.timeout_latency =
      r.integer("timeout_latency", faults.timeout_latency, 0, kDay);
  r.reject_unknown(
      {"drop_rate", "timeout_rate", "duplicate_rate", "timeout_latency"});
  return faults;
}

std::vector<ResizeEvent> read_resize_at(const json::Value& v, Error* error) {
  std::vector<ResizeEvent> events;
  if (!v.is_array()) {
    if (error->message.empty()) {
      *error = err(Errc::kInvalidArgument, "$.resize_at: must be an array");
    }
    return events;
  }
  std::size_t i = 0;
  for (const json::Value& entry : v.as_array()) {
    const std::string path = "$.resize_at[" + std::to_string(i) + "]";
    ObjectReader r(entry, path, error);
    ResizeEvent event;
    if (!r.has("round")) r.fail(path + ".round: required field is missing");
    if (!r.has("shards")) r.fail(path + ".shards: required field is missing");
    event.round = r.integer("round", 0, 0, 100000);
    event.shards = r.integer("shards", 1, 1, 64);
    r.reject_unknown({"round", "shards"});
    events.push_back(event);
    ++i;
  }
  return events;
}

PipelineSection read_pipeline(const json::Value& v, Error* error) {
  PipelineSection pipeline;
  ObjectReader r(v, "$.storm.pipeline", error);
  pipeline.cooldown = r.integer("cooldown", pipeline.cooldown, 0, kDay);
  pipeline.quiet_close = r.integer("quiet_close", pipeline.quiet_close, 0, kDay);
  pipeline.staleness_after =
      r.integer("staleness_after", pipeline.staleness_after, 0, 100000);
  pipeline.sample_agents =
      r.integer("sample_agents", pipeline.sample_agents, 1, 1000);
  r.reject_unknown(
      {"cooldown", "quiet_close", "staleness_after", "sample_agents"});
  return pipeline;
}

StormSection read_storm(const json::Value& v, Error* error) {
  StormSection storm;
  ObjectReader r(v, "$.storm", error);
  storm.warmup_rounds = r.integer("warmup_rounds", storm.warmup_rounds, 0, 1000);
  storm.storm_rounds =
      r.integer("storm_rounds", storm.storm_rounds, 1, 100000);
  storm.round_period = r.integer("round_period", storm.round_period, 1, kDay);
  storm.bad_paths = r.integer("bad_paths", storm.bad_paths, 1, 4096);
  if (const json::Value* p = r.child("pipeline")) {
    storm.pipeline = read_pipeline(*p, error);
  }
  r.reject_unknown(
      {"warmup_rounds", "storm_rounds", "round_period", "bad_paths",
       "pipeline"});
  return storm;
}

PolicyRolloutSection read_policy_rollout(const json::Value& v, Error* error) {
  PolicyRolloutSection rollout;
  ObjectReader r(v, "$.policy_rollout", error);
  rollout.canary_fraction =
      r.number("canary_fraction", rollout.canary_fraction, 0.000001, 1.0);
  rollout.bake_rounds = r.integer("bake_rounds", rollout.bake_rounds, 1, 100000);
  rollout.alert_budget =
      r.integer("alert_budget", rollout.alert_budget, 0, kMaxExactInt);
  rollout.seed = static_cast<std::uint64_t>(
      r.integer("seed", static_cast<std::int64_t>(rollout.seed), 0,
                kMaxExactInt));
  r.reject_unknown({"canary_fraction", "bake_rounds", "alert_budget", "seed"});
  return rollout;
}

ChurnSection read_churn(const json::Value& v, Error* error) {
  ChurnSection churn;
  ObjectReader r(v, "$.churn", error);
  churn.rounds = r.integer("rounds", churn.rounds, 1, 100000);
  churn.round_period = r.integer("round_period", churn.round_period, 1, kDay);
  churn.max_joins_per_round =
      r.integer("max_joins_per_round", churn.max_joins_per_round, 0, 1000);
  churn.max_leaves_per_round =
      r.integer("max_leaves_per_round", churn.max_leaves_per_round, 0, 1000);
  churn.max_reboots_per_round =
      r.integer("max_reboots_per_round", churn.max_reboots_per_round, 0, 1000);
  r.reject_unknown({"rounds", "round_period", "max_joins_per_round",
                    "max_leaves_per_round", "max_reboots_per_round"});
  return churn;
}

ChaosSection read_chaos(const json::Value& v, Error* error) {
  ChaosSection chaos;
  ObjectReader r(v, "$.chaos", error);
  chaos.script = r.string("script", chaos.script);
  chaos.nodes = r.integer("nodes", chaos.nodes, 1, 64);
  chaos.days = r.integer("days", chaos.days, 2, 366);
  chaos.retrying_transport =
      r.boolean("retrying_transport", chaos.retrying_transport);
  chaos.base_packages = r.integer("base_packages", chaos.base_packages, 1, 100000);
  chaos.provision_extra =
      r.integer("provision_extra", chaos.provision_extra, 0, 10000);
  r.reject_unknown({"script", "nodes", "days", "retrying_transport",
                    "base_packages", "provision_extra"});
  if (!r.failed()) {
    const auto& scripts = experiments::chaos_scenarios();
    if (std::find(scripts.begin(), scripts.end(), chaos.script) ==
        scripts.end()) {
      r.fail("$.chaos.script: unknown chaos script \"" + chaos.script +
             "\" (see cia_chaos list)");
    }
  }
  return chaos;
}

FleetRunSection read_fleet_run(const json::Value& v, Error* error) {
  FleetRunSection run;
  ObjectReader r(v, "$.fleet_run", error);
  run.rounds = r.integer("rounds", run.rounds, 1, 100000);
  r.reject_unknown({"rounds"});
  return run;
}

AttacksSection read_attacks(const json::Value& v, Error* error) {
  AttacksSection attacks;
  ObjectReader r(v, "$.attacks", error);
  attacks.archive_packages =
      r.integer("archive_packages", attacks.archive_packages, 50, 100000);
  r.reject_unknown({"archive_packages"});
  return attacks;
}

json::Value fleet_json(const FleetSection& fleet) {
  json::Value v;
  v.set("agents", fleet.agents);
  v.set("shards", fleet.shards);
  v.set("binaries_per_machine", fleet.binaries_per_machine);
  v.set("execs_per_round", fleet.execs_per_round);
  v.set("retrying_transport", fleet.retrying_transport);
  return v;
}

json::Value faults_json(const FaultSection& faults) {
  json::Value v;
  v.set("drop_rate", faults.drop_rate);
  v.set("timeout_rate", faults.timeout_rate);
  v.set("duplicate_rate", faults.duplicate_rate);
  v.set("timeout_latency", faults.timeout_latency);
  return v;
}

json::Value policy_rollout_json(const PolicyRolloutSection& rollout) {
  json::Value v;
  v.set("canary_fraction", rollout.canary_fraction);
  v.set("bake_rounds", rollout.bake_rounds);
  v.set("alert_budget", rollout.alert_budget);
  v.set("seed", static_cast<std::int64_t>(rollout.seed));
  return v;
}

json::Value resize_json(const std::vector<ResizeEvent>& events) {
  json::Value v{json::Array{}};
  for (const ResizeEvent& event : events) {
    json::Value e;
    e.set("round", event.round);
    e.set("shards", event.shards);
    v.push_back(std::move(e));
  }
  return v;
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kChaos: return "chaos";
    case Kind::kChurn: return "churn";
    case Kind::kStorm: return "storm";
    case Kind::kFleet: return "fleet";
    case Kind::kAttacks: return "attacks";
  }
  return "unknown";
}

Result<Scenario> Scenario::from_json(const json::Value& doc) {
  Error error;
  ObjectReader top(doc, "$", &error);
  Scenario sc;

  // Version first: a future format must fail closed with a message that
  // names the field, not trip over fields it half-understands.
  if (!top.has("version")) {
    top.fail("$.version: required field is missing");
  }
  sc.version = top.integer("version", 1, 1, kMaxExactInt);
  if (!top.failed() && sc.version != 1) {
    top.fail("$.version: unsupported scenario version " +
             std::to_string(sc.version) + " (this build reads version 1)");
  }

  if (!top.has("name")) top.fail("$.name: required field is missing");
  sc.name = top.string("name", "");
  if (!top.failed() && !valid_name(sc.name)) {
    top.fail("$.name: must be 1-80 characters of [a-z0-9._-]");
  }

  if (!top.has("kind")) top.fail("$.kind: required field is missing");
  const std::string kind = top.string("kind", "");
  if (!top.failed()) {
    if (kind == "chaos") {
      sc.kind = Kind::kChaos;
    } else if (kind == "churn") {
      sc.kind = Kind::kChurn;
    } else if (kind == "storm") {
      sc.kind = Kind::kStorm;
    } else if (kind == "fleet") {
      sc.kind = Kind::kFleet;
    } else if (kind == "attacks") {
      sc.kind = Kind::kAttacks;
    } else {
      top.fail("$.kind: unknown kind \"" + kind +
               "\" (expected chaos, churn, storm, fleet, or attacks)");
    }
  }
  sc.seed = static_cast<std::uint64_t>(
      top.integer("seed", static_cast<std::int64_t>(sc.seed), 0, kMaxExactInt));

  top.reject_unknown({"version", "name", "kind", "seed", "fleet", "faults",
                      "resize_at", "storm", "policy_rollout", "churn", "chaos",
                      "fleet_run", "attacks"});
  if (top.failed()) return error;

  // Section / kind compatibility.
  struct SectionRule {
    const char* section;
    Kind allowed[3];
    std::size_t count;
  };
  static constexpr SectionRule kRules[] = {
      {"fleet", {Kind::kStorm, Kind::kChurn, Kind::kFleet}, 3},
      {"faults", {Kind::kStorm, Kind::kChurn, Kind::kFleet}, 3},
      {"resize_at", {Kind::kStorm, Kind::kChurn, Kind::kChurn}, 2},
      {"storm", {Kind::kStorm, Kind::kStorm, Kind::kStorm}, 1},
      {"policy_rollout", {Kind::kStorm, Kind::kFleet, Kind::kFleet}, 2},
      {"churn", {Kind::kChurn, Kind::kChurn, Kind::kChurn}, 1},
      {"chaos", {Kind::kChaos, Kind::kChaos, Kind::kChaos}, 1},
      {"fleet_run", {Kind::kFleet, Kind::kFleet, Kind::kFleet}, 1},
      {"attacks", {Kind::kAttacks, Kind::kAttacks, Kind::kAttacks}, 1},
  };
  for (const SectionRule& rule : kRules) {
    if (!top.has(rule.section)) continue;
    const bool allowed = std::find(rule.allowed, rule.allowed + rule.count,
                                   sc.kind) != rule.allowed + rule.count;
    if (!allowed) {
      return err(Errc::kInvalidArgument,
                 std::string("$.") + rule.section + ": not valid for kind \"" +
                     kind_name(sc.kind) + "\"");
    }
  }
  const char* required_section = nullptr;
  switch (sc.kind) {
    case Kind::kChaos: required_section = "chaos"; break;
    case Kind::kChurn: required_section = "churn"; break;
    case Kind::kStorm: required_section = "storm"; break;
    case Kind::kFleet: required_section = "fleet_run"; break;
    case Kind::kAttacks: required_section = "attacks"; break;
  }
  if (!top.has(required_section)) {
    return err(Errc::kInvalidArgument,
               std::string("$.") + required_section +
                   ": required for kind \"" + kind_name(sc.kind) + "\"");
  }

  if (const json::Value* v = top.child("fleet")) {
    sc.fleet = read_fleet(*v, &error);
  }
  if (const json::Value* v = top.child("faults")) {
    sc.faults = read_faults(*v, &error);
  }
  if (const json::Value* v = top.child("resize_at")) {
    sc.resize_at = read_resize_at(*v, &error);
  }
  if (const json::Value* v = top.child("storm")) {
    sc.storm = read_storm(*v, &error);
  }
  if (const json::Value* v = top.child("policy_rollout")) {
    sc.policy_rollout = read_policy_rollout(*v, &error);
  }
  if (const json::Value* v = top.child("churn")) {
    sc.churn = read_churn(*v, &error);
  }
  if (const json::Value* v = top.child("chaos")) {
    sc.chaos = read_chaos(*v, &error);
  }
  if (const json::Value* v = top.child("fleet_run")) {
    sc.fleet_run = read_fleet_run(*v, &error);
  }
  if (const json::Value* v = top.child("attacks")) {
    sc.attacks = read_attacks(*v, &error);
  }
  if (!error.message.empty()) return error;

  // Cross-reference checks: every constraint a hand-coded harness used
  // to enforce implicitly, now a named rejection.
  if (sc.kind == Kind::kStorm) {
    // Storm fleets default to retries-off; only an EXPLICIT true is the
    // contradiction worth rejecting.
    const json::Value* fleet_v = top.child("fleet");
    const bool explicit_retry =
        fleet_v && fleet_v->is_object() && fleet_v->find("retrying_transport");
    if (sc.fleet.retrying_transport && explicit_retry) {
      return err(Errc::kInvalidArgument,
                 "$.fleet.retrying_transport: kind \"storm\" requires false "
                 "(retry backoff shifts shard clocks by co-residency, "
                 "breaking incident-stream partition invariance)");
    }
    sc.fleet.retrying_transport = false;
    if (sc.faults.timeout_rate > 0 || sc.faults.duplicate_rate > 0) {
      return err(Errc::kInvalidArgument,
                 std::string("$.faults.") +
                     (sc.faults.timeout_rate > 0 ? "timeout_rate"
                                                 : "duplicate_rate") +
                     ": kind \"storm\" allows drop faults only (time-free "
                     "chaos keeps alert timestamps partition-invariant)");
    }
    if (sc.storm.bad_paths > sc.fleet.binaries_per_machine) {
      return err(Errc::kInvalidArgument,
                 "$.storm.bad_paths: exceeds fleet.binaries_per_machine (" +
                     std::to_string(sc.fleet.binaries_per_machine) + ")");
    }
    if (sc.resize_at.size() > 1) {
      return err(Errc::kInvalidArgument,
                 "$.resize_at: kind \"storm\" supports at most one resize "
                 "event");
    }
    if (!sc.resize_at.empty() &&
        sc.resize_at[0].round >= sc.storm.storm_rounds) {
      return err(Errc::kInvalidArgument,
                 "$.resize_at[0].round: must be < storm.storm_rounds (" +
                     std::to_string(sc.storm.storm_rounds) + ")");
    }
  }
  if (sc.kind == Kind::kChurn) {
    for (std::size_t i = 0; i < sc.resize_at.size(); ++i) {
      if (sc.resize_at[i].round >= sc.churn.rounds) {
        return err(Errc::kInvalidArgument,
                   "$.resize_at[" + std::to_string(i) +
                       "].round: must be < churn.rounds (" +
                       std::to_string(sc.churn.rounds) + ")");
      }
    }
  }
  if (sc.policy_rollout && sc.kind == Kind::kFleet) {
    // The promote path needs the bake window to close inside the run;
    // a rollback can trip at any boundary, so storms are unconstrained.
    if (sc.policy_rollout->bake_rounds >= sc.fleet_run.rounds) {
      return err(Errc::kInvalidArgument,
                 "$.policy_rollout.bake_rounds: must be < fleet_run.rounds (" +
                     std::to_string(sc.fleet_run.rounds) +
                     ") or the staged revision can never promote");
    }
  }
  if (sc.kind == Kind::kFleet || sc.kind == Kind::kChurn) {
    if (sc.faults.timeout_rate > 0 && sc.faults.timeout_latency == 0) {
      return err(Errc::kInvalidArgument,
                 "$.faults.timeout_latency: must be > 0 when timeout_rate "
                 "is set");
    }
  }
  return sc;
}

Result<Scenario> Scenario::parse(const std::string& text) {
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  return from_json(doc.value());
}

json::Value Scenario::to_json() const {
  json::Value doc;
  doc.set("version", version);
  doc.set("name", name);
  doc.set("kind", kind_name(kind));
  doc.set("seed", static_cast<std::int64_t>(seed));
  switch (kind) {
    case Kind::kChaos: {
      json::Value c;
      c.set("script", chaos.script);
      c.set("nodes", chaos.nodes);
      c.set("days", chaos.days);
      c.set("retrying_transport", chaos.retrying_transport);
      c.set("base_packages", chaos.base_packages);
      c.set("provision_extra", chaos.provision_extra);
      doc.set("chaos", std::move(c));
      break;
    }
    case Kind::kStorm: {
      doc.set("fleet", fleet_json(fleet));
      doc.set("faults", faults_json(faults));
      doc.set("resize_at", resize_json(resize_at));
      json::Value s;
      s.set("warmup_rounds", storm.warmup_rounds);
      s.set("storm_rounds", storm.storm_rounds);
      s.set("round_period", storm.round_period);
      s.set("bad_paths", storm.bad_paths);
      json::Value p;
      p.set("cooldown", storm.pipeline.cooldown);
      p.set("quiet_close", storm.pipeline.quiet_close);
      p.set("staleness_after", storm.pipeline.staleness_after);
      p.set("sample_agents", storm.pipeline.sample_agents);
      s.set("pipeline", std::move(p));
      doc.set("storm", std::move(s));
      if (policy_rollout) {
        doc.set("policy_rollout", policy_rollout_json(*policy_rollout));
      }
      break;
    }
    case Kind::kChurn: {
      doc.set("fleet", fleet_json(fleet));
      doc.set("faults", faults_json(faults));
      doc.set("resize_at", resize_json(resize_at));
      json::Value c;
      c.set("rounds", churn.rounds);
      c.set("round_period", churn.round_period);
      c.set("max_joins_per_round", churn.max_joins_per_round);
      c.set("max_leaves_per_round", churn.max_leaves_per_round);
      c.set("max_reboots_per_round", churn.max_reboots_per_round);
      doc.set("churn", std::move(c));
      break;
    }
    case Kind::kFleet: {
      doc.set("fleet", fleet_json(fleet));
      doc.set("faults", faults_json(faults));
      json::Value r;
      r.set("rounds", fleet_run.rounds);
      doc.set("fleet_run", std::move(r));
      if (policy_rollout) {
        doc.set("policy_rollout", policy_rollout_json(*policy_rollout));
      }
      break;
    }
    case Kind::kAttacks: {
      json::Value a;
      a.set("archive_packages", attacks.archive_packages);
      doc.set("attacks", std::move(a));
      break;
    }
  }
  return doc;
}

Result<Scenario> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return err(Errc::kNotFound, "cannot read scenario file " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  auto sc = Scenario::parse(text);
  if (!sc.ok()) {
    return err(sc.error().code, path + ": " + sc.error().message);
  }
  return sc;
}

#ifndef CIA_SCENARIO_ROOT
#define CIA_SCENARIO_ROOT "scenarios"
#endif

std::string default_scenario_dir() {
  if (const char* env = std::getenv("CIA_SCENARIO_DIR"); env && *env) {
    return env;
  }
  return CIA_SCENARIO_ROOT;
}

std::vector<std::string> list_scenario_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (!item.is_regular_file()) continue;
    if (item.path().extension() != ".json") continue;
    files.push_back(item.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace cia::scenario
