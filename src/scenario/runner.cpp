#include "scenario/runner.hpp"

#include <utility>

#include "common/strutil.hpp"
#include "crypto/sha256.hpp"
#include "keylime/policy_store/rollout.hpp"
#include "keylime/policy_store/store.hpp"
#include "keylime/verifier_pool.hpp"

namespace cia::scenario {

namespace {

using experiments::ChaosOptions;
using experiments::ChaosReport;
using experiments::ChurnCampaignOptions;
using experiments::ChurnReport;
using experiments::FnExperimentOptions;
using experiments::PoolFleet;
using experiments::PoolFleetOptions;
using experiments::StormOptions;
using experiments::StormReport;
using experiments::per_agent_chain_digests;
using experiments::run_alert_storm;
using experiments::run_chaos_experiment;
using experiments::run_churn_campaign;
using experiments::run_fn_experiment;

void add_check(ScenarioOutcome& out, std::string name, bool ok,
               std::string detail) {
  out.checks.push_back({std::move(name), ok, std::move(detail)});
}

/// A different shard count for rerun-based invariance checks (the same
/// alternation cia_sim --storm used).
std::size_t other_shard_count(std::size_t shards) {
  return shards == 3 ? 8 : 3;
}

/// Diff two per-agent digest maps; empty string == identical.
std::string digest_drift(const std::map<std::string, std::string>& a,
                         const std::map<std::string, std::string>& b) {
  for (const auto& [id, digest] : a) {
    auto it = b.find(id);
    if (it == b.end()) return id + " missing from comparison run";
    if (it->second != digest) return id + " chain digest mismatch";
  }
  for (const auto& [id, digest] : b) {
    (void)digest;
    if (!a.count(id)) return id + " missing from primary run";
  }
  return "";
}

Result<ScenarioOutcome> run_storm(const Scenario& sc,
                                  const RunOptions& options,
                                  ScenarioOutcome out) {
  StormOptions storm = lower_storm(sc);
  storm.metrics = options.metrics;
  const StormReport report = run_alert_storm(storm);
  if (!report.status.ok()) return report.status.error();
  out.report = storm_report_json(report);
  out.incident_stream = report.incident_stream;

  if (!storm.rollout) {
    // The three accounting contracts the legacy cia_sim --storm pinned.
    add_check(out, "incidents_match_root_causes",
              report.incidents_opened == report.root_causes,
              strformat("%llu incidents opened for %zu root causes",
                        static_cast<unsigned long long>(
                            report.incidents_opened),
                        report.root_causes));
    add_check(out, "widest_incident_spans_fleet",
              report.max_affected == report.agents,
              strformat("widest incident spans %llu of %zu agents",
                        static_cast<unsigned long long>(report.max_affected),
                        report.agents));
    add_check(out, "dedup_accounting_lossless",
              report.emitted_alerts + report.suppressed == report.raw_alerts &&
                  report.emitted_alerts < report.raw_alerts,
              strformat("raw=%llu emitted=%llu suppressed=%llu",
                        static_cast<unsigned long long>(report.raw_alerts),
                        static_cast<unsigned long long>(report.emitted_alerts),
                        static_cast<unsigned long long>(report.suppressed)));
  } else {
    // Staged-rollout contracts: the bad revision trips the health gate,
    // rolls back, and never escapes the canary slice.
    add_check(out, "rollout_rolled_back",
              report.rollout_state == "rolled_back",
              "final rollout state: " + report.rollout_state);
    add_check(out, "canary_is_proper_slice",
              !report.canary_agents.empty() &&
                  report.canary_agents.size() < report.agents,
              strformat("%zu canary agents of %zu",
                        report.canary_agents.size(), report.agents));
    add_check(out, "canary_saw_the_storm", report.canary_alerts > 0,
              strformat("%llu alerts attributed to the staged revision",
                        static_cast<unsigned long long>(
                            report.canary_alerts)));
    add_check(out, "bad_revision_contained",
              report.non_canary_bad_appraisals == 0 &&
                  report.non_canary_on_bad_revision == 0,
              strformat("%llu non-canary appraisals under the staged "
                        "revision, %llu non-canary agents left holding it",
                        static_cast<unsigned long long>(
                            report.non_canary_bad_appraisals),
                        static_cast<unsigned long long>(
                            report.non_canary_on_bad_revision)));
  }

  if (options.self_check) {
    // Repartition invariance: a different shard count must reproduce the
    // canonical incident stream byte for byte.
    StormOptions repartitioned = storm;
    repartitioned.shards = other_shard_count(storm.shards);
    repartitioned.metrics = nullptr;
    const StormReport other = run_alert_storm(repartitioned);
    add_check(out, "incident_stream_partition_invariant",
              other.status.ok() &&
                  other.incident_stream == report.incident_stream &&
                  other.rollout_state == report.rollout_state &&
                  other.canary_agents == report.canary_agents,
              strformat("%zu vs %zu shards (%zu-byte stream)", storm.shards,
                        repartitioned.shards, report.incident_stream.size()));

    // Resize invariance: toggling a mid-storm resize (adding one when
    // the file has none, removing the file's own otherwise) must not
    // disturb the stream either.
    StormOptions toggled = storm;
    toggled.metrics = nullptr;
    if (storm.resize_shards == 0) {
      toggled.resize_round = storm.storm_rounds / 2;
      toggled.resize_shards = other_shard_count(storm.shards);
    } else {
      toggled.resize_round = 0;
      toggled.resize_shards = 0;
    }
    const StormReport resized = run_alert_storm(toggled);
    add_check(out, "incident_stream_resize_invariant",
              resized.status.ok() &&
                  resized.incident_stream == report.incident_stream &&
                  resized.rollout_state == report.rollout_state,
              storm.resize_shards == 0
                  ? strformat("added resize to %zu shards at storm round %zu",
                              toggled.resize_shards, toggled.resize_round)
                  : "removed the scheduled mid-storm resize");
  }
  return out;
}

Result<ScenarioOutcome> run_churn(const Scenario& sc,
                                  const RunOptions& options,
                                  ScenarioOutcome out) {
  const PoolFleetOptions fleet_options = lower_fleet(sc);
  const ChurnCampaignOptions campaign = lower_churn(sc);

  struct ChurnRun {
    ChurnReport report;
    std::map<std::string, std::string> digests;
    keylime::VerifierPool::MigrationStats migration;
    std::size_t active_shards = 0;
    std::size_t allocated_shards = 0;
    std::size_t alerts = 0;
  };
  auto run = [&](const std::vector<std::pair<std::size_t, std::size_t>>&
                     resizes,
                 telemetry::MetricsRegistry* metrics)
      -> Result<ChurnRun> {
    PoolFleetOptions fo = fleet_options;
    fo.metrics = metrics;
    PoolFleet fleet(fo);
    if (!fleet.init_status().ok()) return fleet.init_status().error();
    if (Status s = fleet.push_fleet_policy(); !s.ok()) return s.error();
    if (sc.faults.any()) {
      netsim::FaultProfile faults;
      faults.drop_rate = sc.faults.drop_rate;
      faults.timeout_rate = sc.faults.timeout_rate;
      faults.duplicate_rate = sc.faults.duplicate_rate;
      faults.timeout_latency = sc.faults.timeout_latency;
      fleet.pool().set_fleet_faults(faults);
    }
    ChurnCampaignOptions co = campaign;
    co.resize_at = resizes;
    ChurnRun result;
    result.report = run_churn_campaign(fleet, co);
    if (!result.report.status.ok()) return result.report.status.error();
    result.digests = per_agent_chain_digests(fleet.pool());
    result.migration = fleet.pool().migration_stats();
    result.active_shards = fleet.pool().active_shard_count();
    result.allocated_shards = fleet.pool().shard_count();
    result.alerts = fleet.pool().alerts().size();
    return result;
  };

  auto primary = run(campaign.resize_at, options.metrics);
  if (!primary.ok()) return primary.error();
  const ChurnRun& pr = primary.value();
  out.chain_digests = pr.digests;
  out.report = churn_report_json(pr.report);
  out.report.set("rounds", static_cast<std::int64_t>(campaign.rounds));
  json::Value resharding;
  resharding.set("resizes", static_cast<std::int64_t>(pr.migration.resizes));
  resharding.set("migrations_ok", static_cast<std::int64_t>(pr.migration.ok));
  resharding.set("fallback", static_cast<std::int64_t>(pr.migration.fallback));
  resharding.set("failed", static_cast<std::int64_t>(pr.migration.failed));
  resharding.set("retries", static_cast<std::int64_t>(pr.migration.retries));
  out.report.set("resharding", std::move(resharding));
  out.report.set("active_shards", static_cast<std::int64_t>(pr.active_shards));
  out.report.set("allocated_shards",
                 static_cast<std::int64_t>(pr.allocated_shards));
  out.report.set("alerts", static_cast<std::int64_t>(pr.alerts));

  add_check(out, "no_failed_migrations", pr.migration.failed == 0,
            strformat("%llu agents stuck on their source shard",
                      static_cast<unsigned long long>(pr.migration.failed)));

  if (options.self_check) {
    // The legacy cia_sim --churn drift check: the identical campaign
    // with no resizes must produce byte-identical per-agent chains.
    auto baseline = run({}, nullptr);
    if (!baseline.ok()) return baseline.error();
    const std::string drift =
        digest_drift(pr.digests, baseline.value().digests);
    add_check(out, "no_resize_drift", drift.empty(),
              drift.empty()
                  ? strformat("%zu agent chains identical vs no-resize "
                              "baseline",
                              pr.digests.size())
                  : drift);
  }
  return out;
}

Result<ScenarioOutcome> run_fleet(const Scenario& sc,
                                  const RunOptions& options,
                                  ScenarioOutcome out) {
  namespace ps = keylime::policy_store;
  struct FleetRun {
    std::size_t polls = 0;
    std::size_t failed = 0;
    std::size_t alerts = 0;
    keylime::VerifierPool::Stats stats;
    std::uint64_t revision = 0;
    std::map<std::string, std::string> digests;
    // Staged-rollout outcome (policy_rollout runs only).
    std::string rollout_state;
    std::size_t canary = 0;
    std::uint64_t target_revision = 0;
    std::size_t on_target = 0;  // agents holding the staged revision at end
  };
  auto run = [&](std::size_t shards, telemetry::MetricsRegistry* metrics)
      -> Result<FleetRun> {
    PoolFleetOptions fo = lower_fleet(sc);
    fo.shards = shards;
    fo.metrics = metrics;
    PoolFleet fleet(fo);
    if (!fleet.init_status().ok()) return fleet.init_status().error();
    std::unique_ptr<ps::RolloutController> rollout;
    if (sc.policy_rollout) {
      // Content-addressed bootstrap, then stage a benign delta revision
      // (the fleet policy plus a few synthetic paths no machine ever
      // executes): it bakes clean and must auto-promote fleet-wide.
      const keylime::RuntimePolicy good = fleet.fleet_policy();
      if (Status s = fleet.pool().push_revision(
              fleet.agent_ids(), good, ps::policy_digest(good), nullptr);
          !s.ok()) {
        return s.error();
      }
      keylime::RuntimePolicy target = good;
      for (int i = 0; i < 4; ++i) {
        const std::string path = strformat("/opt/rollout/extra-%02d", i);
        target.allow(path, crypto::sha256("rollout:" + path));
      }
      ps::RolloutConfig rc;
      rc.canary_fraction = sc.policy_rollout->canary_fraction;
      rc.seed = sc.policy_rollout->seed;
      rc.bake_rounds = sc.policy_rollout->bake_rounds;
      rc.alert_budget =
          static_cast<std::uint64_t>(sc.policy_rollout->alert_budget);
      rollout = std::make_unique<ps::RolloutController>(&fleet.pool(), rc);
      rollout->use_telemetry(metrics);
      fleet.pool().use_rollout(rollout.get());
      if (Status s = rollout->begin(good, target); !s.ok()) return s.error();
    } else if (Status s = fleet.push_fleet_policy(); !s.ok()) {
      return s.error();
    }
    if (sc.faults.any()) {
      netsim::FaultProfile faults;
      faults.drop_rate = sc.faults.drop_rate;
      faults.timeout_rate = sc.faults.timeout_rate;
      faults.duplicate_rate = sc.faults.duplicate_rate;
      faults.timeout_latency = sc.faults.timeout_latency;
      fleet.pool().set_fleet_faults(faults);
    }
    FleetRun result;
    for (std::int64_t round = 0; round < sc.fleet_run.rounds; ++round) {
      fleet.run_workload_round(static_cast<std::uint64_t>(round));
      result.polls += fleet.pool().run_round();
    }
    for (const std::string& id : fleet.agent_ids()) {
      if (fleet.pool().state(id) == keylime::AgentState::kFailed) {
        ++result.failed;
      }
    }
    result.alerts = fleet.pool().alerts().size();
    result.stats = fleet.pool().stats();
    result.revision = fleet.pool().policy_revision();
    result.digests = per_agent_chain_digests(fleet.pool());
    if (rollout) {
      result.rollout_state = ps::rollout_state_name(rollout->state());
      result.canary = rollout->canary_agents().size();
      result.target_revision = rollout->target_revision();
      for (const std::string& id : fleet.agent_ids()) {
        if (fleet.pool().policy_revision_of(id) == result.target_revision) {
          ++result.on_target;
        }
      }
      fleet.pool().use_rollout(nullptr);
    }
    return result;
  };

  auto primary = run(static_cast<std::size_t>(sc.fleet.shards),
                     options.metrics);
  if (!primary.ok()) return primary.error();
  const FleetRun& pr = primary.value();
  out.chain_digests = pr.digests;
  out.report.set("agents", static_cast<std::int64_t>(sc.fleet.agents));
  out.report.set("shards", static_cast<std::int64_t>(sc.fleet.shards));
  out.report.set("rounds", sc.fleet_run.rounds);
  out.report.set("polls", static_cast<std::int64_t>(pr.polls));
  out.report.set("batches", static_cast<std::int64_t>(pr.stats.batches));
  out.report.set("index_hits", static_cast<std::int64_t>(pr.stats.index_hits));
  out.report.set("index_misses",
                 static_cast<std::int64_t>(pr.stats.index_misses));
  out.report.set("policy_revision", static_cast<std::int64_t>(pr.revision));
  out.report.set("policy_swaps",
                 static_cast<std::int64_t>(pr.stats.policy_swaps));
  out.report.set("alerts", static_cast<std::int64_t>(pr.alerts));
  out.report.set("failed_agents", static_cast<std::int64_t>(pr.failed));
  if (sc.policy_rollout) {
    out.report.set("rollout_state", pr.rollout_state);
    out.report.set("canary_agents", static_cast<std::int64_t>(pr.canary));
    out.report.set("rollout_target_revision",
                   static_cast<std::int64_t>(pr.target_revision));
    out.report.set("agents_on_target_revision",
                   static_cast<std::int64_t>(pr.on_target));
  }

  // A benign fleet workload must never fail an agent: any kFailed state
  // is a policy false positive.
  add_check(out, "no_failed_agents", pr.failed == 0,
            strformat("%zu agents in kFailed state after a benign workload",
                      pr.failed));
  if (sc.policy_rollout) {
    add_check(out, "rollout_promoted", pr.rollout_state == "promoted",
              "final rollout state: " + pr.rollout_state);
    add_check(out, "fleet_on_promoted_revision",
              pr.on_target == pr.digests.size() && pr.on_target > 0,
              strformat("%zu of %zu agents hold the promoted revision",
                        pr.on_target, pr.digests.size()));
  }

  if (options.self_check) {
    auto other = run(other_shard_count(static_cast<std::size_t>(
                         sc.fleet.shards)),
                     nullptr);
    if (!other.ok()) return other.error();
    const FleetRun& orun = other.value();
    const std::string drift = digest_drift(pr.digests, orun.digests);
    add_check(out, "partition_invariance",
              drift.empty() && orun.rollout_state == pr.rollout_state &&
                  orun.canary == pr.canary,
              drift.empty()
                  ? strformat("%zu agent chains identical at %zu vs %zu "
                              "shards",
                              pr.digests.size(),
                              static_cast<std::size_t>(sc.fleet.shards),
                              other_shard_count(static_cast<std::size_t>(
                                  sc.fleet.shards)))
                  : drift);
  }
  return out;
}

Result<ScenarioOutcome> run_chaos(const Scenario& sc,
                                  const RunOptions& options,
                                  ScenarioOutcome out) {
  ChaosOptions chaos = lower_chaos(sc);
  chaos.metrics = options.metrics;
  const ChaosReport report = run_chaos_experiment(chaos);
  if (!report.valid) {
    return err(Errc::kInvalidArgument,
               "chaos rig setup failed for script \"" + sc.chaos.script +
                   "\"");
  }
  out.report = chaos_report_json(report);

  // The cia_chaos PASS predicate, one named verdict per clause.
  add_check(out, "no_transport_false_positives",
            report.transport_false_positives == 0,
            strformat("%zu transport-attributable policy alerts",
                      report.transport_false_positives));
  add_check(out, "liveness",
            report.liveness_ok,
            strformat("slowest recovery %llds after the fault window",
                      static_cast<long long>(report.recovery_time)));
  add_check(out, "audit_chain_intact", report.audit_chain_ok,
            strformat("%zu records%s", report.audit_records,
                      report.verifier_restarted ? ", spans verifier restart"
                                                : ""));
  add_check(out, "injected_violation_detected",
            !report.violation_injected || report.genuine_detected,
            report.violation_injected
                ? strformat("%zu policy alerts on the victim",
                            report.genuine_alerts)
                : "no violation injected in this script");
  add_check(out, "checkpoint_roundtrip", report.checkpoint_roundtrip_ok,
            report.verifier_restarted
                ? "checkpoint -> restore -> checkpoint byte-identical"
                : "no verifier restart in this script");
  return out;
}

Result<ScenarioOutcome> run_attacks(const Scenario& sc,
                                    const RunOptions& options,
                                    ScenarioOutcome out) {
  (void)options;
  const std::vector<experiments::AttackReport> reports =
      run_fn_experiment(lower_attacks(sc));
  out.report = attacks_report_json(reports);

  // The Table II expectations: the stock stack detects every naive
  // attacker immediately, every adaptive attacker evades, and the §IV-C
  // mitigations recover exactly the samples the paper says they do.
  bool basic_ok = true;
  bool adaptive_ok = true;
  bool mitigated_ok = true;
  std::string basic_detail = "all samples detected immediately";
  std::string adaptive_detail = "all adaptive samples evade the stock stack";
  std::string mitigated_detail = "mitigation outcomes match Table II";
  for (const experiments::AttackReport& r : reports) {
    if (r.basic != experiments::DetectionOutcome::kDetectedImmediately) {
      basic_ok = false;
      basic_detail = r.name + ": basic attacker not detected immediately";
    }
    if (r.adaptive != experiments::DetectionOutcome::kEvaded) {
      adaptive_ok = false;
      adaptive_detail = r.name + ": adaptive attacker failed to evade";
    }
    const bool evaded =
        r.mitigated == experiments::DetectionOutcome::kEvaded;
    if (evaded == r.paper_expects_mitigable) {
      mitigated_ok = false;
      mitigated_detail =
          r.name + (evaded ? ": evaded a mitigation the paper expects to work"
                           : ": detected despite the paper calling it "
                             "unmitigable");
    }
  }
  add_check(out, "basic_detected_immediately", basic_ok, basic_detail);
  add_check(out, "adaptive_evades", adaptive_ok, adaptive_detail);
  add_check(out, "mitigations_match_paper", mitigated_ok, mitigated_detail);
  return out;
}

}  // namespace

PoolFleetOptions lower_fleet(const Scenario& sc) {
  PoolFleetOptions options;
  options.agents = static_cast<std::size_t>(sc.fleet.agents);
  options.shards = static_cast<std::size_t>(sc.fleet.shards);
  options.seed = sc.seed;
  options.binaries_per_machine =
      static_cast<std::size_t>(sc.fleet.binaries_per_machine);
  options.execs_per_round =
      static_cast<std::size_t>(sc.fleet.execs_per_round);
  options.retrying_transport = sc.fleet.retrying_transport;
  return options;
}

StormOptions lower_storm(const Scenario& sc) {
  StormOptions options;
  options.seed = sc.seed;
  options.agents = static_cast<std::size_t>(sc.fleet.agents);
  options.shards = static_cast<std::size_t>(sc.fleet.shards);
  options.warmup_rounds = static_cast<std::size_t>(sc.storm.warmup_rounds);
  options.storm_rounds = static_cast<std::size_t>(sc.storm.storm_rounds);
  options.round_period = sc.storm.round_period;
  options.bad_paths = static_cast<std::size_t>(sc.storm.bad_paths);
  options.binaries_per_machine =
      static_cast<std::size_t>(sc.fleet.binaries_per_machine);
  options.execs_per_round =
      static_cast<std::size_t>(sc.fleet.execs_per_round);
  options.drop_rate = sc.faults.drop_rate;
  if (!sc.resize_at.empty()) {
    options.resize_round = static_cast<std::size_t>(sc.resize_at[0].round);
    options.resize_shards = static_cast<std::size_t>(sc.resize_at[0].shards);
  }
  options.pipeline.cooldown = sc.storm.pipeline.cooldown;
  options.pipeline.quiet_close = sc.storm.pipeline.quiet_close;
  options.pipeline.staleness_after =
      static_cast<std::uint64_t>(sc.storm.pipeline.staleness_after);
  options.pipeline.sample_agents =
      static_cast<std::size_t>(sc.storm.pipeline.sample_agents);
  if (sc.policy_rollout) {
    keylime::policy_store::RolloutConfig rollout;
    rollout.canary_fraction = sc.policy_rollout->canary_fraction;
    rollout.seed = sc.policy_rollout->seed;
    rollout.bake_rounds = sc.policy_rollout->bake_rounds;
    rollout.alert_budget =
        static_cast<std::uint64_t>(sc.policy_rollout->alert_budget);
    options.rollout = rollout;
  }
  return options;
}

ChurnCampaignOptions lower_churn(const Scenario& sc) {
  ChurnCampaignOptions options;
  // The campaign RNG seed derives exactly as the legacy cia_sim harness
  // derived it, so a scenario file replays a CLI run byte for byte.
  options.seed = sc.seed ^ 0xc4u;
  options.rounds = static_cast<std::size_t>(sc.churn.rounds);
  options.round_period = sc.churn.round_period;
  options.max_joins_per_round =
      static_cast<std::size_t>(sc.churn.max_joins_per_round);
  options.max_leaves_per_round =
      static_cast<std::size_t>(sc.churn.max_leaves_per_round);
  options.max_reboots_per_round =
      static_cast<std::size_t>(sc.churn.max_reboots_per_round);
  for (const ResizeEvent& event : sc.resize_at) {
    options.resize_at.emplace_back(static_cast<std::size_t>(event.round),
                                   static_cast<std::size_t>(event.shards));
  }
  return options;
}

ChaosOptions lower_chaos(const Scenario& sc) {
  ChaosOptions options;
  options.seed = sc.seed;
  options.nodes = static_cast<std::size_t>(sc.chaos.nodes);
  options.days = static_cast<int>(sc.chaos.days);
  options.scenario = sc.chaos.script;
  options.retrying_transport = sc.chaos.retrying_transport;
  options.archive.base_package_count =
      static_cast<std::size_t>(sc.chaos.base_packages);
  options.provision_extra =
      static_cast<std::size_t>(sc.chaos.provision_extra);
  return options;
}

FnExperimentOptions lower_attacks(const Scenario& sc) {
  FnExperimentOptions options;
  options.seed = sc.seed;
  options.archive_packages =
      static_cast<std::size_t>(sc.attacks.archive_packages);
  return options;
}

json::Value storm_report_json(const StormReport& report) {
  json::Value doc;
  doc.set("agents", static_cast<std::int64_t>(report.agents));
  doc.set("root_causes", static_cast<std::int64_t>(report.root_causes));
  doc.set("raw_alerts", static_cast<std::int64_t>(report.raw_alerts));
  doc.set("emitted_alerts", static_cast<std::int64_t>(report.emitted_alerts));
  doc.set("suppressed", static_cast<std::int64_t>(report.suppressed));
  doc.set("incidents_opened",
          static_cast<std::int64_t>(report.incidents_opened));
  doc.set("incidents_open", static_cast<std::int64_t>(report.incidents_open));
  doc.set("max_affected", static_cast<std::int64_t>(report.max_affected));
  json::Value by_severity{json::Object{}};
  for (const auto& [severity, count] : report.opened_by_severity) {
    by_severity.set(severity, static_cast<std::int64_t>(count));
  }
  doc.set("opened_by_severity", std::move(by_severity));
  doc.set("incident_stream", report.incident_stream);
  // Rollout fields only when the storm was staged: legacy storm reports
  // must stay byte-identical to the harness stream they pin.
  if (!report.rollout_state.empty()) {
    doc.set("rollout_state", report.rollout_state);
    doc.set("canary_agents",
            static_cast<std::int64_t>(report.canary_agents.size()));
    doc.set("rollout_target_revision",
            static_cast<std::int64_t>(report.rollout_target_revision));
    doc.set("canary_alerts",
            static_cast<std::int64_t>(report.canary_alerts));
    doc.set("non_canary_bad_appraisals",
            static_cast<std::int64_t>(report.non_canary_bad_appraisals));
    doc.set("non_canary_on_bad_revision",
            static_cast<std::int64_t>(report.non_canary_on_bad_revision));
  }
  return doc;
}

json::Value churn_report_json(const ChurnReport& report) {
  json::Value doc;
  doc.set("joins", static_cast<std::int64_t>(report.joins));
  doc.set("leaves", static_cast<std::int64_t>(report.leaves));
  doc.set("reboots", static_cast<std::int64_t>(report.reboots));
  doc.set("polls", static_cast<std::int64_t>(report.polls));
  return doc;
}

json::Value chaos_report_json(const ChaosReport& report) {
  json::Value doc;
  doc.set("script", report.scenario);
  doc.set("nodes", static_cast<std::int64_t>(report.nodes));
  doc.set("days", report.days);
  doc.set("polls", static_cast<std::int64_t>(report.polls));
  doc.set("comms_alerts", static_cast<std::int64_t>(report.comms_alerts));
  doc.set("transport_false_positives",
          static_cast<std::int64_t>(report.transport_false_positives));
  doc.set("genuine_alerts", static_cast<std::int64_t>(report.genuine_alerts));
  doc.set("violation_injected", report.violation_injected);
  doc.set("genuine_detected", report.genuine_detected);
  doc.set("fault_window_end", report.fault_window_end);
  doc.set("recovery_time", report.recovery_time);
  doc.set("liveness_ok", report.liveness_ok);
  doc.set("retries", static_cast<std::int64_t>(report.retries));
  doc.set("recovered_calls",
          static_cast<std::int64_t>(report.recovered_calls));
  doc.set("giveups", static_cast<std::int64_t>(report.giveups));
  doc.set("breaker_opens", static_cast<std::int64_t>(report.breaker_opens));
  doc.set("drops", static_cast<std::int64_t>(report.drops));
  doc.set("duplicates", static_cast<std::int64_t>(report.duplicates));
  doc.set("timeouts", static_cast<std::int64_t>(report.timeouts));
  doc.set("updates_run", report.updates_run);
  doc.set("updates_deferred",
          static_cast<std::int64_t>(report.updates_deferred));
  doc.set("audit_records", static_cast<std::int64_t>(report.audit_records));
  doc.set("audit_chain_ok", report.audit_chain_ok);
  doc.set("verifier_restarted", report.verifier_restarted);
  doc.set("checkpoint_roundtrip_ok", report.checkpoint_roundtrip_ok);
  return doc;
}

json::Value attacks_report_json(
    const std::vector<experiments::AttackReport>& reports) {
  json::Value rows{json::Array{}};
  for (const experiments::AttackReport& r : reports) {
    json::Value row;
    row.set("name", r.name);
    row.set("category", r.category);
    json::Value exploits{json::Array{}};
    for (const attacks::Problem p : r.exploits) {
      exploits.push_back(attacks::problem_name(p));
    }
    row.set("exploits", std::move(exploits));
    row.set("basic", experiments::detection_outcome_name(r.basic));
    row.set("adaptive", experiments::detection_outcome_name(r.adaptive));
    row.set("mitigated", experiments::detection_outcome_name(r.mitigated));
    row.set("paper_expects_mitigable", r.paper_expects_mitigable);
    rows.push_back(std::move(row));
  }
  json::Value doc;
  doc.set("samples", std::move(rows));
  return doc;
}

Result<ScenarioOutcome> run_scenario(const Scenario& input,
                                     const RunOptions& options) {
  Scenario sc = input;
  if (options.seed) sc.seed = *options.seed;
  ScenarioOutcome out;
  out.name = sc.name;
  out.kind = sc.kind;
  out.seed = sc.seed;
  switch (sc.kind) {
    case Kind::kStorm:
      return run_storm(sc, options, std::move(out));
    case Kind::kChurn:
      return run_churn(sc, options, std::move(out));
    case Kind::kFleet:
      return run_fleet(sc, options, std::move(out));
    case Kind::kChaos:
      return run_chaos(sc, options, std::move(out));
    case Kind::kAttacks:
      return run_attacks(sc, options, std::move(out));
  }
  return err(Errc::kInvalidArgument, "unknown scenario kind");
}

}  // namespace cia::scenario
