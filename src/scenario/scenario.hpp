// The scenario DSL: declarative, schema-validated campaign files.
//
// A scenario file is a JSON document describing one complete campaign by
// composing the primitives the experiment libraries already provide —
// fleet topology (agents/shards/image), workload cadence, per-link fault
// profiles, mid-run ring resizes, policy-update storms, enrollment
// churn, the scripted chaos fault schedules, and the P1–P5 adaptive
// attack matrix. The runner (runner.hpp) lowers a validated Scenario
// onto the exact option structs the hand-coded harnesses used, so a
// (file, seed) pair replays byte-for-byte — the differential suite in
// tests/scenario_test.cpp pins scenario runs against the legacy
// harness entry points they replaced.
//
// Validation is strict and total: unknown fields anywhere are errors,
// every numeric field is range-checked, and cross-references (resize
// rounds vs campaign length, corrupted paths vs image size, chaos script
// names vs the registered scripts) are verified. Every rejection names
// the offending location as a `$.section.field` path so a bad file is a
// one-line fix, never silent defaulting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"

namespace cia::scenario {

/// Which campaign driver executes the scenario.
enum class Kind { kChaos, kChurn, kStorm, kFleet, kAttacks };

const char* kind_name(Kind kind);

/// Shared fleet topology for the pool-backed kinds (storm/churn/fleet):
/// mirrors experiments::PoolFleetOptions field for field.
struct FleetSection {
  std::int64_t agents = 64;
  std::int64_t shards = 4;
  std::int64_t binaries_per_machine = 24;
  std::int64_t execs_per_round = 4;
  bool retrying_transport = true;
};

/// Fleet-wide per-link fault profile (netsim::FaultProfile subset the
/// pool replays onto every shard network).
struct FaultSection {
  double drop_rate = 0;
  double timeout_rate = 0;
  double duplicate_rate = 0;
  std::int64_t timeout_latency = 20;

  bool any() const {
    return drop_rate > 0 || timeout_rate > 0 || duplicate_rate > 0;
  }
};

/// One scheduled mid-campaign ring resize: before round `round`, resize
/// the pool to `shards` active shards.
struct ResizeEvent {
  std::int64_t round = 0;
  std::int64_t shards = 0;
};

/// Alert-pipeline knobs (alert_pipeline::AlertPipeline::Config).
struct PipelineSection {
  std::int64_t cooldown = 5 * kMinute;
  std::int64_t quiet_close = 15 * kMinute;
  std::int64_t staleness_after = 3;
  std::int64_t sample_agents = 5;
};

/// kind=storm: warmup rounds, then a corrupted bulk policy push (the bad
/// revision rewrites `bad_paths` fleet digests) drives an alert storm.
struct StormSection {
  std::int64_t warmup_rounds = 2;
  std::int64_t storm_rounds = 8;
  std::int64_t round_period = 60;
  std::int64_t bad_paths = 2;
  PipelineSection pipeline;
};

/// Optional staged-rollout section (policy_store::RolloutConfig). On
/// kind=storm the bad revision is NOT bulk-pushed: it stages onto the
/// deterministic canary slice, bakes under the alert budget, and
/// auto-rolls back — the runner then proves no non-canary agent ever
/// appraised against it. On kind=fleet a benign delta revision stages,
/// bakes clean, and auto-promotes fleet-wide.
struct PolicyRolloutSection {
  double canary_fraction = 0.25;
  std::int64_t bake_rounds = 3;
  std::int64_t alert_budget = 0;
  std::uint64_t seed = 7;
};

/// kind=churn: per-round join/leave/reboot budgets drawn from the
/// campaign RNG (experiments::ChurnCampaignOptions). The campaign seed
/// derives as scenario seed ^ 0xc4, matching the legacy harness.
struct ChurnSection {
  std::int64_t rounds = 12;
  std::int64_t round_period = 2 * kMinute;
  std::int64_t max_joins_per_round = 1;
  std::int64_t max_leaves_per_round = 1;
  std::int64_t max_reboots_per_round = 1;
};

/// kind=chaos: one of the named scripted fault campaigns
/// (experiments::chaos_scenarios()) against a single-verifier fleet.
struct ChaosSection {
  std::string script = "wan-loss";
  std::int64_t nodes = 6;
  std::int64_t days = 5;
  bool retrying_transport = true;
  std::int64_t base_packages = 200;
  std::int64_t provision_extra = 30;
};

/// kind=fleet: a plain sharded-pool run, one workload + attestation
/// round per entry in [0, rounds).
struct FleetRunSection {
  std::int64_t rounds = 7;
};

/// kind=attacks: the eight-sample Table II matrix
/// (basic/adaptive/mitigated) from src/attacks.
struct AttacksSection {
  std::int64_t archive_packages = 1500;
};

struct Scenario {
  std::int64_t version = 1;
  std::string name;
  Kind kind = Kind::kChaos;
  std::uint64_t seed = 42;

  FleetSection fleet;        // storm / churn / fleet
  FaultSection faults;       // storm / churn / fleet
  std::vector<ResizeEvent> resize_at;  // storm (at most one) / churn
  StormSection storm;        // kind=storm
  std::optional<PolicyRolloutSection> policy_rollout;  // storm / fleet
  ChurnSection churn;        // kind=churn
  ChaosSection chaos;        // kind=chaos
  FleetRunSection fleet_run; // kind=fleet
  AttacksSection attacks;    // kind=attacks

  /// Strict decode + full validation of one scenario document. Errors
  /// name the offending `$.path`.
  static Result<Scenario> from_json(const json::Value& doc);

  /// json::parse + from_json.
  static Result<Scenario> parse(const std::string& text);

  /// Canonical normal form: every field of every section the kind uses,
  /// fully defaulted, sorted keys. from_json(to_json()) is the identity
  /// on validated scenarios (the fuzz target's fixed-point contract).
  json::Value to_json() const;
};

/// Read + parse a scenario file from disk.
Result<Scenario> load_file(const std::string& path);

/// The checked-in scenario directory: $CIA_SCENARIO_DIR when set, else
/// the compiled-in source-tree scenarios/ path.
std::string default_scenario_dir();

/// Full paths (sorted) of the *.json files directly inside `dir`.
std::vector<std::string> list_scenario_files(const std::string& dir);

}  // namespace cia::scenario
