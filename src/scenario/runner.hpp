// Deterministic scenario execution.
//
// The runner lowers a validated Scenario onto the exact option structs
// the hand-coded harnesses used (experiments::StormOptions,
// ChurnCampaignOptions, ChaosOptions, PoolFleetOptions,
// FnExperimentOptions) and calls the same library entry points, so a
// scenario file replays a legacy harness run byte for byte — that is
// the contract the differential suite in tests/scenario_test.cpp pins.
//
// Each kind carries invariant self-checks distilled from the harness it
// retired: the storm contracts cia_sim --storm enforced (incident count
// == root causes, widest incident == fleet, lossless dedup accounting,
// stream stable across repartition + mid-storm resize), the churn
// no-resize chain-digest diff cia_sim --churn ran, the chaos PASS
// predicate from cia_chaos, the Table II expectations from
// experiments_test, and a partition-invariance digest diff for plain
// fleet runs. Cheap checks always run; the expensive ones (full
// campaign reruns) only under RunOptions::self_check.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "experiments/chaos_experiment.hpp"
#include "experiments/fn_experiment.hpp"
#include "experiments/pool_experiment.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/metrics.hpp"

namespace cia::scenario {

/// One invariant verdict. `ok == false` fails the run.
struct SelfCheck {
  std::string name;
  bool ok = false;
  std::string detail;
};

struct RunOptions {
  /// Also run the expensive cross-run invariants (repartition reruns,
  /// no-resize churn baseline).
  bool self_check = false;
  /// Override the file's seed (the differential axis: same file,
  /// different seed → different but still deterministic run).
  std::optional<std::uint64_t> seed;
  /// When set, the run's components export telemetry here.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct ScenarioOutcome {
  std::string name;
  Kind kind = Kind::kChaos;
  std::uint64_t seed = 0;
  /// The standard report as a canonical JSON document (sorted keys;
  /// dump() is the byte-comparable form).
  json::Value report;
  /// kind=storm: the canonical incident snapshot JSON — byte-identical
  /// to the legacy run_alert_storm stream for the same (file, seed).
  std::string incident_stream;
  /// kind=churn/fleet: partition-independent per-agent audit sub-chain
  /// digests (experiments::per_agent_chain_digests).
  std::map<std::string, std::string> chain_digests;
  std::vector<SelfCheck> checks;

  bool ok() const {
    for (const SelfCheck& c : checks) {
      if (!c.ok) return false;
    }
    return true;
  }
};

// Lowerings (exposed so the differential tests can call the legacy
// entry points with provably identical options).

/// storm/churn/fleet: the PoolFleetOptions a scenario's fleet section
/// describes.
experiments::PoolFleetOptions lower_fleet(const Scenario& sc);

/// kind=storm → run_alert_storm options.
experiments::StormOptions lower_storm(const Scenario& sc);

/// kind=churn → run_churn_campaign options (campaign seed derives as
/// scenario seed ^ 0xc4, matching the legacy cia_sim harness).
experiments::ChurnCampaignOptions lower_churn(const Scenario& sc);

/// kind=chaos → run_chaos_experiment options (base_package_count from
/// $.chaos.base_packages, matching the legacy cia_chaos harness).
experiments::ChaosOptions lower_chaos(const Scenario& sc);

/// kind=attacks → run_fn_experiment options.
experiments::FnExperimentOptions lower_attacks(const Scenario& sc);

// Canonical report documents (shared by the runner, the CLIs, and the
// differential tests — one serialization, one comparison surface).
json::Value storm_report_json(const experiments::StormReport& report);
json::Value churn_report_json(const experiments::ChurnReport& report);
json::Value chaos_report_json(const experiments::ChaosReport& report);
json::Value attacks_report_json(
    const std::vector<experiments::AttackReport>& reports);

/// Execute one validated scenario. Errors are setup failures (fleet
/// init, policy push); invariant failures land in `checks` instead so
/// the caller can print every verdict.
Result<ScenarioOutcome> run_scenario(const Scenario& sc,
                                     const RunOptions& options);

}  // namespace cia::scenario
