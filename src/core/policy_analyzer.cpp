#include "core/policy_analyzer.hpp"

#include <set>

#include "common/strutil.hpp"

namespace cia::core {

std::string CoverageReport::to_string() const {
  std::string out = strformat(
      "machine executables: %zu\n"
      "  covered:           %zu (%.1f%%)\n"
      "  stale hash:        %zu\n"
      "  uncovered:         %zu\n"
      "  excluded (P1!):    %zu\n"
      "policy-only paths:   %zu\n",
      machine_executables, covered, coverage_ratio() * 100.0, stale_hash,
      uncovered, excluded, policy_only_paths);
  const auto add_samples = [&out](const char* label,
                                  const std::vector<std::string>& samples) {
    if (samples.empty()) return;
    out += std::string(label) + ":\n";
    for (const auto& s : samples) out += "  " + s + "\n";
  };
  add_samples("stale", stale_samples);
  add_samples("uncovered", uncovered_samples);
  add_samples("excluded", excluded_samples);
  return out;
}

CoverageReport analyze_coverage(const oskernel::Machine& machine,
                                const keylime::RuntimePolicy& policy,
                                std::size_t max_samples) {
  CoverageReport report;
  std::set<std::string> machine_paths;

  for (const std::string& path : machine.fs().list_files("/")) {
    const auto st = machine.fs().stat(path);
    if (!st.ok() || !st.value().executable) continue;
    ++report.machine_executables;
    // Classify by what the verifier would do with this file's
    // measurement. The policy sees IMA-visible paths, so translate.
    const std::string visible = machine.fs().ima_visible_path(path);
    machine_paths.insert(visible);
    switch (policy.check(visible, st.value().content_hash)) {
      case keylime::PolicyMatch::kAllowed:
        ++report.covered;
        break;
      case keylime::PolicyMatch::kHashMismatch:
        ++report.stale_hash;
        if (report.stale_samples.size() < max_samples) {
          report.stale_samples.push_back(visible);
        }
        break;
      case keylime::PolicyMatch::kNotInPolicy:
        ++report.uncovered;
        if (report.uncovered_samples.size() < max_samples) {
          report.uncovered_samples.push_back(visible);
        }
        break;
      case keylime::PolicyMatch::kExcluded:
        ++report.excluded;
        if (report.excluded_samples.size() < max_samples) {
          report.excluded_samples.push_back(visible);
        }
        break;
    }
  }

  // Policy entries with no on-machine counterpart.
  const auto doc = policy.to_json();
  if (const json::Value* digests = doc.find("digests")) {
    for (const auto& [path, hashes] : digests->as_object()) {
      (void)hashes;
      if (!machine_paths.count(path)) ++report.policy_only_paths;
    }
  }
  return report;
}

}  // namespace cia::core
