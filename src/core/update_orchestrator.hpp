// The data-center-controlled update workflow (§III-C, Fig. 2).
//
// One cycle implements the paper's three steps:
//   1. identify updates in advance  — sync the local mirror;
//   2. generate policies            — incremental generator refresh;
//   3. preempt system updates       — push the new policy to the verifier
//                                     *before* the agent machine upgrades
//                                     from the mirror.
//
// Because the push precedes the upgrade, the policy window always covers
// both the old files (existing entries are retained) and the new ones, so
// attestation keeps passing throughout the update. Post-update dedup
// removes the superseded hashes.
#pragma once

#include <string>
#include <vector>

#include "core/policy_generator.hpp"
#include "keylime/policy_store/store.hpp"
#include "keylime/verifier.hpp"
#include "oskernel/machine.hpp"
#include "pkg/apt.hpp"
#include "pkg/mirror.hpp"

namespace cia::core {

/// One managed node: the machine, its apt client, and its agent id.
struct ManagedNode {
  oskernel::Machine* machine = nullptr;
  pkg::AptClient* apt = nullptr;
  std::string agent_id;
};

/// Report for one full update cycle.
struct UpdateCycleReport {
  PolicyUpdateStats policy_stats;
  std::size_t nodes_upgraded = 0;
  std::size_t packages_installed = 0;  // across all nodes
  std::size_t dedup_removed = 0;
  bool kernel_pending_reboot = false;
  /// The cycle was skipped because the mirror snapshot was unusable
  /// (failed/partial sync, or stale beyond the configured bound). No
  /// policy was pushed and no node upgraded — the window is deferred.
  bool deferred = false;
  std::string defer_reason;
};

struct OrchestratorConfig {
  /// A cycle whose sync failed may still proceed on the previous
  /// snapshot if it is younger than this; older (or never-synced, or
  /// incomplete) snapshots defer the window. Policy and node upgrades
  /// always share one snapshot, so deferral can never strand a node on
  /// files the pushed policy does not cover (the §III-D FP class).
  SimTime max_mirror_staleness = 2 * kDay;
};

class UpdateOrchestrator {
 public:
  /// `sink` receives the policy pushes: a single keylime::Verifier, or a
  /// keylime::VerifierPool fanning the revision out across its shards.
  UpdateOrchestrator(pkg::Mirror* mirror, DynamicPolicyGenerator* generator,
                     keylime::PolicySink* sink, SimClock* clock,
                     OrchestratorConfig config = {})
      : mirror_(mirror),
        generator_(generator),
        sink_(sink),
        clock_(clock),
        config_(config) {}

  void manage(ManagedNode node) { nodes_.push_back(node); }

  /// Build and install the initial base policy on every managed node.
  Status bootstrap();

  /// Run one scheduled update cycle: sync mirror -> refresh policy ->
  /// push to verifier -> upgrade nodes from the mirror -> dedup.
  /// `dedup_after` can be disabled to observe policy growth (ablation).
  Result<UpdateCycleReport> run_cycle(bool dedup_after = true);

  const keylime::RuntimePolicy& policy() const { return policy_; }

  /// The content-addressed revision store behind the pushes: every
  /// revision this orchestrator ever pushed, plus the deltas linking
  /// consecutive ones. What a staged rollout rebases from.
  const keylime::policy_store::PolicyStore& store() const { return store_; }

  /// Update windows deferred so far because the mirror was unusable.
  std::uint64_t cycles_deferred() const { return cycles_deferred_; }

  /// Point the orchestrator at a restored verifier (or pool) instance
  /// after crash-recovery; the policy store and managed nodes carry over.
  void rebind(keylime::PolicySink* sink) { sink_ = sink; }

  /// Export update-cycle metrics (cycle duration, run/deferred counters,
  /// packages installed, mirror staleness, policy size) to `metrics` and
  /// wrap each cycle in an `update_cycle` span on `tracer`. Either may be
  /// nullptr; telemetry never alters cycle behaviour.
  void use_telemetry(telemetry::MetricsRegistry* metrics,
                     telemetry::Tracer* tracer = nullptr) {
    metrics_ = metrics;
    tracer_ = tracer;
  }

 private:
  /// Push the current policy_ through the sink as a content-addressed
  /// revision: diffs against the stored head so consecutive cycles move
  /// a §III-C-sized delta instead of the whole base, records revision
  /// and delta in store_, and exports cia_policy_delta_* telemetry.
  Status push_policy();

  pkg::Mirror* mirror_;
  DynamicPolicyGenerator* generator_;
  keylime::PolicySink* sink_;
  SimClock* clock_;
  OrchestratorConfig config_;
  std::vector<ManagedNode> nodes_;
  keylime::RuntimePolicy policy_;
  keylime::policy_store::PolicyStore store_;
  std::uint64_t cycles_deferred_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
};

}  // namespace cia::core
