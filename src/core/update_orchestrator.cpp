#include "core/update_orchestrator.hpp"

#include <optional>

#include "common/log.hpp"
#include "common/strutil.hpp"

namespace cia::core {

namespace {

std::vector<std::string> node_ids(const std::vector<ManagedNode>& nodes) {
  std::vector<std::string> ids;
  ids.reserve(nodes.size());
  for (const ManagedNode& node : nodes) ids.push_back(node.agent_id);
  return ids;
}

}  // namespace

Status UpdateOrchestrator::push_policy() {
  namespace ps = keylime::policy_store;
  const std::string digest = ps::policy_digest(policy_);
  const std::string base = store_.head();

  // First push (or a cycle that changed nothing): full revision. A
  // no-change push still goes through the sink — push_revision's digest
  // cache makes it free (the index is reused, not rebuilt).
  if (base.empty() || base == digest) {
    store_.put(policy_);
    if (metrics_) {
      metrics_
          ->counter("cia_policy_delta_pushes_total", {{"mode", "full"}})
          .inc();
    }
    return sink_->push_revision(node_ids(nodes_), policy_, digest, nullptr);
  }

  // Consecutive cycle: mint the delta against the stored head, record
  // both ends, and push digest-bound — the sink patches its index in
  // place instead of re-indexing the 300k-entry base (§III-C's daily
  // shape).
  const keylime::RuntimePolicy* base_policy = store_.get(base);
  const ps::PolicyDelta delta = ps::diff(*base_policy, policy_);
  store_.put(policy_);
  store_.put_delta(delta);
  if (metrics_) {
    metrics_
        ->counter("cia_policy_delta_pushes_total", {{"mode", "delta"}})
        .inc();
    metrics_->gauge("cia_policy_delta_entries")
        .set(static_cast<double>(delta.entry_count()));
    metrics_->gauge("cia_policy_delta_bytes")
        .set(static_cast<double>(delta.byte_size()));
  }
  return sink_->push_revision(node_ids(nodes_), policy_, digest, &delta);
}

Status UpdateOrchestrator::bootstrap() {
  if (nodes_.empty()) {
    return err(Errc::kInvalidArgument, "no managed nodes");
  }
  if (mirror_->sync(clock_->now()) != pkg::SyncOutcome::kOk) {
    return err(Errc::kUnavailable, "mirror sync failed during bootstrap");
  }
  const std::string kernel = nodes_.front().machine->kernel_version();
  PolicyUpdateStats stats;
  policy_ = generator_->generate_base(kernel, &stats);
  clock_->advance(static_cast<SimTime>(stats.seconds));
  // One bulk push per revision: the sink builds its lookup index once and
  // shares it across every covered agent; the content digest seeds the
  // sink's revision cache so the next cycle's delta can rebase onto it.
  return push_policy();
}

Result<UpdateCycleReport> UpdateOrchestrator::run_cycle(bool dedup_after) {
  if (nodes_.empty()) {
    return err(Errc::kInvalidArgument, "no managed nodes");
  }
  UpdateCycleReport report;
  std::optional<telemetry::Tracer::Scope> span;
  if (tracer_) {
    span.emplace(tracer_->span("update_cycle", "orchestrator"));
    tracer_->annotate("day", strformat("%d", clock_->day()));
  }

  // Step 1: identify updates in advance — refresh the local mirror. A
  // failed or partial sync must not silently feed the generator half an
  // index: a partial snapshot defers outright, a failed sync only
  // proceeds on a previous complete snapshot that is still fresh.
  const pkg::SyncOutcome synced = mirror_->sync(clock_->now());
  if (synced == pkg::SyncOutcome::kPartial || !mirror_->last_sync_complete()) {
    report.deferred = true;
    report.defer_reason = "mirror sync incomplete; snapshot unusable";
  } else if (synced == pkg::SyncOutcome::kFailed &&
             (!mirror_->has_synced() ||
              mirror_->staleness(clock_->now()) > config_.max_mirror_staleness)) {
    report.deferred = true;
    report.defer_reason = "mirror unreachable and snapshot stale";
  }
  if (metrics_) {
    metrics_->gauge("cia_mirror_staleness_seconds")
        .set(mirror_->has_synced()
                 ? static_cast<double>(mirror_->staleness(clock_->now()))
                 : -1.0);
  }
  if (report.deferred) {
    ++cycles_deferred_;
    report.policy_stats.day = clock_->day();
    CIA_LOG_WARN("orchestrator",
                 strformat("cycle day %d deferred: %s", clock_->day(),
                           report.defer_reason.c_str()));
    if (metrics_) {
      metrics_
          ->counter("cia_update_cycles_total", {{"outcome", "deferred"}})
          .inc();
    }
    if (span) {
      tracer_->annotate(span->id(), "outcome", "deferred");
      tracer_->annotate(span->id(), "reason", report.defer_reason);
    }
    return report;
  }

  // Step 2: generate the policy delta. If the sync brought a newer kernel
  // than the one running, admit it ahead of the reboot.
  const std::string running = nodes_.front().machine->kernel_version();
  std::string pending;
  for (const auto& [name, pkg] : mirror_->index()) {
    (void)name;
    // The newest kernel on the mirror that is newer than the running one
    // becomes the pending kernel (serials are fixed-width, so the
    // lexicographic comparison is the version order).
    if (pkg.is_kernel_modules() && pkg.kernel_version > running &&
        (pending.empty() || pkg.kernel_version > pending)) {
      pending = pkg.kernel_version;
    }
  }
  report.policy_stats =
      generator_->refresh(policy_, running, pending);
  report.kernel_pending_reboot = !pending.empty();
  report.policy_stats.day = clock_->day();
  clock_->advance(static_cast<SimTime>(report.policy_stats.seconds));

  // Step 3: preempt the system update — the verifier gets the new policy
  // BEFORE any node installs a byte. Delta-pushed: only the changed
  // entries travel, and a pool sink patches its index incrementally.
  if (Status s = push_policy(); !s.ok()) {
    return s.error();
  }

  // Now the nodes upgrade from the mirror (never from the official
  // archive — that shortcut is the human error of §III-D).
  for (const ManagedNode& node : nodes_) {
    const pkg::UpgradeResult result = node.apt->upgrade(mirror_->index());
    if (!result.upgraded.empty()) {
      ++report.nodes_upgraded;
      report.packages_installed += result.upgraded.size();
    }
    // A newer kernel on the mirror is installed alongside the running one
    // (dist-upgrade behaviour) and armed for the next reboot; its policy
    // entries were already admitted above as the pending kernel.
    if (!pending.empty() && node.machine->kernel_version() != pending &&
        !node.apt->is_installed("linux-modules-" + pending)) {
      for (const std::string& kpkg :
           {"linux-image-" + pending, "linux-modules-" + pending}) {
        if (const pkg::Package* p = mirror_->find(kpkg)) {
          (void)node.apt->install(*p);
          ++report.packages_installed;
        }
      }
      node.machine->schedule_kernel(pending);
    }
  }

  // Post-update dedup: superseded hashes leave the policy once no node
  // can still be running the old files.
  if (dedup_after && report.policy_stats.lines_added > 0) {
    report.dedup_removed = policy_.dedup();
    if (Status s = push_policy(); !s.ok()) {
      return s.error();
    }
  }

  CIA_LOG_INFO("orchestrator",
               strformat("cycle day %d: %zu pkgs, %zu lines, %.1fs, dedup -%zu",
                         report.policy_stats.day,
                         report.policy_stats.packages_processed,
                         report.policy_stats.lines_added,
                         report.policy_stats.seconds, report.dedup_removed));
  if (metrics_) {
    metrics_->counter("cia_update_cycles_total", {{"outcome", "run"}}).inc();
    metrics_->histogram("cia_update_cycle_seconds").observe(
        report.policy_stats.seconds);
    if (report.packages_installed > 0) {
      metrics_->counter("cia_update_packages_installed_total")
          .inc(report.packages_installed);
    }
    metrics_->gauge("cia_policy_entries")
        .set(static_cast<double>(policy_.entry_count()));
    metrics_->gauge("cia_policy_bytes")
        .set(static_cast<double>(policy_.byte_size()));
  }
  if (span) {
    tracer_->annotate(span->id(), "outcome", "run");
    tracer_->annotate(span->id(), "packages",
                      strformat("%zu", report.packages_installed));
  }
  return report;
}

}  // namespace cia::core
