// The dynamic policy generator — the paper's primary contribution (§III-C).
//
// Instead of hashing the files of one machine, the generator measures the
// *distribution itself*: every executable shipped by every package in the
// mirrored Main/Security/Updates suites becomes a policy entry. Because
// the mirror is the only update source for the fleet, a machine can never
// legitimately run an executable the policy has not already blessed.
//
// The generator works incrementally: it remembers the last processed
// revision of each package and, on refresh, downloads/unpacks/hashes only
// new or changed packages, *appending* their hashes to the policy. Old
// hashes are intentionally retained during the update window so machines
// mid-upgrade stay in policy; dedup() afterwards drops the stale ones.
//
// Kernel modules get special treatment (§III-C "Handling Kernel Modules"):
// only the running kernel's module package is admitted — plus, when an
// update installs a newer kernel that will boot later, that pending
// kernel's modules are admitted ahead of the reboot.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "keylime/runtime_policy.hpp"
#include "pkg/cost_model.hpp"
#include "pkg/mirror.hpp"

namespace cia::core {

/// Statistics for one generator run — these are exactly the quantities
/// plotted in the paper's Figs. 3-5 and Table I.
struct PolicyUpdateStats {
  int day = 0;
  std::size_t packages_processed = 0;      // new+changed pkgs w/ executables
  std::size_t packages_high_priority = 0;  // Essential/Required/Important/Standard
  std::size_t packages_low_priority = 0;   // Optional/Extra
  std::size_t lines_added = 0;             // policy entries appended
  std::uint64_t bytes_added = 0;           // policy growth in bytes
  double seconds = 0.0;                    // virtual generation time
  std::size_t kernel_packages_skipped = 0; // non-running-kernel pkgs ignored
  std::size_t kernel_lines_retired = 0;    // old-kernel entries purged
  std::size_t manifest_rejected = 0;       // bad/missing maintainer signature
};

struct GeneratorConfig {
  pkg::CostModel cost;
  /// Enforce the kernel-module rules; when false every kernel package in
  /// the mirror is admitted (used by the ablation bench).
  bool kernel_tracking = true;
  /// When set, only packages whose manifest carries a valid signature by
  /// this maintainer key are admitted (the §V ostree-style provenance
  /// improvement). Unsigned or tampered packages are rejected and counted.
  std::optional<crypto::PublicKey> trusted_maintainer;
};

class DynamicPolicyGenerator {
 public:
  DynamicPolicyGenerator(const pkg::Mirror* mirror, GeneratorConfig config)
      : mirror_(mirror), config_(config) {}

  /// Build the full base policy from the current mirror snapshot.
  /// `running_kernel` selects which kernel's modules are admitted.
  keylime::RuntimePolicy generate_base(const std::string& running_kernel,
                                       PolicyUpdateStats* stats = nullptr);

  /// Incremental refresh: diff the mirror against the last processed
  /// revisions and append hashes for new/changed executables to `policy`.
  /// `pending_kernel` (optional) is a newly installed kernel that has not
  /// booted yet; its module package is admitted ahead of the reboot.
  PolicyUpdateStats refresh(keylime::RuntimePolicy& policy,
                            const std::string& running_kernel,
                            const std::string& pending_kernel = "");

  /// Number of distinct packages the generator has processed so far.
  std::size_t processed_count() const { return processed_.size(); }

 private:
  /// Should this package's files enter the policy at all?
  bool admit(const pkg::Package& pkg, const std::string& running_kernel,
             const std::string& pending_kernel,
             PolicyUpdateStats& stats) const;

  /// Hash and append one package's executables; updates stats.
  void measure_package(const pkg::Package& pkg,
                       keylime::RuntimePolicy& policy,
                       PolicyUpdateStats& stats,
                       std::vector<const pkg::Package*>& costed);

  const pkg::Mirror* mirror_;
  GeneratorConfig config_;
  std::map<std::string, std::uint32_t> processed_;  // name -> revision
  std::string last_running_kernel_;
};

}  // namespace cia::core
