#include "core/policy_generator.hpp"

#include "common/log.hpp"
#include "common/strutil.hpp"

namespace cia::core {

bool DynamicPolicyGenerator::admit(const pkg::Package& pkg,
                                   const std::string& running_kernel,
                                   const std::string& pending_kernel,
                                   PolicyUpdateStats& stats) const {
  if (config_.trusted_maintainer) {
    const auto sig = crypto::Signature::decode(pkg.manifest_signature);
    if (!sig || !crypto::verify(*config_.trusted_maintainer,
                                pkg.manifest_tbs(), *sig)) {
      ++stats.manifest_rejected;
      return false;
    }
  }
  if (!config_.kernel_tracking || pkg.kernel_version.empty()) return true;
  if (pkg.kernel_version == running_kernel) return true;
  if (!pending_kernel.empty() && pkg.kernel_version == pending_kernel) {
    return true;
  }
  // Outdated (or not-yet-relevant) kernels are disallowed: their modules
  // must not be loadable on the attested fleet.
  ++stats.kernel_packages_skipped;
  return false;
}

void DynamicPolicyGenerator::measure_package(
    const pkg::Package& pkg, keylime::RuntimePolicy& policy,
    PolicyUpdateStats& stats, std::vector<const pkg::Package*>& costed) {
  if (pkg.executable_count() == 0) return;

  const std::uint64_t bytes_before = policy.byte_size();
  const std::size_t lines_before = policy.entry_count();
  for (const pkg::PackageFile& f : pkg.files) {
    if (!f.executable) continue;
    policy.allow(f.path, f.content_hash(pkg.name));
  }
  const std::size_t added = policy.entry_count() - lines_before;
  if (added == 0) return;  // nothing new (e.g. metadata-only revision)

  ++stats.packages_processed;
  if (pkg::is_high_priority(pkg.priority)) {
    ++stats.packages_high_priority;
  } else {
    ++stats.packages_low_priority;
  }
  stats.lines_added += added;
  stats.bytes_added += policy.byte_size() - bytes_before;
  costed.push_back(&pkg);
}

keylime::RuntimePolicy DynamicPolicyGenerator::generate_base(
    const std::string& running_kernel, PolicyUpdateStats* stats_out) {
  keylime::RuntimePolicy policy;
  PolicyUpdateStats stats;
  std::vector<const pkg::Package*> costed;
  processed_.clear();
  for (const auto& [name, pkg] : mirror_->index()) {
    if (!admit(pkg, running_kernel, "", stats)) continue;
    measure_package(pkg, policy, stats, costed);
    processed_[name] = pkg.revision;
  }
  last_running_kernel_ = running_kernel;
  stats.seconds = config_.cost.policy_update_sec(costed);
  if (stats_out) *stats_out = stats;
  CIA_LOG_INFO("policy-gen",
               strformat("base policy: %zu entries from %zu packages",
                         policy.entry_count(), stats.packages_processed));
  return policy;
}

PolicyUpdateStats DynamicPolicyGenerator::refresh(
    keylime::RuntimePolicy& policy, const std::string& running_kernel,
    const std::string& pending_kernel) {
  PolicyUpdateStats stats;
  std::vector<const pkg::Package*> costed;
  // The fleet rebooted into a new kernel since the last refresh: retire
  // the outdated kernel's modules so they are no longer loadable.
  if (config_.kernel_tracking && !last_running_kernel_.empty() &&
      running_kernel != last_running_kernel_) {
    stats.kernel_lines_retired +=
        policy.remove_prefix("/lib/modules/" + last_running_kernel_ + "/");
    stats.kernel_lines_retired +=
        policy.remove_prefix("/boot/vmlinuz-" + last_running_kernel_);
  }
  last_running_kernel_ = running_kernel;
  for (const auto& [name, pkg] : mirror_->index()) {
    auto it = processed_.find(name);
    const bool is_new = (it == processed_.end());
    if (!is_new && it->second >= pkg.revision) continue;
    if (!admit(pkg, running_kernel, pending_kernel, stats)) continue;
    // Only modified or new executables produce policy lines: allow() is
    // idempotent per (path, hash), so unchanged files cost nothing.
    measure_package(pkg, policy, stats, costed);
    processed_[name] = pkg.revision;
  }
  stats.seconds = config_.cost.policy_update_sec(costed);
  return stats;
}

}  // namespace cia::core
