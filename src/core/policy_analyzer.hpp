// Policy coverage analysis — operator tooling for answering "would this
// policy fire on this machine, and where are its blind spots?" before
// enabling enforcement.
//
// The analyzer cross-references a machine's executable inventory with a
// runtime policy and classifies every file:
//   * covered    — path present with the current hash: attests green;
//   * stale hash — path present but the on-disk hash is not acceptable:
//                  the next execution fires a hash-mismatch FP;
//   * uncovered  — absent from the policy: the next execution fires a
//                  missing-file FP (or is a real intrusion);
//   * excluded   — under an exclude glob: never evaluated, the P1 class
//                  of blind spot, reported so operators can audit it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "keylime/runtime_policy.hpp"
#include "oskernel/machine.hpp"

namespace cia::core {

struct CoverageReport {
  std::size_t machine_executables = 0;
  std::size_t covered = 0;
  std::size_t stale_hash = 0;
  std::size_t uncovered = 0;
  std::size_t excluded = 0;
  /// Policy paths with no corresponding file on this machine (normal for
  /// a distribution-wide policy: the rest of the archive).
  std::size_t policy_only_paths = 0;

  std::vector<std::string> stale_samples;
  std::vector<std::string> uncovered_samples;
  std::vector<std::string> excluded_samples;

  /// Fraction of the machine's executables that attest green as-is.
  double coverage_ratio() const {
    return machine_executables == 0
               ? 1.0
               : static_cast<double>(covered) /
                     static_cast<double>(machine_executables);
  }

  /// Would continuous attestation run alert-free right now?
  bool clean() const { return stale_hash == 0 && uncovered == 0; }

  std::string to_string() const;
};

/// Analyze `policy` against the machine's current filesystem state.
CoverageReport analyze_coverage(const oskernel::Machine& machine,
                                const keylime::RuntimePolicy& policy,
                                std::size_t max_samples = 5);

}  // namespace cia::core
