// A software TPM 2.0 with the features continuous attestation relies on:
//
//   * a SHA-256 PCR bank (24 registers) with extend/read/reset;
//   * an endorsement key (EK) certified by a manufacturer CA — the
//     hardware root of trust;
//   * an attestation key (AK) used to sign quotes;
//   * TPM2_Quote: a signed statement binding a verifier nonce to the
//     current values of selected PCRs;
//   * credential activation (TPM2_MakeCredential / ActivateCredential):
//     proof that the AK lives in the same TPM as the certified EK, using
//     ECDH against the EK.
//
// PCRs reset on machine reboot, exactly like a real platform reset.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "crypto/cert.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace cia::tpm {

constexpr int kNumPcrs = 24;
constexpr int kImaPcr = 10;  // the PCR IMA extends

/// A signed TPM quote over selected PCRs.
struct Quote {
  std::string device_id;
  Bytes nonce;
  std::vector<int> pcr_indices;
  std::vector<crypto::Digest> pcr_values;
  crypto::Signature signature;  // by the AK, over attested_message()

  /// The byte string the AK signs (TPMS_ATTEST analogue).
  Bytes attested_message() const;

  /// Verify the signature against an AK public key. Does not (cannot)
  /// check freshness — the caller compares the nonce.
  bool verify(const crypto::PublicKey& ak_pub) const;
};

/// An encrypted credential produced by make_credential(): only the TPM
/// holding the EK private key can recover `secret`.
struct CredentialBlob {
  Bytes ephemeral_pub;   // ECDH ephemeral public key (64 bytes)
  Bytes encrypted;       // secret XOR KDF(shared point), plus MAC
  Bytes mac;             // HMAC over encrypted, keyed by the KDF output
  std::string ak_name;   // binds the credential to a specific AK
};

/// Software TPM device.
class Tpm2 {
 public:
  /// `seed` makes the EK/AK deterministic; `manufacturer` signs the EK
  /// certificate at "fabrication" time.
  Tpm2(std::string device_id, const Bytes& seed,
       const crypto::CertificateAuthority& manufacturer);

  const std::string& device_id() const { return device_id_; }

  // --------------------------------------------------------------- PCRs

  /// Extend: pcr = SHA256(pcr || digest).
  void extend(int pcr, const crypto::Digest& digest);

  crypto::Digest pcr_value(int pcr) const;

  /// Platform reset (reboot): all PCRs return to zero.
  void reset();

  // --------------------------------------------------------------- keys

  const crypto::Certificate& ek_certificate() const { return ek_cert_; }
  const crypto::PublicKey& ek_public() const { return ek_.pub; }
  const crypto::PublicKey& ak_public() const { return ak_.pub; }

  /// The AK "name" (hash of its public part), as used in credential
  /// activation.
  std::string ak_name() const;

  // -------------------------------------------------------------- quote

  /// Produce a quote over `pcr_indices` bound to `nonce`.
  Quote quote(const Bytes& nonce, const std::vector<int>& pcr_indices) const;

  // ------------------------------------------------- credential activation

  /// TPM2_ActivateCredential: recover the secret from a blob addressed to
  /// this TPM's EK. Fails if the blob was made for a different EK or a
  /// different AK name.
  Result<Bytes> activate_credential(const CredentialBlob& blob) const;

 private:
  std::string device_id_;
  crypto::KeyPair ek_;
  crypto::KeyPair ak_;
  crypto::Certificate ek_cert_;
  std::array<crypto::Digest, kNumPcrs> pcrs_;
};

/// TPM2_MakeCredential (runs on the *verifier* side): wrap `secret` so
/// only the TPM holding `ek_pub` can recover it, bound to `ak_name`.
/// `entropy` supplies the ephemeral key material (deterministic testing).
CredentialBlob make_credential(const crypto::PublicKey& ek_pub,
                               const std::string& ak_name, const Bytes& secret,
                               const Bytes& entropy);

}  // namespace cia::tpm
