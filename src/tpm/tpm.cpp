#include "tpm/tpm.hpp"

#include <cassert>

#include "crypto/hmac.hpp"

namespace cia::tpm {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// KDF the ECDH shared point into a 32-byte key.
crypto::Digest ecdh_kdf(const crypto::Point& shared, const std::string& ak_name) {
  return crypto::kdf(crypto::encode_point(shared), "credential:" + ak_name);
}

}  // namespace

Bytes Quote::attested_message() const {
  Bytes msg = to_bytes("TPMS_ATTEST/quote:");
  append(msg, to_bytes(device_id));
  append(msg, nonce);
  // Hash the selected PCR values into a single digest, as real quotes do.
  crypto::Sha256 ctx;
  for (std::size_t i = 0; i < pcr_indices.size(); ++i) {
    Bytes idx;
    put_u32(idx, static_cast<std::uint32_t>(pcr_indices[i]));
    ctx.update(idx);
    ctx.update(pcr_values[i].data(), pcr_values[i].size());
  }
  const crypto::Digest pcr_digest = ctx.finish();
  msg.insert(msg.end(), pcr_digest.begin(), pcr_digest.end());
  return msg;
}

bool Quote::verify(const crypto::PublicKey& ak_pub) const {
  if (pcr_indices.size() != pcr_values.size()) return false;
  return crypto::verify(ak_pub, attested_message(), signature);
}

Tpm2::Tpm2(std::string device_id, const Bytes& seed,
           const crypto::CertificateAuthority& manufacturer)
    : device_id_(std::move(device_id)),
      ek_(crypto::derive_keypair(seed, "ek:" + device_id_)),
      ak_(crypto::derive_keypair(seed, "ak:" + device_id_)),
      ek_cert_(manufacturer.issue("tpm:ek:" + device_id_, ek_.pub, 0,
                                  /*not_after=*/kDay * 365 * 20)) {
  reset();
}

void Tpm2::extend(int pcr, const crypto::Digest& digest) {
  assert(pcr >= 0 && pcr < kNumPcrs);
  crypto::Sha256 ctx;
  ctx.update(pcrs_[static_cast<std::size_t>(pcr)].data(), crypto::kSha256Size);
  ctx.update(digest.data(), digest.size());
  pcrs_[static_cast<std::size_t>(pcr)] = ctx.finish();
}

crypto::Digest Tpm2::pcr_value(int pcr) const {
  assert(pcr >= 0 && pcr < kNumPcrs);
  return pcrs_[static_cast<std::size_t>(pcr)];
}

void Tpm2::reset() {
  for (auto& p : pcrs_) p = crypto::zero_digest();
}

std::string Tpm2::ak_name() const {
  return crypto::digest_hex(crypto::sha256(ak_.pub.encode()));
}

Quote Tpm2::quote(const Bytes& nonce, const std::vector<int>& pcr_indices) const {
  Quote q;
  q.device_id = device_id_;
  q.nonce = nonce;
  q.pcr_indices = pcr_indices;
  for (int idx : pcr_indices) q.pcr_values.push_back(pcr_value(idx));
  q.signature = crypto::sign(ak_, q.attested_message());
  return q;
}

Result<Bytes> Tpm2::activate_credential(const CredentialBlob& blob) const {
  if (blob.ak_name != ak_name()) {
    return err(Errc::kCryptoFailure, "credential bound to a different AK");
  }
  auto eph = crypto::decode_point(blob.ephemeral_pub);
  if (!eph || eph->infinity) {
    return err(Errc::kCryptoFailure, "bad ephemeral key");
  }
  const crypto::Point shared = crypto::scalar_mul(ek_.secret, *eph);
  const crypto::Digest key = ecdh_kdf(shared, blob.ak_name);
  // Check the MAC before decrypting.
  const crypto::Digest expect_mac =
      crypto::hmac_sha256(crypto::digest_bytes(key), blob.encrypted);
  if (Bytes(expect_mac.begin(), expect_mac.end()) != blob.mac) {
    return err(Errc::kCryptoFailure, "credential MAC mismatch (wrong EK?)");
  }
  Bytes secret(blob.encrypted.size());
  for (std::size_t i = 0; i < secret.size(); ++i) {
    secret[i] = blob.encrypted[i] ^ key[i % key.size()];
  }
  return secret;
}

CredentialBlob make_credential(const crypto::PublicKey& ek_pub,
                               const std::string& ak_name, const Bytes& secret,
                               const Bytes& entropy) {
  assert(secret.size() <= crypto::kSha256Size &&
         "credential secrets are at most one keystream block");
  const crypto::KeyPair eph = crypto::derive_keypair(entropy, "make-credential");
  const crypto::Point shared = crypto::scalar_mul(eph.secret, ek_pub.point);
  const crypto::Digest key = ecdh_kdf(shared, ak_name);

  CredentialBlob blob;
  blob.ak_name = ak_name;
  blob.ephemeral_pub = eph.pub.encode();
  blob.encrypted.resize(secret.size());
  for (std::size_t i = 0; i < secret.size(); ++i) {
    blob.encrypted[i] = secret[i] ^ key[i % key.size()];
  }
  const crypto::Digest mac =
      crypto::hmac_sha256(crypto::digest_bytes(key), blob.encrypted);
  blob.mac = Bytes(mac.begin(), mac.end());
  return blob;
}

}  // namespace cia::tpm
