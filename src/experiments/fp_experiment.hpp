// The false-positive experiments of §III.
//
//   * run_fp_baseline(): one week of benign operation under a static
//     scan-derived policy with unattended upgrades enabled and a SNAP
//     installed — reproduces the two §III-B failure causes (system
//     updates, SNAP path truncation).
//   * run_dynamic_policy_experiment(): the §III-D evaluation — 31 days of
//     daily (or 35 days of weekly) scheduled updates through the local
//     mirror with the dynamic policy generator, including the optional
//     day-31 operator-error injection (update pulled from the official
//     archive after the mirror sync).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy_generator.hpp"
#include "pkg/archive.hpp"
#include "keylime/verifier.hpp"

namespace cia::experiments {

// ----------------------------------------------------------- FP baseline

struct FpBaselineOptions {
  std::uint64_t seed = 42;
  int days = 7;
  /// Scale knobs (defaults match the full evaluation; tests shrink them).
  pkg::ArchiveConfig archive;
  std::size_t provision_extra = 250;
};

struct FpBaselineResult {
  int days = 0;
  std::size_t alerts_total = 0;
  std::size_t update_hash_mismatch = 0;   // modified files after updates
  std::size_t update_missing_file = 0;    // files updates introduced
  std::size_t snap_truncation = 0;        // SNAP path-truncation errors
  std::size_t operator_interventions = 0; // manual resolve actions
  std::vector<std::string> sample_alerts; // a few rendered examples
};

FpBaselineResult run_fp_baseline(const FpBaselineOptions& options);

// ------------------------------------------------- dynamic policy scheme

struct DynamicRunOptions {
  std::uint64_t seed = 42;
  int days = 31;
  int update_period_days = 1;  // 1 = daily, 7 = weekly
  /// Scale knobs (defaults match the full evaluation; tests shrink them).
  pkg::ArchiveConfig archive;
  std::size_t provision_extra = 250;
  /// Reproduce the §III-D human-error incident: on `race_day` a release
  /// lands after the mirror sync and the operator updates the node from
  /// the official archive instead of the mirror.
  bool inject_mirror_race = false;
  int race_day = 30;
};

struct DynamicRunResult {
  int days = 0;
  int updates_run = 0;
  std::size_t base_policy_entries = 0;
  std::uint64_t base_policy_bytes = 0;
  /// One record per executed update cycle (Figs. 3-5 and Table I).
  std::vector<core::PolicyUpdateStats> updates;
  /// Policy-violation alerts observed over the whole run (the paper's
  /// false positives; zero except for the injected incident).
  std::size_t false_positives = 0;
  std::size_t incident_false_positives = 0;  // attributable to the race
  int reboots = 0;
  std::vector<keylime::Alert> alerts;
};

DynamicRunResult run_dynamic_policy_experiment(const DynamicRunOptions& options);

}  // namespace cia::experiments
