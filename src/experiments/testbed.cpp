#include "experiments/testbed.hpp"

#include "common/strutil.hpp"

namespace cia::experiments {

namespace {

oskernel::MachineConfig machine_config(const TestbedOptions& options) {
  oskernel::MachineConfig cfg;
  cfg.hostname = "node0";
  cfg.seed = options.seed;
  cfg.ima_policy = options.ima_policy;
  cfg.ima_config = options.ima_config;
  return cfg;
}

}  // namespace

Testbed::Testbed(const TestbedOptions& options)
    : clock(),
      tpm_ca("tpm-manufacturer-sim", to_bytes("manufacturer-root-seed")),
      archive(options.archive, options.seed),
      mirror(&archive),
      network(&clock, options.seed ^ 0x6e657473696dull),
      registrar(&network, &clock, options.seed ^ 0x726567ull),
      verifier(&network, &clock, options.seed ^ 0x766572ull,
               options.verifier_config),
      machine(machine_config(options), tpm_ca, &clock),
      apt(&machine, options.cost) {
  registrar.trust_manufacturer(tpm_ca.public_key());
  agent_ = std::make_unique<keylime::Agent>(&machine, &network);

  // Provision the machine image: the well-known core, a slice of the
  // generated population, and the running kernel's packages.
  provisioned = {"bash",   "coreutils", "python3", "openssl", "libc6",
                 "systemd", "curl",     "openssh", "sudo",    "tar"};
  for (std::size_t i = 0; i < options.provision_extra; ++i) {
    const std::string name = strformat("pkg-%04zu", i);
    if (archive.find(name)) provisioned.push_back(name);
  }
  const std::string kver = machine.kernel_version();
  if (archive.find("linux-image-" + kver)) {
    provisioned.push_back("linux-image-" + kver);
    provisioned.push_back("linux-modules-" + kver);
  }
  // Provisioning a fresh image from the archive cannot fail.
  (void)apt.provision(archive.index(), provisioned);

  // Some user data for ransomware to chew on.
  (void)machine.fs().create_file("/home/user/notes.txt", to_bytes("notes"), false);
  (void)machine.fs().create_file("/home/user/finances.ods", to_bytes("data"), false);

  if (options.snap_enabled) {
    const std::string snap_root = "/snap/core20/1891";
    (void)machine.fs().mount(snap_root, vfs::FsType::kSquashfs,
                             /*namespace_truncated=*/true);
    const std::vector<std::pair<std::string, std::string>> snap_bins = {
        {snap_root + "/usr/bin/snaptool", "elf:snap:snaptool"},
        {snap_root + "/bin/jqlite", "elf:snap:jqlite"},
    };
    for (const auto& [path, content] : snap_bins) {
      (void)machine.fs().create_file(path, to_bytes(content), true);
      snap_host_paths_.push_back(path);
      snap_visible_paths_.push_back(machine.fs().ima_visible_path(path));
    }
  }
}

Status Testbed::enroll() {
  if (Status s = agent_->register_with(keylime::Registrar::address()); !s.ok()) {
    return s;
  }
  return verifier.add_agent(agent_->agent_id(), agent_->address());
}

void Testbed::attest() {
  (void)verifier.attest_once(agent_->agent_id());
}

keylime::RuntimePolicy scan_machine_policy(const oskernel::Machine& machine,
                                           bool exclude_tmp) {
  keylime::RuntimePolicy policy;
  if (exclude_tmp) policy.exclude("/tmp/*");
  for (const std::string& path : machine.fs().list_files("/")) {
    if (exclude_tmp && starts_with(path, "/tmp/")) continue;
    const auto st = machine.fs().stat(path);
    if (!st.ok() || !st.value().executable) continue;
    policy.allow(path, st.value().content_hash);
  }
  return policy;
}

keylime::RuntimePolicy scrub_container_prefixes(
    const keylime::RuntimePolicy& policy, const oskernel::Machine& machine,
    std::size_t* rewritten) {
  keylime::RuntimePolicy scrubbed;
  for (const std::string& glob : policy.excludes()) scrubbed.exclude(glob);
  std::size_t rewrites = 0;
  const json::Value doc = policy.to_json();
  for (const auto& [path, hashes] : doc.find("digests")->as_object()) {
    const std::string visible = machine.fs().ima_visible_path(path);
    if (visible != path) ++rewrites;
    for (const auto& h : hashes.as_array()) {
      scrubbed.allow(visible, h.as_string());
    }
  }
  if (rewritten) *rewritten = rewrites;
  return scrubbed;
}

}  // namespace cia::experiments
