#include "experiments/fleet_experiment.hpp"

#include <memory>
#include <vector>

#include "common/strutil.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/workload.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/scheduler.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "pkg/apt.hpp"
#include "pkg/mirror.hpp"

namespace cia::experiments {

FleetRunResult run_fleet_experiment(const FleetRunOptions& options) {
  FleetRunResult result;
  result.nodes = options.nodes;
  result.days = options.days;

  SimClock clock;
  crypto::CertificateAuthority tpm_ca("tpm-manufacturer",
                                      to_bytes("fleet-mfg-seed"));
  pkg::Archive archive(options.archive, options.seed);
  pkg::Mirror mirror(&archive);
  netsim::SimNetwork network(&clock, options.seed ^ 0xf1ee7ull);
  keylime::Registrar registrar(&network, &clock, options.seed ^ 1);
  keylime::Verifier verifier(&network, &clock, options.seed ^ 2);
  registrar.trust_manufacturer(tpm_ca.public_key());

  core::DynamicPolicyGenerator generator(&mirror, core::GeneratorConfig{});
  core::UpdateOrchestrator orchestrator(&mirror, &generator, &verifier, &clock);
  keylime::SchedulerConfig sched_config;
  sched_config.poll_interval = kHour;
  keylime::AttestationScheduler scheduler(&verifier, &clock, sched_config);
  network.use_telemetry(options.metrics);
  verifier.use_telemetry(options.metrics);
  orchestrator.use_telemetry(options.metrics);
  scheduler.use_telemetry(options.metrics);

  // Build the fleet.
  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<keylime::Agent>> agents;
  std::vector<std::unique_ptr<pkg::AptClient>> apts;
  std::vector<std::unique_ptr<Workload>> workloads;
  std::vector<std::string> provision = {"bash", "coreutils", "python3",
                                        "openssl", "curl", "sudo", "tar"};
  for (std::size_t i = 0; i < options.provision_extra; ++i) {
    const std::string name = strformat("pkg-%04zu", i);
    if (archive.find(name)) provision.push_back(name);
  }
  for (std::size_t i = 0; i < options.nodes; ++i) {
    oskernel::MachineConfig cfg;
    cfg.hostname = strformat("node-%03zu", i);
    cfg.seed = options.seed + i + 1;
    machines.push_back(std::make_unique<oskernel::Machine>(cfg, tpm_ca, &clock));
    apts.push_back(std::make_unique<pkg::AptClient>(machines.back().get(),
                                                    pkg::CostModel{}));
    if (!apts.back()->provision(archive.index(), provision).ok()) return result;
    agents.push_back(
        std::make_unique<keylime::Agent>(machines.back().get(), &network));
    agents.back()->use_telemetry(options.metrics);
    if (!agents.back()->register_with(keylime::Registrar::address()).ok()) {
      return result;
    }
    if (!verifier.add_agent(cfg.hostname, agents.back()->address()).ok()) {
      return result;
    }
    orchestrator.manage({machines.back().get(), apts.back().get(), cfg.hostname});
    workloads.push_back(std::make_unique<Workload>(
        machines.back().get(), options.seed ^ (0x77 + i)));
  }
  if (!orchestrator.bootstrap().ok()) return result;
  for (const auto& agent : agents) scheduler.enroll(agent->agent_id());

  // Attestation runs over a lossy network.
  netsim::FaultConfig faults;
  faults.drop_rate = options.drop_rate;
  network.set_faults(faults);

  for (int day = 0; day < options.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      clock.advance_to(static_cast<SimTime>(day) * kDay + hour * kHour);
      if (hour == 5) {
        auto report = orchestrator.run_cycle();
        if (report.ok()) {
          result.updates.push_back(report.value().policy_stats);
          ++result.updates_run;
        }
      }
      if (hour == 8) (void)archive.release_day(day);
      if (hour == 9 || hour == 15) {
        for (auto& workload : workloads) workload->run_session();
      }
      // Sub-hour scheduler ticks so staggered polls land on time.
      for (int step = 0; step < 6; ++step) {
        clock.advance_to(static_cast<SimTime>(day) * kDay + hour * kHour +
                         step * (kHour / 6));
        result.polls += scheduler.tick();
      }
    }
  }

  for (const auto& agent : agents) {
    if (const auto* schedule = scheduler.schedule(agent->agent_id())) {
      result.comms_failures += schedule->comms_failures;
    }
  }
  for (const auto& alert : verifier.alerts()) {
    if (alert.type == keylime::AlertType::kHashMismatch ||
        alert.type == keylime::AlertType::kNotInPolicy) {
      ++result.false_positives;
    }
  }
  result.audit_records = verifier.audit().records().size();
  result.audit_chain_intact =
      keylime::verify_audit_chain(verifier.audit().records(),
                                  verifier.audit().public_key())
          .ok();
  return result;
}

}  // namespace cia::experiments
