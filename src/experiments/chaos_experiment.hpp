// Scripted chaos scenarios against a full attestation fleet.
//
// Each scenario drives an N-node fleet (verifier + scheduler + retrying
// transport + update orchestrator + workloads) through a named fault
// script — link loss, component outages, crash loops, a mid-run verifier
// crash/restore, a mirror partition on an update day — and measures the
// three resilience invariants the paper's operational claims rest on:
//
//   1. zero comms-induced false positives: transport faults must never
//      surface as policy alerts (the §III-D "66 days, zero FP" claim
//      only means something if it survives a hostile network);
//   2. liveness: every healthy agent is re-attested within a bounded
//      window after the fault clears (no agent silently falls out of the
//      attestation loop);
//   3. audit-chain integrity: the signed round chain verifies end to end,
//      including across a verifier crash/checkpoint/restore.
//
// A genuine policy violation is injected into the lossiest scenario to
// prove the pipeline still detects real compromise while absorbing
// transport faults — resilience must not become blindness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "pkg/archive.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cia::experiments {

struct ChaosOptions {
  std::uint64_t seed = 42;
  std::size_t nodes = 6;
  int days = 5;
  /// One of chaos_scenarios().
  std::string scenario = "wan-loss";
  pkg::ArchiveConfig archive;
  std::size_t provision_extra = 30;
  /// Stack a RetryingTransport between the verifier/agents and the lossy
  /// network (disable to measure how much the retry layer absorbs).
  bool retrying_transport = true;
  /// Optional observability: when set, every component of the rig
  /// (network, transport, verifier — including a restored one —, agents,
  /// scheduler, orchestrator) exports its metrics here and the verifier
  /// emits per-round span trees on `tracer`. Telemetry never changes the
  /// simulated outcome.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Tracer* tracer = nullptr;
};

struct ChaosReport {
  std::string scenario;
  std::size_t nodes = 0;
  int days = 0;
  bool valid = false;  // rig construction + enrolment succeeded

  // Attestation outcomes.
  std::size_t polls = 0;
  std::size_t comms_alerts = 0;  // transient kCommsFailure alerts
  /// Policy alerts (hash-mismatch / not-in-policy) NOT explained by the
  /// injected violation — must be 0 in every scenario.
  std::size_t transport_false_positives = 0;
  /// Policy alerts on the victim node after the injected violation.
  std::size_t genuine_alerts = 0;
  bool violation_injected = false;
  bool genuine_detected = false;

  // Recovery after the scripted fault window.
  SimTime fault_window_end = 0;
  /// Seconds after the fault window until the slowest agent produced a
  /// reachable attestation round (-1 if an agent never recovered).
  SimTime recovery_time = -1;
  bool liveness_ok = false;

  // Transport / network counters.
  std::uint64_t retries = 0;
  std::uint64_t recovered_calls = 0;
  std::uint64_t giveups = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t timeouts = 0;

  // Update pipeline.
  int updates_run = 0;
  std::uint64_t updates_deferred = 0;

  // Durable attestation.
  std::size_t audit_records = 0;
  bool audit_chain_ok = false;
  bool verifier_restarted = false;
  /// checkpoint -> restore -> checkpoint reproduced the document (and
  /// the audit head) byte for byte.
  bool checkpoint_roundtrip_ok = true;
};

/// The named fault scripts bench_chaos and cia_chaos iterate over.
const std::vector<std::string>& chaos_scenarios();

ChaosReport run_chaos_experiment(const ChaosOptions& options);

}  // namespace cia::experiments
