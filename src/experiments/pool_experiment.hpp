// A ready-made sharded-attestation fleet for benchmarks and tests.
//
// PoolFleet builds a VerifierPool plus N agent machines sharing one
// deterministic image: every machine carries the same synthetic binary
// set (content is a pure function of the path), so a single scanned
// RuntimePolicy covers the whole fleet and one PolicyIndex revision can
// be bulk-pushed to every shard. Machines, agents, and workloads are all
// seeded independently of the shard count, which is what lets the
// determinism tests compare per-agent verdicts across different pool
// partitions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "keylime/agent.hpp"
#include "keylime/verifier_pool.hpp"
#include "oskernel/machine.hpp"

namespace cia::experiments {

struct PoolFleetOptions {
  std::size_t agents = 64;
  std::size_t shards = 4;
  std::uint64_t seed = 42;
  /// Synthetic executables installed on every machine (identical
  /// content fleet-wide, so one policy covers everyone).
  std::size_t binaries_per_machine = 24;
  /// Binaries executed per machine per workload round. Successive rounds
  /// walk disjoint slices of the binary set (IMA caches unchanged files,
  /// so only first executions produce measurements to appraise).
  std::size_t execs_per_round = 4;
  keylime::VerifierConfig verifier;
  keylime::SchedulerConfig scheduler;
  bool retrying_transport = true;
  telemetry::MetricsRegistry* metrics = nullptr;
};

class PoolFleet {
 public:
  explicit PoolFleet(const PoolFleetOptions& options);
  ~PoolFleet();

  PoolFleet(const PoolFleet&) = delete;
  PoolFleet& operator=(const PoolFleet&) = delete;

  /// Construction outcome: registration or enrolment failures surface
  /// here instead of from the constructor.
  const Status& init_status() const { return init_status_; }

  keylime::VerifierPool& pool() { return *pool_; }
  const keylime::VerifierPool& pool() const { return *pool_; }

  const std::vector<std::string>& agent_ids() const { return agent_ids_; }
  oskernel::Machine& machine(std::size_t i) { return *machines_.at(i); }

  /// The policy covering the shared fleet image (every synthetic binary,
  /// /tmp excluded) — scanned once from machine 0.
  keylime::RuntimePolicy fleet_policy() const;

  /// Bulk-push fleet_policy() to every agent: one PolicyIndex revision
  /// shared across all shards.
  Status push_fleet_policy();

  /// One benign workload round: every machine executes a deterministic,
  /// round-varying subset of its binaries. Independent of the shard
  /// count, so the IMA log an agent accumulates is too.
  void run_workload_round(std::uint64_t round);

  /// Plant and execute an unknown binary on machine `i` — the next
  /// attestation of that agent must raise kNotInPolicy.
  void exec_unknown(std::size_t i);

 private:
  PoolFleetOptions options_;
  std::unique_ptr<crypto::CertificateAuthority> tpm_ca_;
  std::unique_ptr<keylime::VerifierPool> pool_;
  std::vector<std::unique_ptr<oskernel::Machine>> machines_;
  std::vector<std::unique_ptr<keylime::Agent>> agents_;
  std::vector<std::string> agent_ids_;
  std::vector<std::string> binaries_;
  Status init_status_;
};

}  // namespace cia::experiments
