// A ready-made sharded-attestation fleet for benchmarks and tests.
//
// PoolFleet builds a VerifierPool plus N agent machines sharing one
// deterministic image: every machine carries the same synthetic binary
// set (content is a pure function of the path), so a single scanned
// RuntimePolicy covers the whole fleet and one PolicyIndex revision can
// be bulk-pushed to every shard. Machines, agents, and workloads are all
// seeded independently of the shard count, which is what lets the
// determinism tests compare per-agent verdicts across different pool
// partitions.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "keylime/agent.hpp"
#include "keylime/policy_store/rollout.hpp"
#include "keylime/verifier_pool.hpp"
#include "oskernel/machine.hpp"

namespace cia::experiments {

struct PoolFleetOptions {
  std::size_t agents = 64;
  std::size_t shards = 4;
  std::uint64_t seed = 42;
  /// Synthetic executables installed on every machine (identical
  /// content fleet-wide, so one policy covers everyone).
  std::size_t binaries_per_machine = 24;
  /// Binaries executed per machine per workload round. Successive rounds
  /// walk disjoint slices of the binary set (IMA caches unchanged files,
  /// so only first executions produce measurements to appraise).
  std::size_t execs_per_round = 4;
  keylime::VerifierConfig verifier;
  keylime::SchedulerConfig scheduler;
  bool retrying_transport = true;
  telemetry::MetricsRegistry* metrics = nullptr;
};

class PoolFleet {
 public:
  explicit PoolFleet(const PoolFleetOptions& options);
  ~PoolFleet();

  PoolFleet(const PoolFleet&) = delete;
  PoolFleet& operator=(const PoolFleet&) = delete;

  /// Construction outcome: registration or enrolment failures surface
  /// here instead of from the constructor.
  const Status& init_status() const { return init_status_; }

  keylime::VerifierPool& pool() { return *pool_; }
  const keylime::VerifierPool& pool() const { return *pool_; }

  const std::vector<std::string>& agent_ids() const { return agent_ids_; }
  oskernel::Machine& machine(std::size_t i) { return *machines_.at(i); }

  /// The policy covering the shared fleet image (every synthetic binary,
  /// /tmp excluded) — scanned once from machine 0.
  keylime::RuntimePolicy fleet_policy() const;

  /// Bulk-push fleet_policy() to every agent: one PolicyIndex revision
  /// shared across all shards.
  Status push_fleet_policy();

  /// One benign workload round: every machine executes a deterministic,
  /// round-varying subset of its binaries. Independent of the shard
  /// count, so the IMA log an agent accumulates is too.
  void run_workload_round(std::uint64_t round);

  /// Plant and execute an unknown binary on machine `i` — the next
  /// attestation of that agent must raise kNotInPolicy.
  void exec_unknown(std::size_t i);

  // ------------------------------------------------------------- churn

  /// Enrol a brand-new agent on the current ring (machine + TPM identity
  /// + registration + fleet policy push). Ids are minted fresh and NEVER
  /// reused: a reused id would restart the departed agent's audit
  /// sub-chain numbering, which the cross-shard chain invariant correctly
  /// reads as a fork. Returns the new agent id.
  Result<std::string> join_agent();

  /// The node leaves the fleet: unenroll from the pool, then destroy its
  /// agent and machine. Its audit records stay on whichever shards
  /// recorded them.
  Status leave_agent(const std::string& agent_id);

  /// Power-cycle the machine: the IMA log restarts from a fresh boot and
  /// the verifier re-walks it from offset zero.
  Status reboot_agent(const std::string& agent_id);

  /// Machine backing a live agent id; nullptr after leave_agent.
  oskernel::Machine* machine_for(const std::string& agent_id);

 private:
  Result<std::string> spawn_agent(std::size_t ordinal);

  PoolFleetOptions options_;
  std::unique_ptr<crypto::CertificateAuthority> tpm_ca_;
  std::unique_ptr<keylime::VerifierPool> pool_;
  std::vector<std::unique_ptr<oskernel::Machine>> machines_;
  std::vector<std::unique_ptr<keylime::Agent>> agents_;
  std::vector<std::string> agent_ids_;
  std::vector<std::string> binaries_;
  std::map<std::string, std::size_t> slot_;  // live agent id -> slot index
  std::size_t next_ordinal_ = 0;  // monotone: ids are never reused
  mutable std::optional<keylime::RuntimePolicy> cached_policy_;
  Status init_status_;
};

// -------------------------------------------------------- churn campaign

struct ChurnCampaignOptions {
  std::uint64_t seed = 2026;
  std::size_t rounds = 12;
  /// Virtual time advanced per campaign round.
  SimTime round_period = 2 * kMinute;
  /// Per-round event budgets; the actual count each round is drawn
  /// uniformly from [0, max].
  std::size_t max_joins_per_round = 1;
  std::size_t max_leaves_per_round = 1;
  std::size_t max_reboots_per_round = 1;
  /// Mid-campaign resizes: before round `first`, resize the pool to
  /// `second` active shards. Empty = no-resize baseline run.
  std::vector<std::pair<std::size_t, std::size_t>> resize_at;
};

struct ChurnReport {
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t reboots = 0;
  std::size_t polls = 0;
  Status status;
};

/// Drive a deterministic enrollment-churn campaign: every round applies
/// any scheduled resize, draws join/leave/reboot events from a dedicated
/// Rng, runs a workload round, and advances the pool one period. Event
/// choice depends only on the campaign seed and the campaign's own view
/// of the live fleet — never on pool state — so the same seed produces
/// the identical event sequence with and without mid-run resizes. That is
/// what lets callers diff per-agent verdict streams across resize
/// schedules.
ChurnReport run_churn_campaign(PoolFleet& fleet,
                               const ChurnCampaignOptions& options);

// --------------------------------------------------- alert-storm scenario

/// A manufactured alert storm: after a few clean warmup rounds, a bad
/// policy revision (wrong digests for a handful of fleet binaries) is
/// bulk-pushed to every agent, while per-link drop faults keep a slice
/// of the fleet intermittently unreachable. Every agent then trips over
/// every corrupted digest — agents x bad_paths identical hash-mismatch
/// alerts, plus per-round staleness observations once
/// rounds_since_success crosses the pipeline threshold, plus scattered
/// comms failures. The attached AlertPipeline must collapse all of it
/// into O(root causes) incidents: one per corrupted digest, one fleet
/// staleness incident, one transport incident.
///
/// Fault discipline: the scenario runs WITHOUT the retrying transport
/// (a retry's backoff advances the shard clock by an amount that depends
/// on which agents share the shard) and with drop faults only, so every
/// alert timestamp — and therefore the canonical incident stream — is
/// byte-identical across shard counts and mid-storm resizes.
struct StormOptions {
  std::uint64_t seed = 42;
  std::size_t agents = 1000;
  std::size_t shards = 8;
  /// Clean rounds before the bad push.
  std::size_t warmup_rounds = 2;
  /// Rounds driven after the bad push.
  std::size_t storm_rounds = 8;
  /// Virtual time per round (the scheduler poll interval).
  SimTime round_period = 60;
  /// Fleet binaries whose digests the bad revision corrupts; chosen as
  /// the slice first-executed in the first storm round, so the whole
  /// fleet trips over them simultaneously.
  std::size_t bad_paths = 2;
  /// Fleet image shape (PoolFleetOptions passthrough).
  std::size_t binaries_per_machine = 24;
  std::size_t execs_per_round = 4;
  /// Per-link drop probability (time-free transport chaos).
  double drop_rate = 0.02;
  /// Mid-storm resize: before storm round `resize_round` (0-based),
  /// resize the pool to `resize_shards`. Disabled when resize_shards==0.
  std::size_t resize_round = 0;
  std::size_t resize_shards = 0;
  keylime::alert_pipeline::AlertPipeline::Config pipeline;
  /// When engaged, the bad revision is NOT bulk-pushed fleet-wide:
  /// a RolloutController stages it onto the deterministic canary slice
  /// and the storm becomes a canary bake — the alert budget trips the
  /// auto-rollback (or a quiet window promotes). The initial good policy
  /// is then pushed content-addressed so the canary delta can rebase
  /// onto it incrementally.
  std::optional<keylime::policy_store::RolloutConfig> rollout;
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct StormReport {
  Status status;
  std::size_t agents = 0;
  /// Root causes the scenario manufactured (corrupted digests, plus the
  /// staleness episode, plus the transport chaos when enabled).
  std::size_t root_causes = 0;
  /// Alerts folded into the pipeline pre-dedup: every verifier-level
  /// alert plus one synthesized staleness observation per stale agent
  /// per round.
  std::uint64_t raw_alerts = 0;
  std::uint64_t emitted_alerts = 0;   // post-dedup operator stream
  std::uint64_t suppressed = 0;
  std::uint64_t incidents_opened = 0;
  std::uint64_t incidents_open = 0;   // still open at scenario end
  /// Widest incident's exact affected-agent count.
  std::uint64_t max_affected = 0;
  std::map<std::string, std::uint64_t> opened_by_severity;
  /// Canonical incident snapshot JSON — the byte-comparable stream.
  std::string incident_stream;

  // ---- staged-rollout outcome (rollout-engaged runs only) ----
  /// Final controller state name ("rolled_back", "promoted", ...).
  std::string rollout_state;
  /// The canary slice, sorted (what the controller actually pushed to).
  std::vector<std::string> canary_agents;
  /// Pool revision number of the staged (bad) push.
  std::uint64_t rollout_target_revision = 0;
  /// Alerts attributed to the staged revision — all must come from
  /// canary agents.
  std::uint64_t canary_alerts = 0;
  /// Alerts under the staged revision raised by NON-canary agents. The
  /// containment invariant: always 0 — no agent outside the canary
  /// slice ever appraises against a revision that later rolls back.
  std::uint64_t non_canary_bad_appraisals = 0;
  /// Non-canary agents whose installed index revision is the staged one
  /// at scenario end. 0 after a rollback (the promote path legitimately
  /// moves everyone there).
  std::uint64_t non_canary_on_bad_revision = 0;
};

/// Run the storm against a fresh fleet built from the options.
StormReport run_alert_storm(const StormOptions& options);

/// Partition-independent fingerprint of every agent's audit sub-chain:
/// records are gathered across ALL shards (an agent that migrated has
/// history on several), ordered by agent_seq, and their agent_hash()
/// values folded into one hex digest per agent. Byte-identical digests
/// mean byte-identical verdict streams, alert sets, and chain linkage.
std::map<std::string, std::string> per_agent_chain_digests(
    const keylime::VerifierPool& pool);

}  // namespace cia::experiments
