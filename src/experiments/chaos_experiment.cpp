#include "experiments/chaos_experiment.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "common/strutil.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/workload.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/scheduler.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "netsim/transport.hpp"
#include "pkg/apt.hpp"
#include "pkg/mirror.hpp"

namespace cia::experiments {

const std::vector<std::string>& chaos_scenarios() {
  static const std::vector<std::string> kScenarios = {
      "wan-loss",         "agent-crash-loop", "verifier-restart",
      "registrar-outage", "mirror-partition", "flaky-window"};
  return kScenarios;
}

namespace {

constexpr const char* kBackdoorPath = "/usr/local/bin/backdoor";

bool known_scenario(const std::string& name) {
  const auto& all = chaos_scenarios();
  return std::find(all.begin(), all.end(), name) != all.end();
}

}  // namespace

ChaosReport run_chaos_experiment(const ChaosOptions& options) {
  ChaosReport report;
  report.scenario = options.scenario;
  report.nodes = options.nodes;
  report.days = options.days;
  if (!known_scenario(options.scenario) || options.nodes == 0 ||
      options.days < 2) {
    return report;
  }

  // ------------------------------------------------------------- the rig
  SimClock clock;
  // The rig owns its clock; a caller-provided tracer must read it, not
  // whatever placeholder it was constructed with.
  if (options.tracer) options.tracer->bind_clock(&clock);
  crypto::CertificateAuthority tpm_ca("tpm-manufacturer",
                                      to_bytes("chaos-mfg-seed"));
  pkg::Archive archive(options.archive, options.seed);
  pkg::Mirror mirror(&archive);
  netsim::SimNetwork network(&clock, options.seed ^ 0xc4a05ull);
  keylime::Registrar registrar(&network, &clock, options.seed ^ 1);
  registrar.trust_manufacturer(tpm_ca.public_key());

  // The paper's P2 fix is on: a genuine violation must not freeze
  // evidence collection mid-scenario.
  keylime::VerifierConfig verifier_config;
  verifier_config.continue_on_failure = true;
  auto verifier = std::make_unique<keylime::Verifier>(
      &network, &clock, options.seed ^ 2, verifier_config);

  netsim::RetryPolicy retry_policy;
  retry_policy.max_attempts = 5;
  retry_policy.base_backoff = 2;
  retry_policy.max_backoff = 60;
  netsim::RetryingTransport transport(&network, &clock, options.seed ^ 3,
                                      retry_policy);
  if (options.retrying_transport) verifier->use_transport(&transport);
  network.use_telemetry(options.metrics);
  transport.use_telemetry(options.metrics, options.tracer);
  verifier->use_telemetry(options.metrics, options.tracer);

  core::DynamicPolicyGenerator generator(&mirror, core::GeneratorConfig{});
  // Tight ops bound: a snapshot older than 18h (i.e. from before the
  // previous day's window) is stale; a partitioned mirror defers the
  // update window instead of upgrading nodes from old bits.
  core::OrchestratorConfig orch_config;
  orch_config.max_mirror_staleness = 18 * kHour;
  core::UpdateOrchestrator orchestrator(&mirror, &generator, verifier.get(),
                                        &clock, orch_config);
  orchestrator.use_telemetry(options.metrics, options.tracer);
  keylime::SchedulerConfig sched_config;
  sched_config.poll_interval = kHour;
  keylime::AttestationScheduler scheduler(verifier.get(), &clock, sched_config);
  scheduler.use_telemetry(options.metrics);

  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<pkg::AptClient>> apts;
  std::vector<std::unique_ptr<keylime::Agent>> agents;
  std::vector<std::unique_ptr<Workload>> workloads;
  std::vector<std::string> provision = {"bash", "coreutils", "python3",
                                        "openssl", "curl", "sudo", "tar"};
  for (std::size_t i = 0; i < options.provision_extra; ++i) {
    const std::string name = strformat("pkg-%04zu", i);
    if (archive.find(name)) provision.push_back(name);
  }
  const auto build_node = [&](const std::string& hostname, std::uint64_t seed)
      -> bool {
    oskernel::MachineConfig cfg;
    cfg.hostname = hostname;
    cfg.seed = seed;
    machines.push_back(std::make_unique<oskernel::Machine>(cfg, tpm_ca, &clock));
    apts.push_back(std::make_unique<pkg::AptClient>(machines.back().get(),
                                                    pkg::CostModel{}));
    if (!apts.back()->provision(archive.index(), provision).ok()) return false;
    agents.push_back(
        std::make_unique<keylime::Agent>(machines.back().get(), &network));
    if (options.retrying_transport) agents.back()->use_transport(&transport);
    agents.back()->use_telemetry(options.metrics);
    return true;
  };
  for (std::size_t i = 0; i < options.nodes; ++i) {
    if (!build_node(strformat("node-%03zu", i), options.seed + i + 1)) {
      return report;
    }
    if (!agents.back()->register_with(keylime::Registrar::address()).ok()) {
      return report;
    }
    const std::string id = machines.back()->hostname();
    if (!verifier->add_agent(id, agents.back()->address()).ok()) return report;
    orchestrator.manage({machines.back().get(), apts.back().get(), id});
    workloads.push_back(std::make_unique<Workload>(
        machines.back().get(), options.seed ^ (0xc4 + i)));
  }
  if (!orchestrator.bootstrap().ok()) return report;
  for (std::size_t i = 0; i < options.nodes; ++i) {
    scheduler.enroll(machines[i]->hostname());
  }
  report.valid = true;

  // ------------------------------------------------- the fault scripts
  const int fault_day = std::min(1, options.days - 1);
  const int mid_day = std::min(2, options.days - 1);
  const std::string victim_id = machines.front()->hostname();
  SimTime inject_time = -1;
  SimTime restart_time = -1;
  const SimTime outage_end = fault_day * kDay + 15 * kHour;

  if (options.scenario == "wan-loss") {
    netsim::FaultProfile lossy;
    lossy.drop_rate = 0.10;
    network.set_faults(lossy);
    inject_time = mid_day * kDay + 12 * kHour + 30 * kMinute;
    report.fault_window_end = (options.days - 1) * kDay;
    report.violation_injected = true;
  } else if (options.scenario == "agent-crash-loop") {
    // The victim's link dies for 30 minutes, six times in a row.
    netsim::FaultSchedule crash_loop;
    for (int k = 0; k < 6; ++k) {
      const SimTime start = fault_day * kDay + k * kHour;
      crash_loop.outage(start, start + 30 * kMinute);
    }
    network.set_link_schedule(agents.front()->address(),
                              std::move(crash_loop));
    report.fault_window_end = fault_day * kDay + 5 * kHour + 30 * kMinute;
  } else if (options.scenario == "verifier-restart") {
    restart_time = mid_day * kDay + 12 * kHour;
    report.fault_window_end = restart_time;
  } else if (options.scenario == "registrar-outage") {
    netsim::FaultSchedule outage;
    outage.outage(fault_day * kDay + 9 * kHour, outage_end);
    network.set_link_schedule(keylime::Registrar::address(),
                              std::move(outage));
    report.fault_window_end = outage_end;
  } else if (options.scenario == "mirror-partition") {
    // Toggled inside the day loop: offline for all of mid_day — which
    // covers that day's 05:00 update window — back the morning after.
    report.fault_window_end = (mid_day + 1) * kDay;
  } else if (options.scenario == "flaky-window") {
    netsim::FaultProfile flaky;
    flaky.drop_rate = 0.40;
    flaky.timeout_rate = 0.10;
    flaky.duplicate_rate = 0.05;
    flaky.timeout_latency = 20;
    netsim::FaultSchedule window;
    window.add(mid_day * kDay + 6 * kHour, mid_day * kDay + 12 * kHour, flaky);
    network.set_global_schedule(std::move(window));
    report.fault_window_end = mid_day * kDay + 12 * kHour;
  }

  // A late joiner for the registrar-outage scenario: it keeps trying to
  // enrol through the outage and must succeed once the registrar is back.
  std::unique_ptr<oskernel::Machine> late_machine;
  std::unique_ptr<pkg::AptClient> late_apt;
  std::unique_ptr<keylime::Agent> late_agent;
  bool late_registered = false;
  bool late_enrolled = false;
  const std::string late_id = "node-late";
  if (options.scenario == "registrar-outage") {
    oskernel::MachineConfig cfg;
    cfg.hostname = late_id;
    cfg.seed = options.seed + 1000;
    late_machine = std::make_unique<oskernel::Machine>(cfg, tpm_ca, &clock);
    late_apt = std::make_unique<pkg::AptClient>(late_machine.get(),
                                                pkg::CostModel{});
    if (!late_apt->provision(archive.index(), provision).ok()) {
      report.valid = false;
      return report;
    }
    late_agent = std::make_unique<keylime::Agent>(late_machine.get(), &network);
    if (options.retrying_transport) late_agent->use_transport(&transport);
    late_agent->use_telemetry(options.metrics);
  }

  // ------------------------------------------------------- the run loop
  std::vector<keylime::Alert> pre_restart_alerts;
  bool injected = false;
  for (int day = 0; day < options.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      clock.advance_to(static_cast<SimTime>(day) * kDay + hour * kHour);

      if (options.scenario == "mirror-partition") {
        if (day == mid_day && hour == 0) {
          mirror.set_fault(pkg::MirrorFault::kOffline);
        } else if (day == mid_day + 1 && hour == 0) {
          mirror.set_fault(pkg::MirrorFault::kNone);
        }
      }
      if (hour == 5) {
        auto cycle = orchestrator.run_cycle();
        if (cycle.ok() && !cycle.value().deferred) ++report.updates_run;
      }
      if (hour == 8) (void)archive.release_day(day);
      if (hour == 9 || hour == 15) {
        for (auto& workload : workloads) workload->run_session();
      }
      // The late joiner retries its enrolment every hour of the outage
      // day and after, until it is fully attested.
      if (late_agent && !late_enrolled &&
          clock.now() >= fault_day * kDay + 10 * kHour) {
        if (!late_registered &&
            late_agent->register_with(keylime::Registrar::address()).ok()) {
          late_registered = true;
        }
        if (late_registered &&
            verifier->add_agent(late_id, late_agent->address()).ok()) {
          (void)verifier->set_policy(late_id, orchestrator.policy());
          orchestrator.manage({late_machine.get(), late_apt.get(), late_id});
          scheduler.enroll(late_id);
          late_enrolled = true;
        }
      }

      for (int step = 0; step < 6; ++step) {
        clock.advance_to(static_cast<SimTime>(day) * kDay + hour * kHour +
                         step * (kHour / 6));
        if (inject_time >= 0 && !injected && clock.now() >= inject_time) {
          // A real compromise on the victim: a dropped, unknown binary
          // gets executed. The lossy transport must not mask it.
          (void)machines.front()->fs().create_file(
              kBackdoorPath, to_bytes("elf:backdoor:payload"), true);
          (void)machines.front()->exec(kBackdoorPath);
          injected = true;
        }
        if (restart_time >= 0 && !report.verifier_restarted &&
            clock.now() >= restart_time) {
          // Crash the verifier mid-fleet: serialize, destroy, restore
          // into a fresh instance built from the same seed.
          const json::Value checkpoint = verifier->checkpoint();
          const auto& alerts = verifier->alerts();
          pre_restart_alerts.insert(pre_restart_alerts.end(), alerts.begin(),
                                    alerts.end());
          auto restored = std::make_unique<keylime::Verifier>(
              &network, &clock, options.seed ^ 2, verifier_config);
          if (options.retrying_transport) restored->use_transport(&transport);
          restored->use_telemetry(options.metrics, options.tracer);
          const Status restore_status = restored->restore(checkpoint);
          report.checkpoint_roundtrip_ok =
              restore_status.ok() &&
              restored->checkpoint().dump() == checkpoint.dump();
          verifier = std::move(restored);
          scheduler.rebind(verifier.get());
          orchestrator.rebind(verifier.get());
          report.verifier_restarted = true;
        }
        report.polls += scheduler.tick();
      }
    }
  }

  // ------------------------------------------------------- the verdicts
  std::vector<keylime::Alert> all_alerts = std::move(pre_restart_alerts);
  all_alerts.insert(all_alerts.end(), verifier->alerts().begin(),
                    verifier->alerts().end());
  for (const auto& alert : all_alerts) {
    if (alert.type == keylime::AlertType::kCommsFailure) {
      ++report.comms_alerts;
      continue;
    }
    const bool genuine = report.violation_injected &&
                         alert.agent_id == victim_id &&
                         alert.time >= inject_time;
    if (genuine) {
      ++report.genuine_alerts;
    } else {
      ++report.transport_false_positives;
    }
  }
  report.genuine_detected = report.genuine_alerts > 0;
  report.updates_deferred = orchestrator.cycles_deferred();

  const auto& net_stats = network.stats();
  report.drops = net_stats.dropped;
  report.duplicates = net_stats.duplicated;
  report.timeouts = net_stats.timeouts;
  const auto& transport_stats = transport.stats();
  report.retries = transport_stats.retries;
  report.recovered_calls = transport_stats.recovered;
  report.giveups = transport_stats.giveups;
  report.breaker_opens = transport_stats.breaker_opens;

  report.audit_records = verifier->audit().records().size();
  report.audit_chain_ok =
      keylime::verify_audit_chain(verifier->audit().records(),
                                  verifier->audit().public_key())
          .ok();

  // Liveness: after the fault window closes, every agent (including the
  // late joiner, if any) must produce at least one reachable round.
  std::vector<std::string> expected = verifier->agent_ids();
  SimTime slowest = 0;
  bool all_recovered = !expected.empty();
  for (const std::string& id : expected) {
    SimTime first_seen = -1;
    for (const auto& record : verifier->audit().records()) {
      if (record.agent_id == id && record.time > report.fault_window_end &&
          record.verdict != keylime::AuditVerdict::kUnreachable) {
        first_seen = record.time;
        break;
      }
    }
    if (first_seen < 0) {
      all_recovered = false;
      break;
    }
    slowest = std::max(slowest, first_seen - report.fault_window_end);
  }
  if (options.scenario == "registrar-outage" && !late_enrolled) {
    all_recovered = false;
  }
  report.liveness_ok = all_recovered;
  report.recovery_time = all_recovered ? slowest : -1;
  return report;
}

}  // namespace cia::experiments
