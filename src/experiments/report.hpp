// Renderers that print each experiment in the shape the paper reports it
// (figure series, Table I, Table II), alongside the paper's numbers where
// it states them.
#pragma once

#include <string>
#include <vector>

#include "experiments/fn_experiment.hpp"
#include "experiments/fp_experiment.hpp"

namespace cia::experiments {

/// Fig. 3: minutes to update the policy, per daily update.
std::string render_fig3(const DynamicRunResult& daily);

/// Fig. 4: new+changed packages containing executables, per daily update
/// (total and high-priority).
std::string render_fig4(const DynamicRunResult& daily);

/// Fig. 5: file entries added to the policy, per daily update.
std::string render_fig5(const DynamicRunResult& daily);

/// Table I: daily vs weekly update summary.
std::string render_table1(const DynamicRunResult& daily,
                          const DynamicRunResult& weekly);

/// Table II: the attack/detection matrix.
std::string render_table2(const std::vector<AttackReport>& reports);

/// §III-B: the baseline week's false-positive causes.
std::string render_fp_baseline(const FpBaselineResult& result);

/// §III-D: effectiveness summary of the 66-day dynamic-policy run.
std::string render_fp_effectiveness(const DynamicRunResult& daily,
                                    const DynamicRunResult& weekly);

/// Write the per-update series as CSV (one row per update: day, packages,
/// high-priority packages, policy lines, bytes, minutes) so figures can
/// be re-plotted externally. Returns false when the file cannot be
/// created.
bool write_updates_csv(const std::string& path, const DynamicRunResult& run);

}  // namespace cia::experiments
