#include "experiments/pool_experiment.hpp"

#include <algorithm>

#include "common/strutil.hpp"
#include "crypto/sha256.hpp"
#include "experiments/testbed.hpp"

namespace cia::experiments {

PoolFleet::PoolFleet(const PoolFleetOptions& options) : options_(options) {
  tpm_ca_ = std::make_unique<crypto::CertificateAuthority>(
      "tpm-manufacturer", to_bytes("pool-mfg-seed"));

  keylime::VerifierPoolConfig pool_config;
  pool_config.shards = options_.shards;
  pool_config.verifier = options_.verifier;
  pool_config.scheduler = options_.scheduler;
  pool_config.retrying_transport = options_.retrying_transport;
  pool_ = std::make_unique<keylime::VerifierPool>(options_.seed, pool_config);
  pool_->trust_manufacturer(tpm_ca_->public_key());
  if (options_.metrics) pool_->use_telemetry(options_.metrics);

  // The shared image: binary content is a pure function of the path, so
  // every machine measures identical file hashes and one policy revision
  // covers the fleet.
  binaries_.reserve(options_.binaries_per_machine);
  for (std::size_t b = 0; b < options_.binaries_per_machine; ++b) {
    binaries_.push_back(strformat("/usr/bin/tool-%03zu", b));
  }

  for (std::size_t i = 0; i < options_.agents; ++i) {
    if (auto id = spawn_agent(next_ordinal_++); !id.ok()) {
      init_status_ = id.error();
      return;
    }
  }
}

PoolFleet::~PoolFleet() = default;

Result<std::string> PoolFleet::spawn_agent(std::size_t ordinal) {
  oskernel::MachineConfig cfg;
  cfg.hostname = strformat("agent-%04zu", ordinal);
  cfg.seed = options_.seed + ordinal + 1;  // distinct TPM identities
  const std::size_t shard = pool_->shard_for(cfg.hostname);
  auto machine = std::make_unique<oskernel::Machine>(cfg, *tpm_ca_,
                                                     &pool_->clock(shard));
  for (const std::string& path : binaries_) {
    (void)machine->fs().create_file(path, to_bytes("elf:" + path), true);
  }
  auto agent =
      std::make_unique<keylime::Agent>(machine.get(), &pool_->network(shard));
  if (Status s = agent->register_with(keylime::Registrar::address());
      !s.ok()) {
    return s.error();
  }
  if (Status s = pool_->enroll(cfg.hostname, agent->address()); !s.ok()) {
    return s.error();
  }
  const std::size_t slot = machines_.size();
  machines_.push_back(std::move(machine));
  agents_.push_back(std::move(agent));
  agent_ids_.push_back(cfg.hostname);
  slot_[cfg.hostname] = slot;
  return cfg.hostname;
}

keylime::RuntimePolicy PoolFleet::fleet_policy() const {
  if (!cached_policy_) {
    // Scan any live machine — the image is identical fleet-wide. Cached
    // so churn can keep pushing the policy after machine 0 has left.
    for (const auto& machine : machines_) {
      if (!machine) continue;
      cached_policy_ = scan_machine_policy(*machine, /*exclude_tmp=*/true);
      break;
    }
  }
  return cached_policy_ ? *cached_policy_ : keylime::RuntimePolicy{};
}

Status PoolFleet::push_fleet_policy() {
  return pool_->set_fleet_policy(fleet_policy());
}

void PoolFleet::run_workload_round(std::uint64_t round) {
  if (binaries_.empty()) return;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (!machines_[i]) continue;  // churned out
    // A deterministic slice of the binary set, disjoint from the
    // previous round's slice until the set wraps: each round produces
    // fresh first-execution measurements for the verifier to appraise.
    // The slice depends only on the round number, never on the shard
    // layout.
    for (std::size_t k = 0; k < options_.execs_per_round; ++k) {
      const std::size_t b =
          (round * options_.execs_per_round + k) % binaries_.size();
      (void)machines_[i]->exec(binaries_[b]);
    }
  }
}

void PoolFleet::exec_unknown(std::size_t i) {
  oskernel::Machine& machine = *machines_.at(i);
  const std::string path =
      strformat("/usr/local/bin/dropper-%04zu", i);
  (void)machine.fs().create_file(path, to_bytes("elf:unknown:" + path), true);
  (void)machine.exec(path);
}

Result<std::string> PoolFleet::join_agent() {
  auto id = spawn_agent(next_ordinal_++);
  if (!id.ok()) return id;
  // Cover the joiner's image with the fleet policy: one fresh revision,
  // applied at its shard's next batch boundary.
  if (Status s = pool_->set_policy(id.value(), fleet_policy()); !s.ok()) {
    return s.error();
  }
  return id;
}

Status PoolFleet::leave_agent(const std::string& agent_id) {
  auto it = slot_.find(agent_id);
  if (it == slot_.end()) {
    return err(Errc::kNotFound, "leave: unknown agent " + agent_id);
  }
  if (Status s = pool_->unenroll(agent_id); !s.ok()) return s;
  const std::size_t slot = it->second;
  // Destroy the agent first (its destructor detach on the original shard
  // network is a harmless no-op if the endpoint migrated away), then the
  // machine it points at.
  agents_[slot].reset();
  machines_[slot].reset();
  slot_.erase(it);
  agent_ids_.erase(
      std::remove(agent_ids_.begin(), agent_ids_.end(), agent_id),
      agent_ids_.end());
  return Status::ok_status();
}

Status PoolFleet::reboot_agent(const std::string& agent_id) {
  oskernel::Machine* machine = machine_for(agent_id);
  if (!machine) {
    return err(Errc::kNotFound, "reboot: unknown agent " + agent_id);
  }
  machine->reboot();
  return Status::ok_status();
}

oskernel::Machine* PoolFleet::machine_for(const std::string& agent_id) {
  auto it = slot_.find(agent_id);
  if (it == slot_.end()) return nullptr;
  return machines_[it->second].get();
}

ChurnReport run_churn_campaign(PoolFleet& fleet,
                               const ChurnCampaignOptions& options) {
  ChurnReport report;
  Rng rng(options.seed);
  // The campaign keeps its own view of the live fleet. Event choice
  // depends only on this list and the rng draws — never on pool state —
  // so the identical event sequence replays with any resize schedule.
  std::vector<std::string> live = fleet.agent_ids();
  for (std::size_t round = 0; round < options.rounds; ++round) {
    for (const auto& [at, shards] : options.resize_at) {
      if (at != round) continue;
      if (Status st = fleet.pool().resize(shards); !st.ok()) {
        report.status = st;
        return report;
      }
    }

    const std::size_t joins =
        options.max_joins_per_round
            ? static_cast<std::size_t>(
                  rng.uniform(options.max_joins_per_round + 1))
            : 0;
    for (std::size_t j = 0; j < joins; ++j) {
      auto id = fleet.join_agent();
      if (!id.ok()) {
        report.status = id.error();
        return report;
      }
      live.push_back(id.value());
      ++report.joins;
    }

    const std::size_t leaves =
        options.max_leaves_per_round
            ? static_cast<std::size_t>(
                  rng.uniform(options.max_leaves_per_round + 1))
            : 0;
    // Keep a small floor so the run never churns down to an empty fleet.
    for (std::size_t l = 0; l < leaves && live.size() > 2; ++l) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(live.size()));
      const std::string id = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      if (Status st = fleet.leave_agent(id); !st.ok()) {
        report.status = st;
        return report;
      }
      ++report.leaves;
    }

    const std::size_t reboots =
        options.max_reboots_per_round
            ? static_cast<std::size_t>(
                  rng.uniform(options.max_reboots_per_round + 1))
            : 0;
    for (std::size_t b = 0; b < reboots && !live.empty(); ++b) {
      const std::string id =
          live[static_cast<std::size_t>(rng.uniform(live.size()))];
      if (Status st = fleet.reboot_agent(id); !st.ok()) {
        report.status = st;
        return report;
      }
      ++report.reboots;
    }

    fleet.run_workload_round(round);
    report.polls += fleet.pool().advance_to(
        static_cast<SimTime>((round + 1) * options.round_period));
  }
  return report;
}

StormReport run_alert_storm(const StormOptions& options) {
  StormReport report;
  report.agents = options.agents;

  PoolFleetOptions fleet_options;
  fleet_options.agents = options.agents;
  fleet_options.shards = options.shards;
  fleet_options.seed = options.seed;
  // The paper's P2 mitigation must be on: stock stop-on-failure would
  // freeze every agent at its first bad entry and the storm would be a
  // single silent round. Retries stay off — a retry's backoff advances
  // the shard clock by an amount that depends on shard co-residency,
  // which would break the incident stream's partition invariance.
  fleet_options.binaries_per_machine = options.binaries_per_machine;
  fleet_options.execs_per_round = options.execs_per_round;
  fleet_options.verifier.continue_on_failure = true;
  fleet_options.scheduler.poll_interval = options.round_period;
  fleet_options.retrying_transport = false;
  fleet_options.metrics = options.metrics;
  PoolFleet fleet(fleet_options);
  if (!fleet.init_status().ok()) {
    report.status = fleet.init_status();
    return report;
  }

  keylime::alert_pipeline::AlertPipeline pipeline(options.pipeline);
  pipeline.use_telemetry(options.metrics);
  fleet.pool().use_alert_pipeline(&pipeline);

  if (Status st = fleet.push_fleet_policy(); !st.ok()) {
    report.status = st;
    return report;
  }

  std::uint64_t round = 0;
  for (; round < options.warmup_rounds; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().advance_to(
        static_cast<SimTime>((round + 1)) * options.round_period);
  }

  // The bad push: rebuild the fleet policy with corrupted digests for
  // the binaries the whole fleet will FIRST-execute next round, so every
  // agent trips over every corrupted path in the same round.
  const std::size_t first_storm_slot =
      options.warmup_rounds * fleet_options.execs_per_round;
  std::vector<std::string> corrupted;
  for (std::size_t b = 0; b < options.bad_paths; ++b) {
    corrupted.push_back(strformat(
        "/usr/bin/tool-%03zu",
        (first_storm_slot + b) % fleet_options.binaries_per_machine));
  }
  const keylime::RuntimePolicy good = fleet.fleet_policy();
  keylime::RuntimePolicy bad;
  good.for_each_path([&](const std::string& path,
                         const std::vector<std::string>& hashes) {
    if (std::find(corrupted.begin(), corrupted.end(), path) !=
        corrupted.end()) {
      bad.allow(path, crypto::sha256("storm:corrupt:" + path));
    } else {
      for (const std::string& h : hashes) bad.allow(path, h);
    }
  });
  for (const std::string& glob : good.excludes()) bad.exclude(glob);

  namespace ps = keylime::policy_store;
  std::unique_ptr<ps::RolloutController> rollout;
  if (options.rollout) {
    // Staged mode: re-push the good policy content-addressed (seeds the
    // pool's digest cache so the canary delta patches the installed
    // index in place), then hand the bad revision to the rollout
    // controller — only the canary slice ever receives it.
    if (Status st = fleet.pool().push_revision(
            fleet.agent_ids(), good, ps::policy_digest(good), nullptr);
        !st.ok()) {
      report.status = st;
      return report;
    }
    rollout =
        std::make_unique<ps::RolloutController>(&fleet.pool(), *options.rollout);
    rollout->use_telemetry(options.metrics);
    fleet.pool().use_rollout(rollout.get());
    if (Status st = rollout->begin(good, bad); !st.ok()) {
      report.status = st;
      return report;
    }
  } else if (Status st = fleet.pool().set_fleet_policy(bad); !st.ok()) {
    report.status = st;
    return report;
  }

  if (options.drop_rate > 0) {
    netsim::FaultProfile faults;
    faults.drop_rate = options.drop_rate;
    fleet.pool().set_fleet_faults(faults);
  }

  for (std::size_t r = 0; r < options.storm_rounds; ++r, ++round) {
    if (options.resize_shards > 0 && r == options.resize_round) {
      if (Status st = fleet.pool().resize(options.resize_shards); !st.ok()) {
        report.status = st;
        return report;
      }
    }
    fleet.run_workload_round(round);
    fleet.pool().advance_to(
        static_cast<SimTime>((round + 1)) * options.round_period);
  }

  const keylime::alert_pipeline::AlertPipeline::Stats& stats =
      pipeline.stats();
  report.raw_alerts = stats.raw;
  report.emitted_alerts = stats.emitted;
  report.suppressed = stats.suppressed;
  report.incidents_opened = stats.opened;
  report.incidents_open = stats.opened - stats.closed;
  for (const keylime::alert_pipeline::Incident& incident :
       pipeline.snapshot().incidents) {
    report.max_affected = std::max(report.max_affected,
                                   incident.affected_agents);
    ++report.opened_by_severity[keylime::alert_pipeline::severity_name(
        incident.severity)];
  }
  report.incident_stream = pipeline.snapshot_json().dump();

  if (rollout) {
    report.rollout_state = ps::rollout_state_name(rollout->state());
    report.canary_agents = rollout->canary_agents();  // sorted
    report.rollout_target_revision = rollout->target_revision();
    // Containment audit over the merged alert stream: every alert
    // attributed to the staged revision must come from a canary agent.
    for (const keylime::Alert& a : fleet.pool().alerts()) {
      if (a.policy_revision != report.rollout_target_revision) continue;
      if (std::binary_search(report.canary_agents.begin(),
                             report.canary_agents.end(), a.agent_id)) {
        ++report.canary_alerts;
      } else {
        ++report.non_canary_bad_appraisals;
      }
    }
    // ...and no non-canary agent may END the scenario holding the staged
    // revision unless it was promoted to them.
    for (const std::string& id : fleet.pool().agent_ids()) {
      if (std::binary_search(report.canary_agents.begin(),
                             report.canary_agents.end(), id)) {
        continue;
      }
      if (fleet.pool().policy_revision_of(id) ==
          report.rollout_target_revision) {
        ++report.non_canary_on_bad_revision;
      }
    }
    fleet.pool().use_rollout(nullptr);
  }
  // One root cause per corrupted digest, one fleet staleness episode
  // (failed agents' rounds_since_success keeps growing under
  // continue_on_failure until an operator intervenes), one transport
  // episode when drops are on.
  const bool staleness_triggers =
      options.pipeline.staleness_after > 0 &&
      options.pipeline.staleness_after <= options.storm_rounds;
  report.root_causes = options.bad_paths + (staleness_triggers ? 1 : 0) +
                       (options.drop_rate > 0 ? 1 : 0);
  return report;
}

std::map<std::string, std::string> per_agent_chain_digests(
    const keylime::VerifierPool& pool) {
  // Gather every agent's records across ALL shards: a migrated agent's
  // history spans its old and new homes; a retired shard still holds the
  // records it appended while active.
  std::map<std::string, std::vector<const keylime::AuditRecord*>> by_agent;
  for (std::size_t s = 0; s < pool.shard_count(); ++s) {
    for (const auto& rec : pool.verifier(s).audit().records()) {
      by_agent[rec.agent_id].push_back(&rec);
    }
  }
  std::map<std::string, std::string> digests;
  for (auto& [id, recs] : by_agent) {
    std::sort(recs.begin(), recs.end(),
              [](const keylime::AuditRecord* a, const keylime::AuditRecord* b) {
                return a->agent_seq < b->agent_seq;
              });
    crypto::Sha256 ctx;
    for (const keylime::AuditRecord* rec : recs) {
      const crypto::Digest h = rec->agent_hash();
      ctx.update(h.data(), h.size());
    }
    digests[id] = crypto::digest_hex(ctx.finish());
  }
  return digests;
}

}  // namespace cia::experiments
