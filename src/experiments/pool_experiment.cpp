#include "experiments/pool_experiment.hpp"

#include <algorithm>

#include "common/strutil.hpp"
#include "crypto/sha256.hpp"
#include "experiments/testbed.hpp"

namespace cia::experiments {

PoolFleet::PoolFleet(const PoolFleetOptions& options) : options_(options) {
  tpm_ca_ = std::make_unique<crypto::CertificateAuthority>(
      "tpm-manufacturer", to_bytes("pool-mfg-seed"));

  keylime::VerifierPoolConfig pool_config;
  pool_config.shards = options_.shards;
  pool_config.verifier = options_.verifier;
  pool_config.scheduler = options_.scheduler;
  pool_config.retrying_transport = options_.retrying_transport;
  pool_ = std::make_unique<keylime::VerifierPool>(options_.seed, pool_config);
  pool_->trust_manufacturer(tpm_ca_->public_key());
  if (options_.metrics) pool_->use_telemetry(options_.metrics);

  // The shared image: binary content is a pure function of the path, so
  // every machine measures identical file hashes and one policy revision
  // covers the fleet.
  binaries_.reserve(options_.binaries_per_machine);
  for (std::size_t b = 0; b < options_.binaries_per_machine; ++b) {
    binaries_.push_back(strformat("/usr/bin/tool-%03zu", b));
  }

  for (std::size_t i = 0; i < options_.agents; ++i) {
    if (auto id = spawn_agent(next_ordinal_++); !id.ok()) {
      init_status_ = id.error();
      return;
    }
  }
}

PoolFleet::~PoolFleet() = default;

Result<std::string> PoolFleet::spawn_agent(std::size_t ordinal) {
  oskernel::MachineConfig cfg;
  cfg.hostname = strformat("agent-%04zu", ordinal);
  cfg.seed = options_.seed + ordinal + 1;  // distinct TPM identities
  const std::size_t shard = pool_->shard_for(cfg.hostname);
  auto machine = std::make_unique<oskernel::Machine>(cfg, *tpm_ca_,
                                                     &pool_->clock(shard));
  for (const std::string& path : binaries_) {
    (void)machine->fs().create_file(path, to_bytes("elf:" + path), true);
  }
  auto agent =
      std::make_unique<keylime::Agent>(machine.get(), &pool_->network(shard));
  if (Status s = agent->register_with(keylime::Registrar::address());
      !s.ok()) {
    return s.error();
  }
  if (Status s = pool_->enroll(cfg.hostname, agent->address()); !s.ok()) {
    return s.error();
  }
  const std::size_t slot = machines_.size();
  machines_.push_back(std::move(machine));
  agents_.push_back(std::move(agent));
  agent_ids_.push_back(cfg.hostname);
  slot_[cfg.hostname] = slot;
  return cfg.hostname;
}

keylime::RuntimePolicy PoolFleet::fleet_policy() const {
  if (!cached_policy_) {
    // Scan any live machine — the image is identical fleet-wide. Cached
    // so churn can keep pushing the policy after machine 0 has left.
    for (const auto& machine : machines_) {
      if (!machine) continue;
      cached_policy_ = scan_machine_policy(*machine, /*exclude_tmp=*/true);
      break;
    }
  }
  return cached_policy_ ? *cached_policy_ : keylime::RuntimePolicy{};
}

Status PoolFleet::push_fleet_policy() {
  return pool_->set_fleet_policy(fleet_policy());
}

void PoolFleet::run_workload_round(std::uint64_t round) {
  if (binaries_.empty()) return;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (!machines_[i]) continue;  // churned out
    // A deterministic slice of the binary set, disjoint from the
    // previous round's slice until the set wraps: each round produces
    // fresh first-execution measurements for the verifier to appraise.
    // The slice depends only on the round number, never on the shard
    // layout.
    for (std::size_t k = 0; k < options_.execs_per_round; ++k) {
      const std::size_t b =
          (round * options_.execs_per_round + k) % binaries_.size();
      (void)machines_[i]->exec(binaries_[b]);
    }
  }
}

void PoolFleet::exec_unknown(std::size_t i) {
  oskernel::Machine& machine = *machines_.at(i);
  const std::string path =
      strformat("/usr/local/bin/dropper-%04zu", i);
  (void)machine.fs().create_file(path, to_bytes("elf:unknown:" + path), true);
  (void)machine.exec(path);
}

Result<std::string> PoolFleet::join_agent() {
  auto id = spawn_agent(next_ordinal_++);
  if (!id.ok()) return id;
  // Cover the joiner's image with the fleet policy: one fresh revision,
  // applied at its shard's next batch boundary.
  if (Status s = pool_->set_policy(id.value(), fleet_policy()); !s.ok()) {
    return s.error();
  }
  return id;
}

Status PoolFleet::leave_agent(const std::string& agent_id) {
  auto it = slot_.find(agent_id);
  if (it == slot_.end()) {
    return err(Errc::kNotFound, "leave: unknown agent " + agent_id);
  }
  if (Status s = pool_->unenroll(agent_id); !s.ok()) return s;
  const std::size_t slot = it->second;
  // Destroy the agent first (its destructor detach on the original shard
  // network is a harmless no-op if the endpoint migrated away), then the
  // machine it points at.
  agents_[slot].reset();
  machines_[slot].reset();
  slot_.erase(it);
  agent_ids_.erase(
      std::remove(agent_ids_.begin(), agent_ids_.end(), agent_id),
      agent_ids_.end());
  return Status::ok_status();
}

Status PoolFleet::reboot_agent(const std::string& agent_id) {
  oskernel::Machine* machine = machine_for(agent_id);
  if (!machine) {
    return err(Errc::kNotFound, "reboot: unknown agent " + agent_id);
  }
  machine->reboot();
  return Status::ok_status();
}

oskernel::Machine* PoolFleet::machine_for(const std::string& agent_id) {
  auto it = slot_.find(agent_id);
  if (it == slot_.end()) return nullptr;
  return machines_[it->second].get();
}

ChurnReport run_churn_campaign(PoolFleet& fleet,
                               const ChurnCampaignOptions& options) {
  ChurnReport report;
  Rng rng(options.seed);
  // The campaign keeps its own view of the live fleet. Event choice
  // depends only on this list and the rng draws — never on pool state —
  // so the identical event sequence replays with any resize schedule.
  std::vector<std::string> live = fleet.agent_ids();
  for (std::size_t round = 0; round < options.rounds; ++round) {
    for (const auto& [at, shards] : options.resize_at) {
      if (at != round) continue;
      if (Status st = fleet.pool().resize(shards); !st.ok()) {
        report.status = st;
        return report;
      }
    }

    const std::size_t joins =
        options.max_joins_per_round
            ? static_cast<std::size_t>(
                  rng.uniform(options.max_joins_per_round + 1))
            : 0;
    for (std::size_t j = 0; j < joins; ++j) {
      auto id = fleet.join_agent();
      if (!id.ok()) {
        report.status = id.error();
        return report;
      }
      live.push_back(id.value());
      ++report.joins;
    }

    const std::size_t leaves =
        options.max_leaves_per_round
            ? static_cast<std::size_t>(
                  rng.uniform(options.max_leaves_per_round + 1))
            : 0;
    // Keep a small floor so the run never churns down to an empty fleet.
    for (std::size_t l = 0; l < leaves && live.size() > 2; ++l) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(live.size()));
      const std::string id = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      if (Status st = fleet.leave_agent(id); !st.ok()) {
        report.status = st;
        return report;
      }
      ++report.leaves;
    }

    const std::size_t reboots =
        options.max_reboots_per_round
            ? static_cast<std::size_t>(
                  rng.uniform(options.max_reboots_per_round + 1))
            : 0;
    for (std::size_t b = 0; b < reboots && !live.empty(); ++b) {
      const std::string id =
          live[static_cast<std::size_t>(rng.uniform(live.size()))];
      if (Status st = fleet.reboot_agent(id); !st.ok()) {
        report.status = st;
        return report;
      }
      ++report.reboots;
    }

    fleet.run_workload_round(round);
    report.polls += fleet.pool().advance_to(
        static_cast<SimTime>((round + 1) * options.round_period));
  }
  return report;
}

std::map<std::string, std::string> per_agent_chain_digests(
    const keylime::VerifierPool& pool) {
  // Gather every agent's records across ALL shards: a migrated agent's
  // history spans its old and new homes; a retired shard still holds the
  // records it appended while active.
  std::map<std::string, std::vector<const keylime::AuditRecord*>> by_agent;
  for (std::size_t s = 0; s < pool.shard_count(); ++s) {
    for (const auto& rec : pool.verifier(s).audit().records()) {
      by_agent[rec.agent_id].push_back(&rec);
    }
  }
  std::map<std::string, std::string> digests;
  for (auto& [id, recs] : by_agent) {
    std::sort(recs.begin(), recs.end(),
              [](const keylime::AuditRecord* a, const keylime::AuditRecord* b) {
                return a->agent_seq < b->agent_seq;
              });
    crypto::Sha256 ctx;
    for (const keylime::AuditRecord* rec : recs) {
      const crypto::Digest h = rec->agent_hash();
      ctx.update(h.data(), h.size());
    }
    digests[id] = crypto::digest_hex(ctx.finish());
  }
  return digests;
}

}  // namespace cia::experiments
