#include "experiments/pool_experiment.hpp"

#include "common/strutil.hpp"
#include "experiments/testbed.hpp"

namespace cia::experiments {

PoolFleet::PoolFleet(const PoolFleetOptions& options) : options_(options) {
  tpm_ca_ = std::make_unique<crypto::CertificateAuthority>(
      "tpm-manufacturer", to_bytes("pool-mfg-seed"));

  keylime::VerifierPoolConfig pool_config;
  pool_config.shards = options_.shards;
  pool_config.verifier = options_.verifier;
  pool_config.scheduler = options_.scheduler;
  pool_config.retrying_transport = options_.retrying_transport;
  pool_ = std::make_unique<keylime::VerifierPool>(options_.seed, pool_config);
  pool_->trust_manufacturer(tpm_ca_->public_key());
  if (options_.metrics) pool_->use_telemetry(options_.metrics);

  // The shared image: binary content is a pure function of the path, so
  // every machine measures identical file hashes and one policy revision
  // covers the fleet.
  binaries_.reserve(options_.binaries_per_machine);
  for (std::size_t b = 0; b < options_.binaries_per_machine; ++b) {
    binaries_.push_back(strformat("/usr/bin/tool-%03zu", b));
  }

  for (std::size_t i = 0; i < options_.agents; ++i) {
    oskernel::MachineConfig cfg;
    cfg.hostname = strformat("agent-%04zu", i);
    cfg.seed = options_.seed + i + 1;  // distinct TPM identities
    const std::size_t shard = pool_->shard_for(cfg.hostname);
    machines_.push_back(std::make_unique<oskernel::Machine>(
        cfg, *tpm_ca_, &pool_->clock(shard)));
    oskernel::Machine& machine = *machines_.back();
    for (const std::string& path : binaries_) {
      (void)machine.fs().create_file(path, to_bytes("elf:" + path), true);
    }
    agents_.push_back(std::make_unique<keylime::Agent>(
        &machine, &pool_->network(shard)));
    keylime::Agent& agent = *agents_.back();
    if (Status s = agent.register_with(keylime::Registrar::address());
        !s.ok()) {
      init_status_ = s;
      return;
    }
    if (Status s = pool_->enroll(cfg.hostname, agent.address()); !s.ok()) {
      init_status_ = s;
      return;
    }
    agent_ids_.push_back(cfg.hostname);
  }
}

PoolFleet::~PoolFleet() = default;

keylime::RuntimePolicy PoolFleet::fleet_policy() const {
  return scan_machine_policy(*machines_.front(), /*exclude_tmp=*/true);
}

Status PoolFleet::push_fleet_policy() {
  return pool_->set_fleet_policy(fleet_policy());
}

void PoolFleet::run_workload_round(std::uint64_t round) {
  if (binaries_.empty()) return;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    // A deterministic slice of the binary set, disjoint from the
    // previous round's slice until the set wraps: each round produces
    // fresh first-execution measurements for the verifier to appraise.
    // The slice depends only on the round number, never on the shard
    // layout.
    for (std::size_t k = 0; k < options_.execs_per_round; ++k) {
      const std::size_t b =
          (round * options_.execs_per_round + k) % binaries_.size();
      (void)machines_[i]->exec(binaries_[b]);
    }
  }
}

void PoolFleet::exec_unknown(std::size_t i) {
  oskernel::Machine& machine = *machines_.at(i);
  const std::string path =
      strformat("/usr/local/bin/dropper-%04zu", i);
  (void)machine.fs().create_file(path, to_bytes("elf:unknown:" + path), true);
  (void)machine.exec(path);
}

}  // namespace cia::experiments
