// A fully wired single-node deployment: archive + mirror + machine +
// TPM/IMA + Keylime agent/registrar/verifier over the simulated network.
//
// Every experiment in the paper starts from this rig; the options select
// the variation (stock vs mitigated stacks, SNAP on/off, verifier
// failure semantics).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/cert.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/tenant.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"
#include "pkg/apt.hpp"
#include "pkg/archive.hpp"
#include "pkg/mirror.hpp"

namespace cia::experiments {

struct TestbedOptions {
  std::uint64_t seed = 42;
  pkg::ArchiveConfig archive;
  /// Number of generated packages provisioned onto the machine in
  /// addition to the well-known set and the running kernel's packages.
  std::size_t provision_extra = 250;
  ima::ImaPolicy ima_policy = ima::ImaPolicy::keylime_recommended();
  ima::ImaConfig ima_config;
  keylime::VerifierConfig verifier_config;
  /// Install a SNAP (squashfs app container) whose binary the workload
  /// occasionally runs — the §III-B SNAP false-positive source.
  bool snap_enabled = false;
  pkg::CostModel cost;
};

class Testbed {
 public:
  explicit Testbed(const TestbedOptions& options);

  /// Agent registration + verifier enrolment (no policy yet).
  Status enroll();

  /// One verifier round against the node (alerts accumulate inside the
  /// verifier); comms errors are surfaced, policy alerts are not errors.
  void attest();

  /// Paths of SNAP-shipped binaries as IMA reports them (truncated).
  const std::vector<std::string>& snap_visible_paths() const {
    return snap_visible_paths_;
  }
  /// Host-side SNAP binary paths (what a filesystem scan sees).
  const std::vector<std::string>& snap_host_paths() const {
    return snap_host_paths_;
  }

  const std::string& agent_id() const { return agent_->agent_id(); }

  SimClock clock;
  crypto::CertificateAuthority tpm_ca;
  pkg::Archive archive;
  pkg::Mirror mirror;
  netsim::SimNetwork network;
  keylime::Registrar registrar;
  keylime::Verifier verifier;
  oskernel::Machine machine;
  pkg::AptClient apt;

  keylime::Agent& agent() { return *agent_; }

  /// Names provisioned onto the machine.
  std::vector<std::string> provisioned;

 private:
  std::unique_ptr<keylime::Agent> agent_;
  std::vector<std::string> snap_visible_paths_;
  std::vector<std::string> snap_host_paths_;
};

/// Build a static "IBM-style" initial policy by recursively scanning the
/// machine for executable files and hashing them (§III-A). `exclude_tmp`
/// reproduces the policy's /tmp wildcard exclusion — the origin of P1.
keylime::RuntimePolicy scan_machine_policy(const oskernel::Machine& machine,
                                           bool exclude_tmp);

/// §III-C option (a) for the SNAP problem: post-process a policy so every
/// entry carries the path IMA will actually record — i.e., strip
/// container-namespace prefixes (/snap/<name>/<rev>/..., container
/// rootfs paths). Returns the rewritten policy; the number of rewritten
/// entries is written to `rewritten` when non-null.
keylime::RuntimePolicy scrub_container_prefixes(
    const keylime::RuntimePolicy& policy, const oskernel::Machine& machine,
    std::size_t* rewritten = nullptr);

}  // namespace cia::experiments
