#include "experiments/fp_experiment.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strutil.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/testbed.hpp"
#include "experiments/workload.hpp"

namespace cia::experiments {

FpBaselineResult run_fp_baseline(const FpBaselineOptions& options) {
  TestbedOptions bed_options;
  bed_options.seed = options.seed;
  bed_options.archive = options.archive;
  bed_options.provision_extra = options.provision_extra;
  bed_options.snap_enabled = true;
  Testbed bed(bed_options);
  if (!bed.enroll().ok()) return {};

  // The IBM-style initial policy: a just-in-time scan of the machine's
  // executables (SNAP files appear under their host /snap/... paths).
  keylime::RuntimePolicy policy = scan_machine_policy(bed.machine, true);
  (void)bed.verifier.set_policy(bed.agent_id(), policy);

  Workload workload(&bed.machine, options.seed ^ 0x776bull);
  pkg::UnattendedUpgrades unattended(&bed.apt, &bed.archive, 6 * kHour);

  FpBaselineResult result;
  result.days = options.days;

  std::size_t resolved_alerts = 0;
  for (int day = 0; day < options.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      bed.clock.advance_to(static_cast<SimTime>(day) * kDay + hour * kHour);
      (void)unattended.tick(bed.clock.now());

      // Upstream publishes during business hours; visible to unattended
      // upgrades the next morning.
      if (hour == 8) (void)bed.archive.release_day(day);

      if (hour == 9 || hour == 13 || hour == 17) workload.run_session();
      if (hour == 7 && !bed.snap_host_paths().empty()) {
        workload.run_binary(
            bed.snap_host_paths()[static_cast<std::size_t>(day) %
                                  bed.snap_host_paths().size()]);
      }
      bed.attest();

      // The on-call operator chases every failure until the node attests
      // green again: accept the measured hash into the policy and resume
      // (the only way to keep a static-policy deployment limping along).
      int chase_guard = 0;
      while (bed.verifier.state(bed.agent_id()) ==
                 keylime::AgentState::kFailed &&
             ++chase_guard < 100) {
        const auto alerts = bed.verifier.alerts();
        for (std::size_t i = resolved_alerts; i < alerts.size(); ++i) {
          if (!alerts[i].path.empty() && !alerts[i].observed_hash_hex.empty()) {
            policy.allow(alerts[i].path, alerts[i].observed_hash_hex);
          }
        }
        resolved_alerts = alerts.size();
        (void)bed.verifier.set_policy(bed.agent_id(), policy);
        (void)bed.verifier.resolve_failure(bed.agent_id());
        ++result.operator_interventions;
        bed.attest();
      }
    }
  }

  for (const keylime::Alert& alert : bed.verifier.alerts()) {
    if (alert.type != keylime::AlertType::kHashMismatch &&
        alert.type != keylime::AlertType::kNotInPolicy) {
      continue;
    }
    ++result.alerts_total;
    const auto& snap = bed.snap_visible_paths();
    const bool is_snap =
        std::find(snap.begin(), snap.end(), alert.path) != snap.end();
    if (is_snap) {
      ++result.snap_truncation;
    } else if (alert.type == keylime::AlertType::kHashMismatch) {
      ++result.update_hash_mismatch;
    } else {
      ++result.update_missing_file;
    }
    if (result.sample_alerts.size() < 8) {
      result.sample_alerts.push_back(
          strformat("%s %s", keylime::alert_type_name(alert.type),
                    alert.path.c_str()));
    }
  }
  return result;
}

DynamicRunResult run_dynamic_policy_experiment(const DynamicRunOptions& options) {
  TestbedOptions bed_options;
  bed_options.seed = options.seed;
  bed_options.archive = options.archive;
  bed_options.provision_extra = options.provision_extra;
  bed_options.snap_enabled = false;  // §III-C: SNAP disabled under the scheme
  Testbed bed(bed_options);
  DynamicRunResult result;
  result.days = options.days;
  if (!bed.enroll().ok()) return result;

  core::DynamicPolicyGenerator generator(&bed.mirror, core::GeneratorConfig{});
  core::UpdateOrchestrator orchestrator(&bed.mirror, &generator, &bed.verifier,
                                        &bed.clock);
  orchestrator.manage({&bed.machine, &bed.apt, bed.agent_id()});
  if (!orchestrator.bootstrap().ok()) return result;
  result.base_policy_entries = orchestrator.policy().entry_count();
  result.base_policy_bytes = orchestrator.policy().byte_size();

  Workload workload(&bed.machine, options.seed ^ 0x776bull);
  bool kernel_pending = false;
  bool incident_pending = false;

  for (int day = 0; day < options.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      bed.clock.advance_to(static_cast<SimTime>(day) * kDay + hour * kHour);

      // 04:00 maintenance reboot when a new kernel awaits (its policy
      // entries were admitted by the previous cycle).
      if (hour == 4 && kernel_pending) {
        bed.machine.reboot();
        ++result.reboots;
        kernel_pending = false;
        bed.attest();  // absorb the reboot-detection round
      }

      // 05:00: the scheduled update cycle (mirror sync -> policy refresh
      // -> push -> upgrade from mirror -> dedup).
      if (hour == 5 && day % options.update_period_days == 0) {
        auto report = orchestrator.run_cycle();
        if (report.ok()) {
          result.updates.push_back(report.value().policy_stats);
          ++result.updates_run;
          kernel_pending = report.value().kernel_pending_reboot;
        }
        // The morning after the §III-D incident: the mirror has now
        // caught up and the refreshed policy covers the rogue update, so
        // the operator resumes attestation.
        if (incident_pending && bed.verifier.state(bed.agent_id()) ==
                                    keylime::AgentState::kFailed) {
          (void)bed.verifier.resolve_failure(bed.agent_id());
          incident_pending = false;
        }
      }

      // Upstream publishes during business hours — strictly after the
      // 05:00 sync, which is why the mirror always lags by up to a day.
      if (hour == 8) (void)bed.archive.release_day(day);

      if (hour == 9 || hour == 13 || hour == 17) workload.run_session();

      // The injected §III-D incident: the operator hand-updates the node
      // from the *official archive* at 21:00, pulling packages released
      // after today's sync; the evening session then runs them.
      if (options.inject_mirror_race && day == options.race_day) {
        if (hour == 21) {
          (void)bed.apt.upgrade(bed.archive.index());
          incident_pending = true;
        }
        if (hour == 22) workload.run_session();
      }

      bed.attest();
    }
  }

  // Post-run accounting.
  for (const keylime::Alert& alert : bed.verifier.alerts()) {
    if (alert.type == keylime::AlertType::kHashMismatch ||
        alert.type == keylime::AlertType::kNotInPolicy) {
      ++result.false_positives;
      if (options.inject_mirror_race &&
          alert.time >= options.race_day * kDay) {
        ++result.incident_false_positives;
      }
      result.alerts.push_back(alert);
    }
  }
  return result;
}

}  // namespace cia::experiments
