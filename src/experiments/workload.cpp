#include "experiments/workload.hpp"

#include "common/strutil.hpp"

namespace cia::experiments {

namespace {
// The interactive core: these are the Zipf-hot packages, so their
// binaries both run on every session and update most often — the
// combination that makes unscheduled updates surface as FPs quickly.
const char* kHotBinaries[] = {
    "/usr/bin/bash", "/usr/bin/coreutils", "/usr/bin/python3",
    "/usr/bin/openssl", "/usr/bin/curl", "/usr/bin/tar", "/usr/bin/sudo",
};
}  // namespace

Workload::Workload(oskernel::Machine* machine, std::uint64_t seed,
                   WorkloadOptions options)
    : machine_(machine), rng_(seed), options_(options) {
  for (const char* path : kHotBinaries) {
    if (machine_->fs().is_file(path)) hot_binaries_.push_back(path);
  }
}

void Workload::refresh_inventory() {
  all_binaries_.clear();
  all_libraries_.clear();
  kernel_modules_.clear();
  const std::string module_prefix =
      "/lib/modules/" + machine_->kernel_version() + "/";
  for (const std::string& path : machine_->fs().list_files("/usr")) {
    const auto st = machine_->fs().stat(path);
    if (!st.ok() || !st.value().executable) continue;
    if (starts_with(path, "/usr/bin/") || starts_with(path, "/usr/sbin/")) {
      all_binaries_.push_back(path);
    } else if (ends_with(path, ".so") || path.find(".so") != std::string::npos) {
      all_libraries_.push_back(path);
    }
  }
  for (const std::string& path : machine_->fs().list_files("/lib/modules")) {
    if (starts_with(path, module_prefix) && ends_with(path, ".ko")) {
      kernel_modules_.push_back(path);
    }
  }
}

void Workload::run_session() {
  ++sessions_;
  refresh_inventory();

  // The hot set runs every session.
  for (const std::string& path : hot_binaries_) {
    (void)machine_->exec(path);
  }
  // Random interactive activity across the installed base.
  for (std::size_t i = 0; i < options_.execs_per_session && !all_binaries_.empty();
       ++i) {
    (void)machine_->exec(all_binaries_[rng_.uniform(all_binaries_.size())]);
  }
  for (std::size_t i = 0;
       i < options_.mmaps_per_session && !all_libraries_.empty(); ++i) {
    machine_->mmap_library(all_libraries_[rng_.uniform(all_libraries_.size())]);
  }
  // Hot packages' libraries load with their binaries every session, which
  // is how a *new* file shipped by an update ("missing file in the
  // policy") surfaces quickly under a stale policy.
  for (const std::string& hot : hot_binaries_) {
    const std::string libdir = "/usr/lib" + hot.substr(hot.rfind('/'));
    const auto libs = machine_->fs().list_files(libdir);
    std::size_t mapped = 0;
    for (std::size_t i = 0; i < libs.size() && mapped < 25; ++i) {
      const std::string& lib = libs[libs.size() - 1 - i];  // newest last
      const auto st = machine_->fs().stat(lib);
      if (st.ok() && st.value().executable) {
        machine_->mmap_library(lib);
        ++mapped;
      }
    }
  }
  for (std::size_t i = 0;
       i < options_.module_loads_per_session && !kernel_modules_.empty(); ++i) {
    (void)machine_->load_kernel_module(
        kernel_modules_[rng_.uniform(kernel_modules_.size())]);
  }
  // A benign admin script run through the interpreter (unmeasured by
  // design — P5's flip side: normal script use adds no policy burden).
  if (machine_->fs().is_file("/usr/bin/python3")) {
    (void)machine_->fs().create_file(
        strformat("/home/user/task-%d.py", sessions_), to_bytes("print()"),
        false);
    (void)machine_->exec_via_interpreter(
        "/usr/bin/python3", strformat("/home/user/task-%d.py", sessions_));
  }
}

void Workload::run_binary(const std::string& path) {
  (void)machine_->exec(path);
}

}  // namespace cia::experiments
