// The false-negative evaluation of §IV (Table II).
//
// Every attack sample runs three times, each on a machine restored to the
// same initial state:
//   * basic      — stock Keylime/IMA stack, attacker unaware of Keylime;
//   * adaptive   — stock stack, attacker exploits P1-P5;
//   * mitigated  — the §IV-C recommendations applied: enriched IMA and
//     Keylime policies (no /tmp or writable-fs blind spots), verifier
//     that keeps evaluating after failures, IMA re-evaluation on path
//     change, and script-execution control with bash opted in (python
//     deliberately not — upstream has not adopted it, which is why
//     Aoyama stays undetectable).
//
// Detection is decided purely by the attestation pipeline: an attack is
// detected when an alert's path matches one of its payload markers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attack.hpp"

namespace cia::experiments {

enum class DetectionOutcome {
  kDetectedImmediately,  // alert during the attack window
  kDetectedOnReboot,     // alert only after reboot + fresh attestation
  kEvaded,               // no payload alert at all
};

const char* detection_outcome_name(DetectionOutcome o);

struct AttackReport {
  std::string name;
  std::string category;
  std::vector<attacks::Problem> exploits;
  DetectionOutcome basic = DetectionOutcome::kEvaded;
  DetectionOutcome adaptive = DetectionOutcome::kEvaded;
  DetectionOutcome mitigated = DetectionOutcome::kEvaded;
  bool paper_expects_mitigable = true;
};

struct FnExperimentOptions {
  std::uint64_t seed = 42;
  /// Archive scale (the detection outcomes are scale-independent; tests
  /// shrink this to keep the matrix fast).
  std::size_t archive_packages = 1500;
};

/// Run all eight samples through the three scenarios.
std::vector<AttackReport> run_fn_experiment(const FnExperimentOptions& options);

}  // namespace cia::experiments
