// Fleet-scale dynamic-policy operation: one verifier, one mirror, one
// orchestrator, N attested machines — the deployment shape the paper's
// scheme targets ("cloud providers ... large fleets of remote systems").
//
// The run exercises the whole production surface at once: staggered
// scheduler polling with backoff over a lossy network, per-cycle policy
// pushes that must keep every node green through its own upgrade, and the
// durable audit chain across all agents.
#pragma once

#include <cstdint>

#include "core/policy_generator.hpp"
#include "pkg/archive.hpp"
#include "telemetry/metrics.hpp"

namespace cia::experiments {

struct FleetRunOptions {
  std::uint64_t seed = 42;
  int days = 10;
  std::size_t nodes = 5;
  pkg::ArchiveConfig archive;
  std::size_t provision_extra = 60;
  /// Packet-loss probability on the attestation network.
  double drop_rate = 0.02;
  /// Optional observability: when set, every component of the fleet rig
  /// exports its metrics here. Never changes the simulated outcome.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct FleetRunResult {
  std::size_t nodes = 0;
  int days = 0;
  int updates_run = 0;
  std::size_t false_positives = 0;
  std::size_t polls = 0;
  std::size_t comms_failures = 0;
  std::size_t audit_records = 0;
  bool audit_chain_intact = false;
  std::vector<core::PolicyUpdateStats> updates;
};

FleetRunResult run_fleet_experiment(const FleetRunOptions& options);

}  // namespace cia::experiments
