// The benign "normal operations" workload of §III-A: navigating the
// filesystem, opening and closing files, launching scripts, and executing
// system binaries. Runs against a machine and produces IMA measurements
// exactly the way interactive use would.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "oskernel/machine.hpp"

namespace cia::experiments {

struct WorkloadOptions {
  /// Binaries executed per session.
  std::size_t execs_per_session = 60;
  /// Shared libraries mapped per session.
  std::size_t mmaps_per_session = 40;
  /// Kernel modules loaded per session (from the running kernel's tree).
  std::size_t module_loads_per_session = 2;
};

class Workload {
 public:
  Workload(oskernel::Machine* machine, std::uint64_t seed,
           WorkloadOptions options = {});

  /// One interactive session. The hot set (core system binaries — exactly
  /// the packages distributions patch most often) is always exercised;
  /// the rest is a random sample of everything executable on the machine.
  void run_session();

  /// Execute one specific path (used to exercise SNAP binaries).
  void run_binary(const std::string& path);

  /// Sessions executed so far.
  int sessions() const { return sessions_; }

 private:
  void refresh_inventory();

  oskernel::Machine* machine_;
  Rng rng_;
  WorkloadOptions options_;
  std::vector<std::string> hot_binaries_;
  std::vector<std::string> all_binaries_;
  std::vector<std::string> all_libraries_;
  std::vector<std::string> kernel_modules_;
  int sessions_ = 0;
};

}  // namespace cia::experiments
