#include "experiments/report.hpp"

#include <algorithm>
#include <fstream>

#include "common/stats.hpp"
#include "common/strutil.hpp"

namespace cia::experiments {

namespace {

std::vector<double> minutes_series(const DynamicRunResult& run) {
  std::vector<double> out;
  for (const auto& u : run.updates) out.push_back(u.seconds / 60.0);
  return out;
}

std::vector<double> package_series(const DynamicRunResult& run) {
  std::vector<double> out;
  for (const auto& u : run.updates) {
    out.push_back(static_cast<double>(u.packages_processed));
  }
  return out;
}

std::vector<double> high_priority_series(const DynamicRunResult& run) {
  std::vector<double> out;
  for (const auto& u : run.updates) {
    out.push_back(static_cast<double>(u.packages_high_priority));
  }
  return out;
}

std::vector<double> entries_series(const DynamicRunResult& run) {
  std::vector<double> out;
  for (const auto& u : run.updates) {
    out.push_back(static_cast<double>(u.lines_added));
  }
  return out;
}

std::string paper_vs_measured(const char* metric, double paper, double measured,
                              const char* unit) {
  return strformat("  %-34s paper %8.2f %-8s measured %8.2f %s\n", metric,
                   paper, unit, measured, unit);
}

}  // namespace

std::string render_fig3(const DynamicRunResult& daily) {
  const auto series = minutes_series(daily);
  const Summary s = summarize(series);
  std::string out = "Fig. 3 — time to update an existing Keylime policy "
                    "(daily updates)\n\n";
  out += ascii_series(series, "day", "policy update time (minutes)");
  out += "\n";
  out += paper_vs_measured("mean update time", 2.36, s.mean, "min");
  out += paper_vs_measured("stddev", 5.26, s.stddev, "min");
  const double under10 =
      100.0 * static_cast<double>(std::count_if(
                  series.begin(), series.end(), [](double m) { return m < 10; })) /
      static_cast<double>(std::max<std::size_t>(series.size(), 1));
  out += strformat("  %-34s paper %8s %-8s measured %7.1f%%\n",
                   "days under 10 minutes", "most", "", under10);
  return out;
}

std::string render_fig4(const DynamicRunResult& daily) {
  const auto totals = package_series(daily);
  const auto highs = high_priority_series(daily);
  const Summary st = summarize(totals);
  const Summary sh = summarize(highs);
  std::string out = "Fig. 4 — new and changed packages containing "
                    "executables, per daily update\n\n";
  out += ascii_series(totals, "day", "packages with executables");
  out += "\n";
  out += paper_vs_measured("mean packages/update", 16.5, st.mean, "pkgs");
  out += paper_vs_measured("stddev", 26.8, st.stddev, "pkgs");
  out += paper_vs_measured("mean high-priority/update", 0.9, sh.mean, "pkgs");
  out += paper_vs_measured("stddev (high-priority)", 2.2, sh.stddev, "pkgs");
  return out;
}

std::string render_fig5(const DynamicRunResult& daily) {
  const auto series = entries_series(daily);
  const Summary s = summarize(series);
  std::string out = "Fig. 5 — file entries added to the policy, per daily "
                    "update\n\n";
  out += ascii_series(series, "day", "policy entries added");
  out += "\n";
  out += paper_vs_measured("mean entries/update", 1271.0, s.mean, "lines");
  double mb = 0;
  for (const auto& u : daily.updates) mb += static_cast<double>(u.bytes_added);
  mb /= static_cast<double>(std::max<std::size_t>(daily.updates.size(), 1)) *
        1024.0 * 1024.0;
  out += paper_vs_measured("mean policy growth", 0.16, mb, "MB");
  out += strformat(
      "  base policy: %zu lines, %.1f MB   (paper: 323,734 lines, 46 MB — the\n"
      "  simulated distribution is ~1/4 of Ubuntu Main+Security+Updates)\n",
      daily.base_policy_entries,
      static_cast<double>(daily.base_policy_bytes) / (1024.0 * 1024.0));
  return out;
}

std::string render_table1(const DynamicRunResult& daily,
                          const DynamicRunResult& weekly) {
  const auto row = [](const char* name, const DynamicRunResult& run) {
    double low = 0, high = 0, files = 0, minutes = 0;
    const double n = static_cast<double>(std::max<std::size_t>(1, run.updates.size()));
    for (const auto& u : run.updates) {
      low += static_cast<double>(u.packages_low_priority);
      high += static_cast<double>(u.packages_high_priority);
      files += static_cast<double>(u.lines_added);
      minutes += u.seconds / 60.0;
    }
    return strformat("  %-22s %10.1f %10.1f %12.0f %10.2f\n", name, low / n,
                     high / n, files / n, minutes / n);
  };
  std::string out =
      "Table I — per-update averages, daily vs weekly schedules\n\n"
      "  experiment              # low-pri   # high-pri   files upd.   time "
      "(min)\n";
  out += row("Daily update", daily);
  out += row("Weekly update", weekly);
  out += "\n  paper:\n";
  out += strformat("  %-22s %10.1f %10.1f %12.0f %10.2f\n", "Daily update",
                   15.6, 0.9, 1271.0, 2.36);
  out += strformat("  %-22s %10.1f %10.1f %12.0f %10.2f\n", "Weekly update",
                   76.4, 2.6, 5513.0, 7.50);
  return out;
}

std::string render_table2(const std::vector<AttackReport>& reports) {
  std::string out =
      "Table II — attacks vs Keylime (basic / adaptive / with §IV-C "
      "mitigations)\n\n"
      "  name          category     basic               adaptive   "
      "problems        mitigated            paper-mitig.\n";
  std::string category;
  for (const AttackReport& r : reports) {
    std::string problems;
    for (const auto p : r.exploits) {
      if (!problems.empty()) problems += ",";
      problems += attacks::problem_name(p);
    }
    if (r.category != category) {
      category = r.category;
      out += "  -- " + category + "\n";
    }
    out += strformat("  %-13s %-12s %-19s %-10s %-15s %-20s %s\n",
                     r.name.c_str(), r.category.c_str(),
                     detection_outcome_name(r.basic),
                     detection_outcome_name(r.adaptive), problems.c_str(),
                     detection_outcome_name(r.mitigated),
                     r.paper_expects_mitigable ? "detected*" : "evaded");
  }
  out +=
      "\n  paper: every basic attack is detected; every adaptive attack "
      "evades;\n  with the recommended fixes 7/8 become detectable (upon "
      "reboot / fresh\n  attestation) and Aoyama (pure Python, P5) still "
      "evades.\n";
  return out;
}

std::string render_fp_baseline(const FpBaselineResult& result) {
  std::string out = strformat(
      "§III-B — one week of benign operation under a static policy\n\n"
      "  days observed                 %d\n"
      "  false-positive alerts         %zu\n"
      "    hash mismatch (updates)     %zu\n"
      "    missing from policy         %zu\n"
      "    SNAP path truncation        %zu\n"
      "  operator interventions        %zu\n",
      result.days, result.alerts_total, result.update_hash_mismatch,
      result.update_missing_file, result.snap_truncation,
      result.operator_interventions);
  if (!result.sample_alerts.empty()) {
    out += "\n  sample alerts:\n";
    for (const auto& s : result.sample_alerts) out += "    " + s + "\n";
  }
  out += "\n  paper: alerts stem from two causes — unscheduled OS updates\n"
         "  (hash mismatch / missing file) and SNAP path truncation.\n";
  return out;
}

std::string render_fp_effectiveness(const DynamicRunResult& daily,
                                    const DynamicRunResult& weekly) {
  const int updates = daily.updates_run + weekly.updates_run;
  std::string out = strformat(
      "§III-D — dynamic policy generation, 66-day evaluation\n\n"
      "  daily run: %d days, %d updates, %zu false positives "
      "(%zu from the injected day-31 operator error)\n"
      "  weekly run: %d days, %d updates, %zu false positives\n"
      "  total: %d days, %d updates\n",
      daily.days, daily.updates_run, daily.false_positives,
      daily.incident_false_positives, weekly.days, weekly.updates_run,
      weekly.false_positives, daily.days + weekly.days, updates);
  out += strformat("  kernel maintenance reboots: %d (daily) + %d (weekly)\n",
                   daily.reboots, weekly.reboots);
  out += "\n  paper: 66 days, 36 updates, zero false positives except one\n"
         "  operator error (a release published after the mirror sync was\n"
         "  installed from the official archive instead of the mirror).\n";
  return out;
}

bool write_updates_csv(const std::string& path, const DynamicRunResult& run) {
  std::ofstream out(path);
  if (!out) return false;
  out << "day,packages,high_priority,lines_added,bytes_added,minutes\n";
  for (const auto& u : run.updates) {
    out << u.day << "," << u.packages_processed << ","
        << u.packages_high_priority << "," << u.lines_added << ","
        << u.bytes_added << "," << (u.seconds / 60.0) << "\n";
  }
  return bool(out);
}

}  // namespace cia::experiments
