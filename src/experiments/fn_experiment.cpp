#include "experiments/fn_experiment.hpp"

#include "core/policy_generator.hpp"
#include "experiments/testbed.hpp"

namespace cia::experiments {

const char* detection_outcome_name(DetectionOutcome o) {
  switch (o) {
    case DetectionOutcome::kDetectedImmediately: return "detected";
    case DetectionOutcome::kDetectedOnReboot: return "detected-on-reboot";
    case DetectionOutcome::kEvaded: return "evaded";
  }
  return "?";
}

namespace {

enum class Scenario { kBasic, kAdaptive, kMitigated };

/// Does any policy alert touch one of the attack's payload markers?
bool payload_alerted(const keylime::Verifier& verifier,
                     const attacks::Attack& attack) {
  for (const keylime::Alert& alert : verifier.alerts()) {
    if (alert.type != keylime::AlertType::kHashMismatch &&
        alert.type != keylime::AlertType::kNotInPolicy) {
      continue;
    }
    for (const std::string& marker : attack.payload_markers()) {
      if (alert.path.find(marker) != std::string::npos) return true;
    }
  }
  return false;
}

DetectionOutcome run_scenario(attacks::Attack& attack, Scenario scenario,
                              std::uint64_t seed, std::size_t archive_packages) {
  TestbedOptions options;
  options.seed = seed;  // identical machine image for every run
  options.archive.base_package_count = archive_packages;
  options.provision_extra = 40;  // a lean node keeps the FN rig fast
  if (scenario == Scenario::kMitigated) {
    options.ima_policy = ima::ImaPolicy::enriched();
    options.ima_config.reevaluate_on_path_change = true;
    options.ima_config.script_exec_control = true;
    options.verifier_config.continue_on_failure = true;
  }
  Testbed bed(options);
  if (!bed.enroll().ok()) return DetectionOutcome::kEvaded;
  if (scenario == Scenario::kMitigated) {
    // bash has adopted script-execution control upstream; python has not.
    bed.machine.register_sec_aware_interpreter("/usr/bin/bash");
  }

  // "We use the new policy derived from the false positive experiment":
  // the dynamically generated distribution policy. The stock deployments
  // also carry the inherited /tmp exclusion (P1); the mitigated one does
  // not (§IV-C "Enriching Keylime/IMA Policies").
  bed.mirror.sync(bed.clock.now());
  core::DynamicPolicyGenerator generator(&bed.mirror, core::GeneratorConfig{});
  keylime::RuntimePolicy policy =
      generator.generate_base(bed.machine.kernel_version());
  if (scenario != Scenario::kMitigated) {
    policy.exclude("/tmp/*");
  }
  (void)bed.verifier.set_policy(bed.agent_id(), policy);

  // Pre-attack health check: the clean machine must attest green.
  bed.attest();

  attacks::AttackContext ctx;
  ctx.machine = &bed.machine;
  ctx.attestation_round = [&bed] { bed.attest(); };

  const Status run = (scenario == Scenario::kBasic) ? attack.run_basic(ctx)
                                                    : attack.run_adaptive(ctx);
  if (!run.ok()) return DetectionOutcome::kEvaded;

  // The attack window: several verifier polls.
  for (int i = 0; i < 3; ++i) bed.attest();
  if (payload_alerted(bed.verifier, attack)) {
    return DetectionOutcome::kDetectedImmediately;
  }

  // The basic/adaptive columns of Table II are judged within the running
  // boot — the paper observes that /tmp-resident payloads "remained
  // undetected until a reboot", i.e. the reboot path only counts for the
  // mitigation assessment.
  if (scenario != Scenario::kMitigated) return DetectionOutcome::kEvaded;

  // Fresh attestation after a reboot — the paper's "✓*" condition. The
  // stock verifier may be frozen on an unresolved failure; the operator
  // resolves it as part of the maintenance reboot.
  (void)bed.verifier.resolve_failure(bed.agent_id());
  bed.machine.reboot();
  bed.attest();  // absorbs reboot detection
  (void)attack.post_reboot_activity(ctx);
  for (int i = 0; i < 3; ++i) bed.attest();
  if (payload_alerted(bed.verifier, attack)) {
    return DetectionOutcome::kDetectedOnReboot;
  }
  return DetectionOutcome::kEvaded;
}

}  // namespace

std::vector<AttackReport> run_fn_experiment(const FnExperimentOptions& options) {
  std::vector<AttackReport> reports;
  for (const auto& attack : attacks::all_attacks()) {
    AttackReport report;
    report.name = attack->name();
    report.category = attack->category();
    report.exploits = attack->exploits();
    report.paper_expects_mitigable = attack->mitigable();
    report.basic = run_scenario(*attack, Scenario::kBasic, options.seed,
                                options.archive_packages);
    report.adaptive = run_scenario(*attack, Scenario::kAdaptive, options.seed,
                                   options.archive_packages);
    report.mitigated = run_scenario(*attack, Scenario::kMitigated,
                                    options.seed, options.archive_packages);
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace cia::experiments
