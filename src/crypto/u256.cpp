#include "crypto/u256.hpp"

#include <cassert>

namespace cia::crypto {

namespace {

using u128 = unsigned __int128;

int hexval(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  assert(false && "invalid hex character");
  return 0;
}

}  // namespace

U256 U256::from_hex(const std::string& hex) {
  assert(hex.size() == 64);
  U256 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    // limb[3] holds the most-significant 16 hex chars.
    const std::size_t off = static_cast<std::size_t>(3 - i) * 16;
    for (std::size_t j = 0; j < 16; ++j) {
      v = (v << 4) | static_cast<std::uint64_t>(hexval(hex[off + j]));
    }
    r.limb[static_cast<std::size_t>(i)] = v;
  }
  return r;
}

U256 U256::from_be_bytes(const Bytes& b) {
  assert(b.size() == 32);
  U256 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int j = 0; j < 8; ++j) {
      v = (v << 8) | b[static_cast<std::size_t>((3 - i) * 8 + j)];
    }
    r.limb[static_cast<std::size_t>(i)] = v;
  }
  return r;
}

Bytes U256::to_be_bytes() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t v = limb[static_cast<std::size_t>(3 - i)];
    for (int j = 0; j < 8; ++j) {
      out[static_cast<std::size_t>(i * 8 + j)] =
          static_cast<std::uint8_t>(v >> (56 - 8 * j));
    }
  }
  return out;
}

std::string U256::to_hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(64, '0');
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t v = limb[static_cast<std::size_t>(3 - i)];
    for (int j = 0; j < 16; ++j) {
      out[static_cast<std::size_t>(i * 16 + j)] =
          kHex[(v >> (60 - 4 * j)) & 0xf];
    }
  }
  return out;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    const auto ai = a.limb[static_cast<std::size_t>(i)];
    const auto bi = b.limb[static_cast<std::size_t>(i)];
    if (ai < bi) return -1;
    if (ai > bi) return 1;
  }
  return 0;
}

std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return carry;
}

std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 diff =
        static_cast<u128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<std::uint64_t>(diff);
    borrow = static_cast<std::uint64_t>((diff >> 64) & 1);
  }
  return borrow;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 r{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limb[i]) * b.limb[j] +
                       r[i + j] + carry;
      r[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r[i + 4] += carry;
  }
  return r;
}

SpecialModulus SpecialModulus::make(const U256& p) {
  // c = 2^256 - p  ==  (~p) + 1 in 256-bit arithmetic.
  U256 c;
  for (std::size_t i = 0; i < 4; ++i) c.limb[i] = ~p.limb[i];
  U256 one = U256::one();
  U256 tmp;
  add_with_carry(c, one, tmp);
  return SpecialModulus{p, tmp};
}

U256 reduce(const U256& x, const SpecialModulus& m) {
  U256 r = x;
  while (r >= m.p) {
    U256 tmp;
    sub_with_borrow(r, m.p, tmp);
    r = tmp;
  }
  return r;
}

U256 reduce_wide(const U512& x, const SpecialModulus& m) {
  // Fold: x = hi * 2^256 + lo == hi * c + lo (mod p), iterate until the
  // high half vanishes, then conditional-subtract.
  U256 lo{{x[0], x[1], x[2], x[3]}};
  U256 hi{{x[4], x[5], x[6], x[7]}};
  while (!hi.is_zero()) {
    const U512 prod = mul_wide(hi, m.c);
    U256 plo{{prod[0], prod[1], prod[2], prod[3]}};
    U256 phi{{prod[4], prod[5], prod[6], prod[7]}};
    U256 sum;
    const std::uint64_t carry = add_with_carry(lo, plo, sum);
    lo = sum;
    hi = phi;
    if (carry) {
      // Propagate the carry into hi (cannot overflow: phi is far below max).
      U256 one = U256::one();
      U256 tmp;
      add_with_carry(hi, one, tmp);
      hi = tmp;
    }
  }
  return reduce(lo, m);
}

U256 add_mod(const U256& a, const U256& b, const SpecialModulus& m) {
  U256 sum;
  const std::uint64_t carry = add_with_carry(a, b, sum);
  if (carry) {
    // sum + 2^256 == sum + c (mod p)
    U256 tmp;
    const std::uint64_t carry2 = add_with_carry(sum, m.c, tmp);
    sum = tmp;
    // A second carry is impossible for moduli close to 2^256 (c is tiny
    // relative to 2^256), but handle it defensively.
    if (carry2) {
      U256 tmp2;
      add_with_carry(sum, m.c, tmp2);
      sum = tmp2;
    }
  }
  return reduce(sum, m);
}

U256 sub_mod(const U256& a, const U256& b, const SpecialModulus& m) {
  const U256 ra = reduce(a, m);
  const U256 rb = reduce(b, m);
  U256 out;
  if (sub_with_borrow(ra, rb, out)) {
    U256 tmp;
    add_with_carry(out, m.p, tmp);
    return tmp;
  }
  return out;
}

U256 mul_mod(const U256& a, const U256& b, const SpecialModulus& m) {
  return reduce_wide(mul_wide(a, b), m);
}

U256 pow_mod(const U256& a, const U256& e, const SpecialModulus& m) {
  U256 base = reduce(a, m);
  U256 result = U256::one();
  for (int limb_idx = 0; limb_idx < 4; ++limb_idx) {
    std::uint64_t bits = e.limb[static_cast<std::size_t>(limb_idx)];
    for (int bit = 0; bit < 64; ++bit) {
      if (bits & 1) result = mul_mod(result, base, m);
      base = mul_mod(base, base, m);
      bits >>= 1;
    }
  }
  return result;
}

U256 inv_mod(const U256& a, const SpecialModulus& m) {
  U256 e;
  sub_with_borrow(m.p, U256::from_u64(2), e);
  return pow_mod(a, e, m);
}

}  // namespace cia::crypto
