// HMAC-SHA256 (RFC 2104). Used by the TPM credential-activation protocol
// and by deterministic nonce derivation in Schnorr signing.
#pragma once

#include "crypto/sha256.hpp"

namespace cia::crypto {

/// HMAC-SHA256 over `data` with `key`.
Digest hmac_sha256(const Bytes& key, const Bytes& data);

/// KDF: derive a 32-byte key from a secret and a context label.
Digest kdf(const Bytes& secret, const std::string& label);

}  // namespace cia::crypto
