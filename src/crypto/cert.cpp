#include "crypto/cert.hpp"

#include <cstring>

namespace cia::crypto {

namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_str(Bytes& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

bool get_u64(const Bytes& in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[pos++];
  return true;
}

bool get_str(const Bytes& in, std::size_t& pos, std::string& s) {
  std::uint64_t len = 0;
  if (!get_u64(in, pos, len)) return false;
  if (pos + len > in.size()) return false;
  s.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
           in.begin() + static_cast<std::ptrdiff_t>(pos + len));
  pos += len;
  return true;
}

bool get_fixed(const Bytes& in, std::size_t& pos, std::size_t n, Bytes& out) {
  if (pos + n > in.size()) return false;
  out.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.begin() + static_cast<std::ptrdiff_t>(pos + n));
  pos += n;
  return true;
}

}  // namespace

Bytes Certificate::tbs_encode() const {
  Bytes out;
  put_str(out, subject);
  put_str(out, issuer);
  append(out, subject_key.encode());
  put_u64(out, static_cast<std::uint64_t>(not_before));
  put_u64(out, static_cast<std::uint64_t>(not_after));
  return out;
}

Bytes Certificate::encode() const {
  Bytes out = tbs_encode();
  append(out, signature.encode());
  return out;
}

std::optional<Certificate> Certificate::decode(const Bytes& b) {
  Certificate cert;
  std::size_t pos = 0;
  if (!get_str(b, pos, cert.subject)) return std::nullopt;
  if (!get_str(b, pos, cert.issuer)) return std::nullopt;
  Bytes key_bytes;
  if (!get_fixed(b, pos, 64, key_bytes)) return std::nullopt;
  auto key = PublicKey::decode(key_bytes);
  if (!key) return std::nullopt;
  cert.subject_key = *key;
  std::uint64_t nb = 0, na = 0;
  if (!get_u64(b, pos, nb) || !get_u64(b, pos, na)) return std::nullopt;
  cert.not_before = static_cast<SimTime>(nb);
  cert.not_after = static_cast<SimTime>(na);
  Bytes sig_bytes;
  if (!get_fixed(b, pos, 96, sig_bytes)) return std::nullopt;
  auto sig = Signature::decode(sig_bytes);
  if (!sig) return std::nullopt;
  cert.signature = *sig;
  if (pos != b.size()) return std::nullopt;
  return cert;
}

CertificateAuthority::CertificateAuthority(std::string name, const Bytes& seed)
    : name_(std::move(name)), key_(derive_keypair(seed, "ca:" + name_)) {}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const PublicKey& subject_key,
                                        SimTime not_before,
                                        SimTime not_after) const {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = name_;
  cert.subject_key = subject_key;
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.signature = sign(key_, cert.tbs_encode());
  return cert;
}

bool verify_certificate(const Certificate& cert, const PublicKey& issuer_key,
                        SimTime now) {
  if (now < cert.not_before || now > cert.not_after) return false;
  return verify(issuer_key, cert.tbs_encode(), cert.signature);
}

}  // namespace cia::crypto
