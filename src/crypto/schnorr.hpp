// Schnorr signatures over secp256k1.
//
// The TPM simulator uses Schnorr keys for the endorsement key (EK) and
// attestation key (AK); TPM quotes and certificates are Schnorr-signed.
// Nonces are derived deterministically (RFC6979-style via HMAC) so the
// whole simulation is reproducible.
#pragma once

#include <optional>
#include <string>

#include "crypto/secp256k1.hpp"

namespace cia::crypto {

/// A Schnorr public key (a curve point).
struct PublicKey {
  Point point;

  Bytes encode() const { return encode_point(point); }
  static std::optional<PublicKey> decode(const Bytes& b);
  bool operator==(const PublicKey&) const = default;
};

/// A Schnorr private key (scalar in [1, n-1]) with its public key.
struct KeyPair {
  U256 secret;
  PublicKey pub;
};

/// Signature: commitment point R and scalar s, satisfying
/// s*G == R + H(R || P || m)*P.
struct Signature {
  Point r;
  U256 s;

  /// 96-byte encoding: R (64) || s (32).
  Bytes encode() const;
  static std::optional<Signature> decode(const Bytes& b);
  bool operator==(const Signature&) const = default;
};

/// Derive a keypair deterministically from seed material.
KeyPair derive_keypair(const Bytes& seed, const std::string& label);

/// Sign a message (deterministic nonce).
Signature sign(const KeyPair& key, const Bytes& message);

/// Verify a signature.
bool verify(const PublicKey& pub, const Bytes& message, const Signature& sig);

}  // namespace cia::crypto
