// SHA-256 (FIPS 180-4), implemented from scratch so the library is
// self-contained. Used for IMA file measurements, TPM PCR extends,
// policy hashes, and as the hash inside HMAC and Schnorr.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace cia::crypto {

constexpr std::size_t kSha256Size = 32;
using Digest = std::array<std::uint8_t, kSha256Size>;

/// Streaming SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Finalize and return the digest. The context must not be reused after.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot digest of a byte buffer.
Digest sha256(const Bytes& data);

/// One-shot digest of a string.
Digest sha256(const std::string& data);

/// Digest as Bytes.
Bytes digest_bytes(const Digest& d);

/// Lowercase hex of a digest.
std::string digest_hex(const Digest& d);

/// An all-zero digest (e.g., initial PCR value).
Digest zero_digest();

}  // namespace cia::crypto
