// SHA-256 (FIPS 180-4), implemented from scratch so the library is
// self-contained. Used for IMA file measurements, TPM PCR extends,
// policy hashes, and as the hash inside HMAC and Schnorr.
//
// The compression function is runtime-dispatched: on x86-64 hosts with
// the SHA extensions (most server parts since Goldmont/Zen) multi-block
// inputs go through a SHA-NI transform, everything else through the
// portable scalar path. Both produce identical digests — a crypto_test
// holds them against each other over random inputs of every length
// class, and the FIPS known-answer vectors pin the dispatched result.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace cia::crypto {

constexpr std::size_t kSha256Size = 32;
using Digest = std::array<std::uint8_t, kSha256Size>;

/// Streaming SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }
  void update(std::string_view data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Finalize and return the digest. The context must not be reused
  /// after finish() until reset() is called.
  Digest finish();

  /// Return the context to its freshly-constructed state so it can hash
  /// another message. Appraisal loops hash hundreds of thousands of
  /// records per round; reset() lets them reuse one context instead of
  /// constructing a new one per record.
  void reset();

 private:
  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot digest of a byte buffer.
Digest sha256(const Bytes& data);

/// One-shot digest of a string.
Digest sha256(const std::string& data);

/// One-shot digest of two concatenated segments, sha256(a || b), with no
/// heap allocation. This is the shape of every record on the appraisal
/// hot path: the ima-ng template hash is sha256(file_hash || path) and a
/// PCR fold step is sha256(pcr || template_hash).
Digest sha256_pair(const std::uint8_t* a, std::size_t a_len,
                   const std::uint8_t* b, std::size_t b_len);

/// The ima-ng template hash of a measurement record:
/// sha256(file_hash || path). Allocation-free — use this instead of
/// `ctx.update(digest_bytes(file_hash))`, which heap-allocates a Bytes
/// copy of the digest per record.
Digest template_hash_of(const Digest& file_hash, std::string_view path);

/// One TPM extend / measurement-list replay step: sha256(acc || t).
Digest pcr_fold(const Digest& acc, const Digest& t);

/// A two-segment hashing record for sha256_batch. `b` may be empty.
struct HashInput {
  const std::uint8_t* a = nullptr;
  std::size_t a_len = 0;
  const std::uint8_t* b = nullptr;
  std::size_t b_len = 0;
};

/// Hash `n` two-segment records into `out[0..n)` with no per-record
/// allocation. Record i's digest is sha256(in[i].a || in[i].b) — n
/// independent hashes. On hosts with the SHA extensions the records are
/// driven through two interleaved SHA-NI streams; with AVX2 only,
/// through an 8-wide transposed kernel; otherwise through the scalar
/// loop. All backends produce identical digests for identical inputs —
/// the multi-lane paths are a throughput optimization, not a semantic
/// one.
void sha256_batch(const HashInput* in, std::size_t n, Digest* out);

/// Digest as Bytes.
Bytes digest_bytes(const Digest& d);

/// Lowercase hex of a digest.
std::string digest_hex(const Digest& d);

/// An all-zero digest (e.g., initial PCR value).
Digest zero_digest();

/// Selectable SHA-256 backends. kAuto resolves to the best supported
/// lane implementation (shani2 > avx2 > scalar). kShaNi is the
/// single-stream SHA-NI loop (the pre-multi-lane batch shape, kept so
/// benches can isolate the lane win from the instruction win).
enum class Sha256Backend { kAuto = 0, kScalar, kShaNi, kShaNi2, kAvx2 };

/// True when `b` can run on this host (kAuto and kScalar always can).
bool sha256_backend_supported(Sha256Backend b);

/// Pin the backend for the whole process (benches, differential tests,
/// the CI forced-scalar job). Overrides the CIA_SHA256_BACKEND
/// environment variable; kAuto clears the pin. Returns false — and
/// changes nothing — when the backend is not supported on this host.
bool force_backend(Sha256Backend b);

/// The backend every hash call is currently dispatched to, after
/// resolving the force_backend() pin, then CIA_SHA256_BACKEND, then
/// hardware auto-detection.
Sha256Backend sha256_active_backend();

/// Name of the active backend ("scalar", "shani", "shani2", "avx2") for
/// bench labelling and log lines.
const char* sha256_backend_name();

/// True when the active backend uses hardware hash/vector instructions
/// (i.e. resolves to anything other than scalar). Under a forced or
/// env-pinned scalar backend this reports false, so bench baselines
/// recorded on accelerated hosts are not compared against scalar runs.
bool sha256_hw_accelerated();

namespace detail {
/// Portable compression over `blocks` consecutive 64-byte blocks.
void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t* data,
                            std::size_t blocks);
/// Dispatched compression (SHA-NI when available, else scalar). Exposed
/// so tests can hold the two backends against each other directly.
void sha256_compress(std::uint32_t state[8], const std::uint8_t* data,
                     std::size_t blocks);
}  // namespace detail

}  // namespace cia::crypto
