#include "crypto/hmac.hpp"

namespace cia::crypto {

Digest hmac_sha256(const Bytes& key, const Bytes& data) {
  constexpr std::size_t kBlock = 64;
  Bytes k = key;
  if (k.size() > kBlock) {
    k = digest_bytes(sha256(k));
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Digest kdf(const Bytes& secret, const std::string& label) {
  return hmac_sha256(secret, to_bytes("cia-kdf:" + label));
}

}  // namespace cia::crypto
