// secp256k1 elliptic-curve group arithmetic (y^2 = x^3 + 7 over F_p).
//
// Provides the group operations needed by Schnorr signatures: scalar
// multiplication, point addition, encoding. Jacobian coordinates are used
// internally to avoid per-operation field inversions.
#pragma once

#include <optional>

#include "crypto/u256.hpp"

namespace cia::crypto {

/// Field prime p = 2^256 - 2^32 - 977.
const SpecialModulus& field_modulus();

/// Group order n.
const SpecialModulus& order_modulus();

/// An affine point; infinity is represented separately.
struct Point {
  U256 x;
  U256 y;
  bool infinity = true;

  static Point make_infinity() { return Point{}; }
  bool operator==(const Point&) const = default;
};

/// Generator point G.
const Point& generator();

/// Is `pt` on the curve (or infinity)?
bool on_curve(const Point& pt);

/// Point addition (complete, handles doubling and infinity).
Point add(const Point& a, const Point& b);

/// Scalar multiplication k * P (double-and-add).
Point scalar_mul(const U256& k, const Point& p);

/// k * G.
Point scalar_mul_base(const U256& k);

/// Negate a point.
Point negate(const Point& p);

/// Encode a point as 64 bytes (x || y big-endian); infinity is all-zero.
Bytes encode_point(const Point& p);

/// Decode 64-byte encoding; validates curve membership.
std::optional<Point> decode_point(const Bytes& b);

}  // namespace cia::crypto
