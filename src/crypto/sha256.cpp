#include "crypto/sha256.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "crypto/sha256_internal.hpp"

#if CIA_SHA256_X86
#include <immintrin.h>
#endif

namespace cia::crypto {

namespace {

using detail::kSha256Init;
using detail::kSha256K;

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

#if CIA_SHA256_X86

// SHA-NI transform (the standard Intel/Walton sequence). State lives in
// two xmm registers in the ABEF/CDGH lane order the sha256rnds2
// instruction expects; the message schedule is computed four words at a
// time with sha256msg1/msg2.
__attribute__((target("sha,sse4.1,ssse3")))
void sha256_compress_sha_ni(std::uint32_t state[8], const std::uint8_t* data,
                            std::size_t blocks) {
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);               // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);         // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);      // CDGH

  while (blocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    __m128i msg;
    // Rounds 0-15: straight message words.
    for (int g = 0; g < 4; ++g) {
      msgs[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)),
          kSwap);
      msg = _mm_add_epi32(
          msgs[g],
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    }
    // Rounds 16-63: W[4g..4g+3] from the schedule recurrence,
    //   msg2(msg1(W[g-4], W[g-3]) + alignr(W[g-1], W[g-2], 4), W[g-1])
    // where W[g-4] is the register slot being replaced.
    for (int g = 4; g < 16; ++g) {
      const __m128i w1 = msgs[(g + 3) % 4];  // W of group g-1
      const __m128i w2 = msgs[(g + 2) % 4];  // W of group g-2
      const __m128i w3 = msgs[(g + 1) % 4];  // W of group g-3
      msgs[g % 4] = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(msgs[g % 4], w3),
                        _mm_alignr_epi8(w1, w2, 4)),
          w1);
      msg = _mm_add_epi32(
          msgs[g % 4],
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
    --blocks;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool detect_sha_ni() { return __builtin_cpu_supports("sha") != 0; }
bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool detect_sha_ni() { return false; }
bool detect_avx2() { return false; }

#endif  // CIA_SHA256_X86

const bool kHaveShaNi = detect_sha_ni();
const bool kHaveAvx2 = detect_avx2();

// ---------------------------------------------------------------------------
// Backend resolution: force_backend() pin > CIA_SHA256_BACKEND > best
// supported hardware. The pin is a relaxed atomic — the only writers are
// benches and tests pinning a lane implementation before a run.

std::atomic<int> g_forced{static_cast<int>(Sha256Backend::kAuto)};

Sha256Backend best_backend() {
  if (kHaveShaNi) return Sha256Backend::kShaNi2;
  if (kHaveAvx2) return Sha256Backend::kAvx2;
  return Sha256Backend::kScalar;
}

Sha256Backend parse_backend_env() {
  const char* v = std::getenv("CIA_SHA256_BACKEND");
  if (v == nullptr) return Sha256Backend::kAuto;
  const std::string_view s(v);
  Sha256Backend b = Sha256Backend::kAuto;
  if (s == "scalar") b = Sha256Backend::kScalar;
  else if (s == "shani") b = Sha256Backend::kShaNi;
  else if (s == "shani2") b = Sha256Backend::kShaNi2;
  else if (s == "avx2") b = Sha256Backend::kAvx2;
  // Unknown or unsupported values fall back to auto instead of aborting:
  // a CI job pinning avx2 must not take down a host without it.
  return sha256_backend_supported(b) ? b : Sha256Backend::kAuto;
}

Sha256Backend resolve_backend() {
  const auto forced = static_cast<Sha256Backend>(
      g_forced.load(std::memory_order_relaxed));
  if (forced != Sha256Backend::kAuto) return forced;
  static const Sha256Backend env = parse_backend_env();
  if (env != Sha256Backend::kAuto) return env;
  return best_backend();
}

bool use_sha_ni_compress() {
  return kHaveShaNi && resolve_backend() != Sha256Backend::kScalar;
}

}  // namespace

bool sha256_backend_supported(Sha256Backend b) {
  switch (b) {
    case Sha256Backend::kAuto:
    case Sha256Backend::kScalar:
      return true;
    case Sha256Backend::kShaNi:
    case Sha256Backend::kShaNi2:
      return kHaveShaNi;
    case Sha256Backend::kAvx2:
      return kHaveAvx2;
  }
  return false;
}

bool force_backend(Sha256Backend b) {
  if (!sha256_backend_supported(b)) return false;
  g_forced.store(static_cast<int>(b), std::memory_order_relaxed);
  return true;
}

Sha256Backend sha256_active_backend() { return resolve_backend(); }

const char* sha256_backend_name() {
  switch (resolve_backend()) {
    case Sha256Backend::kScalar: return "scalar";
    case Sha256Backend::kShaNi: return "shani";
    case Sha256Backend::kShaNi2: return "shani2";
    case Sha256Backend::kAvx2: return "avx2";
    case Sha256Backend::kAuto: break;  // resolve_backend never returns kAuto
  }
  return "scalar";
}

bool sha256_hw_accelerated() {
  return resolve_backend() != Sha256Backend::kScalar;
}

namespace detail {

void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t* data,
                            std::size_t blocks) {
  for (; blocks > 0; --blocks, data += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(data[i * 4]) << 24) |
             (static_cast<std::uint32_t>(data[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(data[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(data[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

void sha256_compress(std::uint32_t state[8], const std::uint8_t* data,
                     std::size_t blocks) {
#if CIA_SHA256_X86
  if (use_sha_ni_compress()) {
    sha256_compress_sha_ni(state, data, blocks);
    return;
  }
#endif
  sha256_compress_scalar(state, data, blocks);
}

}  // namespace detail

Sha256::Sha256() { std::memcpy(state_, kSha256Init, sizeof(state_)); }

void Sha256::reset() {
  std::memcpy(state_, kSha256Init, sizeof(state_));
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::update(const std::uint8_t* data, std::size_t len) {
  total_len_ += len;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      detail::sha256_compress(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (len >= 64) {
    const std::size_t blocks = len / 64;
    detail::sha256_compress(state_, data, blocks);
    data += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Digest Sha256::finish() {
  // Pad in place: 0x80, zeros to the next 56-byte boundary, then the
  // big-endian bit length — at most two compressions, no byte-at-a-time
  // re-entry into update().
  const std::uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, sizeof(buffer_) - buffer_len_);
    detail::sha256_compress(state_, buffer_, 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  detail::sha256_compress(state_, buffer_, 1);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(const Bytes& data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(const std::string& data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256_pair(const std::uint8_t* a, std::size_t a_len,
                   const std::uint8_t* b, std::size_t b_len) {
  Sha256 ctx;
  ctx.update(a, a_len);
  ctx.update(b, b_len);
  return ctx.finish();
}

Digest template_hash_of(const Digest& file_hash, std::string_view path) {
  return sha256_pair(file_hash.data(), file_hash.size(),
                     reinterpret_cast<const std::uint8_t*>(path.data()),
                     path.size());
}

Digest pcr_fold(const Digest& acc, const Digest& t) {
  Digest out;
#if CIA_SHA256_X86
  if (use_sha_ni_compress()) {
    detail::pcr_fold_shani(acc.data(), t.data(), out.data());
    return out;
  }
#endif
  detail::pcr_fold_scalar_fused(acc.data(), t.data(), out.data());
  return out;
}

// ---------------------------------------------------------------------------
// Batch harness. The lane kernels want `lane_width` equal-length padded
// streams; real batches are neither equal-length nor lane-aligned. The
// harness bridges the gap:
//
//  - every message up to kMaxLaneBlocks padded blocks is padded into a
//    per-lane scratch buffer and bucketed by block count; a bucket
//    flushes through the kernel whenever it holds lane_width messages,
//  - a partial bucket at the end flushes with its remaining lane slots
//    aliased to the first message (one kernel pass costs about one
//    single-stream pass over the same block count, so aliasing beats
//    falling back as soon as two real lanes are present — and ties when
//    there is one),
//  - longer single-segment pairs (policy digests) stream through the
//    2-lane SHA-NI kernel directly from the source bytes for their
//    common full blocks, finishing tails per lane,
//  - everything else (long two-segment messages, non-lane backends)
//    takes the retained single-stream loop.
//
// Every route computes real SHA-256, so digests are identical no matter
// how a message was grouped.

namespace {

constexpr std::size_t kMaxLaneBlocks = 8;  // payloads up to 8*64-9 = 503 bytes

std::size_t padded_blocks(const HashInput& in) {
  return (in.a_len + in.b_len + 9 + 63) / 64;
}

// Assemble in's fully padded message (a || b || 0x80 || zeros || bitlen)
// into dst. dst must hold padded_blocks(in) * 64 bytes.
void pad_message(const HashInput& in, std::uint8_t* dst) {
  const std::size_t total = in.a_len + in.b_len;
  if (in.a_len > 0) std::memcpy(dst, in.a, in.a_len);
  if (in.b_len > 0) std::memcpy(dst + in.a_len, in.b, in.b_len);
  const std::size_t padded = padded_blocks(in) * 64;
  dst[total] = 0x80;
  std::memset(dst + total + 1, 0, padded - total - 1 - 8);
  const std::uint64_t bit_len = static_cast<std::uint64_t>(total) * 8;
  for (int i = 0; i < 8; ++i) {
    dst[padded - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
}

void serialize_state(const std::uint32_t state[8], Digest& out) {
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state[i]);
  }
}

void hash_one(const HashInput& in, Digest& out) {
  Sha256 ctx;
  if (in.a_len > 0) ctx.update(in.a, in.a_len);
  if (in.b_len > 0) ctx.update(in.b, in.b_len);
  out = ctx.finish();
}

#if CIA_SHA256_X86

// Finish one lane after a multi-lane body pass: any remaining full
// blocks, then the padded tail, from a state mid-stream.
void finish_lane(std::uint32_t state[8], const std::uint8_t* rest,
                 std::size_t rest_len, std::uint64_t total_len, Digest& out) {
  const std::size_t blocks = rest_len / 64;
  if (blocks > 0) {
    detail::sha256_compress(state, rest, blocks);
    rest += blocks * 64;
    rest_len -= blocks * 64;
  }
  std::uint8_t buf[128];
  std::memcpy(buf, rest, rest_len);
  buf[rest_len] = 0x80;
  const std::size_t padded = rest_len + 9 <= 64 ? 64 : 128;
  std::memset(buf + rest_len + 1, 0, padded - rest_len - 1 - 8);
  const std::uint64_t bit_len = total_len * 8;
  for (int i = 0; i < 8; ++i) {
    buf[padded - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  detail::sha256_compress(state, buf, padded / 64);
  serialize_state(state, out);
}

void run_group_x2(const HashInput* in, Digest* out, const std::size_t idx[2],
                  std::size_t blocks) {
  alignas(64) std::uint8_t lanes[2][kMaxLaneBlocks * 64];
  std::uint32_t st[2][8];
  for (int l = 0; l < 2; ++l) {
    pad_message(in[idx[l]], lanes[l]);
    std::memcpy(st[l], kSha256Init, sizeof(st[l]));
  }
  detail::sha256_ni_x2(st, lanes[0], lanes[1], blocks);
  for (int l = 0; l < 2; ++l) serialize_state(st[l], out[idx[l]]);
}

void run_group_x8(const HashInput* in, Digest* out, const std::size_t idx[8],
                  std::size_t blocks) {
  alignas(64) std::uint8_t lanes[8][kMaxLaneBlocks * 64];
  const std::uint8_t* ptrs[8];
  std::uint32_t st[8][8];
  for (int l = 0; l < 8; ++l) {
    pad_message(in[idx[l]], lanes[l]);
    ptrs[l] = lanes[l];
    std::memcpy(st[l], kSha256Init, sizeof(st[l]));
  }
  detail::sha256_avx2_x8(st, ptrs, blocks);
  for (int l = 0; l < 8; ++l) serialize_state(st[l], out[idx[l]]);
}

// Two long single-segment messages side by side: the 2-lane kernel
// reads their common full blocks straight from the source (no copy),
// then each lane finishes its own remainder.
void run_long_x2(const HashInput* in, Digest* out, const std::size_t idx[2]) {
  const std::uint8_t* p[2];
  std::size_t len[2];
  for (int l = 0; l < 2; ++l) {
    const HashInput& m = in[idx[l]];
    p[l] = m.a_len > 0 ? m.a : m.b;
    len[l] = m.a_len > 0 ? m.a_len : m.b_len;
  }
  const std::size_t common = std::min(len[0] / 64, len[1] / 64);
  std::uint32_t st[2][8];
  std::memcpy(st[0], kSha256Init, sizeof(st[0]));
  std::memcpy(st[1], kSha256Init, sizeof(st[1]));
  if (common > 0) detail::sha256_ni_x2(st, p[0], p[1], common);
  for (int l = 0; l < 2; ++l) {
    finish_lane(st[l], p[l] + common * 64, len[l] - common * 64, len[l],
                out[idx[l]]);
  }
}

template <std::size_t W>
void batch_lanes(const HashInput* in, std::size_t n, Digest* out,
                 bool pair_long) {
  std::size_t pend[kMaxLaneBlocks + 1][W];
  std::size_t pend_n[kMaxLaneBlocks + 1] = {};
  std::size_t long_pend[2];
  std::size_t long_n = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t blocks = padded_blocks(in[i]);
    if (blocks <= kMaxLaneBlocks) {
      std::size_t& c = pend_n[blocks];
      pend[blocks][c++] = i;
      if (c == W) {
        if constexpr (W == 2) run_group_x2(in, out, pend[blocks], blocks);
        else run_group_x8(in, out, pend[blocks], blocks);
        c = 0;
      }
    } else if (pair_long && (in[i].a_len == 0 || in[i].b_len == 0)) {
      long_pend[long_n++] = i;
      if (long_n == 2) {
        run_long_x2(in, out, long_pend);
        long_n = 0;
      }
    } else {
      hash_one(in[i], out[i]);
    }
  }

  // Partial buckets: alias the unused lanes to the first message. The
  // duplicate lanes recompute (and re-store) the same digest, which is
  // harmless and cheaper than branching inside the kernels.
  for (std::size_t blocks = 1; blocks <= kMaxLaneBlocks; ++blocks) {
    const std::size_t c = pend_n[blocks];
    if (c == 0) continue;
    for (std::size_t l = c; l < W; ++l) pend[blocks][l] = pend[blocks][0];
    if constexpr (W == 2) run_group_x2(in, out, pend[blocks], blocks);
    else run_group_x8(in, out, pend[blocks], blocks);
  }
  if (long_n == 1) {
    long_pend[1] = long_pend[0];
    run_long_x2(in, out, long_pend);
  }
}

#endif  // CIA_SHA256_X86

}  // namespace

void sha256_batch(const HashInput* in, std::size_t n, Digest* out) {
  if (n == 0) return;
#if CIA_SHA256_X86
  const Sha256Backend backend = resolve_backend();
  if (backend == Sha256Backend::kShaNi2 && kHaveShaNi) {
    batch_lanes<2>(in, n, out, /*pair_long=*/true);
    return;
  }
  if (backend == Sha256Backend::kAvx2 && kHaveAvx2) {
    batch_lanes<8>(in, n, out, /*pair_long=*/kHaveShaNi);
    return;
  }
#endif
  // Retained single-stream loop: the scalar backend, and the `shani`
  // backend that runs each message through the (dispatched) streaming
  // context exactly as the pre-lane code did.
  Sha256 ctx;
  for (std::size_t i = 0; i < n; ++i) {
    ctx.reset();
    if (in[i].a_len > 0) ctx.update(in[i].a, in[i].a_len);
    if (in[i].b_len > 0) ctx.update(in[i].b, in[i].b_len);
    out[i] = ctx.finish();
  }
}

Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

std::string digest_hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

Digest zero_digest() {
  Digest d{};
  return d;
}

}  // namespace cia::crypto
