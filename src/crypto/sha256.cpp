#include "crypto/sha256.hpp"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CIA_SHA256_HAVE_SHA_NI 1
#include <immintrin.h>
#endif

namespace cia::crypto {

namespace {

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

#if CIA_SHA256_HAVE_SHA_NI

// SHA-NI transform (the standard Intel/Walton sequence). State lives in
// two xmm registers in the ABEF/CDGH lane order the sha256rnds2
// instruction expects; the message schedule is computed four words at a
// time with sha256msg1/msg2.
__attribute__((target("sha,sse4.1,ssse3")))
void sha256_compress_sha_ni(std::uint32_t state[8], const std::uint8_t* data,
                            std::size_t blocks) {
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);               // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);         // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);      // CDGH

  while (blocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    __m128i msg;
    // Rounds 0-15: straight message words.
    for (int g = 0; g < 4; ++g) {
      msgs[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)),
          kSwap);
      msg = _mm_add_epi32(
          msgs[g], _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    }
    // Rounds 16-63: W[4g..4g+3] from the schedule recurrence,
    //   msg2(msg1(W[g-4], W[g-3]) + alignr(W[g-1], W[g-2], 4), W[g-1])
    // where W[g-4] is the register slot being replaced.
    for (int g = 4; g < 16; ++g) {
      const __m128i w1 = msgs[(g + 3) % 4];  // W of group g-1
      const __m128i w2 = msgs[(g + 2) % 4];  // W of group g-2
      const __m128i w3 = msgs[(g + 1) % 4];  // W of group g-3
      msgs[g % 4] = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(msgs[g % 4], w3),
                        _mm_alignr_epi8(w1, w2, 4)),
          w1);
      msg = _mm_add_epi32(
          msgs[g % 4],
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
    --blocks;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool detect_sha_ni() { return __builtin_cpu_supports("sha") != 0; }

#else

bool detect_sha_ni() { return false; }

#endif  // CIA_SHA256_HAVE_SHA_NI

const bool kUseShaNi = detect_sha_ni();

}  // namespace

namespace detail {

void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t* data,
                            std::size_t blocks) {
  for (; blocks > 0; --blocks, data += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(data[i * 4]) << 24) |
             (static_cast<std::uint32_t>(data[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(data[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(data[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

void sha256_compress(std::uint32_t state[8], const std::uint8_t* data,
                     std::size_t blocks) {
#if CIA_SHA256_HAVE_SHA_NI
  if (kUseShaNi) {
    sha256_compress_sha_ni(state, data, blocks);
    return;
  }
#endif
  sha256_compress_scalar(state, data, blocks);
}

}  // namespace detail

bool sha256_hw_accelerated() { return kUseShaNi; }

Sha256::Sha256() { std::memcpy(state_, kInit, sizeof(state_)); }

void Sha256::reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::update(const std::uint8_t* data, std::size_t len) {
  total_len_ += len;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      detail::sha256_compress(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (len >= 64) {
    const std::size_t blocks = len / 64;
    detail::sha256_compress(state_, data, blocks);
    data += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Digest Sha256::finish() {
  // Pad in place: 0x80, zeros to the next 56-byte boundary, then the
  // big-endian bit length — at most two compressions, no byte-at-a-time
  // re-entry into update().
  const std::uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, sizeof(buffer_) - buffer_len_);
    detail::sha256_compress(state_, buffer_, 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  detail::sha256_compress(state_, buffer_, 1);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(const Bytes& data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(const std::string& data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256_pair(const std::uint8_t* a, std::size_t a_len,
                   const std::uint8_t* b, std::size_t b_len) {
  Sha256 ctx;
  ctx.update(a, a_len);
  ctx.update(b, b_len);
  return ctx.finish();
}

Digest template_hash_of(const Digest& file_hash, std::string_view path) {
  return sha256_pair(file_hash.data(), file_hash.size(),
                     reinterpret_cast<const std::uint8_t*>(path.data()),
                     path.size());
}

Digest pcr_fold(const Digest& acc, const Digest& t) {
  return sha256_pair(acc.data(), acc.size(), t.data(), t.size());
}

void sha256_batch(const HashInput* in, std::size_t n, Digest* out) {
  Sha256 ctx;
  for (std::size_t i = 0; i < n; ++i) {
    ctx.reset();
    if (in[i].a_len > 0) ctx.update(in[i].a, in[i].a_len);
    if (in[i].b_len > 0) ctx.update(in[i].b, in[i].b_len);
    out[i] = ctx.finish();
  }
}

Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

std::string digest_hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

Digest zero_digest() {
  Digest d{};
  return d;
}

}  // namespace cia::crypto
