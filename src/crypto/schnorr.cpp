#include "crypto/schnorr.hpp"

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace cia::crypto {

namespace {

/// Hash arbitrary bytes onto the scalar field [1, n-1]. Rejection is
/// unnecessary in practice: a reduction bias of ~2^-128 is irrelevant for
/// the simulation, but zero is remapped to one to keep scalars valid.
U256 hash_to_scalar(const Bytes& data) {
  const Digest d = sha256(data);
  U256 v = U256::from_be_bytes(digest_bytes(d));
  v = reduce(v, order_modulus());
  if (v.is_zero()) v = U256::one();
  return v;
}

U256 challenge(const Point& r, const PublicKey& pub, const Bytes& message) {
  Bytes buf = encode_point(r);
  append(buf, pub.encode());
  append(buf, message);
  return hash_to_scalar(buf);
}

}  // namespace

std::optional<PublicKey> PublicKey::decode(const Bytes& b) {
  auto pt = decode_point(b);
  if (!pt || pt->infinity) return std::nullopt;
  return PublicKey{*pt};
}

Bytes Signature::encode() const {
  Bytes out = encode_point(r);
  append(out, s.to_be_bytes());
  return out;
}

std::optional<Signature> Signature::decode(const Bytes& b) {
  if (b.size() != 96) return std::nullopt;
  auto r = decode_point(Bytes(b.begin(), b.begin() + 64));
  if (!r) return std::nullopt;
  Signature sig;
  sig.r = *r;
  sig.s = U256::from_be_bytes(Bytes(b.begin() + 64, b.end()));
  return sig;
}

KeyPair derive_keypair(const Bytes& seed, const std::string& label) {
  const Digest d = kdf(seed, "keypair:" + label);
  U256 secret = U256::from_be_bytes(digest_bytes(d));
  secret = reduce(secret, order_modulus());
  if (secret.is_zero()) secret = U256::one();
  return KeyPair{secret, PublicKey{scalar_mul_base(secret)}};
}

Signature sign(const KeyPair& key, const Bytes& message) {
  // Deterministic nonce: HMAC(secret, message).
  const Digest nd = hmac_sha256(key.secret.to_be_bytes(), message);
  U256 k = U256::from_be_bytes(digest_bytes(nd));
  k = reduce(k, order_modulus());
  if (k.is_zero()) k = U256::one();

  const Point r = scalar_mul_base(k);
  const U256 e = challenge(r, key.pub, message);
  const auto& n = order_modulus();
  const U256 s = add_mod(k, mul_mod(e, key.secret, n), n);
  return Signature{r, s};
}

bool verify(const PublicKey& pub, const Bytes& message, const Signature& sig) {
  if (sig.r.infinity || pub.point.infinity) return false;
  if (!on_curve(sig.r) || !on_curve(pub.point)) return false;
  const U256 e = challenge(sig.r, pub, message);
  // s*G == R + e*P
  const Point lhs = scalar_mul_base(sig.s);
  const Point rhs = add(sig.r, scalar_mul(e, pub.point));
  return lhs == rhs;
}

}  // namespace cia::crypto
