// Minimal certificates for the TPM trust chain.
//
// Real TPMs carry X.509 endorsement-key certificates signed by the TPM
// manufacturer; the Keylime registrar validates that chain before trusting
// an agent's TPM. We model the same trust relationship with a compact
// binary certificate format (subject, key, issuer, validity, signature).
#pragma once

#include <optional>
#include <string>

#include "common/sim_clock.hpp"
#include "crypto/schnorr.hpp"

namespace cia::crypto {

/// A signed binding of a subject name to a public key.
struct Certificate {
  std::string subject;     // e.g. "tpm:ek:<device-id>"
  std::string issuer;      // e.g. "manufacturer:Infineon-sim"
  PublicKey subject_key;
  SimTime not_before = 0;
  SimTime not_after = 0;
  Signature signature;     // over the to-be-signed encoding

  /// Bytes covered by the signature.
  Bytes tbs_encode() const;

  /// Full serialized form.
  Bytes encode() const;
  static std::optional<Certificate> decode(const Bytes& b);
};

/// A certificate authority (used for the TPM "manufacturer").
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, const Bytes& seed);

  const std::string& name() const { return name_; }
  const PublicKey& public_key() const { return key_.pub; }

  /// Issue a certificate for `subject_key`.
  Certificate issue(const std::string& subject, const PublicKey& subject_key,
                    SimTime not_before, SimTime not_after) const;

 private:
  std::string name_;
  KeyPair key_;
};

/// Verify a certificate against its issuer's public key and current time.
bool verify_certificate(const Certificate& cert, const PublicKey& issuer_key,
                        SimTime now);

}  // namespace cia::crypto
