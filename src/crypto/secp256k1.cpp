#include "crypto/secp256k1.hpp"

#include <vector>

namespace cia::crypto {

namespace {

// Jacobian coordinates: (X, Y, Z) represents affine (X/Z^2, Y/Z^3).
struct Jacobian {
  U256 x;
  U256 y;
  U256 z;
  bool infinity = true;
};

Jacobian to_jacobian(const Point& p) {
  if (p.infinity) return Jacobian{};
  return Jacobian{p.x, p.y, U256::one(), false};
}

Point to_affine(const Jacobian& j) {
  if (j.infinity) return Point::make_infinity();
  const auto& fp = field_modulus();
  const U256 zinv = inv_mod(j.z, fp);
  const U256 zinv2 = mul_mod(zinv, zinv, fp);
  const U256 zinv3 = mul_mod(zinv2, zinv, fp);
  return Point{mul_mod(j.x, zinv2, fp), mul_mod(j.y, zinv3, fp), false};
}

Jacobian jacobian_double(const Jacobian& p) {
  if (p.infinity || p.y.is_zero()) return Jacobian{};
  const auto& fp = field_modulus();
  // Standard dbl-2007-bl-ish formulas for a = 0.
  const U256 a = mul_mod(p.x, p.x, fp);                 // X^2
  const U256 b = mul_mod(p.y, p.y, fp);                 // Y^2
  const U256 c = mul_mod(b, b, fp);                     // Y^4
  U256 d = mul_mod(p.x, b, fp);                         // X*Y^2
  d = add_mod(d, d, fp);
  d = add_mod(d, d, fp);                                // 4*X*Y^2
  U256 e = add_mod(a, add_mod(a, a, fp), fp);           // 3*X^2
  const U256 f = mul_mod(e, e, fp);                     // e^2
  U256 x3 = sub_mod(f, add_mod(d, d, fp), fp);          // f - 2d
  U256 c8 = add_mod(c, c, fp);
  c8 = add_mod(c8, c8, fp);
  c8 = add_mod(c8, c8, fp);                             // 8*Y^4
  const U256 y3 = sub_mod(mul_mod(e, sub_mod(d, x3, fp), fp), c8, fp);
  const U256 z3 = add_mod(mul_mod(p.y, p.z, fp), mul_mod(p.y, p.z, fp), fp);
  return Jacobian{x3, y3, z3, false};
}

Jacobian jacobian_add(const Jacobian& p, const Jacobian& q) {
  if (p.infinity) return q;
  if (q.infinity) return p;
  const auto& fp = field_modulus();
  const U256 z1z1 = mul_mod(p.z, p.z, fp);
  const U256 z2z2 = mul_mod(q.z, q.z, fp);
  const U256 u1 = mul_mod(p.x, z2z2, fp);
  const U256 u2 = mul_mod(q.x, z1z1, fp);
  const U256 s1 = mul_mod(p.y, mul_mod(z2z2, q.z, fp), fp);
  const U256 s2 = mul_mod(q.y, mul_mod(z1z1, p.z, fp), fp);
  if (u1 == u2) {
    if (s1 == s2) return jacobian_double(p);
    return Jacobian{};  // P + (-P) = infinity
  }
  const U256 h = sub_mod(u2, u1, fp);
  const U256 hh = mul_mod(h, h, fp);
  const U256 hhh = mul_mod(hh, h, fp);
  const U256 r = sub_mod(s2, s1, fp);
  const U256 v = mul_mod(u1, hh, fp);
  U256 x3 = sub_mod(mul_mod(r, r, fp), hhh, fp);
  x3 = sub_mod(x3, add_mod(v, v, fp), fp);
  const U256 y3 =
      sub_mod(mul_mod(r, sub_mod(v, x3, fp), fp), mul_mod(s1, hhh, fp), fp);
  const U256 z3 = mul_mod(mul_mod(p.z, q.z, fp), h, fp);
  return Jacobian{x3, y3, z3, false};
}

}  // namespace

const SpecialModulus& field_modulus() {
  static const SpecialModulus m = SpecialModulus::make(U256::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
  return m;
}

const SpecialModulus& order_modulus() {
  static const SpecialModulus m = SpecialModulus::make(U256::from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"));
  return m;
}

const Point& generator() {
  static const Point g{
      U256::from_hex(
          "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
      U256::from_hex(
          "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
      false};
  return g;
}

bool on_curve(const Point& pt) {
  if (pt.infinity) return true;
  const auto& fp = field_modulus();
  const U256 y2 = mul_mod(pt.y, pt.y, fp);
  const U256 x3 =
      add_mod(mul_mod(mul_mod(pt.x, pt.x, fp), pt.x, fp), U256::from_u64(7), fp);
  return y2 == x3;
}

Point add(const Point& a, const Point& b) {
  return to_affine(jacobian_add(to_jacobian(a), to_jacobian(b)));
}

Point scalar_mul(const U256& k, const Point& p) {
  Jacobian result;  // infinity
  Jacobian base = to_jacobian(p);
  for (int limb_idx = 0; limb_idx < 4; ++limb_idx) {
    std::uint64_t bits = k.limb[static_cast<std::size_t>(limb_idx)];
    for (int bit = 0; bit < 64; ++bit) {
      if (bits & 1) result = jacobian_add(result, base);
      base = jacobian_double(base);
      bits >>= 1;
    }
  }
  return to_affine(result);
}

Point scalar_mul_base(const U256& k) {
  // Fixed-base optimization: the doubling chain of G never changes, so it
  // is computed once and every base multiplication reduces to ~128 point
  // additions. Quotes and signature verifications are base-multiplication
  // heavy, and this roughly triples verifier throughput.
  static const std::vector<Jacobian> kDoublings = [] {
    std::vector<Jacobian> table;
    table.reserve(256);
    Jacobian g = to_jacobian(generator());
    for (int i = 0; i < 256; ++i) {
      table.push_back(g);
      g = jacobian_double(g);
    }
    return table;
  }();

  Jacobian result;  // infinity
  for (int limb_idx = 0; limb_idx < 4; ++limb_idx) {
    std::uint64_t bits = k.limb[static_cast<std::size_t>(limb_idx)];
    for (int bit = 0; bit < 64; ++bit) {
      if (bits & 1) {
        result = jacobian_add(
            result, kDoublings[static_cast<std::size_t>(limb_idx * 64 + bit)]);
      }
      bits >>= 1;
    }
  }
  return to_affine(result);
}

Point negate(const Point& p) {
  if (p.infinity) return p;
  const auto& fp = field_modulus();
  return Point{p.x, sub_mod(U256::zero(), p.y, fp), false};
}

Bytes encode_point(const Point& p) {
  if (p.infinity) return Bytes(64, 0);
  Bytes out = p.x.to_be_bytes();
  const Bytes y = p.y.to_be_bytes();
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<Point> decode_point(const Bytes& b) {
  if (b.size() != 64) return std::nullopt;
  bool all_zero = true;
  for (auto v : b) {
    if (v != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return Point::make_infinity();
  Point p;
  p.x = U256::from_be_bytes(Bytes(b.begin(), b.begin() + 32));
  p.y = U256::from_be_bytes(Bytes(b.begin() + 32, b.end()));
  p.infinity = false;
  if (!on_curve(p)) return std::nullopt;
  return p;
}

}  // namespace cia::crypto
