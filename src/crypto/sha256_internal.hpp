// Internals shared between sha256.cpp (streaming context, dispatch,
// batch harness) and sha256_lanes.cpp (multi-buffer kernels): the FIPS
// round constants, the initial state, the precomputed schedule of the
// constant padding block used by the fused two-block pcr_fold, and the
// lane-kernel entry points.
//
// Not installed / not part of the public surface — include sha256.hpp
// from everywhere else.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CIA_SHA256_X86 1
#else
#define CIA_SHA256_X86 0
#endif

namespace cia::crypto::detail {

alignas(64) inline constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline constexpr std::uint32_t kSha256Init[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t rotr_c(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

// A PCR fold hashes exactly 64 bytes (acc || template_hash), so its
// second compression block is always the same padding block: 0x80, 53
// zero bytes, and the bit length 512. The whole expanded message
// schedule of that block — already summed with the round constants — is
// a compile-time constant. The fused fold kernels replay it with zero
// schedule work at run time.
constexpr std::array<std::uint32_t, 64> make_fold_pad_wk() {
  std::array<std::uint32_t, 64> w{};
  w[0] = 0x80000000u;
  w[15] = 512u;  // bit length of a 64-byte message
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr_c(w[i - 15], 7) ^ rotr_c(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr_c(w[i - 2], 17) ^ rotr_c(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  for (int i = 0; i < 64; ++i) w[i] += kSha256K[i];
  return w;
}

alignas(64) inline constexpr std::array<std::uint32_t, 64> kFoldPadWK =
    make_fold_pad_wk();

#if CIA_SHA256_X86
/// Two interleaved SHA-NI streams: advances both lanes `blocks` 64-byte
/// blocks from independent pointers. Interleaving hides the 4-cycle
/// sha256rnds2 latency that a single stream stalls on. Caller must have
/// verified SHA-NI support.
void sha256_ni_x2(std::uint32_t states[2][8], const std::uint8_t* d0,
                  const std::uint8_t* d1, std::size_t blocks);

/// Eight transposed AVX2 streams: one __m256i per working variable,
/// lane l of every vector belonging to message l. Caller must have
/// verified AVX2 support.
void sha256_avx2_x8(std::uint32_t states[8][8],
                    const std::uint8_t* const data[8], std::size_t blocks);

/// Fused two-block pcr_fold on SHA-NI: state stays in registers across
/// both compressions and block 2 replays kFoldPadWK directly.
void pcr_fold_shani(const std::uint8_t* acc, const std::uint8_t* t,
                    std::uint8_t out[32]);
#endif

/// Fused two-block pcr_fold, portable: no streaming buffer, no padding
/// writes, block 2 uses the precomputed kFoldPadWK schedule.
void pcr_fold_scalar_fused(const std::uint8_t* acc, const std::uint8_t* t,
                           std::uint8_t out[32]);

}  // namespace cia::crypto::detail
