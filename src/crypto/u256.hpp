// Fixed-width 256-bit unsigned integer arithmetic.
//
// This is the minimum bignum needed for secp256k1: add/sub with carry,
// 256x256 -> 512 multiply, comparison, and reduction modulo primes of the
// form 2^256 - c (both the secp256k1 field prime and group order have this
// shape, which allows fast folding reduction).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace cia::crypto {

/// 256-bit unsigned integer, little-endian limbs (limb[0] is least
/// significant).
struct U256 {
  std::array<std::uint64_t, 4> limb{};

  static U256 zero() { return U256{}; }
  static U256 one() {
    U256 r;
    r.limb[0] = 1;
    return r;
  }
  static U256 from_u64(std::uint64_t v) {
    U256 r;
    r.limb[0] = v;
    return r;
  }

  /// Parse from exactly 64 hex chars (big-endian), asserts on bad input.
  static U256 from_hex(const std::string& hex);

  /// From 32 big-endian bytes.
  static U256 from_be_bytes(const Bytes& b);

  /// To 32 big-endian bytes.
  Bytes to_be_bytes() const;

  std::string to_hex() const;

  bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }

  bool operator==(const U256&) const = default;
};

/// -1 / 0 / +1 three-way compare.
int cmp(const U256& a, const U256& b);
inline bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }
inline bool operator>=(const U256& a, const U256& b) { return cmp(a, b) >= 0; }

/// a + b, returns carry-out (0 or 1).
std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out);

/// a - b, returns borrow-out (0 or 1). Caller ensures a >= b for
/// non-wrapping semantics.
std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out);

/// Full 256x256 -> 512-bit product, little-endian limbs.
using U512 = std::array<std::uint64_t, 8>;
U512 mul_wide(const U256& a, const U256& b);

/// Modulus of the special form 2^256 - c, with precomputed c.
struct SpecialModulus {
  U256 p;  // the modulus
  U256 c;  // 2^256 - p

  /// Construct from the modulus value (computes c).
  static SpecialModulus make(const U256& p);
};

/// Reduce a 512-bit value modulo a 2^256 - c modulus.
U256 reduce_wide(const U512& x, const SpecialModulus& m);

/// Reduce a 256-bit value (one conditional subtraction may not suffice for
/// arbitrary inputs; this loops until < p).
U256 reduce(const U256& x, const SpecialModulus& m);

/// (a + b) mod p
U256 add_mod(const U256& a, const U256& b, const SpecialModulus& m);
/// (a - b) mod p
U256 sub_mod(const U256& a, const U256& b, const SpecialModulus& m);
/// (a * b) mod p
U256 mul_mod(const U256& a, const U256& b, const SpecialModulus& m);
/// a^e mod p (square-and-multiply)
U256 pow_mod(const U256& a, const U256& e, const SpecialModulus& m);
/// a^(p-2) mod p — modular inverse for prime p (Fermat).
U256 inv_mod(const U256& a, const SpecialModulus& m);

}  // namespace cia::crypto
