// Multi-buffer SHA-256 lane kernels and the fused pcr_fold.
//
// Three kernels live here, all behind runtime dispatch in sha256.cpp:
//
//   sha256_ni_x2    — two interleaved SHA-NI streams. A single SHA-NI
//                     stream is latency-bound: each sha256rnds2 depends
//                     on the previous one, so the 4-cycle latency is
//                     exposed on every round. Two independent streams
//                     fill those stalls and come within ~2x of doubling
//                     throughput without spilling (4 state + 8 schedule
//                     + 4 save registers fit in the 16 xmm registers).
//
//   sha256_avx2_x8  — eight transposed streams for hosts with AVX2 but
//                     no SHA extensions. Each working variable is one
//                     __m256i whose lane l belongs to message l; the
//                     message schedule is recomputed 8-wide with the
//                     plain shift/xor sigma functions.
//
//   pcr_fold_*      — the sequential chain step sha256(acc || t) fused
//                     over its two compression blocks: the message is
//                     exactly 64 bytes, so block 2 is the constant
//                     padding block whose expanded schedule(+K) is the
//                     compile-time kFoldPadWK table. State never leaves
//                     registers between the blocks and no buffer is
//                     assembled.
//
// Correctness is held by tests/sha256_backend_test.cpp: every kernel vs
// the scalar reference over every tail length 0..129, both HashInput
// segment shapes, and the per-backend FIPS known-answer vectors.

#include "crypto/sha256_internal.hpp"

#include <cstring>

#if CIA_SHA256_X86
#include <immintrin.h>
#endif

namespace cia::crypto::detail {

namespace {

inline std::uint32_t be32_load(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}

inline void be32_store(std::uint8_t* p, std::uint32_t v) {
  v = __builtin_bswap32(v);
  std::memcpy(p, &v, 4);
}

}  // namespace

#if CIA_SHA256_X86

__attribute__((target("sha,sse4.1,ssse3")))
void sha256_ni_x2(std::uint32_t states[2][8], const std::uint8_t* d0,
                  const std::uint8_t* d1, std::size_t blocks) {
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Pack each lane's state into the ABEF/CDGH order sha256rnds2 expects.
  __m128i s0A, s1A, s0B, s1B;
  {
    __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[0][0]));
    __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[0][4]));
    lo = _mm_shuffle_epi32(lo, 0xB1);
    hi = _mm_shuffle_epi32(hi, 0x1B);
    s0A = _mm_alignr_epi8(lo, hi, 8);
    s1A = _mm_blend_epi16(hi, lo, 0xF0);
  }
  {
    __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[1][0]));
    __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[1][4]));
    lo = _mm_shuffle_epi32(lo, 0xB1);
    hi = _mm_shuffle_epi32(hi, 0x1B);
    s0B = _mm_alignr_epi8(lo, hi, 8);
    s1B = _mm_blend_epi16(hi, lo, 0xF0);
  }

  while (blocks > 0) {
    const __m128i saveA0 = s0A, saveA1 = s1A;
    const __m128i saveB0 = s0B, saveB1 = s1B;

    __m128i msgsA[4], msgsB[4], mA, mB;
    // Rounds 0-15: straight message words, both lanes per group so the
    // two rnds2 chains interleave in the pipeline.
    for (int g = 0; g < 4; ++g) {
      const __m128i k =
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * g]));
      msgsA[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(d0 + 16 * g)), kSwap);
      msgsB[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(d1 + 16 * g)), kSwap);
      mA = _mm_add_epi32(msgsA[g], k);
      mB = _mm_add_epi32(msgsB[g], k);
      s1A = _mm_sha256rnds2_epu32(s1A, s0A, mA);
      s1B = _mm_sha256rnds2_epu32(s1B, s0B, mB);
      mA = _mm_shuffle_epi32(mA, 0x0E);
      mB = _mm_shuffle_epi32(mB, 0x0E);
      s0A = _mm_sha256rnds2_epu32(s0A, s1A, mA);
      s0B = _mm_sha256rnds2_epu32(s0B, s1B, mB);
    }
    // Rounds 16-63: schedule recurrence per lane, same ring as the
    // single-stream transform in sha256.cpp.
    for (int g = 4; g < 16; ++g) {
      const int i0 = g % 4, i1 = (g + 3) % 4, i2 = (g + 2) % 4,
                i3 = (g + 1) % 4;
      const __m128i k =
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * g]));
      msgsA[i0] = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(msgsA[i0], msgsA[i3]),
                        _mm_alignr_epi8(msgsA[i1], msgsA[i2], 4)),
          msgsA[i1]);
      msgsB[i0] = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(msgsB[i0], msgsB[i3]),
                        _mm_alignr_epi8(msgsB[i1], msgsB[i2], 4)),
          msgsB[i1]);
      mA = _mm_add_epi32(msgsA[i0], k);
      mB = _mm_add_epi32(msgsB[i0], k);
      s1A = _mm_sha256rnds2_epu32(s1A, s0A, mA);
      s1B = _mm_sha256rnds2_epu32(s1B, s0B, mB);
      mA = _mm_shuffle_epi32(mA, 0x0E);
      mB = _mm_shuffle_epi32(mB, 0x0E);
      s0A = _mm_sha256rnds2_epu32(s0A, s1A, mA);
      s0B = _mm_sha256rnds2_epu32(s0B, s1B, mB);
    }

    s0A = _mm_add_epi32(s0A, saveA0);
    s1A = _mm_add_epi32(s1A, saveA1);
    s0B = _mm_add_epi32(s0B, saveB0);
    s1B = _mm_add_epi32(s1B, saveB1);
    d0 += 64;
    d1 += 64;
    --blocks;
  }

  {
    __m128i lo = _mm_shuffle_epi32(s0A, 0x1B);
    __m128i hi = _mm_shuffle_epi32(s1A, 0xB1);
    __m128i abcd = _mm_blend_epi16(lo, hi, 0xF0);
    __m128i efgh = _mm_alignr_epi8(hi, lo, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[0][0]), abcd);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[0][4]), efgh);
  }
  {
    __m128i lo = _mm_shuffle_epi32(s0B, 0x1B);
    __m128i hi = _mm_shuffle_epi32(s1B, 0xB1);
    __m128i abcd = _mm_blend_epi16(lo, hi, 0xF0);
    __m128i efgh = _mm_alignr_epi8(hi, lo, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[1][0]), abcd);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[1][4]), efgh);
  }
}

// 8-wide helpers as macros: GCC refuses to inline helper functions into
// a target("avx2") caller unless they carry the same attribute, and
// macros sidestep the whole question.
#define CIA_VROTR(x, n) \
  _mm256_or_si256(_mm256_srli_epi32((x), (n)), _mm256_slli_epi32((x), 32 - (n)))
#define CIA_VXOR3(x, y, z) _mm256_xor_si256(_mm256_xor_si256((x), (y)), (z))

__attribute__((target("avx2")))
void sha256_avx2_x8(std::uint32_t states[8][8],
                    const std::uint8_t* const data[8], std::size_t blocks) {
  const std::uint8_t* p[8];
  for (int l = 0; l < 8; ++l) p[l] = data[l];

  // st[w] holds working variable w for all 8 lanes (transposed layout).
  __m256i st[8];
  for (int w = 0; w < 8; ++w) {
    st[w] = _mm256_set_epi32(
        static_cast<int>(states[7][w]), static_cast<int>(states[6][w]),
        static_cast<int>(states[5][w]), static_cast<int>(states[4][w]),
        static_cast<int>(states[3][w]), static_cast<int>(states[2][w]),
        static_cast<int>(states[1][w]), static_cast<int>(states[0][w]));
  }

  while (blocks > 0) {
    __m256i w[16];
    for (int i = 0; i < 16; ++i) {
      w[i] = _mm256_set_epi32(
          static_cast<int>(be32_load(p[7] + 4 * i)),
          static_cast<int>(be32_load(p[6] + 4 * i)),
          static_cast<int>(be32_load(p[5] + 4 * i)),
          static_cast<int>(be32_load(p[4] + 4 * i)),
          static_cast<int>(be32_load(p[3] + 4 * i)),
          static_cast<int>(be32_load(p[2] + 4 * i)),
          static_cast<int>(be32_load(p[1] + 4 * i)),
          static_cast<int>(be32_load(p[0] + 4 * i)));
    }

    __m256i a = st[0], b = st[1], c = st[2], d = st[3];
    __m256i e = st[4], f = st[5], g = st[6], h = st[7];

    for (int i = 0; i < 64; ++i) {
      if (i >= 16) {
        const __m256i w15 = w[(i - 15) & 15];
        const __m256i w2 = w[(i - 2) & 15];
        const __m256i s0 = CIA_VXOR3(CIA_VROTR(w15, 7), CIA_VROTR(w15, 18),
                                     _mm256_srli_epi32(w15, 3));
        const __m256i s1 = CIA_VXOR3(CIA_VROTR(w2, 17), CIA_VROTR(w2, 19),
                                     _mm256_srli_epi32(w2, 10));
        w[i & 15] = _mm256_add_epi32(
            _mm256_add_epi32(w[i & 15], s0),
            _mm256_add_epi32(w[(i - 7) & 15], s1));
      }
      const __m256i S1 =
          CIA_VXOR3(CIA_VROTR(e, 6), CIA_VROTR(e, 11), CIA_VROTR(e, 25));
      const __m256i ch =
          _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(h, S1),
                           _mm256_add_epi32(ch, _mm256_set1_epi32(
                                                    static_cast<int>(kSha256K[i])))),
          w[i & 15]);
      const __m256i S0 =
          CIA_VXOR3(CIA_VROTR(a, 2), CIA_VROTR(a, 13), CIA_VROTR(a, 22));
      const __m256i maj = CIA_VXOR3(_mm256_and_si256(a, b),
                                    _mm256_and_si256(a, c),
                                    _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(S0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(t1, t2);
    }

    st[0] = _mm256_add_epi32(st[0], a);
    st[1] = _mm256_add_epi32(st[1], b);
    st[2] = _mm256_add_epi32(st[2], c);
    st[3] = _mm256_add_epi32(st[3], d);
    st[4] = _mm256_add_epi32(st[4], e);
    st[5] = _mm256_add_epi32(st[5], f);
    st[6] = _mm256_add_epi32(st[6], g);
    st[7] = _mm256_add_epi32(st[7], h);
    for (int l = 0; l < 8; ++l) p[l] += 64;
    --blocks;
  }

  alignas(32) std::uint32_t tmp[8];
  for (int w = 0; w < 8; ++w) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), st[w]);
    for (int l = 0; l < 8; ++l) states[l][w] = tmp[l];
  }
}

#undef CIA_VROTR
#undef CIA_VXOR3

__attribute__((target("sha,sse4.1,ssse3")))
void pcr_fold_shani(const std::uint8_t* acc, const std::uint8_t* t,
                    std::uint8_t out[32]) {
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kSha256Init[0]));
  __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kSha256Init[4]));
  lo = _mm_shuffle_epi32(lo, 0xB1);
  hi = _mm_shuffle_epi32(hi, 0x1B);
  __m128i s0 = _mm_alignr_epi8(lo, hi, 8);
  __m128i s1 = _mm_blend_epi16(hi, lo, 0xF0);

  // Block 1: the 64-byte message is acc || t, already in hand — no
  // buffer assembly.
  __m128i save0 = s0, save1 = s1;
  __m128i msgs[4], m;
  msgs[0] = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc)), kSwap);
  msgs[1] = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + 16)), kSwap);
  msgs[2] = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t)), kSwap);
  msgs[3] = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + 16)), kSwap);
  for (int g = 0; g < 4; ++g) {
    m = _mm_add_epi32(
        msgs[g],
        _mm_load_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * g])));
    s1 = _mm_sha256rnds2_epu32(s1, s0, m);
    m = _mm_shuffle_epi32(m, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, m);
  }
  for (int g = 4; g < 16; ++g) {
    const int i0 = g % 4, i1 = (g + 3) % 4, i2 = (g + 2) % 4, i3 = (g + 1) % 4;
    msgs[i0] = _mm_sha256msg2_epu32(
        _mm_add_epi32(_mm_sha256msg1_epu32(msgs[i0], msgs[i3]),
                      _mm_alignr_epi8(msgs[i1], msgs[i2], 4)),
        msgs[i1]);
    m = _mm_add_epi32(
        msgs[i0],
        _mm_load_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * g])));
    s1 = _mm_sha256rnds2_epu32(s1, s0, m);
    m = _mm_shuffle_epi32(m, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, m);
  }
  s0 = _mm_add_epi32(s0, save0);
  s1 = _mm_add_epi32(s1, save1);

  // Block 2: constant padding block — W+K is the precomputed table, so
  // there is no schedule computation at all, just 16 rnds2 pairs.
  save0 = s0;
  save1 = s1;
  for (int g = 0; g < 16; ++g) {
    m = _mm_load_si128(
        reinterpret_cast<const __m128i*>(&kFoldPadWK[4 * g]));
    s1 = _mm_sha256rnds2_epu32(s1, s0, m);
    m = _mm_shuffle_epi32(m, 0x0E);
    s0 = _mm_sha256rnds2_epu32(s0, s1, m);
  }
  s0 = _mm_add_epi32(s0, save0);
  s1 = _mm_add_epi32(s1, save1);

  // Unpack to word order, then byte-swap each word to the big-endian
  // digest serialization.
  lo = _mm_shuffle_epi32(s0, 0x1B);
  hi = _mm_shuffle_epi32(s1, 0xB1);
  __m128i abcd = _mm_blend_epi16(lo, hi, 0xF0);
  __m128i efgh = _mm_alignr_epi8(hi, lo, 8);
  abcd = _mm_shuffle_epi8(abcd, kSwap);
  efgh = _mm_shuffle_epi8(efgh, kSwap);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), abcd);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), efgh);
}

#endif  // CIA_SHA256_X86

void pcr_fold_scalar_fused(const std::uint8_t* acc, const std::uint8_t* t,
                           std::uint8_t out[32]) {
  std::uint32_t w[64];
  for (int i = 0; i < 8; ++i) w[i] = be32_load(acc + 4 * i);
  for (int i = 0; i < 8; ++i) w[8 + i] = be32_load(t + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr_c(w[i - 15], 7) ^ rotr_c(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr_c(w[i - 2], 17) ^ rotr_c(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t state[8];
  std::memcpy(state, kSha256Init, sizeof(state));

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t S1 = rotr_c(e, 6) ^ rotr_c(e, 11) ^ rotr_c(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + S1 + ch + kSha256K[i] + w[i];
    const std::uint32_t S0 = rotr_c(a, 2) ^ rotr_c(a, 13) ^ rotr_c(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = S0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state[0] += a; state[1] += b; state[2] += c; state[3] += d;
  state[4] += e; state[5] += f; state[6] += g; state[7] += h;

  // Block 2: W+K precomputed, no w[] at all.
  a = state[0]; b = state[1]; c = state[2]; d = state[3];
  e = state[4]; f = state[5]; g = state[6]; h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t S1 = rotr_c(e, 6) ^ rotr_c(e, 11) ^ rotr_c(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + S1 + ch + kFoldPadWK[i];
    const std::uint32_t S0 = rotr_c(a, 2) ^ rotr_c(a, 13) ^ rotr_c(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = S0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state[0] += a; state[1] += b; state[2] += c; state[3] += d;
  state[4] += e; state[5] += f; state[6] += g; state[7] += h;

  for (int i = 0; i < 8; ++i) be32_store(out + 4 * i, state[i]);
}

}  // namespace cia::crypto::detail
