#include "ima/ima.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/hex.hpp"
#include "common/strutil.hpp"

namespace cia::ima {

std::string LogEntry::to_string() const {
  return strformat("%d %s %s sha256:%s %s", pcr,
                   crypto::digest_hex(template_hash).c_str(),
                   template_name.c_str(),
                   crypto::digest_hex(file_hash).c_str(), path.c_str());
}

Result<LogEntry> LogEntry::parse(std::string_view line) {
  // "<pcr> <template-hash> <template-name> sha256:<file-hash> <path>"
  // The path is the remainder and may itself contain spaces.
  const auto fail = [&](const char* what) {
    return err(Errc::kCorrupted, std::string(what) + ": " + std::string(line));
  };
  std::string_view head[4];
  std::size_t pos = 0;
  for (int field = 0; field < 4; ++field) {
    const std::size_t next = line.find(' ', pos);
    if (next == std::string_view::npos) return fail("too few fields");
    head[field] = line.substr(pos, next - pos);
    pos = next + 1;
  }
  if (pos >= line.size()) return fail("missing path");

  LogEntry entry;
  // Strict decimal parse: atoi would silently accept "10garbage" and is
  // undefined on overflow ("999999999999999999999" came up in fuzzing).
  if (head[0].empty() || head[0].size() > 3) return fail("bad PCR");
  int pcr = 0;
  for (char c : head[0]) {
    if (c < '0' || c > '9') return fail("bad PCR");
    pcr = pcr * 10 + (c - '0');
  }
  entry.pcr = pcr;
  if (entry.pcr >= tpm::kNumPcrs) return fail("bad PCR");
  // hex_decode enforces exactly 64 hex characters, the same accept set
  // as the old from_hex + size check, without the Bytes allocation.
  if (!hex_decode(head[1], entry.template_hash.data(), crypto::kSha256Size)) {
    return fail("bad template hash");
  }
  entry.template_name = std::string(head[2]);
  if (!head[3].starts_with("sha256:")) return fail("bad digest algorithm");
  if (!hex_decode(head[3].substr(7), entry.file_hash.data(),
                  crypto::kSha256Size)) {
    return fail("bad file hash");
  }
  entry.path = std::string(line.substr(pos));
  // A kernel measurement record cannot carry NUL (the record's path field
  // is NUL-terminated) or line breaks (the ASCII list is line-framed) —
  // and to_string() formats via C strings, so an embedded NUL would
  // silently truncate the rendered line.
  for (char c : entry.path) {
    if (c == '\0' || c == '\n' || c == '\r') return fail("bad path");
  }
  return entry;
}

Ima::Ima(ImaPolicy policy, ImaConfig config, vfs::Vfs* fs, tpm::Tpm2* tpm)
    : policy_(std::move(policy)), config_(config), fs_(fs), tpm_(tpm) {}

void Ima::on_boot(const std::string& boot_id) {
  (void)boot_id;  // identifies the boot in logs; the aggregate is the bind
  log_.clear();
  measured_.clear();
  // The boot aggregate binds the measurement list to the measured-boot
  // state: as in the kernel, it is the hash of PCRs 0-7 at IMA start.
  crypto::Sha256 aggregate;
  for (int pcr = 0; pcr <= 7; ++pcr) {
    const crypto::Digest value = tpm_->pcr_value(pcr);
    aggregate.update(value.data(), value.size());
  }
  LogEntry entry;
  entry.file_hash = aggregate.finish();
  entry.path = "boot_aggregate";
  entry.template_hash = crypto::template_hash_of(entry.file_hash, entry.path);
  log_.push_back(entry);
  tpm_->extend(tpm::kImaPcr, entry.template_hash);
}

void Ima::on_exec(const std::string& path) { measure(path, Hook::kBprmCheck); }

void Ima::on_mmap_exec(const std::string& path) {
  measure(path, Hook::kFileMmap);
}

void Ima::on_module_load(const std::string& path) {
  measure(path, Hook::kModuleCheck);
}

void Ima::on_open_read(const std::string& path, bool sec_marked) {
  // Without script execution control, a read is a read: FILE_CHECK, which
  // the measurement policies here never measure. With the mitigation, an
  // interpreter marks the open as an executable load and it is treated
  // like an exec.
  if (sec_marked && config_.script_exec_control) {
    measure(path, Hook::kBprmCheck);
  } else {
    measure(path, Hook::kFileCheck);
  }
}

void Ima::measure(const std::string& path, Hook hook) {
  auto st = fs_->stat(path);
  if (!st.ok() || st.value().is_dir) return;

  const std::uint32_t magic = vfs::fs_magic(st.value().fs_type);
  if (!policy_.should_measure(hook, magic)) return;

  const std::string visible = fs_->ima_visible_path(path);
  // P4 lives here: the stock cache key ignores the path entirely.
  const CacheKey key{st.value().id,
                     config_.reevaluate_on_path_change ? visible : ""};
  auto it = measured_.find(key);
  if (it != measured_.end() && it->second == st.value().content_hash) {
    return;  // already measured, content unchanged
  }
  measured_[key] = st.value().content_hash;

  LogEntry entry;
  entry.file_hash = st.value().content_hash;
  entry.path = visible;
  entry.template_hash = crypto::template_hash_of(entry.file_hash, entry.path);
  log_.push_back(entry);
  tpm_->extend(tpm::kImaPcr, entry.template_hash);
}

Status Ima::appraise(const std::string& path) const {
  if (!config_.appraisal_key) return Status::ok_status();
  auto st = fs_->stat(path);
  if (!st.ok()) return st.error();
  auto xattr = fs_->ima_xattr(path);
  if (!xattr.ok()) return xattr.error();
  auto sig = crypto::Signature::decode(xattr.value());
  if (!sig) {
    return err(Errc::kPermissionDenied,
               "appraisal: missing/invalid security.ima on " + path);
  }
  if (!crypto::verify(*config_.appraisal_key,
                      crypto::digest_bytes(st.value().content_hash), *sig)) {
    return err(Errc::kPermissionDenied,
               "appraisal: signature does not match content of " + path);
  }
  return Status::ok_status();
}

std::span<const LogEntry> Ima::log_since(std::size_t offset) const {
  if (offset >= log_.size()) return {};
  return std::span<const LogEntry>(log_).subspan(offset);
}

crypto::Digest replay_log(const std::vector<LogEntry>& entries) {
  crypto::Digest pcr = crypto::zero_digest();
  // pcr_fold's fused two-block kernel beats a streaming context here:
  // each step hashes exactly 64 bytes, so the padding block's schedule
  // is a compile-time constant.
  for (const LogEntry& e : entries) {
    pcr = crypto::pcr_fold(pcr, e.template_hash);
  }
  return pcr;
}

}  // namespace cia::ima
