// The Integrity Measurement Architecture simulator.
//
// IMA sits between the kernel's exec/mmap/module hooks and the TPM: when
// a measured event fires it hashes the file, appends an ima-ng entry to
// the measurement list, and extends TPM PCR 10 with the entry's template
// hash. Two behaviours of the real subsystem are modelled precisely
// because the paper's attacks depend on them:
//
//   * the measurement cache is keyed by file *identity* (filesystem UUID
//     + inode), not by path — so a file renamed within one filesystem is
//     never re-measured (problem P4). The `reevaluate_on_path_change`
//     mitigation adds the observed path to the cache key;
//   * a script run as `python script.py` is opened by the interpreter
//     with an ordinary read, which hits FILE_CHECK (not measured by the
//     stock policy), while `./script.py` hits BPRM_CHECK (problem P5).
//     The `script_exec_control` mitigation models interpreters that mark
//     script opens as executable loads.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/schnorr.hpp"

#include "crypto/sha256.hpp"
#include "ima/ima_policy.hpp"
#include "tpm/tpm.hpp"
#include "vfs/vfs.hpp"

namespace cia::ima {

/// One line of the measurement list (ima-ng template).
struct LogEntry {
  int pcr = tpm::kImaPcr;
  crypto::Digest template_hash{};  // what gets extended into the PCR
  std::string template_name = "ima-ng";
  crypto::Digest file_hash{};
  std::string path;  // as observed by IMA (may be namespace-truncated)

  /// Render like a /sys/kernel/security/ima/ascii_runtime_measurements line.
  std::string to_string() const;

  /// Parse a rendered line back into an entry (offline log analysis).
  /// Splits in place — no intermediate field copies; only the owning
  /// template_name/path strings of the returned entry are allocated.
  static Result<LogEntry> parse(std::string_view line);
};

/// Kernel-side toggles corresponding to the paper's proposed IMA fixes.
struct ImaConfig {
  /// Mitigation for P4: include the path in the measurement-cache key so
  /// a moved file is re-measured at its new location.
  bool reevaluate_on_path_change = false;
  /// Mitigation for P5: interpreters opt in to marking script opens as
  /// executable loads ("script execution control" patch set).
  bool script_exec_control = false;
  /// IMA appraisal (appraise_type=imasig): when set, every executable
  /// load (exec, mmap-exec, module load) requires a valid security.ima
  /// signature by this key over the file's content hash — the enforcement
  /// counterpart of the paper's signed-hashes discussion (§V).
  std::optional<crypto::PublicKey> appraisal_key;
};

/// The IMA subsystem of one machine.
class Ima {
 public:
  Ima(ImaPolicy policy, ImaConfig config, vfs::Vfs* fs, tpm::Tpm2* tpm);

  /// (Re)start after boot: clears the log and cache, resets nothing in
  /// the TPM (the caller resets PCRs), then records the boot aggregate.
  void on_boot(const std::string& boot_id);

  /// execve() of a file: BPRM_CHECK.
  void on_exec(const std::string& path);

  /// mmap(PROT_EXEC): FILE_MMAP (shared libraries).
  void on_mmap_exec(const std::string& path);

  /// Kernel module load: MODULE_CHECK.
  void on_module_load(const std::string& path);

  /// open()+read by an ordinary process: FILE_CHECK.
  /// `sec_marked` models an interpreter that participates in script
  /// execution control and flags this open as an executable load.
  void on_open_read(const std::string& path, bool sec_marked = false);

  /// IMA appraisal verdict for loading `path` as an executable: ok when
  /// appraisal is disabled, or when the file carries a valid security.ima
  /// signature over its current content hash. Appraisal is deliberately
  /// filesystem-agnostic: a signed-executables-only fleet has no
  /// unmeasured-filesystem holes (contrast P3).
  Status appraise(const std::string& path) const;

  const std::vector<LogEntry>& log() const { return log_; }

  /// Entries from `offset` to the end (agents ship the log incrementally).
  /// Borrows the live log — the span is invalidated by the next measure()
  /// or on_boot(), so serialize or copy before re-entering the machine.
  std::span<const LogEntry> log_since(std::size_t offset) const;

  const ImaPolicy& policy() const { return policy_; }
  const ImaConfig& config() const { return config_; }
  void set_config(const ImaConfig& config) { config_ = config; }
  void set_policy(ImaPolicy policy) { policy_ = std::move(policy); }

 private:
  void measure(const std::string& path, Hook hook);

  // Cache key: file identity, plus the observed path when the P4
  // mitigation is enabled.
  using CacheKey = std::pair<vfs::FileIdentity, std::string>;

  ImaPolicy policy_;
  ImaConfig config_;
  vfs::Vfs* fs_;
  tpm::Tpm2* tpm_;
  std::vector<LogEntry> log_;
  std::map<CacheKey, crypto::Digest> measured_;  // key -> content hash
};

/// Replay a measurement list: fold the template hashes the way the TPM
/// does and return the final PCR value. The verifier compares this to the
/// quoted PCR 10 to detect log tampering.
crypto::Digest replay_log(const std::vector<LogEntry>& entries);

}  // namespace cia::ima
