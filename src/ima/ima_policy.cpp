#include "ima/ima_policy.hpp"

#include "common/strutil.hpp"

namespace cia::ima {

const char* hook_name(Hook h) {
  switch (h) {
    case Hook::kBprmCheck: return "BPRM_CHECK";
    case Hook::kFileMmap: return "FILE_MMAP";
    case Hook::kModuleCheck: return "MODULE_CHECK";
    case Hook::kFileCheck: return "FILE_CHECK";
  }
  return "?";
}

bool Rule::matches(Hook hook, std::uint32_t magic) const {
  if (func && *func != hook) return false;
  if (fsmagic && *fsmagic != magic) return false;
  return true;
}

namespace {

std::vector<Rule> measurement_hooks() {
  return {
      Rule{Rule::Action::kMeasure, Hook::kBprmCheck, std::nullopt},
      Rule{Rule::Action::kMeasure, Hook::kFileMmap, std::nullopt},
      Rule{Rule::Action::kMeasure, Hook::kModuleCheck, std::nullopt},
  };
}

Rule skip_fs(vfs::FsType type) {
  return Rule{Rule::Action::kDontMeasure, std::nullopt, vfs::fs_magic(type)};
}

}  // namespace

ImaPolicy ImaPolicy::keylime_recommended() {
  std::vector<Rule> rules = {
      skip_fs(vfs::FsType::kTmpfs),     skip_fs(vfs::FsType::kProcfs),
      skip_fs(vfs::FsType::kSysfs),     skip_fs(vfs::FsType::kDebugfs),
      skip_fs(vfs::FsType::kRamfs),     skip_fs(vfs::FsType::kSecurityfs),
      skip_fs(vfs::FsType::kOverlayfs),
  };
  for (Rule r : measurement_hooks()) rules.push_back(r);
  return ImaPolicy(std::move(rules));
}

ImaPolicy ImaPolicy::enriched() {
  // Keep skipping only kernel-internal pseudo-filesystems that cannot
  // carry attacker payloads; measure the writable ones (tmpfs, ramfs,
  // overlayfs) and procfs.
  std::vector<Rule> rules = {
      skip_fs(vfs::FsType::kSysfs),
      skip_fs(vfs::FsType::kDebugfs),
      skip_fs(vfs::FsType::kSecurityfs),
  };
  for (Rule r : measurement_hooks()) rules.push_back(r);
  return ImaPolicy(std::move(rules));
}

bool ImaPolicy::should_measure(Hook hook, std::uint32_t fsmagic) const {
  for (const Rule& r : rules_) {
    if (r.matches(hook, fsmagic)) {
      return r.action == Rule::Action::kMeasure;
    }
  }
  return false;  // default: no rule, no measurement
}

std::string ImaPolicy::to_string() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += (r.action == Rule::Action::kMeasure) ? "measure" : "dont_measure";
    if (r.func) out += strformat(" func=%s", hook_name(*r.func));
    if (r.fsmagic) out += strformat(" fsmagic=0x%x", *r.fsmagic);
    out += "\n";
  }
  return out;
}

}  // namespace cia::ima
