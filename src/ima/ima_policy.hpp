// IMA measurement policy: an ordered rule list in the style of
// /sys/kernel/security/ima/policy.
//
// Rules match on the hook (func=) and the filesystem magic (fsmagic=);
// the first matching rule wins. The stock Keylime-recommended policy
// excludes a list of pseudo/volatile filesystems wholesale — that
// exclusion is problem P3 in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vfs/vfs.hpp"

namespace cia::ima {

/// The kernel hooks at which IMA can measure.
enum class Hook {
  kBprmCheck,    // direct program execution (execve)
  kFileMmap,     // mmap with PROT_EXEC (shared libraries)
  kModuleCheck,  // kernel module load
  kFileCheck,    // plain open-for-read (how interpreters load scripts)
};

const char* hook_name(Hook h);

/// One policy rule.
struct Rule {
  enum class Action { kMeasure, kDontMeasure };
  Action action = Action::kMeasure;
  std::optional<Hook> func;             // absent = any hook
  std::optional<std::uint32_t> fsmagic; // absent = any filesystem

  bool matches(Hook hook, std::uint32_t magic) const;
};

/// Ordered first-match rule list.
class ImaPolicy {
 public:
  ImaPolicy() = default;
  explicit ImaPolicy(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  /// The policy recommended by Keylime's documentation: skip tmpfs,
  /// procfs, sysfs, debugfs, ramfs, securityfs and overlayfs entirely,
  /// then measure exec / mmap-exec / module loads (problem P3 is the
  /// fsmagic skip list).
  static ImaPolicy keylime_recommended();

  /// The enriched policy from §IV-C: the same measurement hooks but
  /// *without* the writable-filesystem exclusions (tmpfs stays measured;
  /// kernel-internal pseudo-filesystems like securityfs remain skipped).
  static ImaPolicy enriched();

  bool should_measure(Hook hook, std::uint32_t fsmagic) const;

  const std::vector<Rule>& rules() const { return rules_; }

  /// Render in /sys/kernel/security/ima/policy syntax.
  std::string to_string() const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace cia::ima
