#include "netsim/wire.hpp"

namespace cia::netsim {

void WireWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::put_u32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::put_u64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

void WireWriter::put_bool(bool v) { put_u8(v ? 1 : 0); }

void WireWriter::put_string(const std::string& s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::put_bytes(const Bytes& b) {
  put_u64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void WireWriter::put_digest(const crypto::Digest& d) {
  buf_.insert(buf_.end(), d.begin(), d.end());
}

Result<std::uint8_t> WireReader::u8() {
  if (pos_ + 1 > data_.size()) return err(Errc::kCorrupted, "truncated u8");
  return data_[pos_++];
}

Result<std::uint32_t> WireReader::u32() {
  if (pos_ + 4 > data_.size()) return err(Errc::kCorrupted, "truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

Result<std::uint64_t> WireReader::u64() {
  if (pos_ + 8 > data_.size()) return err(Errc::kCorrupted, "truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

Result<std::int64_t> WireReader::i64() {
  auto v = u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<bool> WireReader::boolean() {
  auto v = u8();
  if (!v.ok()) return v.error();
  if (v.value() > 1) return err(Errc::kCorrupted, "bad bool");
  return v.value() == 1;
}

Result<std::string> WireReader::string() {
  auto len = u64();
  if (!len.ok()) return len.error();
  // Compare against the remaining bytes instead of `pos_ + len` — an
  // attacker-supplied length near 2^64 would wrap the addition and slip
  // past the bound.
  if (len.value() > data_.size() - pos_) {
    return err(Errc::kCorrupted, "truncated string");
  }
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return s;
}

Result<std::string_view> WireReader::string_view() {
  auto len = u64();
  if (!len.ok()) return len.error();
  if (len.value() > data_.size() - pos_) {
    return err(Errc::kCorrupted, "truncated string");
  }
  if (len.value() == 0) return std::string_view{};
  std::string_view s(reinterpret_cast<const char*>(data_.data()) + pos_,
                     static_cast<std::size_t>(len.value()));
  pos_ += len.value();
  return s;
}

Result<Bytes> WireReader::bytes() {
  auto len = u64();
  if (!len.ok()) return len.error();
  if (len.value() > data_.size() - pos_) {
    return err(Errc::kCorrupted, "truncated bytes");
  }
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return b;
}

Result<crypto::Digest> WireReader::digest() {
  if (pos_ + crypto::kSha256Size > data_.size()) {
    return err(Errc::kCorrupted, "truncated digest");
  }
  crypto::Digest d;
  for (auto& b : d) b = data_[pos_++];
  return d;
}

}  // namespace cia::netsim
