#include "netsim/network.hpp"

namespace cia::netsim {

namespace {

/// FNV-1a over a string; mixes a link address into the network seed so
/// every link gets an independent, order-of-first-use-invariant stream.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

const FaultProfile* FaultSchedule::active(SimTime now) const {
  const FaultProfile* found = nullptr;
  for (const FaultWindow& w : windows_) {
    if (w.start <= now && now < w.end) found = &w.profile;
  }
  return found;
}

SimNetwork::SimNetwork(SimClock* clock, std::uint64_t seed)
    : clock_(clock), seed_(seed) {}

void SimNetwork::attach(const std::string& address, Endpoint* endpoint) {
  endpoints_[address] = endpoint;
}

void SimNetwork::detach(const std::string& address) {
  endpoints_.erase(address);
}

bool SimNetwork::attached(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

Endpoint* SimNetwork::endpoint(const std::string& address) const {
  auto it = endpoints_.find(address);
  return it == endpoints_.end() ? nullptr : it->second;
}

bool SimNetwork::take_link_rng(const std::string& address, Rng* out) {
  auto it = link_rngs_.find(address);
  if (it == link_rngs_.end()) return false;
  *out = it->second;
  link_rngs_.erase(it);
  return true;
}

void SimNetwork::put_link_rng(const std::string& address, const Rng& rng) {
  link_rngs_.insert_or_assign(address, rng);
}

void SimNetwork::set_link_faults(const std::string& address,
                                 const FaultProfile& faults) {
  link_faults_[address] = faults;
}

void SimNetwork::clear_link_faults(const std::string& address) {
  link_faults_.erase(address);
}

void SimNetwork::set_link_schedule(const std::string& address,
                                   FaultSchedule schedule) {
  link_schedules_[address] = std::move(schedule);
}

void SimNetwork::set_global_schedule(FaultSchedule schedule) {
  global_schedule_ = std::move(schedule);
}

const FaultProfile& SimNetwork::effective_faults(
    const std::string& address) const {
  const SimTime now = clock_->now();
  auto sched_it = link_schedules_.find(address);
  if (sched_it != link_schedules_.end()) {
    if (const FaultProfile* p = sched_it->second.active(now)) return *p;
  }
  auto link_it = link_faults_.find(address);
  if (link_it != link_faults_.end()) return link_it->second;
  if (const FaultProfile* p = global_schedule_.active(now)) return *p;
  return faults_;
}

Rng& SimNetwork::link_rng(const std::string& address) {
  auto it = link_rngs_.find(address);
  if (it == link_rngs_.end()) {
    it = link_rngs_.emplace(address, Rng(seed_ ^ fnv1a(address))).first;
  }
  return it->second;
}

void SimNetwork::count(const char* name, const std::string& link) {
  if (metrics_) metrics_->counter(name, {{"link", link}}).inc();
}

Result<Bytes> SimNetwork::call(const std::string& to, const std::string& kind,
                               const Bytes& payload) {
  ++stats_.calls;
  count("cia_net_calls_total", to);
  const FaultProfile profile = effective_faults(to);
  Rng& rng = link_rng(to);

  // Every outcome charges the link latency: a caller learns about a
  // missing endpoint or a lost packet no faster than about a response.
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    clock_->advance(profile.latency);
    ++stats_.unroutable;
    count("cia_net_unroutable_total", to);
    return err(Errc::kUnavailable, "no endpoint at " + to);
  }
  if (profile.timeout_rate > 0.0 && rng.chance(profile.timeout_rate)) {
    // A hung call blocks the caller for the full timeout budget.
    clock_->advance(profile.latency + profile.timeout_latency);
    ++stats_.timeouts;
    count("cia_net_timeouts_total", to);
    return err(Errc::kUnavailable, "request to " + to + " timed out");
  }
  clock_->advance(profile.latency);
  if (profile.drop_rate > 0.0 && rng.chance(profile.drop_rate)) {
    ++stats_.dropped;
    count("cia_net_drops_total", to);
    return err(Errc::kUnavailable, "request to " + to + " dropped");
  }

  Result<Bytes> response = it->second->handle(kind, payload);

  // Duplicate delivery: a retransmitted request reaches the endpoint a
  // second time; the late response is discarded by the caller's transport,
  // so only handler idempotence protects state.
  if (profile.duplicate_rate > 0.0 && rng.chance(profile.duplicate_rate)) {
    ++stats_.duplicated;
    count("cia_net_duplicates_total", to);
    (void)it->second->handle(kind, payload);
  }

  if (!response.ok()) return response;

  Bytes body = std::move(response).take();
  if (profile.tamper_rate > 0.0 && !body.empty() &&
      rng.chance(profile.tamper_rate)) {
    ++stats_.tampered;
    count("cia_net_tampered_total", to);
    body[rng.uniform(body.size())] ^= 0xff;
  }
  return body;
}

}  // namespace cia::netsim
