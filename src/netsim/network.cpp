#include "netsim/network.hpp"

namespace cia::netsim {

SimNetwork::SimNetwork(SimClock* clock, std::uint64_t seed)
    : clock_(clock), rng_(seed) {}

void SimNetwork::attach(const std::string& address, Endpoint* endpoint) {
  endpoints_[address] = endpoint;
}

void SimNetwork::detach(const std::string& address) {
  endpoints_.erase(address);
}

Result<Bytes> SimNetwork::call(const std::string& to, const std::string& kind,
                               const Bytes& payload) {
  ++stats_.calls;
  clock_->advance(faults_.latency);

  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    ++stats_.unroutable;
    return err(Errc::kUnavailable, "no endpoint at " + to);
  }
  if (faults_.drop_rate > 0.0 && rng_.chance(faults_.drop_rate)) {
    ++stats_.dropped;
    return err(Errc::kUnavailable, "request to " + to + " dropped");
  }

  Result<Bytes> response = it->second->handle(kind, payload);
  if (!response.ok()) return response;

  Bytes body = std::move(response).take();
  if (faults_.tamper_rate > 0.0 && !body.empty() &&
      rng_.chance(faults_.tamper_rate)) {
    ++stats_.tampered;
    body[rng_.uniform(body.size())] ^= 0xff;
  }
  return body;
}

}  // namespace cia::netsim
