#include "netsim/transport.hpp"

#include <algorithm>

namespace cia::netsim {

RetryingTransport::RetryingTransport(SimNetwork* network, SimClock* clock,
                                     std::uint64_t seed, RetryPolicy policy)
    : network_(network),
      clock_(clock),
      rng_(seed ^ 0x7265747279ull),  // "retry"
      policy_(policy) {}

BreakerState RetryingTransport::breaker_state(
    const std::string& address) const {
  auto it = breakers_.find(address);
  if (it == breakers_.end() || !it->second.open) return BreakerState::kClosed;
  return clock_->now() >= it->second.open_until ? BreakerState::kHalfOpen
                                                : BreakerState::kOpen;
}

Result<Bytes> RetryingTransport::call(const std::string& to,
                                      const std::string& kind,
                                      const Bytes& payload) {
  ++stats_.calls;
  Breaker& breaker = breakers_[to];
  if (breaker.open) {
    if (clock_->now() < breaker.open_until) {
      ++stats_.breaker_fastfails;
      return err(Errc::kUnavailable, "circuit open for " + to);
    }
    // Half-open: let this call through as a probe.
  }

  const SimTime deadline = clock_->now() + policy_.call_budget;
  Error last = err(Errc::kUnavailable, "no attempt made");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) ++stats_.retries;
    Result<Bytes> response = network_->call(to, kind, payload);
    if (response.ok()) {
      if (attempt > 0) ++stats_.recovered;
      breaker.consecutive_failures = 0;
      breaker.open = false;
      return response;
    }
    // Only transient transport failures are worth retrying; a handler
    // rejection (bad request, policy error) will fail identically again.
    if (response.error().code != Errc::kUnavailable) return response;
    last = response.error();

    if (attempt + 1 >= policy_.max_attempts) break;
    // Exponential backoff with deterministic full jitter in
    // [backoff/2, backoff]: desynchronizes callers hammering the same
    // dead peer while keeping the sequence reproducible per seed.
    const SimTime backoff = std::min(policy_.base_backoff << attempt,
                                     policy_.max_backoff);
    const SimTime half = std::max<SimTime>(backoff / 2, 1);
    const SimTime delay =
        half + static_cast<SimTime>(rng_.uniform(
                   static_cast<std::uint64_t>(backoff - half + 1)));
    if (clock_->now() + delay > deadline) break;  // budget exhausted
    clock_->advance(delay);
  }

  ++stats_.giveups;
  if (++breaker.consecutive_failures >= policy_.breaker_threshold) {
    if (!breaker.open) ++stats_.breaker_opens;
    breaker.open = true;
    breaker.open_until = clock_->now() + policy_.breaker_cooldown;
    breaker.consecutive_failures = 0;
  }
  return last;
}

}  // namespace cia::netsim
