#include "netsim/transport.hpp"

#include <algorithm>
#include <optional>

#include "common/strutil.hpp"

namespace cia::netsim {

RetryingTransport::RetryingTransport(SimNetwork* network, SimClock* clock,
                                     std::uint64_t seed, RetryPolicy policy)
    : network_(network),
      clock_(clock),
      rng_(seed ^ 0x7265747279ull),  // "retry"
      policy_(policy) {}

BreakerState RetryingTransport::breaker_state(
    const std::string& address) const {
  auto it = breakers_.find(address);
  if (it == breakers_.end() || !it->second.open) return BreakerState::kClosed;
  return clock_->now() >= it->second.open_until ? BreakerState::kHalfOpen
                                                : BreakerState::kOpen;
}

void RetryingTransport::count_breaker_transition(const std::string& address,
                                                 const char* to) {
  if (metrics_) {
    metrics_
        ->counter("cia_transport_breaker_transitions_total",
                  {{"link", address}, {"to", to}})
        .inc();
  }
}

Result<Bytes> RetryingTransport::call(const std::string& to,
                                      const std::string& kind,
                                      const Bytes& payload) {
  ++stats_.calls;
  if (metrics_) {
    metrics_->counter("cia_transport_calls_total", {{"link", to}}).inc();
  }
  std::optional<telemetry::Tracer::Scope> span;
  if (tracer_) {
    span.emplace(tracer_->span("transport_call", "transport"));
    tracer_->annotate("to", to);
    tracer_->annotate("kind", kind);
  }
  const auto finish = [&](const char* outcome, int attempts) {
    if (tracer_) {
      tracer_->annotate(span->id(), "outcome", outcome);
      tracer_->annotate(span->id(), "attempts", strformat("%d", attempts));
      if (attempts > 1) {
        tracer_->annotate(span->id(), "retries", strformat("%d", attempts - 1));
      }
    }
    if (metrics_ && attempts > 0) {
      metrics_
          ->histogram("cia_transport_attempts_per_call", {{"link", to}},
                      telemetry::count_buckets())
          .observe(static_cast<double>(attempts));
    }
  };

  Breaker& breaker = breakers_[to];
  const bool was_open = breaker.open;
  if (breaker.open) {
    if (clock_->now() < breaker.open_until) {
      ++stats_.breaker_fastfails;
      if (metrics_) {
        metrics_->counter("cia_transport_breaker_fastfails_total",
                          {{"link", to}})
            .inc();
      }
      finish("fastfail", 0);
      return err(Errc::kUnavailable, "circuit open for " + to);
    }
    // Half-open: let this call through as a probe.
    count_breaker_transition(to, "half_open");
  }

  const SimTime deadline = clock_->now() + policy_.call_budget;
  Error last = err(Errc::kUnavailable, "no attempt made");
  int attempt = 0;
  for (; attempt < policy_.max_attempts; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) {
      ++stats_.retries;
      if (metrics_) {
        metrics_->counter("cia_transport_retries_total", {{"link", to}}).inc();
      }
    }
    Result<Bytes> response = network_->call(to, kind, payload);
    if (response.ok()) {
      if (attempt > 0) {
        ++stats_.recovered;
        if (metrics_) {
          metrics_->counter("cia_transport_recovered_total", {{"link", to}})
              .inc();
        }
      }
      breaker.consecutive_failures = 0;
      breaker.open = false;
      if (was_open) count_breaker_transition(to, "closed");
      finish("ok", attempt + 1);
      return response;
    }
    // Only transient transport failures are worth retrying; a handler
    // rejection (bad request, policy error) will fail identically again.
    if (response.error().code != Errc::kUnavailable) {
      finish("rejected", attempt + 1);
      return response;
    }
    last = response.error();

    if (attempt + 1 >= policy_.max_attempts) break;
    // Exponential backoff with deterministic full jitter in
    // [backoff/2, backoff]: desynchronizes callers hammering the same
    // dead peer while keeping the sequence reproducible per seed.
    const SimTime backoff = std::min(policy_.base_backoff << attempt,
                                     policy_.max_backoff);
    const SimTime half = std::max<SimTime>(backoff / 2, 1);
    const SimTime delay =
        half + static_cast<SimTime>(rng_.uniform(
                   static_cast<std::uint64_t>(backoff - half + 1)));
    if (clock_->now() + delay > deadline) break;  // budget exhausted
    clock_->advance(delay);
  }

  ++stats_.giveups;
  if (metrics_) {
    metrics_->counter("cia_transport_giveups_total", {{"link", to}}).inc();
  }
  if (++breaker.consecutive_failures >= policy_.breaker_threshold) {
    if (!breaker.open) {
      ++stats_.breaker_opens;
      count_breaker_transition(to, "open");
    }
    breaker.open = true;
    breaker.open_until = clock_->now() + policy_.breaker_cooldown;
    breaker.consecutive_failures = 0;
  }
  finish("giveup", attempt + 1);
  return last;
}

}  // namespace cia::netsim
