// An in-process request/response network between Keylime components.
//
// Components implement Endpoint and attach under an address; callers make
// synchronous RPCs through SimNetwork. The network charges virtual latency
// to the shared clock and can inject faults (drops, payload tampering,
// duplicate delivery, timeouts) so tests can exercise the verifier's
// handling of unreliable and hostile transports.
//
// Faults are layered:
//   * a global default FaultProfile applies to every link;
//   * a per-link FaultProfile (keyed by destination address) overrides it;
//   * time-windowed FaultSchedules (global or per-link) override both
//     while a window is open — this is how outages, partitions, and flaky
//     periods are scripted against the SimClock.
// Every link draws from its own deterministic RNG stream (derived from
// the network seed and the destination address), so the fault sequence a
// given link experiences is reproducible per seed and independent of
// traffic on other links.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace cia::netsim {

/// A component reachable over the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Handle a request of the given kind; return the response payload.
  virtual Result<Bytes> handle(const std::string& kind, const Bytes& payload) = 0;
};

/// Anything a component can make RPCs through: the raw network, or a
/// reliability layer (RetryingTransport) stacked on top of it.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Synchronous RPC to the endpoint attached at `to`.
  virtual Result<Bytes> call(const std::string& to, const std::string& kind,
                             const Bytes& payload) = 0;
};

/// Fault-injection knobs for one link (or the global default).
struct FaultProfile {
  double drop_rate = 0.0;       // probability a call fails with kUnavailable
  double tamper_rate = 0.0;     // probability the response payload is corrupted
  double duplicate_rate = 0.0;  // probability the request is delivered twice
  double timeout_rate = 0.0;    // probability the call hangs, then times out
  SimTime latency = 0;          // virtual seconds charged per round trip
  SimTime timeout_latency = 30;  // virtual seconds a timed-out call blocks

  /// A link that drops everything (outage / partition window).
  static FaultProfile outage() {
    FaultProfile p;
    p.drop_rate = 1.0;
    return p;
  }
};

/// Backwards-compatible name: the original single global knob set.
using FaultConfig = FaultProfile;

/// A fault profile active during [start, end) of virtual time.
struct FaultWindow {
  SimTime start = 0;
  SimTime end = 0;  // exclusive
  FaultProfile profile;
};

/// A time-ordered script of fault windows (outages, flaky periods).
/// Windows may overlap; the last matching window wins, so later entries
/// can carve exceptions out of earlier ones.
class FaultSchedule {
 public:
  FaultSchedule& add(SimTime start, SimTime end, FaultProfile profile) {
    windows_.push_back({start, end, profile});
    return *this;
  }

  /// Convenience: a full outage during [start, end).
  FaultSchedule& outage(SimTime start, SimTime end) {
    return add(start, end, FaultProfile::outage());
  }

  /// The profile of the last window covering `now`, or nullptr.
  const FaultProfile* active(SimTime now) const;

  bool empty() const { return windows_.empty(); }
  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  std::vector<FaultWindow> windows_;
};

/// Counters for observability and tests.
struct NetworkStats {
  std::uint64_t calls = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tampered = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t timeouts = 0;
};

class SimNetwork : public Transport {
 public:
  SimNetwork(SimClock* clock, std::uint64_t seed);

  /// Attach an endpoint at `address`; replaces any previous binding.
  void attach(const std::string& address, Endpoint* endpoint);
  void detach(const std::string& address);
  bool attached(const std::string& address) const;

  /// The endpoint bound at `address` (nullptr when none) — used to
  /// re-home an endpoint onto another network during live migration.
  Endpoint* endpoint(const std::string& address) const;

  /// Hand a link's fault RNG over to another identically-seeded network
  /// (live migration: the fault stream follows the agent, so the sequence
  /// of drops/tampers a link sees is independent of which shard network
  /// currently carries it). take returns false when the link has no
  /// stream yet — the destination then lazily derives the same one.
  bool take_link_rng(const std::string& address, Rng* out);
  void put_link_rng(const std::string& address, const Rng& rng);

  /// Set the global default fault profile (applies to links without a
  /// per-link override).
  void set_faults(const FaultProfile& faults) { faults_ = faults; }

  /// Override faults for one link (keyed by destination address).
  void set_link_faults(const std::string& address, const FaultProfile& faults);
  void clear_link_faults(const std::string& address);

  /// Script time-windowed faults for one link / for every link.
  void set_link_schedule(const std::string& address, FaultSchedule schedule);
  void set_global_schedule(FaultSchedule schedule);

  /// The profile a call to `address` would experience right now
  /// (schedule > per-link > global precedence).
  const FaultProfile& effective_faults(const std::string& address) const;

  /// Synchronous RPC. Applies latency and fault injection, then invokes
  /// the destination endpoint's handler. Every outcome — success, drop,
  /// timeout, or unroutable address — charges the link's configured
  /// latency, so failures are never cheaper than successes.
  Result<Bytes> call(const std::string& to, const std::string& kind,
                     const Bytes& payload) override;

  const NetworkStats& stats() const { return stats_; }

  /// Mirror every fault counter into per-link labelled series
  /// (cia_net_*_total{link=...}) on `metrics`; nullptr disables.
  void use_telemetry(telemetry::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }

 private:
  Rng& link_rng(const std::string& address);
  void count(const char* name, const std::string& link);

  SimClock* clock_;
  std::uint64_t seed_;
  FaultProfile faults_;
  FaultSchedule global_schedule_;
  std::map<std::string, FaultProfile> link_faults_;
  std::map<std::string, FaultSchedule> link_schedules_;
  std::map<std::string, Rng> link_rngs_;
  std::map<std::string, Endpoint*> endpoints_;
  NetworkStats stats_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace cia::netsim
