// An in-process request/response network between Keylime components.
//
// Components implement Endpoint and attach under an address; callers make
// synchronous RPCs through SimNetwork. The network charges virtual latency
// to the shared clock and can inject faults (drops, payload tampering) so
// tests can exercise the verifier's handling of unreliable and hostile
// transports.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/types.hpp"

namespace cia::netsim {

/// A component reachable over the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Handle a request of the given kind; return the response payload.
  virtual Result<Bytes> handle(const std::string& kind, const Bytes& payload) = 0;
};

/// Fault-injection knobs.
struct FaultConfig {
  double drop_rate = 0.0;    // probability a call fails with kUnavailable
  double tamper_rate = 0.0;  // probability the response payload is corrupted
  SimTime latency = 0;       // virtual seconds charged per round trip
};

/// Counters for observability and tests.
struct NetworkStats {
  std::uint64_t calls = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tampered = 0;
  std::uint64_t unroutable = 0;
};

class SimNetwork {
 public:
  SimNetwork(SimClock* clock, std::uint64_t seed);

  /// Attach an endpoint at `address`; replaces any previous binding.
  void attach(const std::string& address, Endpoint* endpoint);
  void detach(const std::string& address);

  void set_faults(const FaultConfig& faults) { faults_ = faults; }

  /// Synchronous RPC. Applies latency and fault injection, then invokes
  /// the destination endpoint's handler.
  Result<Bytes> call(const std::string& to, const std::string& kind,
                     const Bytes& payload);

  const NetworkStats& stats() const { return stats_; }

 private:
  SimClock* clock_;
  Rng rng_;
  FaultConfig faults_;
  std::map<std::string, Endpoint*> endpoints_;
  NetworkStats stats_;
};

}  // namespace cia::netsim
