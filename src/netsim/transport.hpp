// A reliability layer over SimNetwork: bounded retries with exponential
// backoff and deterministic jitter, a per-call virtual-time budget, and a
// per-address circuit breaker.
//
// Components stack this between themselves and the raw network so that
// transient faults (drops, timeouts, short outages) are absorbed before
// they can surface as attestation failures. Only after the retry budget
// is exhausted does the caller see an error — and once an address fails
// persistently, the breaker opens and fails fast instead of burning the
// caller's time on a dead peer, re-probing after a cooldown.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "netsim/network.hpp"
#include "telemetry/trace.hpp"

namespace cia::netsim {

struct RetryPolicy {
  int max_attempts = 4;          // total tries per logical call
  SimTime base_backoff = 1;      // delay before the first retry
  SimTime max_backoff = 60;      // backoff ceiling
  SimTime call_budget = 5 * kMinute;  // virtual seconds one call may consume
  int breaker_threshold = 8;     // consecutive failed calls to open the breaker
  SimTime breaker_cooldown = 5 * kMinute;  // open duration before a half-open probe
};

/// Per-address circuit-breaker state.
enum class BreakerState {
  kClosed,    // healthy, calls flow
  kOpen,      // failing fast, no calls until the cooldown elapses
  kHalfOpen,  // cooldown elapsed; the next call is a probe
};

class RetryingTransport : public Transport {
 public:
  struct Stats {
    std::uint64_t calls = 0;       // logical calls
    std::uint64_t attempts = 0;    // network sends (>= calls)
    std::uint64_t retries = 0;     // attempts beyond the first
    std::uint64_t recovered = 0;   // calls that failed at least once but succeeded
    std::uint64_t giveups = 0;     // calls that exhausted the retry budget
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_fastfails = 0;  // calls rejected while open
  };

  RetryingTransport(SimNetwork* network, SimClock* clock, std::uint64_t seed,
                    RetryPolicy policy = {});

  /// A logical RPC: retried on kUnavailable until it succeeds, the
  /// attempt count runs out, or the call budget is spent. Non-transient
  /// errors (protocol violations, handler errors) are returned as-is —
  /// retrying cannot fix a malformed request.
  Result<Bytes> call(const std::string& to, const std::string& kind,
                     const Bytes& payload) override;

  BreakerState breaker_state(const std::string& address) const;
  const Stats& stats() const { return stats_; }

  /// Export per-link counters (cia_transport_*_total{link=...}), an
  /// attempts-per-call histogram, and breaker state-transition counters
  /// to `metrics`; wrap every logical call in a `transport_call` span on
  /// `tracer`, annotated with attempts/outcome, so retries show up
  /// nested inside whatever the caller was doing. Either may be nullptr.
  void use_telemetry(telemetry::MetricsRegistry* metrics,
                     telemetry::Tracer* tracer = nullptr) {
    metrics_ = metrics;
    tracer_ = tracer;
  }

 private:
  void count_breaker_transition(const std::string& address, const char* to);
  struct Breaker {
    int consecutive_failures = 0;
    SimTime open_until = 0;
    bool open = false;
  };

  SimNetwork* network_;
  SimClock* clock_;
  Rng rng_;
  RetryPolicy policy_;
  std::map<std::string, Breaker> breakers_;
  Stats stats_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
};

}  // namespace cia::netsim
