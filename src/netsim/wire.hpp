// Wire serialization for messages exchanged between Keylime components.
//
// A tiny length-prefixed binary format: big-endian fixed-width integers,
// u64-length-prefixed strings/blobs. Readers validate bounds and fail
// cleanly on truncated or trailing data, since attested agents are
// untrusted and their responses travel a (simulated) hostile network.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace cia::netsim {

/// Serializer.
class WireWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_bool(bool v);
  void put_string(const std::string& s);
  void put_bytes(const Bytes& b);
  void put_digest(const crypto::Digest& d);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked deserializer.
class WireReader {
 public:
  explicit WireReader(const Bytes& data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<bool> boolean();
  Result<std::string> string();
  Result<Bytes> bytes();
  Result<crypto::Digest> digest();

  /// Like string(), but borrows the reader's backing buffer instead of
  /// copying — the view is valid only while that buffer outlives it.
  /// Hot-path decoders use this to avoid one allocation per field.
  Result<std::string_view> string_view();

  /// True when all input has been consumed.
  bool at_end() const { return pos_ == data_.size(); }

  /// Bytes not yet consumed. Decoders use this to sanity-check embedded
  /// element counts before reserving memory for them.
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace cia::netsim
