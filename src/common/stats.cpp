#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/strutil.hpp"

namespace cia {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double var = 0.0;
    for (double x : xs) var += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(xs.size() - 1));
  }
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::string ascii_series(const std::vector<double>& xs,
                         const std::string& x_label,
                         const std::string& y_label, int width) {
  std::string out = strformat("  %-6s | %s\n", x_label.c_str(), y_label.c_str());
  out += "  -------+" + std::string(static_cast<std::size_t>(width) + 12, '-') + "\n";
  double max = 0.0;
  for (double x : xs) max = std::max(max, x);
  if (max <= 0.0) max = 1.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const int bar = static_cast<int>(xs[i] / max * width + 0.5);
    out += strformat("  %-6zu | %-*s %10.2f\n", i + 1, width,
                     std::string(static_cast<std::size_t>(bar), '#').c_str(),
                     xs[i]);
  }
  return out;
}

}  // namespace cia
