// Deterministic pseudo-random number generation.
//
// All stochastic processes in the simulation (package release streams,
// file sizes, attack timing jitter) draw from Rng so experiments are
// exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace cia {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Standard normal (Box-Muller).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Heavy right tail, used for package
  /// sizes and update burst sizes.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

  /// Poisson-distributed count (Knuth's method; lambda should be modest).
  int poisson(double lambda);

  /// Random lowercase-alphanumeric identifier of length n.
  std::string ident(std::size_t n);

  /// n random bytes.
  Bytes bytes(std::size_t n);

  /// Derive an independent child generator (stable for a given label).
  Rng fork(const std::string& label);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace cia
