#include "common/log.hpp"

#include <cstdio>

namespace cia {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogObserver g_observer;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// key=value needs quoting only when the value has spaces, quotes, or
/// equals signs; quoted values escape backslash and double quote.
std::string render_field_value(const std::string& value) {
  bool needs_quotes = value.empty();
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_observer(LogObserver observer) {
  g_observer = std::move(observer);
}

bool log_line_enabled(LogLevel level) {
  const bool observed =
      level >= LogLevel::kWarn && level != LogLevel::kOff && g_observer;
  return observed || level >= g_level;
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  log_line(level, component, message, LogFields{});
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message, const LogFields& fields) {
  const bool observed =
      level >= LogLevel::kWarn && level != LogLevel::kOff && g_observer;
  if (!observed && level < g_level) return;
  std::string line = message;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    line += render_field_value(value);
  }
  // The observer fires on every warning/error regardless of verbosity:
  // counters must not depend on whether anyone was watching the tty.
  if (observed) g_observer(level, component, line);
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               line.c_str());
}

}  // namespace cia
