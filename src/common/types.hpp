// Basic shared type aliases for the cia library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cia {

/// Raw byte buffer used throughout the library for hashes, file content,
/// serialized messages, and signatures.
using Bytes = std::vector<std::uint8_t>;

/// Convert a string to bytes (no encoding transformation).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Convert bytes to a string (no encoding transformation).
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Append `src` to `dst`.
inline void append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace cia
