// Descriptive statistics used by the experiment drivers when reproducing
// the paper's figures and tables.
#pragma once

#include <string>
#include <vector>

namespace cia {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Compute summary statistics; returns zeros for an empty input.
Summary summarize(const std::vector<double>& xs);

/// p-th percentile (0..100) by linear interpolation.
double percentile(std::vector<double> xs, double p);

/// Render an ASCII bar chart: one row per value, used to print the
/// paper's figures (3, 4, 5) as day-indexed series.
std::string ascii_series(const std::vector<double>& xs,
                         const std::string& x_label,
                         const std::string& y_label, int width = 50);

}  // namespace cia
