// A lightweight Result<T> type for recoverable errors.
//
// The library uses Result for operations whose failure is part of normal
// control flow (filesystem lookups, protocol validation, policy checks).
// Programming errors use assertions/exceptions instead.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace cia {

/// Error categories used across modules.
enum class Errc {
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kCorrupted,
  kCryptoFailure,
  kProtocolViolation,
  kPolicyViolation,
  kUnavailable,
  kInternal,
};

/// Human-readable name of an error code.
inline const char* errc_name(Errc c) {
  switch (c) {
    case Errc::kNotFound: return "not_found";
    case Errc::kAlreadyExists: return "already_exists";
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kPermissionDenied: return "permission_denied";
    case Errc::kCorrupted: return "corrupted";
    case Errc::kCryptoFailure: return "crypto_failure";
    case Errc::kProtocolViolation: return "protocol_violation";
    case Errc::kPolicyViolation: return "policy_violation";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kInternal: return "internal";
  }
  return "unknown";
}

/// An error value: category plus a context message.
struct Error {
  Errc code = Errc::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error err(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace cia
