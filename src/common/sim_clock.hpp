// Virtual time for the simulation.
//
// Experiments covering 66 days run in milliseconds of real time; every
// component reads time through SimClock so overheads reported by the
// CostModel-driven code appear as virtual elapsed time.
#pragma once

#include <cstdint>
#include <string>

namespace cia {

/// Seconds since the simulated epoch (day 0, 00:00:00).
using SimTime = std::int64_t;

constexpr SimTime kSecond = 1;
constexpr SimTime kMinute = 60;
constexpr SimTime kHour = 3600;
constexpr SimTime kDay = 86400;

/// A monotonically advancing virtual clock.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime now() const { return now_; }

  /// Advance by `delta` seconds (must be >= 0).
  void advance(SimTime delta);

  /// Jump forward to an absolute time (no-op if already past it).
  void advance_to(SimTime t);

  /// Day index (0-based) of the current time.
  int day() const { return static_cast<int>(now_ / kDay); }

  /// Seconds elapsed since midnight of the current day.
  SimTime time_of_day() const { return now_ % kDay; }

  /// Format as "day D HH:MM:SS".
  std::string to_string() const;

 private:
  SimTime now_ = 0;
};

/// Format a duration in seconds as "H:MM:SS" or "M:SS".
std::string format_duration(SimTime seconds);

}  // namespace cia
