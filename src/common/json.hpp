// A minimal JSON value type, parser, and serializer.
//
// Real Keylime exchanges runtime policies, agent metadata, and API
// payloads as JSON; this module provides just enough of RFC 8259 for
// those uses: objects, arrays, strings (with escape handling), integral
// and floating numbers, booleans, and null. The parser is recursive
// descent with a depth limit and precise error messages.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace cia::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value (tagged union).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}              // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Value(double n) : type_(Type::kNumber), number_(n) {}      // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}            // NOLINT
  Value(std::int64_t n) : Value(static_cast<double>(n)) {}   // NOLINT
  Value(std::size_t n) : Value(static_cast<double>(n)) {}    // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {} // NOLINT
  Value(std::string s)                                       // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Value(Array a);   // NOLINT
  Value(Object o);  // NOLINT

  Value(const Value&);
  Value(Value&&) noexcept;
  Value& operator=(const Value&);
  Value& operator=(Value&&) noexcept;
  ~Value();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Accessors assert on type mismatch (use is_*() first on untrusted data).
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object field lookup; returns nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Set an object field (converts a null value into an empty object).
  Value& set(const std::string& key, Value v);

  /// Append to an array (converts a null value into an empty array).
  void push_back(Value v);

  /// Compact serialization.
  std::string dump() const;

  /// Pretty-printed serialization (2-space indent).
  std::string pretty() const;

  bool operator==(const Value& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  void destroy();
  void copy_from(const Value& other);
  void move_from(Value&& other) noexcept;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::unique_ptr<Array> array_;
  std::unique_ptr<Object> object_;
};

/// Parse a JSON document. Enforces a nesting-depth limit and rejects
/// trailing garbage.
Result<Value> parse(const std::string& text);

/// Escape a string per JSON rules (used by dump(); exposed for tests).
std::string escape(const std::string& s);

}  // namespace cia::json
