#include "common/rng.hpp"

#include <cmath>

namespace cia {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a string, used for fork() label mixing.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 1e-300);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) {
  return uniform01() < p;
}

int Rng::poisson(double lambda) {
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform01();
  } while (p > limit);
  return k - 1;
}

std::string Rng::ident(std::size_t n) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kAlphabet[uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u64());
  return out;
}

Rng Rng::fork(const std::string& label) {
  return Rng(next_u64() ^ fnv1a(label));
}

}  // namespace cia
