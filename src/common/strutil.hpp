// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace cia {

/// Split `s` on `sep`; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char sep);

/// Join parts with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

/// Simple glob match supporting '*' (any run, including '/') and '?'.
/// Keylime exclude lists use these wildcards.
bool glob_match(const std::string& pattern, const std::string& text);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace cia
