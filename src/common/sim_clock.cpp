#include "common/sim_clock.hpp"

#include <cassert>
#include <cstdio>

namespace cia {

void SimClock::advance(SimTime delta) {
  assert(delta >= 0);
  now_ += delta;
}

void SimClock::advance_to(SimTime t) {
  if (t > now_) now_ = t;
}

std::string SimClock::to_string() const {
  char buf[64];
  const SimTime tod = time_of_day();
  std::snprintf(buf, sizeof(buf), "day %d %02d:%02d:%02d", day(),
                static_cast<int>(tod / kHour),
                static_cast<int>((tod % kHour) / kMinute),
                static_cast<int>(tod % kMinute));
  return buf;
}

std::string format_duration(SimTime seconds) {
  char buf[64];
  if (seconds >= kHour) {
    std::snprintf(buf, sizeof(buf), "%d:%02d:%02d",
                  static_cast<int>(seconds / kHour),
                  static_cast<int>((seconds % kHour) / kMinute),
                  static_cast<int>(seconds % kMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%d:%02d",
                  static_cast<int>(seconds / kMinute),
                  static_cast<int>(seconds % kMinute));
  }
  return buf;
}

}  // namespace cia
