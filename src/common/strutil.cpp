#include "common/strutil.hpp"

#include <cstdarg>
#include <cstdio>

namespace cia {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative wildcard matcher with backtracking for '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace cia
