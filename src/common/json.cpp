#include "common/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/strutil.hpp"

namespace cia::json {

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

Value::Value(Array a)
    : type_(Type::kArray), array_(std::make_unique<Array>(std::move(a))) {}

Value::Value(Object o)
    : type_(Type::kObject), object_(std::make_unique<Object>(std::move(o))) {}

Value::Value(const Value& other) { copy_from(other); }

Value::Value(Value&& other) noexcept { move_from(std::move(other)); }

Value& Value::operator=(const Value& other) {
  if (this != &other) {
    destroy();
    copy_from(other);
  }
  return *this;
}

Value& Value::operator=(Value&& other) noexcept {
  if (this != &other) {
    destroy();
    move_from(std::move(other));
  }
  return *this;
}

Value::~Value() = default;

void Value::destroy() {
  string_.clear();
  array_.reset();
  object_.reset();
  type_ = Type::kNull;
}

void Value::copy_from(const Value& other) {
  type_ = other.type_;
  bool_ = other.bool_;
  number_ = other.number_;
  string_ = other.string_;
  if (other.array_) array_ = std::make_unique<Array>(*other.array_);
  if (other.object_) object_ = std::make_unique<Object>(*other.object_);
}

void Value::move_from(Value&& other) noexcept {
  type_ = other.type_;
  bool_ = other.bool_;
  number_ = other.number_;
  string_ = std::move(other.string_);
  array_ = std::move(other.array_);
  object_ = std::move(other.object_);
  other.type_ = Type::kNull;
}

bool Value::as_bool() const {
  assert(is_bool());
  return bool_;
}

double Value::as_number() const {
  assert(is_number());
  return number_;
}

std::int64_t Value::as_int() const {
  assert(is_number());
  // llround on a value outside [INT64_MIN, INT64_MAX] is unspecified;
  // clamp so documents with absurd magnitudes decode deterministically.
  constexpr double kMax = 9223372036854775807.0;
  if (number_ >= kMax) return INT64_MAX;
  if (number_ <= -kMax) return INT64_MIN;
  return static_cast<std::int64_t>(std::llround(number_));
}

const std::string& Value::as_string() const {
  assert(is_string());
  return string_;
}

const Array& Value::as_array() const {
  assert(is_array());
  return *array_;
}

Array& Value::as_array() {
  assert(is_array());
  return *array_;
}

const Object& Value::as_object() const {
  assert(is_object());
  return *object_;
}

Object& Value::as_object() {
  assert(is_object());
  return *object_;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

Value& Value::set(const std::string& key, Value v) {
  if (is_null()) {
    type_ = Type::kObject;
    object_ = std::make_unique<Object>();
  }
  assert(is_object());
  return (*object_)[key] = std::move(v);
}

void Value::push_back(Value v) {
  if (is_null()) {
    type_ = Type::kArray;
    array_ = std::make_unique<Array>();
  }
  assert(is_array());
  array_->push_back(std::move(v));
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return *array_ == *other.array_;
    case Type::kObject: return *object_ == *other.object_;
  }
  return false;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(
                            indent >= 0 ? (depth + 1) * indent : 0),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent >= 0 ? depth * indent : 0), ' ');
  const char* nl = indent >= 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        out += strformat("%lld", static_cast<long long>(number_));
      } else {
        out += strformat("%.17g", number_);
      }
      break;
    }
    case Type::kString:
      out += "\"" + escape(string_) + "\"";
      break;
    case Type::kArray: {
      if (array_->empty()) {
        out += "[]";
        break;
      }
      out += "[";
      out += nl;
      for (std::size_t i = 0; i < array_->size(); ++i) {
        out += pad;
        (*array_)[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_->size()) out += ",";
        out += nl;
      }
      out += close_pad + "]";
      break;
    }
    case Type::kObject: {
      if (object_->empty()) {
        out += "{}";
        break;
      }
      out += "{";
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : *object_) {
        out += pad + "\"" + escape(key) + "\":";
        if (indent >= 0) out += " ";
        value.dump_to(out, indent, depth + 1);
        if (++i < object_->size()) out += ",";
        out += nl;
      }
      out += close_pad + "}";
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, -1, 0);
  return out;
}

std::string Value::pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

// --------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> parse_document() {
    skip_ws();
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  Error fail(const std::string& message) const {
    return err(Errc::kCorrupted,
               strformat("json: %s at offset %zu", message.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      return Value(std::move(s).take());
    }
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail(strformat("unexpected character '%c'", c));
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      return fail("malformed number '" + token + "'");
    }
    // An overflowing exponent ("1e999") yields infinity, which dump()
    // would render as a token no JSON parser accepts — reject it here so
    // every accepted document round-trips.
    if (!std::isfinite(value)) {
      return fail("number out of range '" + token + "'");
    }
    return Value(value);
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogates unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return fail(strformat("bad escape '\\%c'", esc));
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  Result<Value> parse_array(int depth) {
    if (!consume('[')) return fail("expected '['");
    Array out;
    skip_ws();
    if (consume(']')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      out.push_back(std::move(value).take());
      skip_ws();
      if (consume(']')) return Value(std::move(out));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Result<Value> parse_object(int depth) {
    if (!consume('{')) return fail("expected '{'");
    Object out;
    skip_ws();
    if (consume('}')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      out[std::move(key).take()] = std::move(value).take();
      skip_ws();
      if (consume('}')) return Value(std::move(out));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace cia::json
