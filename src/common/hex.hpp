// Hex encoding/decoding helpers.
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "common/types.hpp"

namespace cia {

/// Encode bytes as a lowercase hex string.
std::string to_hex(const Bytes& data);

/// Decode a hex string (case-insensitive). Fails on odd length or
/// non-hex characters.
Result<Bytes> from_hex(const std::string& hex);

/// Allocation-free strict decode of exactly `out_len` bytes: false
/// unless `hex` is 2*out_len valid hex characters. Parse hot paths use
/// this to fill fixed-size digests straight from a line slice.
bool hex_decode(std::string_view hex, std::uint8_t* out, std::size_t out_len);

}  // namespace cia
