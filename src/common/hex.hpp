// Hex encoding/decoding helpers.
#pragma once

#include <string>

#include "common/result.hpp"
#include "common/types.hpp"

namespace cia {

/// Encode bytes as a lowercase hex string.
std::string to_hex(const Bytes& data);

/// Decode a hex string (case-insensitive). Fails on odd length or
/// non-hex characters.
Result<Bytes> from_hex(const std::string& hex);

}  // namespace cia
