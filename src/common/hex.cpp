#include "common/hex.hpp"

namespace cia {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Result<Bytes> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return err(Errc::kInvalidArgument, "hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return err(Errc::kInvalidArgument, "non-hex character in input");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool hex_decode(std::string_view hex, std::uint8_t* out, std::size_t out_len) {
  if (hex.size() != out_len * 2) return false;
  for (std::size_t i = 0; i < out_len; ++i) {
    int hi = hex_value(hex[2 * i]);
    int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

}  // namespace cia
