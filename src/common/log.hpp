// Minimal leveled logger. Components log noteworthy events (attestation
// failures, policy pushes); tests keep the level at kWarn to stay quiet.
#pragma once

#include <string>

namespace cia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a log line at `level` with a component tag.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

#define CIA_LOG_DEBUG(component, msg) \
  ::cia::log_line(::cia::LogLevel::kDebug, (component), (msg))
#define CIA_LOG_INFO(component, msg) \
  ::cia::log_line(::cia::LogLevel::kInfo, (component), (msg))
#define CIA_LOG_WARN(component, msg) \
  ::cia::log_line(::cia::LogLevel::kWarn, (component), (msg))
#define CIA_LOG_ERROR(component, msg) \
  ::cia::log_line(::cia::LogLevel::kError, (component), (msg))

}  // namespace cia
