// Minimal leveled logger. Components log noteworthy events (attestation
// failures, policy pushes); tests keep the level at kWarn to stay quiet.
//
// Lines can carry structured `key=value` fields (appended after the
// message), and an observer hook sees every kWarn/kError line regardless
// of the print threshold — telemetry attaches a counter there
// (telemetry::attach_log_counter) so alert counts and the log can never
// diverge, even when the log itself is silenced.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace cia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Structured fields attached to a log line, rendered as ` key=value`.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// Set the global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Observes every kWarn/kError line (level, component, and the message
/// with its structured fields rendered), independent of the print
/// threshold. One observer at a time; nullptr detaches.
using LogObserver = std::function<void(
    LogLevel, const std::string& component, const std::string& message)>;
void set_log_observer(LogObserver observer);

/// True when a line at `level` would be delivered anywhere: printed
/// (level at or above the threshold) or handed to the warn/error
/// observer. Hot paths that would otherwise format messages and fields
/// per record (e.g. an alert storm of template-hash mismatches) check
/// this first so a silenced log costs nothing to not write.
bool log_line_enabled(LogLevel level);

/// Emit a log line at `level` with a component tag.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Same, with structured fields: "[WARN] comp: msg key=value key2=value2".
/// Values containing spaces or quotes are double-quoted and escaped.
void log_line(LogLevel level, const std::string& component,
              const std::string& message, const LogFields& fields);

#define CIA_LOG_DEBUG(component, msg) \
  ::cia::log_line(::cia::LogLevel::kDebug, (component), (msg))
#define CIA_LOG_INFO(component, msg) \
  ::cia::log_line(::cia::LogLevel::kInfo, (component), (msg))
#define CIA_LOG_WARN(component, msg) \
  ::cia::log_line(::cia::LogLevel::kWarn, (component), (msg))
#define CIA_LOG_ERROR(component, msg) \
  ::cia::log_line(::cia::LogLevel::kError, (component), (msg))

}  // namespace cia
