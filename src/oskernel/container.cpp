#include "oskernel/container.hpp"

namespace cia::oskernel {

Result<std::string> ContainerRuntime::create(const std::string& id,
                                             const ContainerImage& image) {
  if (containers_.count(id)) {
    return err(Errc::kAlreadyExists, "container exists: " + id);
  }
  const std::string root = root_of(id);
  if (Status s = machine_->fs().mount(root, vfs::FsType::kOverlayfs,
                                      /*namespace_truncated=*/true);
      !s.ok()) {
    return s.error();
  }
  for (const ContainerImageFile& f : image.files) {
    if (Status s = machine_->fs().create_file(root + f.path,
                                              to_bytes(f.content),
                                              f.executable);
        !s.ok()) {
      (void)machine_->fs().unmount(root);
      return s.error();
    }
  }
  containers_[id] = image.name;
  return root;
}

Status ContainerRuntime::destroy(const std::string& id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) {
    return err(Errc::kNotFound, "no such container: " + id);
  }
  containers_.erase(it);
  return machine_->fs().unmount(root_of(id));
}

Result<int> ContainerRuntime::exec(const std::string& id,
                                   const std::string& path_in_container) {
  auto host = host_path(id, path_in_container);
  if (!host.ok()) return host.error();
  return machine_->exec(host.value());
}

Result<std::string> ContainerRuntime::host_path(
    const std::string& id, const std::string& path_in_container) const {
  if (!containers_.count(id)) {
    return err(Errc::kNotFound, "no such container: " + id);
  }
  if (path_in_container.empty() || path_in_container[0] != '/') {
    return err(Errc::kInvalidArgument, "container path must be absolute");
  }
  return root_of(id) + path_in_container;
}

std::vector<std::string> ContainerRuntime::running() const {
  std::vector<std::string> out;
  out.reserve(containers_.size());
  for (const auto& [id, image] : containers_) {
    (void)image;
    out.push_back(id);
  }
  return out;
}

}  // namespace cia::oskernel
