#include "oskernel/machine.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strutil.hpp"

namespace cia::oskernel {

namespace {

/// Extract "#!<interpreter>" from a file's first line, if present.
std::optional<std::string> shebang_of(const Bytes& content) {
  if (content.size() < 3 || content[0] != '#' || content[1] != '!') {
    return std::nullopt;
  }
  std::string line;
  for (std::size_t i = 2; i < content.size() && content[i] != '\n'; ++i) {
    line.push_back(static_cast<char>(content[i]));
  }
  // Strip arguments ("#!/usr/bin/env python3" keeps just the first token
  // after env-resolution is out of scope here).
  const auto parts = split(line, ' ');
  for (const auto& p : parts) {
    if (!p.empty()) return p;
  }
  return std::nullopt;
}

}  // namespace

Machine::Machine(MachineConfig config, const crypto::CertificateAuthority& tpm_ca,
                 SimClock* clock)
    : config_(std::move(config)),
      clock_(clock),
      fs_(),
      tpm_("tpm-" + config_.hostname,
           to_bytes(strformat("machine-seed-%llu",
                              static_cast<unsigned long long>(config_.seed))),
           tpm_ca),
      ima_(config_.ima_policy, config_.ima_config, &fs_, &tpm_) {
  if (config_.mount_standard_filesystems) {
    // The standard mount table of an Ubuntu 22.04-like host; all Status
    // results are on a fresh tree and cannot fail. Note that /tmp lives on
    // the *root ext4* filesystem (the stock Ubuntu layout) — that detail
    // is load-bearing for P4: files in /tmp ARE measured by IMA while
    // being excluded by the Keylime policy.
    (void)fs_.mkdir_p("/tmp");
    (void)fs_.mount("/proc", vfs::FsType::kProcfs);
    (void)fs_.mount("/sys", vfs::FsType::kSysfs);
    (void)fs_.mount("/sys/kernel/debug", vfs::FsType::kDebugfs);
    (void)fs_.mount("/sys/kernel/security", vfs::FsType::kSecurityfs);
    (void)fs_.mount("/dev/shm", vfs::FsType::kTmpfs);
    (void)fs_.mount("/run", vfs::FsType::kTmpfs);
  }
  // The machine image ships a first-stage bootloader and the stock
  // secure-boot key database.
  (void)fs_.create_file(kBootloaderPath, to_bytes("efi:grub-2.06"), true);
  secureboot_keys_.push_back("db:microsoft-uefi-ca-2011");
  secureboot_keys_.push_back("db:canonical-master-2017");
  boot();
}

void Machine::enroll_secureboot_key(const std::string& fingerprint) {
  secureboot_keys_.push_back(fingerprint);
}

void Machine::measured_boot() {
  boot_event_log_.clear();
  const auto extend = [this](int pcr, const std::string& description,
                             const crypto::Digest& digest) {
    tpm_.extend(pcr, digest);
    boot_event_log_.push_back(BootEvent{pcr, description, digest});
  };

  // PCR 0: the platform firmware measures itself (SRTM).
  extend(0, "firmware " + config_.firmware_version,
         crypto::sha256("firmware:" + config_.firmware_version));
  // PCR 7: the secure-boot policy — which signing keys are enrolled.
  for (const std::string& key : secureboot_keys_) {
    extend(7, "secureboot key " + key, crypto::sha256("secureboot:" + key));
  }
  // PCR 4: the boot chain's executables — bootloader, then kernel image.
  auto bootloader = fs_.read_file(kBootloaderPath);
  extend(4, std::string("bootloader ") + kBootloaderPath,
         crypto::sha256(bootloader.ok() ? to_string(bootloader.value())
                                        : "missing-bootloader"));
  const std::string kernel_image = "/boot/vmlinuz-" + config_.kernel_version;
  auto kernel = fs_.read_file(kernel_image);
  extend(4, "kernel " + kernel_image,
         crypto::sha256(kernel.ok() ? to_string(kernel.value())
                                    : "builtin:" + config_.kernel_version));
}

void Machine::boot() {
  ++boot_count_;
  measured_boot();
  ima_.on_boot(strformat("%s:boot%d", config_.hostname.c_str(), boot_count_));

  // Boot-time persistence: module autoload, then systemd units.
  if (fs_.is_dir("/etc/modules-load.d")) {
    for (const std::string& conf : fs_.list_files("/etc/modules-load.d")) {
      auto content = fs_.read_file(conf);
      if (!content.ok()) continue;
      const std::string module_path = to_string(content.value());
      if (fs_.is_file(module_path)) {
        (void)load_kernel_module(module_path);
      }
    }
  }
  if (fs_.is_dir("/etc/systemd/system")) {
    for (const std::string& unit : fs_.list_files("/etc/systemd/system")) {
      if (!ends_with(unit, ".service")) continue;
      auto content = fs_.read_file(unit);
      if (!content.ok()) continue;
      // Units store "exec=<path>" on the first line.
      const auto lines = split(to_string(content.value()), '\n');
      for (const auto& line : lines) {
        if (starts_with(line, "exec=")) {
          const std::string exe = line.substr(5);
          if (fs_.is_file(exe)) (void)exec(exe);
        }
      }
    }
  }
}

Result<int> Machine::exec(const std::string& path) {
  auto st = fs_.stat(path);
  if (!st.ok()) return st.error();
  if (st.value().is_dir) {
    return err(Errc::kInvalidArgument, "is a directory: " + path);
  }
  if (!st.value().executable) {
    return err(Errc::kPermissionDenied, "not executable: " + path);
  }
  if (Status s = ima_.appraise(path); !s.ok()) return s.error();

  // BPRM_CHECK on the execve target (binary or shebang script).
  ima_.on_exec(path);

  // A shebang script causes the kernel to exec the interpreter next.
  auto content = fs_.read_file(path);
  if (content.ok()) {
    if (auto interp = shebang_of(content.value())) {
      if (fs_.is_file(*interp)) ima_.on_exec(*interp);
    }
  }

  Process p;
  p.pid = next_pid_++;
  p.exe_path = path;
  p.started_at = clock_->now();
  processes_.push_back(p);
  return p.pid;
}

Result<int> Machine::exec_via_interpreter(const std::string& interpreter,
                                          const std::string& script) {
  auto ist = fs_.stat(interpreter);
  if (!ist.ok()) return ist.error();
  if (!ist.value().executable) {
    return err(Errc::kPermissionDenied, "not executable: " + interpreter);
  }
  if (!fs_.is_file(script)) {
    return err(Errc::kNotFound, "no such script: " + script);
  }
  // Appraisal covers the interpreter; the script is a data read — the
  // same blind spot P5 exploits for measurement applies to appraisal.
  if (Status s = ima_.appraise(interpreter); !s.ok()) return s.error();

  // The execve target is the interpreter — that is all BPRM_CHECK sees
  // (problem P5).
  ima_.on_exec(interpreter);

  // The interpreter then open()s the script. Whether that open carries an
  // executable marking depends on script-execution-control support.
  const bool sec_marked =
      std::find(sec_aware_interpreters_.begin(), sec_aware_interpreters_.end(),
                interpreter) != sec_aware_interpreters_.end();
  ima_.on_open_read(script, sec_marked);

  Process p;
  p.pid = next_pid_++;
  p.exe_path = interpreter + " " + script;
  p.started_at = clock_->now();
  processes_.push_back(p);
  return p.pid;
}

void Machine::mmap_library(const std::string& path) {
  // Appraisal denies the mapping outright; otherwise it is measured.
  if (!ima_.appraise(path).ok()) return;
  ima_.on_mmap_exec(path);
}

void Machine::kill(int pid) {
  for (auto& p : processes_) {
    if (p.pid == pid) p.alive = false;
  }
}

Result<int> Machine::load_kernel_module(const std::string& path) {
  if (!fs_.is_file(path)) {
    return err(Errc::kNotFound, "no such module: " + path);
  }
  if (Status s = ima_.appraise(path); !s.ok()) return s.error();
  ima_.on_module_load(path);
  modules_.push_back(path);
  return static_cast<int>(modules_.size());
}

void Machine::register_sec_aware_interpreter(const std::string& path) {
  sec_aware_interpreters_.push_back(path);
}

void Machine::reboot() {
  CIA_LOG_INFO("machine", config_.hostname + " rebooting");
  processes_.clear();
  modules_.clear();
  tpm_.reset();
  if (!pending_kernel_.empty()) {
    config_.kernel_version = pending_kernel_;
    pending_kernel_.clear();
  }
  // Volatile filesystems lose their contents across a reboot, and systemd
  // cleans /tmp at boot even though it sits on the root filesystem.
  for (const vfs::Mount& m : fs_.mounts()) {
    if (m.type == vfs::FsType::kTmpfs || m.type == vfs::FsType::kRamfs) {
      for (const std::string& f : fs_.list_files(m.mount_point)) {
        (void)fs_.unlink(f);
      }
    }
  }
  for (const std::string& f : fs_.list_files("/tmp")) {
    (void)fs_.unlink(f);
  }
  boot();
}

Status Machine::install_systemd_unit(const std::string& unit_name,
                                     const std::string& exe_path) {
  const std::string unit = "/etc/systemd/system/" + unit_name + ".service";
  if (fs_.exists(unit)) {
    return fs_.write_file(unit, to_bytes("exec=" + exe_path));
  }
  return fs_.create_file(unit, to_bytes("exec=" + exe_path), false);
}

Status Machine::install_module_autoload(const std::string& conf_name,
                                        const std::string& module_path) {
  const std::string conf = "/etc/modules-load.d/" + conf_name + ".conf";
  if (fs_.exists(conf)) {
    return fs_.write_file(conf, to_bytes(module_path));
  }
  return fs_.create_file(conf, to_bytes(module_path), false);
}

}  // namespace cia::oskernel
