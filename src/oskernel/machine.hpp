// A simulated Linux machine: VFS + TPM + IMA + a minimal process/exec
// model.
//
// The exec model captures exactly the distinctions the paper's P5 finding
// rests on:
//   * `exec("/path/bin")` — execve of a binary: BPRM_CHECK on the binary.
//   * `exec("/path/script.py")` where the file starts with `#!` — the
//     kernel measures the *script* at BPRM_CHECK and the interpreter is
//     measured when it is subsequently exec'd/mmap'd.
//   * `exec_via_interpreter("/usr/bin/python3", "/path/script.py")` — the
//     interpreter is the execve target (BPRM_CHECK on the interpreter);
//     the script is just a file the interpreter open()s and read()s.
//
// Boot follows the measured-boot chain of a real platform: the firmware
// measures itself into PCR 0, the bootloader binary (read from
// /boot/grub/grubx64.efi) into PCR 4, the secure-boot key state into
// PCR 7, and the booting kernel image into PCR 4 as well; IMA's
// boot_aggregate — the first measurement-list entry — is then the hash of
// PCRs 0-7, exactly as in the kernel's implementation. A tampered
// bootloader or kernel image therefore surfaces as a changed quote even
// before any IMA file measurement.
//
// Reboot semantics: processes die, loaded kernel modules unload, the TPM's
// PCRs reset, the measured-boot chain re-extends, IMA starts a fresh
// measurement list — and boot-time persistence (systemd units in
// /etc/systemd/system, module autoload configs in /etc/modules-load.d)
// re-executes, which is how "detectable upon reboot" outcomes arise.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "crypto/cert.hpp"
#include "ima/ima.hpp"
#include "tpm/tpm.hpp"
#include "vfs/vfs.hpp"

namespace cia::oskernel {

/// One TCG-style boot measurement event: which PCR was extended, with
/// what digest, and the human-readable description of the component.
/// The event log lets a verifier *reconstruct* the expected PCR values
/// and — crucially — see which component changed when they diverge.
struct BootEvent {
  int pcr = 0;
  std::string description;
  crypto::Digest digest{};
};

/// A running process record.
struct Process {
  int pid = 0;
  std::string exe_path;
  SimTime started_at = 0;
  bool alive = true;
};

/// Construction parameters for a machine.
struct MachineConfig {
  std::string hostname = "node0";
  std::uint64_t seed = 1;
  std::string kernel_version = "5.15.0-101-generic";
  /// Platform firmware version, measured into PCR 0 at boot.
  std::string firmware_version = "edk2-2023.05";
  ima::ImaPolicy ima_policy = ima::ImaPolicy::keylime_recommended();
  ima::ImaConfig ima_config;
  /// Standard pseudo/volatile filesystems are mounted unless disabled.
  bool mount_standard_filesystems = true;
};

/// One simulated host with a TPM, running IMA.
class Machine {
 public:
  Machine(MachineConfig config, const crypto::CertificateAuthority& tpm_ca,
          SimClock* clock);

  const std::string& hostname() const { return config_.hostname; }
  const std::string& kernel_version() const { return config_.kernel_version; }
  SimClock& clock() { return *clock_; }

  vfs::Vfs& fs() { return fs_; }
  const vfs::Vfs& fs() const { return fs_; }
  tpm::Tpm2& tpm() { return tpm_; }
  ima::Ima& ima() { return ima_; }
  const ima::Ima& ima() const { return ima_; }

  // ------------------------------------------------------------ processes

  /// execve() a file. Requires the exec bit. Shebang files measure the
  /// script itself (BPRM_CHECK) and then the interpreter.
  Result<int> exec(const std::string& path);

  /// Run `script` through `interpreter` (e.g. `python3 script.py`).
  /// The script needs no exec bit; only the interpreter hits BPRM_CHECK.
  /// The script's open is SEC-marked iff the interpreter is registered as
  /// script-execution-control aware.
  Result<int> exec_via_interpreter(const std::string& interpreter,
                                   const std::string& script);

  /// Dynamic libraries a process maps (FILE_MMAP measurements).
  void mmap_library(const std::string& path);

  void kill(int pid);
  const std::vector<Process>& processes() const { return processes_; }

  // -------------------------------------------------------- kernel modules

  /// insmod: loads a .ko (MODULE_CHECK measurement). No exec bit needed.
  Result<int> load_kernel_module(const std::string& path);
  const std::vector<std::string>& loaded_modules() const { return modules_; }

  // ------------------------------------------------------------ interpreters

  /// Register an interpreter binary that participates in "script execution
  /// control" (the P5 mitigation); its script opens are SEC-marked.
  void register_sec_aware_interpreter(const std::string& path);

  // --------------------------------------------------------------- reboot

  /// Reboot: kill processes, unload modules, reset PCRs, restart IMA, and
  /// replay boot-time persistence (systemd units, modules-load.d).
  void reboot();

  int boot_count() const { return boot_count_; }

  /// A newly installed kernel takes effect at the next reboot (§III-C
  /// "Handling Kernel Modules": it "will not run before rebooting").
  void schedule_kernel(const std::string& version) { pending_kernel_ = version; }
  const std::string& pending_kernel() const { return pending_kernel_; }

  // ------------------------------------------------- persistence helpers

  /// Install a systemd unit that executes `exe_path` at every boot.
  Status install_systemd_unit(const std::string& unit_name,
                              const std::string& exe_path);

  /// Configure a kernel module to load at every boot.
  Status install_module_autoload(const std::string& conf_name,
                                 const std::string& module_path);

  /// Enrolled secure-boot signing keys (their fingerprints extend PCR 7).
  void enroll_secureboot_key(const std::string& fingerprint);

  /// The TCG event log of the current boot (in extension order).
  const std::vector<BootEvent>& boot_event_log() const {
    return boot_event_log_;
  }

  /// Path of the first-stage bootloader measured into PCR 4.
  static constexpr const char* kBootloaderPath = "/boot/grub/grubx64.efi";

 private:
  void boot();
  void measured_boot();

  MachineConfig config_;
  SimClock* clock_;
  vfs::Vfs fs_;
  tpm::Tpm2 tpm_;
  ima::Ima ima_;
  std::vector<Process> processes_;
  std::vector<std::string> modules_;
  std::vector<std::string> sec_aware_interpreters_;
  std::vector<std::string> secureboot_keys_;
  std::vector<BootEvent> boot_event_log_;
  std::string pending_kernel_;
  int next_pid_ = 100;
  int boot_count_ = 0;
};

}  // namespace cia::oskernel
