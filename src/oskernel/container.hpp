// A minimal OCI-style container runtime on top of the VFS.
//
// The paper observes that the SNAP path-truncation false positive "is not
// specific to SNAPs but would occur to any containerized execution, or
// files executed under chroot" (§III-B). This runtime makes that
// generalization executable: each container is an overlayfs mount whose
// mount namespace truncates the paths IMA records, and overlayfs itself
// is one of the filesystems the stock IMA policy skips wholesale (P3).
// Containerized workloads are therefore doubly problematic for
// attestation: either invisible (stock policy) or visible under rootfs-
// relative paths that collide with host policy entries (enriched policy).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "oskernel/machine.hpp"

namespace cia::oskernel {

/// One file inside a container image.
struct ContainerImageFile {
  std::string path;  // rootfs-relative, e.g. "/usr/bin/app"
  std::string content;
  bool executable = true;
};

/// A container image: a named bundle of files.
struct ContainerImage {
  std::string name;  // e.g. "nginx:1.25"
  std::vector<ContainerImageFile> files;
};

/// Manages container lifecycles on one machine.
class ContainerRuntime {
 public:
  explicit ContainerRuntime(Machine* machine) : machine_(machine) {}

  /// Create a container from an image: mounts an overlayfs at
  /// /var/lib/containers/<id> (namespace-truncated) and populates it.
  Result<std::string> create(const std::string& id, const ContainerImage& image);

  /// Remove a container and its mount.
  Status destroy(const std::string& id);

  /// Exec a rootfs-relative path inside the container (the host-side path
  /// is resolved through the container root). IMA observes the
  /// *container-relative* path, exactly like the SNAP case.
  Result<int> exec(const std::string& id, const std::string& path_in_container);

  /// Host path of a file inside the container.
  Result<std::string> host_path(const std::string& id,
                                const std::string& path_in_container) const;

  std::vector<std::string> running() const;

 private:
  std::string root_of(const std::string& id) const {
    return "/var/lib/containers/" + id;
  }

  Machine* machine_;
  std::map<std::string, std::string> containers_;  // id -> image name
};

}  // namespace cia::oskernel
