// Package model for the simulated OS distribution.
//
// Mirrors the pieces of Debian/Ubuntu packaging the paper's dynamic
// policy generator consumes: package name/version/revision, the priority
// field (Essential..Extra), the suite a release lands in (Main, Security,
// Updates), and the file manifest with executable bits and sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace cia::pkg {

/// Debian priority levels. The paper groups Essential/Required/Important/
/// Standard as "high-priority" and Optional/Extra as "low-priority".
enum class Priority {
  kEssential,
  kRequired,
  kImportant,
  kStandard,
  kOptional,
  kExtra,
};

const char* priority_name(Priority p);

/// High-priority per the paper's grouping.
bool is_high_priority(Priority p);

/// Which sub-repository (suite) a package release lands in.
enum class Suite { kMain, kSecurity, kUpdates };

const char* suite_name(Suite s);

/// One file shipped by a package.
struct PackageFile {
  std::string path;        // absolute install path
  bool executable = false;
  std::uint64_t size = 0;  // on-disk size in bytes
  std::uint32_t content_rev = 0;  // bumps when an update rewrites the file

  /// Deterministic simulated file content: unique per (package, path,
  /// content revision), so hashes change exactly when updates rewrite.
  Bytes content(const std::string& package_name) const;

  /// SHA-256 of content().
  crypto::Digest content_hash(const std::string& package_name) const;
};

/// A package at a specific version.
struct Package {
  std::string name;
  std::uint32_t revision = 1;  // monotonically increasing
  Priority priority = Priority::kOptional;
  Suite suite = Suite::kMain;
  std::vector<PackageFile> files;

  /// Maintainer signature over manifest_tbs() (the §V "ostree-style"
  /// improvement: per-package file hashes signed at build time, so policy
  /// generators can verify provenance instead of trusting their own
  /// download path). Empty when the archive does not sign.
  Bytes manifest_signature;

  /// Kernel-module packages carry the kernel version they belong to
  /// (e.g. linux-modules-5.15.0-101); the policy generator treats them
  /// specially (§III-C "Handling Kernel Modules").
  std::string kernel_version;

  std::string version_string() const;

  /// The to-be-signed manifest: name, revision, and every file's path,
  /// mode, and content hash.
  Bytes manifest_tbs() const;

  /// Number of executable files.
  std::size_t executable_count() const;

  /// Total bytes of executable payload (what the generator must hash).
  std::uint64_t executable_bytes() const;

  /// Compressed download size (approximated as a fixed ratio of payload).
  std::uint64_t download_size() const;

  bool is_kernel_modules() const { return !kernel_version.empty(); }
};

}  // namespace cia::pkg
