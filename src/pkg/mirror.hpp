// A local mirror of the OS distribution archive.
//
// The paper's dynamic-policy scheme hinges on a data-center-controlled
// mirror: the mirror syncs from upstream on a schedule, the policy
// generator measures *from the mirror*, and agent machines update *from
// the mirror*. Anything released upstream after the last sync is
// invisible until the next sync — the root cause of the paper's one
// operator-error false positive (§III-D), where a machine was updated
// from the official archive directly.
#pragma once

#include <map>
#include <string>

#include "common/sim_clock.hpp"
#include "pkg/archive.hpp"

namespace cia::pkg {

class Mirror {
 public:
  explicit Mirror(const Archive* upstream) : upstream_(upstream) {}

  /// Snapshot the upstream index (rsync of Main/Security/Updates).
  void sync(SimTime now);

  bool has_synced() const { return last_sync_ >= 0; }
  SimTime last_sync() const { return last_sync_; }

  /// The mirrored index (as of the last sync). Empty before first sync.
  const std::map<std::string, Package>& index() const { return snapshot_; }

  const Package* find(const std::string& name) const;

 private:
  const Archive* upstream_;
  std::map<std::string, Package> snapshot_;
  SimTime last_sync_ = -1;
};

}  // namespace cia::pkg
