// A local mirror of the OS distribution archive.
//
// The paper's dynamic-policy scheme hinges on a data-center-controlled
// mirror: the mirror syncs from upstream on a schedule, the policy
// generator measures *from the mirror*, and agent machines update *from
// the mirror*. Anything released upstream after the last sync is
// invisible until the next sync — the root cause of the paper's one
// operator-error false positive (§III-D), where a machine was updated
// from the official archive directly.
//
// Syncs can fail or complete partially (network partition to upstream, a
// killed rsync). The mirror reports the outcome and its staleness so the
// update orchestrator can detect an unusable snapshot and defer the
// update window instead of generating a policy from half an index.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/sim_clock.hpp"
#include "pkg/archive.hpp"

namespace cia::pkg {

/// Injected failure mode for the next sync attempts.
enum class MirrorFault {
  kNone,     // syncs succeed
  kOffline,  // upstream unreachable: syncs fail, snapshot unchanged
  kPartial,  // sync dies mid-transfer: snapshot updated but incomplete
};

/// What one sync attempt did.
enum class SyncOutcome { kOk, kFailed, kPartial };

class Mirror {
 public:
  explicit Mirror(const Archive* upstream) : upstream_(upstream) {}

  /// Snapshot the upstream index (rsync of Main/Security/Updates).
  /// Under MirrorFault::kOffline the snapshot and last-sync time are
  /// left untouched; under kPartial only a prefix of the index lands and
  /// the snapshot is flagged incomplete.
  SyncOutcome sync(SimTime now);

  /// Script the failure mode of subsequent syncs (chaos injection).
  void set_fault(MirrorFault fault) { fault_ = fault; }
  MirrorFault fault() const { return fault_; }

  bool has_synced() const { return last_sync_ >= 0; }
  SimTime last_sync() const { return last_sync_; }

  /// Did the most recent completed sync transfer the full index?
  bool last_sync_complete() const { return last_sync_complete_; }

  /// Seconds since the last sync that updated the snapshot (SimTime max
  /// if none ever has).
  SimTime staleness(SimTime now) const;

  std::uint64_t failed_syncs() const { return failed_syncs_; }

  /// The mirrored index (as of the last sync). Empty before first sync.
  const std::map<std::string, Package>& index() const { return snapshot_; }

  const Package* find(const std::string& name) const;

 private:
  const Archive* upstream_;
  std::map<std::string, Package> snapshot_;
  SimTime last_sync_ = -1;
  bool last_sync_complete_ = true;
  MirrorFault fault_ = MirrorFault::kNone;
  std::uint64_t failed_syncs_ = 0;
};

}  // namespace cia::pkg
