#include "pkg/apt.hpp"

#include "common/log.hpp"
#include "common/strutil.hpp"

namespace cia::pkg {

Status AptClient::provision(const std::map<std::string, Package>& index,
                            const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    auto it = index.find(name);
    if (it == index.end()) {
      return err(Errc::kNotFound, "no such package: " + name);
    }
    if (Status s = install(it->second); !s.ok()) return s;
  }
  return Status::ok_status();
}

Status AptClient::install(const Package& pkg, UpgradeResult* result) {
  auto& fs = machine_->fs();
  for (const PackageFile& f : pkg.files) {
    // dpkg unpacks to <path>.dpkg-new and renames over the target, so the
    // installed file always carries a fresh inode.
    if (fs.exists(f.path)) {
      if (Status s = fs.unlink(f.path); !s.ok()) return s;
    }
    const std::string staged = f.path + ".dpkg-new";
    if (Status s = fs.create_file(staged, f.content(pkg.name), f.executable,
                                  f.size);
        !s.ok()) {
      return s;
    }
    if (Status s = fs.rename(staged, f.path); !s.ok()) return s;
    if (signer_) {
      if (Status s = fs.set_ima_xattr(f.path, signer_(pkg, f)); !s.ok()) {
        return s;
      }
    }
  }
  dpkg_db_[pkg.name] = pkg.revision;
  if (result) {
    result->bytes_downloaded += pkg.download_size();
    result->seconds += cost_.install_sec(pkg);
  }
  return Status::ok_status();
}

UpgradeResult AptClient::upgrade(const std::map<std::string, Package>& index) {
  UpgradeResult result;
  for (const auto& [name, revision] : dpkg_db_) {
    auto it = index.find(name);
    if (it == index.end() || it->second.revision <= revision) continue;
    result.upgraded.push_back(name);
  }
  for (const std::string& name : result.upgraded) {
    if (Status s = install(index.at(name), &result); !s.ok()) {
      CIA_LOG_ERROR("apt", "failed to install " + name + ": " +
                               s.error().to_string());
    }
  }
  machine_->clock().advance(static_cast<SimTime>(result.seconds));
  return result;
}

std::optional<UpgradeResult> UnattendedUpgrades::tick(SimTime now) {
  if (!enabled_) return std::nullopt;
  const int day = static_cast<int>(now / kDay);
  if (day == last_run_day_ || now % kDay < daily_at_) return std::nullopt;
  last_run_day_ = day;
  UpgradeResult result = apt_->upgrade(archive_->index());
  if (!result.upgraded.empty()) {
    CIA_LOG_INFO("unattended-upgrades",
                 strformat("day %d: upgraded %zu packages", day,
                           result.upgraded.size()));
  }
  return result;
}

}  // namespace cia::pkg
