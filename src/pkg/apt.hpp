// The package client on an agent machine (apt/dpkg analogue) and the
// unattended-upgrades daemon.
//
// Installing a package writes its files into the machine's VFS the way
// dpkg does — unpack to a temp name, then rename over the target — which
// means an updated file gets a *fresh inode* and IMA re-measures it on
// next execution. That mechanism is what turns an unscheduled OS update
// into a "hash mismatch" / "missing file in policy" false positive under
// a static Keylime policy (§III-B).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "oskernel/machine.hpp"
#include "pkg/archive.hpp"
#include "pkg/cost_model.hpp"
#include "pkg/package.hpp"

namespace cia::pkg {

/// Outcome of an apt upgrade run.
struct UpgradeResult {
  std::vector<std::string> upgraded;   // packages whose revision advanced
  std::vector<std::string> installed;  // brand-new installs
  std::uint64_t bytes_downloaded = 0;
  double seconds = 0.0;  // virtual install time (charged to the clock)
};

/// apt + dpkg state for one machine.
class AptClient {
 public:
  /// Produces the security.ima xattr for a file at install time (the
  /// signature ships inside signed packages; Archive::sign_file models
  /// the maintainer's build-time signing).
  using FileSigner = std::function<Bytes(const Package&, const PackageFile&)>;

  AptClient(oskernel::Machine* machine, CostModel cost)
      : machine_(machine), cost_(cost) {}

  /// Install security.ima xattrs from package signatures (IMA-appraised
  /// fleets). Applies to subsequent installs.
  void set_file_signer(FileSigner signer) { signer_ = std::move(signer); }

  /// Initial provisioning: install `names` from `index` without charging
  /// time (the machine image is assumed pre-baked).
  Status provision(const std::map<std::string, Package>& index,
                   const std::vector<std::string>& names);

  /// `apt upgrade` against a package index (the local mirror or the
  /// official archive): every installed package whose index revision is
  /// newer gets reinstalled. Charges virtual time to the machine clock.
  UpgradeResult upgrade(const std::map<std::string, Package>& index);

  /// `apt install` one package (also used by kernel updates).
  Status install(const Package& pkg, UpgradeResult* result = nullptr);

  /// Installed name -> revision.
  const std::map<std::string, std::uint32_t>& installed() const {
    return dpkg_db_;
  }

  bool is_installed(const std::string& name) const {
    return dpkg_db_.count(name) > 0;
  }

 private:
  oskernel::Machine* machine_;
  CostModel cost_;
  FileSigner signer_;
  std::map<std::string, std::uint32_t> dpkg_db_;
};

/// The unattended-upgrades daemon: runs `apt upgrade` from the *official*
/// archive at a fixed daily hour, as stock Ubuntu does unless configured
/// otherwise. This daemon is what breaks static policies in §III-B; the
/// paper's scheme disables it in favour of operator-scheduled updates
/// from the mirror.
class UnattendedUpgrades {
 public:
  UnattendedUpgrades(AptClient* apt, const Archive* archive,
                     SimTime daily_at = 6 * kHour)
      : apt_(apt), archive_(archive), daily_at_(daily_at) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Called as simulated time passes; fires at most once per day at the
  /// configured hour. Returns the upgrade result if it ran.
  std::optional<UpgradeResult> tick(SimTime now);

 private:
  AptClient* apt_;
  const Archive* archive_;
  SimTime daily_at_;
  bool enabled_ = true;
  int last_run_day_ = -1;
};

}  // namespace cia::pkg
