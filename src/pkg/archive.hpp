// The upstream OS distribution archive and its release stream.
//
// The archive plays the role of archive.ubuntu.com: it holds the current
// index of every package in the Main/Security/Updates suites and releases
// a stochastic stream of package updates, one batch per day, drawn from a
// seeded generator whose parameters are calibrated so the daily stream
// statistics match the paper's measurements (Fig. 4: mean 16.5 updated
// packages/day with a heavy tail, 0.9 high-priority; Fig. 5: ~1.3k policy
// file entries per daily update).
//
// Update selection is Zipf-weighted: a small set of hot packages receives
// a disproportionate share of updates. This is what makes *weekly* update
// batches contain fewer distinct packages than 7x the daily count
// (Table I: 79 vs 7x16.5 = 115), because repeat updates to the same
// package within the window coalesce.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "crypto/schnorr.hpp"
#include "pkg/package.hpp"

namespace cia::pkg {

/// Tunable parameters of the synthetic distribution.
struct ArchiveConfig {
  std::size_t base_package_count = 1500;

  // Files per package: round(lognormal(mu, sigma)) clamped to [min, max].
  double files_mu = 3.84;
  double files_sigma = 1.0;
  std::size_t files_min = 2;
  std::size_t files_max = 1200;
  double file_exec_prob = 0.8;

  // File sizes in bytes: lognormal.
  double file_size_mu = 10.6;
  double file_size_sigma = 1.3;

  // Updated packages per release day: round(lognormal(mu, sigma)). The mu
  // is set above ln(16.5) - sigma^2/2 because same-day repeat draws of hot
  // packages coalesce; the post-coalescing mean matches Fig. 4's 16.5.
  double daily_updates_mu = 2.50;
  double daily_updates_sigma = 1.136;

  // Zipf exponent for picking which packages update.
  double zipf_s = 1.0;

  // Probability an update event introduces a brand-new package.
  double new_package_prob = 0.02;
  // Probability an updated package gains a new file.
  double add_file_prob = 0.12;
  // Probability an individual file is rewritten by its package's update.
  double file_rewrite_prob = 0.9;

  // Kernel releases: a new kernel version (image + modules packages)
  // appears with this per-day probability.
  double kernel_release_prob = 1.0 / 18.0;
  std::size_t kernel_module_count = 350;

  /// Sign every package manifest with the distribution maintainer key
  /// (the §V ostree-style provenance improvement).
  bool sign_manifests = true;

  // Priority mix (must sum to <= 1; remainder is Extra).
  double p_essential = 0.015;
  double p_required = 0.015;
  double p_important = 0.010;
  double p_standard = 0.015;
  double p_optional = 0.80;
};

/// What one release day produced.
struct ReleaseEvent {
  int day = 0;
  SimTime release_time = 0;           // absolute sim time of publication
  std::vector<std::string> updated;   // existing packages that changed
  std::vector<std::string> added;     // brand-new packages
  bool kernel_release = false;
  std::string new_kernel_version;
};

class Archive {
 public:
  Archive(ArchiveConfig config, std::uint64_t seed);

  /// Current package index (latest version of everything).
  const std::map<std::string, Package>& index() const { return index_; }

  const Package* find(const std::string& name) const;

  /// Release day `day`'s update batch (idempotent per day; call once).
  /// Publication lands at a random daytime hour of that day.
  ReleaseEvent release_day(int day);

  const std::vector<ReleaseEvent>& history() const { return history_; }

  /// The newest released kernel version.
  const std::string& current_kernel_version() const { return kernel_version_; }

  /// Total executable files across the index (the size of a full policy).
  std::size_t total_executable_files() const;

  const ArchiveConfig& config() const { return config_; }

  /// The distribution maintainer's manifest-signing key.
  const crypto::PublicKey& maintainer_key() const { return maintainer_.pub; }

  /// Per-file IMA signature (security.ima content) by the maintainer —
  /// what a signed distribution would ship inside each package so IMA
  /// appraisal can enforce provenance on the running fleet.
  Bytes sign_file(const Package& pkg, const PackageFile& file) const;

 private:
  std::string make_kernel_version(int serial) const;
  void sign_manifest(Package& pkg) const;
  Package make_package(const std::string& name, Suite suite);
  void add_kernel_packages(const std::string& kver, Suite suite);
  void update_package(Package& pkg, Suite suite);
  std::string pick_zipf_package();

  ArchiveConfig config_;
  Rng rng_;
  crypto::KeyPair maintainer_;
  std::map<std::string, Package> index_;
  std::vector<std::string> update_pool_;  // rank order for Zipf selection
  std::vector<double> zipf_cumulative_;   // rebuilt when the pool grows
  std::vector<ReleaseEvent> history_;
  std::string kernel_version_;
  int kernel_serial_ = 101;
  int next_new_package_ = 0;
};

}  // namespace cia::pkg
