#include "pkg/package.hpp"

#include "common/strutil.hpp"

namespace cia::pkg {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kEssential: return "Essential";
    case Priority::kRequired: return "Required";
    case Priority::kImportant: return "Important";
    case Priority::kStandard: return "Standard";
    case Priority::kOptional: return "Optional";
    case Priority::kExtra: return "Extra";
  }
  return "?";
}

bool is_high_priority(Priority p) {
  switch (p) {
    case Priority::kEssential:
    case Priority::kRequired:
    case Priority::kImportant:
    case Priority::kStandard:
      return true;
    case Priority::kOptional:
    case Priority::kExtra:
      return false;
  }
  return false;
}

const char* suite_name(Suite s) {
  switch (s) {
    case Suite::kMain: return "Main";
    case Suite::kSecurity: return "Security";
    case Suite::kUpdates: return "Updates";
  }
  return "?";
}

Bytes PackageFile::content(const std::string& package_name) const {
  return to_bytes(strformat("pkg:%s:%s:r%u", package_name.c_str(), path.c_str(),
                            content_rev));
}

crypto::Digest PackageFile::content_hash(const std::string& package_name) const {
  return crypto::sha256(content(package_name));
}

std::string Package::version_string() const {
  return strformat("1.%u-ubuntu1", revision);
}

Bytes Package::manifest_tbs() const {
  Bytes out = to_bytes("manifest:" + name + ":" + version_string() + "\n");
  for (const auto& f : files) {
    append(out, to_bytes(strformat("%s %c %s\n", f.path.c_str(),
                                   f.executable ? 'x' : '-',
                                   crypto::digest_hex(f.content_hash(name))
                                       .c_str())));
  }
  return out;
}

std::size_t Package::executable_count() const {
  std::size_t n = 0;
  for (const auto& f : files) {
    if (f.executable) ++n;
  }
  return n;
}

std::uint64_t Package::executable_bytes() const {
  std::uint64_t n = 0;
  for (const auto& f : files) {
    if (f.executable) n += f.size;
  }
  return n;
}

std::uint64_t Package::download_size() const {
  std::uint64_t total = 0;
  for (const auto& f : files) total += f.size;
  // deb payloads compress roughly 3:1 for mixed binary content.
  return total / 3 + 1024;
}

}  // namespace cia::pkg
