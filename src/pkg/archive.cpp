#include "pkg/archive.hpp"

#include <algorithm>
#include <cmath>

#include "common/strutil.hpp"

namespace cia::pkg {

namespace {

/// A handful of real package names seed the pool so examples read
/// naturally; the rest are synthetic.
const char* kWellKnown[] = {
    "bash",    "coreutils", "python3",  "openssl", "libc6",
    "systemd", "curl",      "openssh",  "sudo",    "tar",
    "gzip",    "vim",       "less",     "grep",    "findutils",
};

}  // namespace

Archive::Archive(ArchiveConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      maintainer_(crypto::derive_keypair(
          to_bytes(strformat("maintainer-%llu",
                             static_cast<unsigned long long>(seed))),
          "archive-maintainer")) {
  // Base suite: well-known packages first (they take the hottest Zipf
  // ranks, mimicking the frequently-patched core of a distribution).
  for (const char* name : kWellKnown) {
    if (update_pool_.size() >= config_.base_package_count) break;
    index_.emplace(name, make_package(name, Suite::kMain));
    update_pool_.push_back(name);
  }
  for (std::size_t i = update_pool_.size(); i < config_.base_package_count; ++i) {
    const std::string name = strformat("pkg-%04zu", i);
    index_.emplace(name, make_package(name, Suite::kMain));
    update_pool_.push_back(name);
  }
  kernel_version_ = make_kernel_version(kernel_serial_);
  add_kernel_packages(kernel_version_, Suite::kMain);
}

std::string Archive::make_kernel_version(int serial) const {
  return strformat("5.15.0-%d-generic", serial);
}

void Archive::sign_manifest(Package& pkg) const {
  if (!config_.sign_manifests) return;
  pkg.manifest_signature = crypto::sign(maintainer_, pkg.manifest_tbs()).encode();
}

Package Archive::make_package(const std::string& name, Suite suite) {
  Package pkg;
  pkg.name = name;
  pkg.revision = 1;
  pkg.suite = suite;

  const double r = rng_.uniform01();
  if (r < config_.p_essential) {
    pkg.priority = Priority::kEssential;
  } else if (r < config_.p_essential + config_.p_required) {
    pkg.priority = Priority::kRequired;
  } else if (r < config_.p_essential + config_.p_required + config_.p_important) {
    pkg.priority = Priority::kImportant;
  } else if (r < config_.p_essential + config_.p_required + config_.p_important +
                     config_.p_standard) {
    pkg.priority = Priority::kStandard;
  } else if (r < config_.p_essential + config_.p_required + config_.p_important +
                     config_.p_standard + config_.p_optional) {
    pkg.priority = Priority::kOptional;
  } else {
    pkg.priority = Priority::kExtra;
  }

  const auto count = static_cast<std::size_t>(std::clamp(
      std::llround(rng_.lognormal(config_.files_mu, config_.files_sigma)),
      static_cast<long long>(config_.files_min),
      static_cast<long long>(config_.files_max)));
  pkg.files.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    PackageFile f;
    if (j == 0) {
      f.path = "/usr/bin/" + name;
      f.executable = true;
    } else if (j == 1 && rng_.chance(0.3)) {
      f.path = "/usr/sbin/" + name + "d";
      f.executable = true;
    } else {
      f.path = strformat("/usr/lib/%s/lib%s-%zu.so", name.c_str(), name.c_str(), j);
      f.executable = rng_.chance(config_.file_exec_prob);
    }
    f.size = static_cast<std::uint64_t>(std::max(
        1.0, rng_.lognormal(config_.file_size_mu, config_.file_size_sigma)));
    f.content_rev = 1;
    pkg.files.push_back(std::move(f));
  }
  sign_manifest(pkg);
  return pkg;
}

void Archive::add_kernel_packages(const std::string& kver, Suite suite) {
  Package image;
  image.name = "linux-image-" + kver;
  image.suite = suite;
  image.priority = Priority::kImportant;
  image.kernel_version = kver;
  PackageFile vmlinuz;
  vmlinuz.path = "/boot/vmlinuz-" + kver;
  vmlinuz.executable = true;
  vmlinuz.size = 12 * 1024 * 1024;
  vmlinuz.content_rev = 1;
  image.files.push_back(vmlinuz);
  sign_manifest(image);
  index_.emplace(image.name, std::move(image));

  Package modules;
  modules.name = "linux-modules-" + kver;
  modules.suite = suite;
  modules.priority = Priority::kImportant;
  modules.kernel_version = kver;
  modules.files.reserve(config_.kernel_module_count);
  for (std::size_t j = 0; j < config_.kernel_module_count; ++j) {
    PackageFile mod;
    mod.path = strformat("/lib/modules/%s/kernel/mod%03zu.ko", kver.c_str(), j);
    mod.executable = true;  // kernel modules carry the exec bit on disk
    mod.size = static_cast<std::uint64_t>(
        std::max(1.0, rng_.lognormal(10.8, 0.8)));
    mod.content_rev = 1;
    modules.files.push_back(std::move(mod));
  }
  sign_manifest(modules);
  index_.emplace(modules.name, std::move(modules));
}

void Archive::update_package(Package& pkg, Suite suite) {
  ++pkg.revision;
  pkg.suite = suite;
  for (auto& f : pkg.files) {
    if (rng_.chance(config_.file_rewrite_prob)) f.content_rev = pkg.revision;
  }
  if (rng_.chance(config_.add_file_prob)) {
    PackageFile f;
    f.path = strformat("/usr/lib/%s/lib%s-new%u.so", pkg.name.c_str(),
                       pkg.name.c_str(), pkg.revision);
    f.executable = true;
    f.size = static_cast<std::uint64_t>(std::max(
        1.0, rng_.lognormal(config_.file_size_mu, config_.file_size_sigma)));
    f.content_rev = pkg.revision;
    pkg.files.push_back(std::move(f));
  }
  sign_manifest(pkg);
}

std::string Archive::pick_zipf_package() {
  if (zipf_cumulative_.size() != update_pool_.size()) {
    zipf_cumulative_.clear();
    zipf_cumulative_.reserve(update_pool_.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < update_pool_.size(); ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_s);
      zipf_cumulative_.push_back(sum);
    }
  }
  const double target = rng_.uniform01() * zipf_cumulative_.back();
  const auto it = std::lower_bound(zipf_cumulative_.begin(),
                                   zipf_cumulative_.end(), target);
  const std::size_t idx =
      static_cast<std::size_t>(it - zipf_cumulative_.begin());
  return update_pool_[std::min(idx, update_pool_.size() - 1)];
}

ReleaseEvent Archive::release_day(int day) {
  ReleaseEvent ev;
  ev.day = day;
  // Publication between 08:00 and 20:00.
  ev.release_time = static_cast<SimTime>(day) * kDay + 8 * kHour +
                    static_cast<SimTime>(rng_.uniform(12 * kHour));

  const auto count = static_cast<std::size_t>(std::max(
      0LL, std::llround(rng_.lognormal(config_.daily_updates_mu,
                                       config_.daily_updates_sigma))));
  for (std::size_t i = 0; i < count; ++i) {
    // Security and Updates dominate post-release churn.
    const Suite suite = rng_.chance(0.35) ? Suite::kSecurity : Suite::kUpdates;
    if (rng_.chance(config_.new_package_prob)) {
      const std::string name = strformat("pkg-new-%04d", next_new_package_++);
      index_.emplace(name, make_package(name, suite));
      update_pool_.push_back(name);  // coldest rank
      ev.added.push_back(name);
      continue;
    }
    const std::string name = pick_zipf_package();
    // A package already updated today coalesces into the same release.
    if (std::find(ev.updated.begin(), ev.updated.end(), name) !=
        ev.updated.end()) {
      continue;
    }
    update_package(index_.at(name), suite);
    ev.updated.push_back(name);
  }

  if (rng_.chance(config_.kernel_release_prob)) {
    ev.kernel_release = true;
    kernel_version_ = make_kernel_version(++kernel_serial_);
    ev.new_kernel_version = kernel_version_;
    add_kernel_packages(kernel_version_, Suite::kUpdates);
    ev.added.push_back("linux-image-" + kernel_version_);
    ev.added.push_back("linux-modules-" + kernel_version_);
  }

  history_.push_back(ev);
  return ev;
}

const Package* Archive::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &it->second;
}

Bytes Archive::sign_file(const Package& pkg, const PackageFile& file) const {
  return crypto::sign(maintainer_,
                      crypto::digest_bytes(file.content_hash(pkg.name)))
      .encode();
}

std::size_t Archive::total_executable_files() const {
  std::size_t n = 0;
  for (const auto& [name, pkg] : index_) {
    (void)name;
    n += pkg.executable_count();
  }
  return n;
}

}  // namespace cia::pkg
