#include "pkg/cost_model.hpp"

namespace cia::pkg {

double CostModel::package_processing_sec(const Package& pkg) const {
  double total = per_package_overhead_sec;
  total += static_cast<double>(pkg.download_size()) / download_bytes_per_sec;
  std::uint64_t payload = 0;
  for (const auto& f : pkg.files) payload += f.size;
  total += static_cast<double>(payload) / unpack_bytes_per_sec;
  total += static_cast<double>(pkg.executable_bytes()) / hash_bytes_per_sec;
  return total;
}

double CostModel::install_sec(const Package& pkg) const {
  double total = per_package_overhead_sec;
  total += static_cast<double>(pkg.download_size()) / download_bytes_per_sec;
  std::uint64_t payload = 0;
  for (const auto& f : pkg.files) payload += f.size;
  total += static_cast<double>(payload) / unpack_bytes_per_sec;
  return total;
}

}  // namespace cia::pkg
