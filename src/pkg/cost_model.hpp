// Virtual-time cost model.
//
// The paper reports wall-clock overheads (Fig. 3: minutes to update a
// policy). The simulation reproduces those magnitudes by charging virtual
// seconds for the same physical work the authors' tooling performed:
// refreshing the mirror, downloading and uncompressing packages, and
// hashing executable payloads. Rates are configured to resemble the
// modest VM the paper used.
#pragma once

#include <cstdint>

#include "common/sim_clock.hpp"
#include "pkg/package.hpp"

namespace cia::pkg {

struct CostModel {
  double download_bytes_per_sec = 1.5e6;   // archive-limited fetch rate
  double unpack_bytes_per_sec = 2.0e7;     // dpkg-deb extraction
  double hash_bytes_per_sec = 6.0e7;       // sha256 over extracted files
  double per_package_overhead_sec = 4.0;   // apt/dpkg bookkeeping
  double mirror_refresh_sec = 30.0;        // index fetch + rsync delta scan
  double policy_write_sec_per_entry = 0.001;

  /// Seconds to download+unpack+hash one package's payload.
  double package_processing_sec(const Package& pkg) const;

  /// Seconds the generator spends on one policy refresh covering `pkgs`.
  template <typename PackageRange>
  double policy_update_sec(const PackageRange& pkgs) const {
    double total = mirror_refresh_sec;
    std::uint64_t entries = 0;
    for (const Package* pkg : pkgs) {
      total += package_processing_sec(*pkg);
      entries += pkg->executable_count();
    }
    total += static_cast<double>(entries) * policy_write_sec_per_entry;
    return total;
  }

  /// Seconds apt needs to install one package on an agent machine.
  double install_sec(const Package& pkg) const;
};

}  // namespace cia::pkg
