#include "pkg/mirror.hpp"

#include <limits>

namespace cia::pkg {

SyncOutcome Mirror::sync(SimTime now) {
  if (fault_ == MirrorFault::kOffline) {
    ++failed_syncs_;
    return SyncOutcome::kFailed;
  }
  if (fault_ == MirrorFault::kPartial) {
    // The transfer died mid-index: only the first half of the upstream
    // package list landed. The snapshot is live but must not be used as
    // a policy basis.
    ++failed_syncs_;
    const auto& upstream = upstream_->index();
    snapshot_.clear();
    std::size_t take = upstream.size() / 2;
    for (const auto& [name, pkg] : upstream) {
      if (take == 0) break;
      snapshot_[name] = pkg;
      --take;
    }
    last_sync_ = now;
    last_sync_complete_ = false;
    return SyncOutcome::kPartial;
  }
  snapshot_ = upstream_->index();
  last_sync_ = now;
  last_sync_complete_ = true;
  return SyncOutcome::kOk;
}

SimTime Mirror::staleness(SimTime now) const {
  if (last_sync_ < 0) return std::numeric_limits<SimTime>::max();
  return now - last_sync_;
}

const Package* Mirror::find(const std::string& name) const {
  auto it = snapshot_.find(name);
  return it == snapshot_.end() ? nullptr : &it->second;
}

}  // namespace cia::pkg
