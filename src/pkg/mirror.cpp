#include "pkg/mirror.hpp"

namespace cia::pkg {

void Mirror::sync(SimTime now) {
  snapshot_ = upstream_->index();
  last_sync_ = now;
}

const Package* Mirror::find(const std::string& name) const {
  auto it = snapshot_.find(name);
  return it == snapshot_.end() ? nullptr : &it->second;
}

}  // namespace cia::pkg
