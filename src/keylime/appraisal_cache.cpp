#include "keylime/appraisal_cache.hpp"

#include <cstring>

namespace cia::keylime {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

AppraisalCache::AppraisalCache(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity < 2 ? 2 : capacity);
  slots_.resize(cap);
  mask_ = cap - 1;
}

std::size_t AppraisalCache::slot_of(const crypto::Digest& template_hash) const {
  // The key is a SHA-256 — its leading bytes are already uniform, so the
  // slot index is just the first 8 bytes reduced by the table mask.
  std::uint64_t h = 0;
  std::memcpy(&h, template_hash.data(), sizeof(h));
  return static_cast<std::size_t>(h) & mask_;
}

std::optional<PolicyMatch> AppraisalCache::lookup(
    const crypto::Digest& template_hash, std::uint64_t index_uid) {
  const Slot& slot = slots_[slot_of(template_hash)];
  if (slot.uid == index_uid && slot.key == template_hash) {
    ++stats_.hits;
    return slot.verdict;
  }
  ++stats_.misses;
  return std::nullopt;
}

void AppraisalCache::insert(const crypto::Digest& template_hash,
                            std::uint64_t index_uid, PolicyMatch verdict) {
  Slot& slot = slots_[slot_of(template_hash)];
  if (slot.uid == index_uid && slot.key == template_hash) return;
  if (slot.uid != 0) ++stats_.evictions;
  slot.key = template_hash;
  slot.uid = index_uid;
  slot.verdict = verdict;
  ++stats_.insertions;
}

void AppraisalCache::clear() {
  for (Slot& s : slots_) s = Slot{};
}

}  // namespace cia::keylime
