// A sharded verifier pool: the fleet partitioned across N worker threads.
//
// The paper's deployment attests a fleet continuously against a
// 46 MB runtime policy; a single verifier thread serializes every round.
// VerifierPool shards the fleet with a consistent-hash ring over agent
// ids, runs one complete verification stack per shard — virtual clock,
// simulated network, registrar, retrying transport, verifier, and
// attestation scheduler — and drives all shards concurrently, one worker
// thread per shard, joining at round boundaries.
//
// Shard isolation is what makes the pool both thread-safe and
// deterministic:
//   * no simulation object is ever touched by two threads: each shard's
//     clock/network/verifier belong to its worker during a round and to
//     the driver thread between rounds (the join is the handoff);
//   * every shard network is seeded identically (per-link fault streams
//     derive from the destination address, not the shard), so the fault
//     sequence an agent experiences is invariant to the shard count —
//     per-agent attestation verdicts do not change when the fleet is
//     re-partitioned;
//   * the shared MetricsRegistry is thread-safe and order-independent,
//     so the telemetry snapshot of a run is byte-identical for a fixed
//     (seed, shard count).
//
// Policy updates are copy-on-write: set_policy_bulk builds ONE
// PolicyIndex for the new revision, enqueues the swap into each owning
// shard's mailbox, and the shard worker applies it at its next batch
// boundary. A batch that started under the old revision keeps its
// shared_ptr snapshot — a mid-round update never tears a lookup.
//
// Between rounds the driver thread may freely inspect shards (verifier,
// audit chain, network stats); during advance_to()/run_round() only the
// mailbox APIs (set_policy, set_policy_bulk) are safe to call from other
// threads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "keylime/alert_pipeline/pipeline.hpp"
#include "keylime/migration.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/scheduler.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "netsim/transport.hpp"
#include "telemetry/metrics.hpp"

namespace cia::keylime {

/// Round-boundary observer for staged policy rollouts (implemented by
/// policy_store::RolloutController). The pool invokes it once per
/// advance_to()/run_round() return, from the driver thread under
/// drive_mu_ — never from a shard worker, never on the appraisal path.
class RolloutHook {
 public:
  virtual ~RolloutHook() = default;
  virtual void on_round_boundary(SimTime now) = 0;
};

struct VerifierPoolConfig {
  std::size_t shards = 4;
  /// Virtual points per shard on the consistent-hash ring; more points
  /// smooth the partition at the cost of a larger ring.
  std::size_t ring_replicas = 64;
  VerifierConfig verifier;
  SchedulerConfig scheduler;
  /// Stack a RetryingTransport between each shard verifier and its
  /// network so transient chaos faults are retried before they surface
  /// as comms alerts.
  bool retrying_transport = true;
  netsim::RetryPolicy retry;
  /// Handoff delivery attempts per migrated agent before the migration
  /// falls back to clean re-enrollment on the destination shard.
  std::size_t migration_attempts = 3;
};

class VerifierPool : public PolicySink {
 public:
  VerifierPool(std::uint64_t seed, VerifierPoolConfig config = {});
  ~VerifierPool() override;

  VerifierPool(const VerifierPool&) = delete;
  VerifierPool& operator=(const VerifierPool&) = delete;

  /// Shards ever allocated. A shrink retires shards (removes them from
  /// the ring) but never destroys them: components constructed against a
  /// shard's clock or network stay valid, and a later grow reactivates
  /// retired shards in place.
  std::size_t shard_count() const { return shards_.size(); }

  /// Shards currently on the ring (owning agents).
  std::size_t active_shard_count() const { return active_shards_; }

  /// The owning shard of an agent id (consistent-hash ring lookup over
  /// the active shards). For an enrolled agent prefer the actual
  /// assignment tracked by the pool — after a failed migration the two
  /// can differ until the next resize retries the move.
  std::size_t shard_for(const std::string& agent_id) const;

  // ------------------------------------------------- fleet construction
  // Agents live on their owning shard's network: create the Agent
  // against network(shard_for(id)), register it (each shard runs its own
  // registrar at Registrar::address()), then enroll it here.

  netsim::SimNetwork& network(std::size_t shard);
  SimClock& clock(std::size_t shard);
  Verifier& verifier(std::size_t shard);
  const Verifier& verifier(std::size_t shard) const;
  const AttestationScheduler& scheduler(std::size_t shard) const;

  /// Trust a TPM manufacturer CA on every shard registrar.
  void trust_manufacturer(const crypto::PublicKey& ca_key);

  /// Enrol an agent (already activated at its shard registrar) for
  /// continuous attestation and scheduler polling on its owning shard.
  Status enroll(const std::string& agent_id, const std::string& address);

  /// Drop an agent from the fleet (churn: the node left). Its audit
  /// records stay on whichever shards recorded them; its endpoint is
  /// detached from the owning shard network.
  Status unenroll(const std::string& agent_id);

  // ------------------------------------------------------ live resharding

  /// Resize the ring to `new_shards` active shards and live-migrate
  /// exactly the ring-moved agents to their new owners. Waits for any
  /// in-flight round to drain at the round boundary before touching
  /// topology. Each moved agent's verification state (log cursor, audit
  /// sub-chain tail, staleness counters, polling schedule) travels in a
  /// HandoffPayload over the pool's dedicated handoff network; a handoff
  /// that keeps failing under injected faults falls back to clean
  /// re-enrollment of that one agent on the destination, and if even
  /// that fails the agent simply stays on its old shard until the next
  /// resize — never a wedged shard, never a forked audit chain.
  Status resize(std::size_t new_shards);

  /// Fault profile for the shard-to-shard handoff links (chaos testing
  /// the migration path; per-link streams key on the destination shard).
  void set_handoff_faults(const netsim::FaultProfile& faults);

  struct MigrationStats {
    std::uint64_t resizes = 0;
    std::uint64_t ok = 0;        // handoff delivered and committed
    std::uint64_t fallback = 0;  // re-enrolled cleanly on the destination
    std::uint64_t failed = 0;    // agent left on its source shard
    std::uint64_t retries = 0;   // extra handoff attempts beyond the first
  };
  const MigrationStats& migration_stats() const { return migration_; }

  /// Handoffs this agent has paid (ok + fallback moves). The resize
  /// invariance tests assert this stays 0 for every unmoved agent.
  std::uint64_t handoffs(const std::string& agent_id) const;

  // ----------------------------------------------------- policy updates
  // Thread-safe (mailbox + copy-on-write index swap); may be called
  // while a round is in flight.

  /// PolicySink: route one agent's policy to its owning shard. Builds a
  /// fresh PolicyIndex revision for the agent.
  Status set_policy(const std::string& agent_id, RuntimePolicy policy) override;

  /// One shared PolicyIndex for the whole batch — built once per policy
  /// revision, shared read-only by every covered agent on every shard.
  Status set_policy_bulk(const std::vector<std::string>& agent_ids,
                         const RuntimePolicy& policy) override;

  /// set_policy_bulk over every enrolled agent.
  Status set_fleet_policy(const RuntimePolicy& policy);

  /// Content-addressed push. Three cost tiers, cheapest first:
  ///   * `digest` equals the last revision pushed through here — the
  ///     cached index is reused outright (zero builds; how a staged
  ///     rollout promotes the canary revision fleet-wide for free);
  ///   * `delta` is non-null, rebases from the last pushed digest, and
  ///     leaves excludes alone — the cached index is patched in place
  ///     (PolicyIndex::build_incremental), §III-C's daily-update shape;
  ///   * otherwise a full PolicyIndex::build, which also (re)seeds the
  ///     cache. Plain set_policy/set_policy_bulk invalidate the cache:
  ///     they carry no digest, so the next delta push cannot prove what
  ///     base it would be patching.
  Status push_revision(const std::vector<std::string>& agent_ids,
                       const RuntimePolicy& policy, const std::string& digest,
                       const policy_store::PolicyDelta* delta) override;

  /// Policy revisions built so far (each bulk/single push is one).
  std::uint64_t policy_revision() const;

  /// The agent's installed PolicyIndex revision (0 when none/unknown).
  /// Driver thread, between rounds.
  std::uint64_t policy_revision_of(const std::string& agent_id) const;

  // -------------------------------------------------- faults and chaos

  /// Apply a default fault profile / scripted schedule to every shard
  /// network (per-link streams still derive from the agent address, so
  /// outcomes stay shard-count invariant).
  void set_fleet_faults(const netsim::FaultProfile& faults);
  void set_fleet_schedule(const netsim::FaultSchedule& schedule);

  // ------------------------------------------------------------ driving

  /// Advance every shard concurrently until its clock reaches `t`,
  /// batching due agents per shard per scheduler tick. Returns the
  /// number of polls this call performed. Blocks until all workers join.
  std::size_t advance_to(SimTime t);

  /// One batched round: every shard polls each of its agents once,
  /// concurrently, regardless of scheduler cadence. Returns the number
  /// of polls this call performed.
  std::size_t run_round();

  /// Export per-shard telemetry (batch sizes, round latency, index
  /// hit/miss counters) to `metrics`; wired through to every shard
  /// component. nullptr turns it off.
  void use_telemetry(telemetry::MetricsRegistry* metrics);

  // ------------------------------------------- alerting and revocation

  /// Attach the alert pipeline (non-owning; nullptr detaches). From the
  /// next round on, each shard worker compacts its verifier's new raw
  /// alerts into the shard's lock-free stage, and the driver merges all
  /// stages, runs the staleness scan, and closes the pipeline round at
  /// every round boundary (advance_to / run_round return) — never on the
  /// appraisal hot path. Alerts raised before attachment are not
  /// replayed. Call between rounds only.
  void use_alert_pipeline(alert_pipeline::AlertPipeline* pipeline);

  /// Attach a staged-rollout controller (non-owning; nullptr detaches).
  /// Its on_round_boundary hook runs inside the round-boundary drain,
  /// after alerts/revocations have been folded, under drive_mu_ with all
  /// shard workers joined — the same discipline as the alert pipeline,
  /// so the hook may inspect fleet state and enqueue policy pushes (they
  /// land in shard mailboxes and apply at the next batch boundary)
  /// without any lock of its own, and the appraisal hot path gains
  /// nothing. Call between rounds only.
  void use_rollout(RolloutHook* rollout);

  /// Register a pool-level revocation notifier. Shard verifiers defer
  /// their kAttesting -> kFailed events (raise() runs on shard worker
  /// threads); the driver drains every shard at the round boundary and
  /// fans the merged, deterministically ordered event stream out to
  /// pool-level notifiers — one notifier instance may therefore serve
  /// the whole fleet without any locking of its own.
  void add_notifier(RevocationNotifier* notifier);

  // -------------------------------------------------------- inspection
  // Driver thread, between rounds.

  std::optional<AgentState> state(const std::string& agent_id) const;
  Status resolve_failure(const std::string& agent_id);
  std::vector<std::string> agent_ids() const;

  /// All alerts across shards in deterministic (time, agent, log index)
  /// order.
  std::vector<Alert> alerts() const;

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t batches = 0;
    std::uint64_t index_hits = 0;
    std::uint64_t index_misses = 0;
    std::uint64_t cache_hits = 0;    // appraisal verdict-cache hits
    std::uint64_t cache_misses = 0;  // ...and misses (then index probed)
    std::uint64_t policy_swaps = 0;
  };
  Stats stats() const;

 private:
  struct PendingPolicy {
    std::string agent_id;
    RuntimePolicy policy;
    std::shared_ptr<const PolicyIndex> index;
  };

  struct Shard {
    Shard(std::uint64_t pool_seed, std::size_t index,
          const VerifierPoolConfig& config);

    std::size_t index;
    SimClock clock;
    netsim::SimNetwork network;
    Registrar registrar;
    // Per-shard verdict cache (NOT shared across shards: the cache is
    // single-threaded by design, and sharing one would make per-shard
    // hit/miss telemetry depend on cross-shard interleaving, breaking
    // the byte-identical-telemetry determinism contract).
    AppraisalCache appraisal_cache;
    Verifier verifier;
    std::unique_ptr<netsim::RetryingTransport> transport;
    AttestationScheduler scheduler;

    // Policy mailbox: filled by any thread, drained by the shard worker
    // at batch boundaries (or by the driver between rounds).
    std::mutex mailbox_mu;
    std::vector<PendingPolicy> mailbox;

    // Tallies owned by whoever currently owns the shard (worker during
    // a round, driver between rounds).
    std::uint64_t polls = 0;
    std::uint64_t batches = 0;
    std::uint64_t policy_swaps = 0;
    std::uint64_t exported_hits = 0;    // index stats already exported
    std::uint64_t exported_misses = 0;
    std::uint64_t exported_cache_hits = 0;    // cache stats already exported
    std::uint64_t exported_cache_misses = 0;

    // Alert-pipeline stage: the worker folds alerts_[alerts_staged..)
    // into per-key partials during its round; the driver takes the
    // stage at the boundary. Same single-owner discipline as the rest
    // of the shard, so no lock.
    alert_pipeline::ShardStage alert_stage;
    std::size_t alerts_staged = 0;
  };

  /// Receiving end of the handoff link: one port per shard, attached to
  /// the pool's handoff network at "shard:<index>".
  struct MigrationPort : netsim::Endpoint {
    MigrationPort(VerifierPool* pool, std::size_t shard)
        : pool(pool), shard(shard) {}
    VerifierPool* pool;
    std::size_t shard;
    Result<Bytes> handle(const std::string& kind,
                         const Bytes& payload) override;
  };

  void apply_pending(Shard& shard);
  void record_batch(Shard& shard, std::size_t batch_size, SimTime started);

  /// Compact the shard verifier's not-yet-staged alerts into the shard's
  /// pipeline stage (worker thread during a round, driver at drains).
  void stage_alerts(Shard& shard);

  /// The round-boundary drain, under drive_mu_ with all workers joined:
  /// deliver deferred revocations (shard-local notifiers in shard order,
  /// then the merged event stream to pool notifiers), then fold every
  /// shard's alert stage plus the staleness scan into the pipeline and
  /// close its round.
  void drain_round_boundary_locked();

  /// Run `body(shard)` on one worker thread per shard and join.
  void parallel_shards(const std::function<void(Shard&)>& body);

  /// The actual shard assignment of an enrolled agent; falls back to the
  /// ring for unknown ids.
  std::size_t owner_of(const std::string& agent_id) const;

  /// Fetch a shard pointer under the topology lock (safe against a
  /// concurrent resize growing shards_).
  Shard* shard_ptr(std::size_t shard);

  void rebuild_ring_locked(std::size_t active);
  void wire_shard_telemetry(Shard& shard);

  enum class MigrationResult { kOk, kFallback, kFailed };
  MigrationResult migrate_agent(const std::string& agent_id, std::size_t src,
                                std::size_t dst);
  void move_endpoint(Shard& src, Shard& dst, const std::string& address);
  Result<Bytes> accept_migration(std::size_t shard, const HandoffPayload& p);

  std::uint64_t seed_;
  VerifierPoolConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t active_shards_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // sorted

  /// Guards ring_ and growth of shards_ (push_back may reallocate the
  /// pointer vector while a policy push indexes into it). Never taken
  /// while holding owners_mu_ is required by callers that already hold
  /// it — the pool's order is owners_mu_ -> ring_mu_.
  mutable std::mutex ring_mu_;

  /// Serializes driving (advance_to / run_round) against topology
  /// changes: resize() takes it too, so a resize blocks until in-flight
  /// round workers have joined at the round boundary and rounds started
  /// afterwards see the new topology.
  std::mutex drive_mu_;

  mutable std::mutex owners_mu_;
  std::map<std::string, std::size_t> owners_;  // enrolled id -> shard

  mutable std::mutex revision_mu_;
  std::uint64_t revision_ = 0;
  /// Last revision pushed through push_revision(): its content digest
  /// and shared index, the base the next delta push patches. Guarded by
  /// revision_mu_; cleared by digest-less pushes.
  std::string last_pushed_digest_;
  std::shared_ptr<const PolicyIndex> last_pushed_index_;

  /// Dedicated shard-to-shard handoff fabric with its own virtual clock:
  /// migration latency and injected handoff faults never touch shard
  /// clocks, so attestation timing stays partition-invariant.
  SimClock handoff_clock_;
  std::unique_ptr<netsim::SimNetwork> handoff_net_;
  std::vector<std::unique_ptr<MigrationPort>> ports_;

  std::vector<crypto::PublicKey> trusted_cas_;  // replayed onto new shards
  /// Last fleet-wide fault configuration, replayed onto shards created
  /// by a later resize — a new shard's network must misbehave exactly
  /// like the ones the migrated agents left.
  std::optional<netsim::FaultProfile> fleet_faults_;
  std::optional<netsim::FaultSchedule> fleet_schedule_;

  MigrationStats migration_;
  std::map<std::string, std::uint64_t> handoffs_;

  telemetry::MetricsRegistry* metrics_ = nullptr;

  /// Non-owning; set between rounds, read by shard workers during a
  /// round (the thread spawn/join is the happens-before edge).
  alert_pipeline::AlertPipeline* pipeline_ = nullptr;
  std::vector<RevocationNotifier*> pool_notifiers_;
  /// Non-owning; set between rounds, invoked only by the driver at the
  /// round-boundary drain.
  RolloutHook* rollout_ = nullptr;
};

}  // namespace cia::keylime
