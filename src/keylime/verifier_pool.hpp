// A sharded verifier pool: the fleet partitioned across N worker threads.
//
// The paper's deployment attests a fleet continuously against a
// 46 MB runtime policy; a single verifier thread serializes every round.
// VerifierPool shards the fleet with a consistent-hash ring over agent
// ids, runs one complete verification stack per shard — virtual clock,
// simulated network, registrar, retrying transport, verifier, and
// attestation scheduler — and drives all shards concurrently, one worker
// thread per shard, joining at round boundaries.
//
// Shard isolation is what makes the pool both thread-safe and
// deterministic:
//   * no simulation object is ever touched by two threads: each shard's
//     clock/network/verifier belong to its worker during a round and to
//     the driver thread between rounds (the join is the handoff);
//   * every shard network is seeded identically (per-link fault streams
//     derive from the destination address, not the shard), so the fault
//     sequence an agent experiences is invariant to the shard count —
//     per-agent attestation verdicts do not change when the fleet is
//     re-partitioned;
//   * the shared MetricsRegistry is thread-safe and order-independent,
//     so the telemetry snapshot of a run is byte-identical for a fixed
//     (seed, shard count).
//
// Policy updates are copy-on-write: set_policy_bulk builds ONE
// PolicyIndex for the new revision, enqueues the swap into each owning
// shard's mailbox, and the shard worker applies it at its next batch
// boundary. A batch that started under the old revision keeps its
// shared_ptr snapshot — a mid-round update never tears a lookup.
//
// Between rounds the driver thread may freely inspect shards (verifier,
// audit chain, network stats); during advance_to()/run_round() only the
// mailbox APIs (set_policy, set_policy_bulk) are safe to call from other
// threads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/scheduler.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "netsim/transport.hpp"
#include "telemetry/metrics.hpp"

namespace cia::keylime {

struct VerifierPoolConfig {
  std::size_t shards = 4;
  /// Virtual points per shard on the consistent-hash ring; more points
  /// smooth the partition at the cost of a larger ring.
  std::size_t ring_replicas = 64;
  VerifierConfig verifier;
  SchedulerConfig scheduler;
  /// Stack a RetryingTransport between each shard verifier and its
  /// network so transient chaos faults are retried before they surface
  /// as comms alerts.
  bool retrying_transport = true;
  netsim::RetryPolicy retry;
};

class VerifierPool : public PolicySink {
 public:
  VerifierPool(std::uint64_t seed, VerifierPoolConfig config = {});
  ~VerifierPool() override;

  VerifierPool(const VerifierPool&) = delete;
  VerifierPool& operator=(const VerifierPool&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// The owning shard of an agent id (consistent-hash ring lookup).
  std::size_t shard_for(const std::string& agent_id) const;

  // ------------------------------------------------- fleet construction
  // Agents live on their owning shard's network: create the Agent
  // against network(shard_for(id)), register it (each shard runs its own
  // registrar at Registrar::address()), then enroll it here.

  netsim::SimNetwork& network(std::size_t shard);
  SimClock& clock(std::size_t shard);
  Verifier& verifier(std::size_t shard);
  const Verifier& verifier(std::size_t shard) const;
  const AttestationScheduler& scheduler(std::size_t shard) const;

  /// Trust a TPM manufacturer CA on every shard registrar.
  void trust_manufacturer(const crypto::PublicKey& ca_key);

  /// Enrol an agent (already activated at its shard registrar) for
  /// continuous attestation and scheduler polling on its owning shard.
  Status enroll(const std::string& agent_id, const std::string& address);

  // ----------------------------------------------------- policy updates
  // Thread-safe (mailbox + copy-on-write index swap); may be called
  // while a round is in flight.

  /// PolicySink: route one agent's policy to its owning shard. Builds a
  /// fresh PolicyIndex revision for the agent.
  Status set_policy(const std::string& agent_id, RuntimePolicy policy) override;

  /// One shared PolicyIndex for the whole batch — built once per policy
  /// revision, shared read-only by every covered agent on every shard.
  Status set_policy_bulk(const std::vector<std::string>& agent_ids,
                         const RuntimePolicy& policy) override;

  /// set_policy_bulk over every enrolled agent.
  Status set_fleet_policy(const RuntimePolicy& policy);

  /// Policy revisions built so far (each bulk/single push is one).
  std::uint64_t policy_revision() const;

  // -------------------------------------------------- faults and chaos

  /// Apply a default fault profile / scripted schedule to every shard
  /// network (per-link streams still derive from the agent address, so
  /// outcomes stay shard-count invariant).
  void set_fleet_faults(const netsim::FaultProfile& faults);
  void set_fleet_schedule(const netsim::FaultSchedule& schedule);

  // ------------------------------------------------------------ driving

  /// Advance every shard concurrently until its clock reaches `t`,
  /// batching due agents per shard per scheduler tick. Returns the
  /// number of polls this call performed. Blocks until all workers join.
  std::size_t advance_to(SimTime t);

  /// One batched round: every shard polls each of its agents once,
  /// concurrently, regardless of scheduler cadence. Returns the number
  /// of polls this call performed.
  std::size_t run_round();

  /// Export per-shard telemetry (batch sizes, round latency, index
  /// hit/miss counters) to `metrics`; wired through to every shard
  /// component. nullptr turns it off.
  void use_telemetry(telemetry::MetricsRegistry* metrics);

  // -------------------------------------------------------- inspection
  // Driver thread, between rounds.

  std::optional<AgentState> state(const std::string& agent_id) const;
  Status resolve_failure(const std::string& agent_id);
  std::vector<std::string> agent_ids() const;

  /// All alerts across shards in deterministic (time, agent, log index)
  /// order.
  std::vector<Alert> alerts() const;

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t batches = 0;
    std::uint64_t index_hits = 0;
    std::uint64_t index_misses = 0;
    std::uint64_t cache_hits = 0;    // appraisal verdict-cache hits
    std::uint64_t cache_misses = 0;  // ...and misses (then index probed)
    std::uint64_t policy_swaps = 0;
  };
  Stats stats() const;

 private:
  struct PendingPolicy {
    std::string agent_id;
    RuntimePolicy policy;
    std::shared_ptr<const PolicyIndex> index;
  };

  struct Shard {
    Shard(std::uint64_t pool_seed, std::size_t index,
          const VerifierPoolConfig& config);

    std::size_t index;
    SimClock clock;
    netsim::SimNetwork network;
    Registrar registrar;
    // Per-shard verdict cache (NOT shared across shards: the cache is
    // single-threaded by design, and sharing one would make per-shard
    // hit/miss telemetry depend on cross-shard interleaving, breaking
    // the byte-identical-telemetry determinism contract).
    AppraisalCache appraisal_cache;
    Verifier verifier;
    std::unique_ptr<netsim::RetryingTransport> transport;
    AttestationScheduler scheduler;

    // Policy mailbox: filled by any thread, drained by the shard worker
    // at batch boundaries (or by the driver between rounds).
    std::mutex mailbox_mu;
    std::vector<PendingPolicy> mailbox;

    // Tallies owned by whoever currently owns the shard (worker during
    // a round, driver between rounds).
    std::uint64_t polls = 0;
    std::uint64_t batches = 0;
    std::uint64_t policy_swaps = 0;
    std::uint64_t exported_hits = 0;    // index stats already exported
    std::uint64_t exported_misses = 0;
    std::uint64_t exported_cache_hits = 0;    // cache stats already exported
    std::uint64_t exported_cache_misses = 0;
  };

  void apply_pending(Shard& shard);
  void record_batch(Shard& shard, std::size_t batch_size, SimTime started);

  /// Run `body(shard)` on one worker thread per shard and join.
  void parallel_shards(const std::function<void(Shard&)>& body);

  std::uint64_t seed_;
  VerifierPoolConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // sorted

  mutable std::mutex owners_mu_;
  std::map<std::string, std::size_t> owners_;  // enrolled id -> shard

  mutable std::mutex revision_mu_;
  std::uint64_t revision_ = 0;

  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace cia::keylime
