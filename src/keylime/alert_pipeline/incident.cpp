#include "keylime/alert_pipeline/incident.hpp"

namespace cia::keylime::alert_pipeline {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kIntegrityViolation: return "integrity_violation";
    case Severity::kPolicySkew: return "policy_skew";
    case Severity::kStaleness: return "staleness";
    case Severity::kTransport: return "transport";
  }
  return "?";
}

bool severity_from_name(const std::string& name, Severity* out) {
  for (Severity s : {Severity::kIntegrityViolation, Severity::kPolicySkew,
                     Severity::kStaleness, Severity::kTransport}) {
    if (name == severity_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

json::Value to_json(const Incident& incident) {
  json::Value v;
  v.set("id", static_cast<std::int64_t>(incident.id));
  v.set("severity", severity_name(incident.severity));
  v.set("reason", incident.reason);
  v.set("subject", incident.subject);
  v.set("policy_revision", static_cast<std::int64_t>(incident.policy_revision));
  v.set("first_seen", static_cast<std::int64_t>(incident.first_seen));
  v.set("last_seen", static_cast<std::int64_t>(incident.last_seen));
  v.set("alerts", static_cast<std::int64_t>(incident.alerts));
  v.set("suppressed", static_cast<std::int64_t>(incident.suppressed));
  v.set("affected_agents", static_cast<std::int64_t>(incident.affected_agents));
  json::Array sample;
  for (const std::string& id : incident.sample_agents) sample.emplace_back(id);
  v.set("sample_agents", json::Value(std::move(sample)));
  v.set("open", incident.open);
  v.set("closed_at", static_cast<std::int64_t>(incident.closed_at));
  return v;
}

json::Value to_json(const IncidentSnapshot& snapshot) {
  json::Value doc;
  doc.set("version", static_cast<std::int64_t>(IncidentSnapshot::kVersion));
  json::Array incidents;
  incidents.reserve(snapshot.incidents.size());
  for (const Incident& incident : snapshot.incidents) {
    incidents.push_back(to_json(incident));
  }
  doc.set("incidents", json::Value(std::move(incidents)));
  return doc;
}

namespace {

/// Non-negative integral number field; rejects absence, wrong type, a
/// fractional value (would silently round and break the encode fixed
/// point), and negatives.
bool u64_field(const json::Value& v, const char* key, std::uint64_t* out) {
  const json::Value* f = v.find(key);
  if (f == nullptr || !f->is_number()) return false;
  const double n = f->as_number();
  if (n < 0 || n != static_cast<double>(static_cast<std::int64_t>(n))) {
    return false;
  }
  *out = static_cast<std::uint64_t>(f->as_int());
  return true;
}

bool string_field(const json::Value& v, const char* key, std::string* out) {
  const json::Value* f = v.find(key);
  if (f == nullptr || !f->is_string()) return false;
  *out = f->as_string();
  return true;
}

Result<Incident> incident_from_json(const json::Value& v) {
  if (!v.is_object()) {
    return err(Errc::kCorrupted, "incident: not an object");
  }
  Incident inc;
  std::uint64_t first_seen = 0;
  std::uint64_t last_seen = 0;
  std::uint64_t closed_at = 0;
  std::string severity;
  if (!u64_field(v, "id", &inc.id) || inc.id == 0) {
    return err(Errc::kCorrupted, "incident: bad id");
  }
  if (!string_field(v, "severity", &severity) ||
      !severity_from_name(severity, &inc.severity)) {
    return err(Errc::kCorrupted, "incident: bad severity");
  }
  if (!string_field(v, "reason", &inc.reason) || inc.reason.empty()) {
    return err(Errc::kCorrupted, "incident: bad reason");
  }
  if (!string_field(v, "subject", &inc.subject)) {
    return err(Errc::kCorrupted, "incident: bad subject");
  }
  if (!u64_field(v, "policy_revision", &inc.policy_revision) ||
      !u64_field(v, "first_seen", &first_seen) ||
      !u64_field(v, "last_seen", &last_seen) ||
      !u64_field(v, "alerts", &inc.alerts) ||
      !u64_field(v, "suppressed", &inc.suppressed) ||
      !u64_field(v, "affected_agents", &inc.affected_agents) ||
      !u64_field(v, "closed_at", &closed_at)) {
    return err(Errc::kCorrupted, "incident: bad numeric field");
  }
  const json::Value* open = v.find("open");
  if (open == nullptr || !open->is_bool()) {
    return err(Errc::kCorrupted, "incident: bad open flag");
  }
  inc.open = open->as_bool();
  inc.first_seen = static_cast<SimTime>(first_seen);
  inc.last_seen = static_cast<SimTime>(last_seen);
  inc.closed_at = static_cast<SimTime>(closed_at);
  if (inc.first_seen > inc.last_seen) {
    return err(Errc::kCorrupted, "incident: first_seen after last_seen");
  }
  // Every incident delivered at least one alert before any could be
  // suppressed: the opening occurrence always passes the cooldown.
  if (inc.alerts == 0 || inc.suppressed >= inc.alerts) {
    return err(Errc::kCorrupted, "incident: inconsistent alert tallies");
  }
  if (inc.affected_agents == 0) {
    return err(Errc::kCorrupted, "incident: no affected agents");
  }
  if (inc.open) {
    if (inc.closed_at != 0) {
      return err(Errc::kCorrupted, "incident: open with closed_at set");
    }
  } else if (inc.closed_at < inc.last_seen) {
    return err(Errc::kCorrupted, "incident: closed before last_seen");
  }
  const json::Value* sample = v.find("sample_agents");
  if (sample == nullptr || !sample->is_array()) {
    return err(Errc::kCorrupted, "incident: bad sample_agents");
  }
  for (const json::Value& entry : sample->as_array()) {
    if (!entry.is_string() || entry.as_string().empty()) {
      return err(Errc::kCorrupted, "incident: bad sample agent id");
    }
    if (!inc.sample_agents.empty() &&
        entry.as_string() <= inc.sample_agents.back()) {
      return err(Errc::kCorrupted, "incident: sample_agents not sorted");
    }
    inc.sample_agents.push_back(entry.as_string());
  }
  if (inc.sample_agents.empty() ||
      inc.sample_agents.size() > inc.affected_agents) {
    return err(Errc::kCorrupted, "incident: sample/affected mismatch");
  }
  return inc;
}

}  // namespace

Result<IncidentSnapshot> snapshot_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return err(Errc::kCorrupted, "incident snapshot: not an object");
  }
  std::uint64_t version = 0;
  if (!u64_field(doc, "version", &version) ||
      version != static_cast<std::uint64_t>(IncidentSnapshot::kVersion)) {
    return err(Errc::kCorrupted, "incident snapshot: unsupported version");
  }
  const json::Value* incidents = doc.find("incidents");
  if (incidents == nullptr || !incidents->is_array()) {
    return err(Errc::kCorrupted, "incident snapshot: bad incidents array");
  }
  IncidentSnapshot snapshot;
  for (const json::Value& entry : incidents->as_array()) {
    auto inc = incident_from_json(entry);
    if (!inc.ok()) return inc.error();
    if (!snapshot.incidents.empty() &&
        inc.value().id <= snapshot.incidents.back().id) {
      return err(Errc::kCorrupted, "incident snapshot: ids not increasing");
    }
    snapshot.incidents.push_back(std::move(inc.value()));
  }
  return snapshot;
}

}  // namespace cia::keylime::alert_pipeline
