// Alert keying and the per-shard compaction stage.
//
// One root cause produces one AlertKey: the (reason class, offending
// digest/path, policy revision) triple, deliberately NOT including the
// agent id — a fleet-wide bad policy push collapses to one key no matter
// how many agents trip over it. The per-shard ShardStage folds a round's
// raw alerts into per-key partial aggregates inside the shard worker
// thread (the shard owns its stage during a round, so no lock exists on
// the appraisal hot path); the driver merges all shards' partials at the
// round boundary.
//
// Every aggregate operation is commutative and associative — count sums,
// min/max over times, min over a total order of representative alerts,
// set union over agent ids — so the merged result is byte-identical for
// any shard count or merge order. This is the pool's partition-invariance
// contract extended to the incident stream.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "common/sim_clock.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime::alert_pipeline {

enum class Severity;  // incident.hpp

/// Reason-class the staleness scan reports under (not an AlertType: it is
/// synthesized from rounds_since_success, not raised by appraisal).
inline constexpr char kStalenessReason[] = "staleness";

/// Severity class of a raised alert type.
Severity classify(AlertType type);

/// The dedup/aggregation key: one root cause.
struct AlertKey {
  Severity severity{};
  std::string reason;            // alert_type_name() or kStalenessReason
  std::string subject;           // "path@sha256:hex" or "" (fleet-scoped)
  std::uint64_t policy_revision = 0;

  bool operator<(const AlertKey& other) const {
    return std::tie(severity, reason, subject, policy_revision) <
           std::tie(other.severity, other.reason, other.subject,
                    other.policy_revision);
  }
  bool operator==(const AlertKey& other) const {
    return severity == other.severity && reason == other.reason &&
           subject == other.subject &&
           policy_revision == other.policy_revision;
  }
};

/// Key of a raised alert. Policy appraisal alerts (hash mismatch / not
/// in policy) key on the offending path+digest; everything else is
/// fleet-scoped per reason class.
AlertKey key_of(const Alert& alert);

/// Total order on alerts used to pick a key's representative: the
/// earliest (time, agent, log index) occurrence wins regardless of which
/// shard saw it or in which order partials merge.
bool alert_before(const Alert& a, const Alert& b);

/// Partial aggregate of one key's alerts (per shard per round, then
/// merged across shards).
struct KeyAggregate {
  std::uint64_t alerts = 0;
  SimTime first_seen = 0;
  SimTime last_seen = 0;
  Alert representative;           // minimal alert under alert_before()
  std::set<std::string> agents;   // distinct contributors this round

  void fold(const Alert& alert);
  void merge(const KeyAggregate& other);
};

/// Per-shard compaction stage. Owned by the shard: the worker thread
/// ingests during a round, the driver take()s at the boundary — never
/// both at once, so it needs no lock.
class ShardStage {
 public:
  void ingest(const Alert& alert);
  /// Fold a synthesized staleness observation (agent whose
  /// rounds_since_success crossed the threshold) at round time `now`.
  void ingest_staleness(const std::string& agent_id, std::uint64_t rounds,
                        SimTime now);
  bool empty() const { return pending_.empty(); }
  std::map<AlertKey, KeyAggregate> take();

 private:
  std::map<AlertKey, KeyAggregate> pending_;
};

}  // namespace cia::keylime::alert_pipeline
