#include "keylime/alert_pipeline/dedup.hpp"

#include <utility>

#include "common/strutil.hpp"
#include "keylime/alert_pipeline/incident.hpp"

namespace cia::keylime::alert_pipeline {

Severity classify(AlertType type) {
  switch (type) {
    case AlertType::kQuoteInvalid:
    case AlertType::kReplayMismatch:
    case AlertType::kHashMismatch:
    case AlertType::kMeasuredBootMismatch:
      return Severity::kIntegrityViolation;
    case AlertType::kNotInPolicy:
      // The measurement is fine; the policy does not know the file — the
      // unscheduled-update signature (P3), not a compromise verdict.
      return Severity::kPolicySkew;
    case AlertType::kCommsFailure:
      return Severity::kTransport;
  }
  return Severity::kIntegrityViolation;
}

AlertKey key_of(const Alert& alert) {
  AlertKey key;
  key.severity = classify(alert.type);
  key.reason = alert_type_name(alert.type);
  switch (alert.type) {
    case AlertType::kHashMismatch:
    case AlertType::kNotInPolicy:
      // The root cause is the (file, measured digest) pair under one
      // policy revision: "digest X of /usr/bin/zsh".
      key.subject = alert.path + "@sha256:" + alert.observed_hash_hex;
      key.policy_revision = alert.policy_revision;
      break;
    default:
      // Quote/replay/boot/comms problems are per-agent symptoms of a
      // fleet-scoped cause; fold them per reason class.
      break;
  }
  return key;
}

bool alert_before(const Alert& a, const Alert& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.agent_id != b.agent_id) return a.agent_id < b.agent_id;
  if (a.log_index != b.log_index) return a.log_index < b.log_index;
  return static_cast<int>(a.type) < static_cast<int>(b.type);
}

void KeyAggregate::fold(const Alert& alert) {
  if (alerts == 0) {
    first_seen = alert.time;
    last_seen = alert.time;
    representative = alert;
  } else {
    first_seen = std::min(first_seen, alert.time);
    last_seen = std::max(last_seen, alert.time);
    if (alert_before(alert, representative)) representative = alert;
  }
  ++alerts;
  agents.insert(alert.agent_id);
}

void KeyAggregate::merge(const KeyAggregate& other) {
  if (other.alerts == 0) return;
  if (alerts == 0) {
    *this = other;
    return;
  }
  first_seen = std::min(first_seen, other.first_seen);
  last_seen = std::max(last_seen, other.last_seen);
  if (alert_before(other.representative, representative)) {
    representative = other.representative;
  }
  alerts += other.alerts;
  agents.insert(other.agents.begin(), other.agents.end());
}

void ShardStage::ingest(const Alert& alert) {
  pending_[key_of(alert)].fold(alert);
}

void ShardStage::ingest_staleness(const std::string& agent_id,
                                  std::uint64_t rounds, SimTime now) {
  AlertKey key;
  key.severity = Severity::kStaleness;
  key.reason = kStalenessReason;
  Alert synthetic;
  synthetic.time = now;
  synthetic.agent_id = agent_id;
  synthetic.detail = strformat("rounds_since_success=%llu",
                               static_cast<unsigned long long>(rounds));
  pending_[key].fold(synthetic);
}

std::map<AlertKey, KeyAggregate> ShardStage::take() {
  return std::exchange(pending_, {});
}

}  // namespace cia::keylime::alert_pipeline
