#include "keylime/alert_pipeline/pipeline.hpp"

#include <algorithm>

namespace cia::keylime::alert_pipeline {

void AlertPipeline::fold(std::map<AlertKey, KeyAggregate> batch) {
  for (auto& [key, aggregate] : batch) {
    round_[key].merge(aggregate);
  }
}

void AlertPipeline::observe_staleness(const std::string& agent_id,
                                      std::uint64_t rounds, SimTime now) {
  ShardStage stage;
  stage.ingest_staleness(agent_id, rounds, now);
  fold(stage.take());
}

void AlertPipeline::end_round(SimTime now) {
  for (auto& [key, aggregate] : round_) {
    stats_.raw += aggregate.alerts;
    if (metrics_) {
      metrics_
          ->counter("cia_alert_raw_total",
                    {{"severity", severity_name(key.severity)}})
          .inc(aggregate.alerts);
    }

    auto [it, fresh] = keys_.try_emplace(key);
    KeyState& state = it->second;
    if (fresh) {
      const std::uint64_t id = next_incident_id_++;
      IncidentEntry entry;
      entry.incident.id = id;
      entry.incident.severity = key.severity;
      entry.incident.reason = key.reason;
      entry.incident.subject = key.subject;
      entry.incident.policy_revision = key.policy_revision;
      entry.incident.first_seen = aggregate.first_seen;
      entry.incident.last_seen = aggregate.first_seen;
      incidents_.emplace(id, std::move(entry));
      state.incident_id = id;
      ++stats_.opened;
      if (metrics_) {
        metrics_
            ->counter("cia_incident_opened_total",
                      {{"severity", severity_name(key.severity)}})
            .inc();
      }
    }

    IncidentEntry& entry = incidents_.at(state.incident_id);
    Incident& incident = entry.incident;
    incident.first_seen = std::min(incident.first_seen, aggregate.first_seen);
    incident.last_seen = std::max(incident.last_seen, aggregate.last_seen);
    incident.alerts += aggregate.alerts;
    entry.agents.insert(aggregate.agents.begin(), aggregate.agents.end());
    incident.affected_agents = entry.agents.size();
    const std::size_t sample_k = std::max<std::size_t>(1, config_.sample_agents);
    incident.sample_agents.clear();
    for (const std::string& id : entry.agents) {
      if (incident.sample_agents.size() >= sample_k) break;
      incident.sample_agents.push_back(id);
    }
    state.last_seen = std::max(state.last_seen, aggregate.last_seen);

    // Cooldown is evaluated at round-boundary granularity: the first
    // occurrence of a key always emits; within the window the whole
    // batch is swallowed into the carried tally.
    const bool emit = fresh || now - state.last_emit >= config_.cooldown;
    const std::uint64_t batch_duplicates = aggregate.alerts - 1;
    if (emit) {
      EmittedAlert emitted;
      emitted.key = key;
      emitted.representative = aggregate.representative;
      emitted.suppressed = state.carry + batch_duplicates;
      emitted.incident_id = incident.id;
      emitted_.push_back(std::move(emitted));
      ++stats_.emitted;
      stats_.suppressed += batch_duplicates;
      incident.suppressed += batch_duplicates;
      state.carry = 0;
      state.last_emit = now;
      if (metrics_) {
        metrics_
            ->counter("cia_alert_emitted_total",
                      {{"severity", severity_name(key.severity)}})
            .inc();
        if (batch_duplicates > 0) {
          metrics_
              ->counter("cia_alert_suppressed_total",
                        {{"severity", severity_name(key.severity)}})
              .inc(batch_duplicates);
        }
      }
    } else {
      state.carry += aggregate.alerts;
      stats_.suppressed += aggregate.alerts;
      incident.suppressed += aggregate.alerts;
      if (metrics_) {
        metrics_
            ->counter("cia_alert_suppressed_total",
                      {{"severity", severity_name(key.severity)}})
            .inc(aggregate.alerts);
      }
    }
  }
  round_.clear();

  // Close incidents whose key has been quiet for the full window; the
  // cooldown state goes with them, so a recurrence is a new incident.
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& state = it->second;
    if (now - state.last_seen >= config_.quiet_close) {
      Incident& incident = incidents_.at(state.incident_id).incident;
      incident.open = false;
      incident.closed_at = now;
      ++stats_.closed;
      export_metrics(incident);
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }

  if (metrics_) {
    metrics_->gauge("cia_alert_active_keys", {})
        .set(static_cast<double>(keys_.size()));
    // Open-incident gauges, recomputed per severity (keys_ is small:
    // one entry per live root cause, not per agent).
    std::map<Severity, std::size_t> open_counts;
    for (const auto& [key, state] : keys_) ++open_counts[key.severity];
    for (Severity s : {Severity::kIntegrityViolation, Severity::kPolicySkew,
                       Severity::kStaleness, Severity::kTransport}) {
      metrics_->gauge("cia_incident_open", {{"severity", severity_name(s)}})
          .set(static_cast<double>(open_counts[s]));
    }
  }
}

void AlertPipeline::export_metrics(const Incident& closed_incident) {
  if (!metrics_) return;
  const telemetry::Labels labels{
      {"severity", severity_name(closed_incident.severity)}};
  metrics_->counter("cia_incident_closed_total", labels).inc();
  metrics_
      ->histogram("cia_incident_width_agents", labels,
                  telemetry::count_buckets())
      .observe(static_cast<double>(closed_incident.affected_agents));
  metrics_
      ->histogram("cia_incident_time_to_close_seconds", labels,
                  telemetry::latency_seconds_buckets())
      .observe(static_cast<double>(closed_incident.closed_at -
                                   closed_incident.first_seen));
}

IncidentSnapshot AlertPipeline::snapshot() const {
  IncidentSnapshot snapshot;
  snapshot.incidents.reserve(incidents_.size());
  for (const auto& [id, entry] : incidents_) {
    snapshot.incidents.push_back(entry.incident);
  }
  return snapshot;
}

std::size_t AlertPipeline::open_incidents() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : incidents_) {
    if (entry.incident.open) ++n;
  }
  return n;
}

}  // namespace cia::keylime::alert_pipeline
