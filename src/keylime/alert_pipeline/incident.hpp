// Incident model for the alert pipeline: the operator-facing unit of
// alerting.
//
// The paper's operational finding is that alert *volume*, not alert
// absence, is what buries the on-call: one bad policy push manufactures
// agents x entries x rounds identical alerts. An Incident is the folded
// form — "4,812 agents alerting on digest X of /usr/bin/zsh" — carrying
// the first/last time the root cause was seen, the exact number of
// distinct agents affected, a small sample of their ids, and the tally
// of alerts that dedup suppressed on the incident's behalf.
//
// Incidents are classified into four severities that map onto the
// paper's problem taxonomy:
//   * integrity_violation — measured content fails appraisal (hash
//     mismatch, bad quote, IMA replay divergence, boot-chain drift);
//   * policy_skew         — the measurement is fine but the policy does
//     not know it (unscheduled update, missing entry): P3 territory;
//   * staleness           — agents whose last fully successful
//     attestation keeps receding (the P2 frozen-verifier blind spot made
//     into a first-class incident);
//   * transport           — agents unreachable or garbling responses.
//
// The snapshot form (IncidentSnapshot <-> canonical JSON) is the wire
// contract consumed by tools/cia_metrics and pinned by the
// incident_snapshot fuzz target: decode(encode(x)) is the identity, a
// decoded document re-encodes byte-identically, and a malformed document
// is rejected whole — never half-adopted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"

namespace cia::keylime::alert_pipeline {

enum class Severity {
  kIntegrityViolation = 0,
  kPolicySkew = 1,
  kStaleness = 2,
  kTransport = 3,
};

const char* severity_name(Severity severity);

/// Parse a severity_name() string; false when unknown (decoder gate).
bool severity_from_name(const std::string& name, Severity* out);

struct Incident {
  /// Assigned in open order starting at 1; ids are deterministic per
  /// (seed, scenario) and invariant to the pool's shard count.
  std::uint64_t id = 0;
  Severity severity = Severity::kIntegrityViolation;
  /// Reason class, e.g. "hash_mismatch" (alert_type_name) or "staleness".
  std::string reason;
  /// Offending object: "path@sha256:hex" for policy alerts, "" when the
  /// reason is fleet-scoped (transport, staleness, bad quotes).
  std::string subject;
  /// PolicyIndex revision the alerts were appraised under (0 = unindexed).
  std::uint64_t policy_revision = 0;
  SimTime first_seen = 0;
  SimTime last_seen = 0;
  /// Raw alerts folded into this incident (emitted + suppressed).
  std::uint64_t alerts = 0;
  /// Of those, how many the cooldown swallowed (never individually
  /// delivered; visible only through this tally).
  std::uint64_t suppressed = 0;
  /// Exact count of distinct agents that contributed at least one alert.
  std::uint64_t affected_agents = 0;
  /// Lexicographically smallest affected agent ids (bounded sample).
  std::vector<std::string> sample_agents;
  bool open = true;
  /// Round-boundary time the quiet period expired; 0 while open.
  SimTime closed_at = 0;
};

/// The exported incident stream: every incident opened so far (open and
/// closed), ordered by id.
struct IncidentSnapshot {
  static constexpr int kVersion = 1;
  std::vector<Incident> incidents;
};

json::Value to_json(const Incident& incident);
json::Value to_json(const IncidentSnapshot& snapshot);

/// Strict decoder for the snapshot document. Validates structure, field
/// types, severity names, id ordering (strictly increasing), time sanity
/// (first_seen <= last_seen; closed incidents carry closed_at >=
/// last_seen), tally sanity (every incident emitted at least one alert:
/// suppressed < alerts; sample_agents sorted, unique, and no larger than
/// affected_agents). Returns the decoded snapshot or an error; a failed
/// decode never yields partial state.
Result<IncidentSnapshot> snapshot_from_json(const json::Value& doc);

}  // namespace cia::keylime::alert_pipeline
