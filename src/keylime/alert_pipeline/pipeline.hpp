// The alert pipeline: dedup with cooldown, fleet-level incident
// aggregation, and severity triage between the verifier layer and the
// operator.
//
// Driven entirely at round boundaries by whoever owns the pool's drive
// mutex: shard workers compact raw alerts into per-key partials
// (ShardStage, lock-free by ownership), the driver fold()s every shard's
// partials, feeds the staleness scan, and calls end_round(now) once per
// round. All state here is therefore single-threaded by construction.
//
// Dedup semantics (the alert_limiter idiom reworked per-key):
//   * the first occurrence of a key always emits;
//   * further occurrences within `cooldown` of the last emission are
//     swallowed, incrementing a suppressed tally that is carried on the
//     NEXT emitted alert for that key (and on the incident in the
//     meantime) — suppression is visible, never silent;
//   * a key quiet for `quiet_close` has its incident closed and its
//     cooldown state dropped; a recurrence opens a fresh incident.
//
// Determinism: rounds are merged into an ordered map keyed by AlertKey
// and processed in key order on one thread, incident ids are assigned in
// that order, and every input (alert times, agent ids, staleness
// counters) is partition-invariant under the pool's time-free fault
// discipline — so the emitted alert stream, incident ids, and the
// canonical snapshot JSON are byte-identical across shard counts and
// mid-campaign resizes.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "keylime/alert_pipeline/dedup.hpp"
#include "keylime/alert_pipeline/incident.hpp"
#include "telemetry/metrics.hpp"

namespace cia::keylime::alert_pipeline {

/// A deduplicated, operator-bound alert: one per key per cooldown
/// window, carrying the suppressed-duplicate tally since the previous
/// emission for that key.
struct EmittedAlert {
  AlertKey key;
  /// Earliest raw alert of the batch that triggered this emission (for
  /// staleness keys: a synthesized alert naming the first stale agent).
  Alert representative;
  /// Duplicates swallowed since the key's previous emission (including
  /// the rest of the current round's batch).
  std::uint64_t suppressed = 0;
  std::uint64_t incident_id = 0;
};

class AlertPipeline {
 public:
  struct Config {
    /// Minimum virtual time between two emitted alerts for one key.
    SimTime cooldown = 5 * kMinute;
    /// A key quiet for this long has its incident closed.
    SimTime quiet_close = 15 * kMinute;
    /// rounds_since_success at which an agent joins the fleet staleness
    /// incident (the P2 "how long has this agent been unverified" alarm).
    std::uint64_t staleness_after = 3;
    /// Affected-agent ids sampled onto each incident.
    std::size_t sample_agents = 5;
  };

  // Two constructors instead of a defaulted Config argument: a nested
  // class's default member initializers are not usable until the
  // enclosing class is complete.
  AlertPipeline() = default;
  explicit AlertPipeline(const Config& config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Export cia_alert_* / cia_incident_* metrics to `metrics`; nullptr
  /// turns it off. Updates happen in end_round() on the driver thread.
  void use_telemetry(telemetry::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }

  /// Merge one shard's per-round partials (order-independent).
  void fold(std::map<AlertKey, KeyAggregate> batch);

  /// Fold one stale agent into the fleet staleness key for this round.
  void observe_staleness(const std::string& agent_id, std::uint64_t rounds,
                         SimTime now);

  /// Process everything folded since the last boundary at virtual time
  /// `now`: run dedup, open/update incidents, close quiet ones.
  void end_round(SimTime now);

  /// Alerts that passed dedup, in emission order.
  const std::vector<EmittedAlert>& emitted() const { return emitted_; }

  /// Every incident opened so far, ordered by id (open and closed).
  IncidentSnapshot snapshot() const;

  /// Canonical JSON form of snapshot() — the byte-comparable incident
  /// stream.
  json::Value snapshot_json() const { return to_json(snapshot()); }

  std::size_t open_incidents() const;

  struct Stats {
    std::uint64_t raw = 0;        // alerts folded in
    std::uint64_t emitted = 0;    // passed dedup
    std::uint64_t suppressed = 0; // swallowed by cooldown
    std::uint64_t opened = 0;     // incidents opened
    std::uint64_t closed = 0;     // incidents closed
  };
  const Stats& stats() const { return stats_; }

 private:
  struct KeyState {
    SimTime last_emit = 0;
    SimTime last_seen = 0;
    std::uint64_t carry = 0;       // suppressed since last emission
    std::uint64_t incident_id = 0;
  };
  struct IncidentEntry {
    Incident incident;
    std::set<std::string> agents;  // exact distinct-agent set
  };

  void export_metrics(const Incident& closed_incident);

  Config config_;
  std::map<AlertKey, KeyAggregate> round_;     // current round's merge
  std::map<AlertKey, KeyState> keys_;          // live cooldown state
  std::map<std::uint64_t, IncidentEntry> incidents_;  // by id
  std::uint64_t next_incident_id_ = 1;
  std::vector<EmittedAlert> emitted_;
  Stats stats_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace cia::keylime::alert_pipeline
