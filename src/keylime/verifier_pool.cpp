#include "keylime/verifier_pool.hpp"

#include <algorithm>
#include <thread>

#include "common/log.hpp"
#include "keylime/policy_store/store.hpp"

namespace cia::keylime {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// murmur3's 64-bit finalizer. FNV-1a alone is unusable as a ring hash:
/// ids that differ only in trailing characters ("agent-0001",
/// "agent-0002", ...) hash within ~2^40 of each other — one multiply by
/// the FNV prime never reaches the high bits — so an entire fleet of
/// sequentially named agents collapses into a single ring gap and one
/// shard owns everything. fmix64 avalanches every input bit across the
/// word.
std::uint64_t fmix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t ring_hash(const std::string& s) { return fmix64(fnv1a(s)); }

std::string handoff_address(std::size_t shard) {
  return "shard:" + std::to_string(shard);
}

/// Per-shard verifier config: unless the caller pinned one, every shard
/// gets the SAME nonce seed (derived from the pool seed alone). Nonce
/// streams are per-agent counters over this seed, so an agent's quote
/// digests — and with them its audit sub-chain — are identical no matter
/// which shard polls it or how often it migrates.
VerifierConfig shard_verifier_config(const VerifierPoolConfig& config,
                                     std::uint64_t pool_seed) {
  VerifierConfig v = config.verifier;
  if (!v.nonce_seed) v.nonce_seed = pool_seed ^ 0x90ceULL;
  // raise() runs on shard worker threads; notifiers must only ever be
  // invoked from the driver thread, so every shard queues its events
  // for the pool's round-boundary drain.
  v.defer_revocations = true;
  return v;
}

}  // namespace

VerifierPool::Shard::Shard(std::uint64_t pool_seed, std::size_t shard_index,
                           const VerifierPoolConfig& config)
    : index(shard_index),
      clock(),
      // Every shard network uses the SAME seed: per-link fault streams
      // derive from (network seed ^ fnv1a(address)), so the faults an
      // agent experiences depend only on the pool seed and its own
      // address — never on which shard it landed on. This is the
      // invariant the cross-shard-count determinism tests pin down.
      network(&clock, pool_seed ^ 0xf1ee7ULL),
      registrar(&network, &clock, pool_seed ^ 1),
      verifier(&network, &clock,
               pool_seed ^ 2 ^ (0x9e3779b97f4a7c15ULL * (shard_index + 1)),
               shard_verifier_config(config, pool_seed)),
      transport(config.retrying_transport
                    ? std::make_unique<netsim::RetryingTransport>(
                          &network, &clock,
                          pool_seed ^ 3 ^ (0xbf58476d1ce4e5b9ULL *
                                           (shard_index + 1)),
                          config.retry)
                    : nullptr),
      scheduler(&verifier, &clock, config.scheduler) {
  if (transport) verifier.use_transport(transport.get());
  verifier.use_appraisal_cache(&appraisal_cache);
}

VerifierPool::VerifierPool(std::uint64_t seed, VerifierPoolConfig config)
    : seed_(seed), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.ring_replicas == 0) config_.ring_replicas = 1;
  if (config_.migration_attempts == 0) config_.migration_attempts = 1;
  handoff_net_ =
      std::make_unique<netsim::SimNetwork>(&handoff_clock_, seed_ ^ 0xda7aULL);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(seed_, s, config_));
    ports_.push_back(std::make_unique<MigrationPort>(this, s));
    handoff_net_->attach(handoff_address(s), ports_.back().get());
  }
  active_shards_ = config_.shards;
  rebuild_ring_locked(active_shards_);
}

VerifierPool::~VerifierPool() = default;

void VerifierPool::rebuild_ring_locked(std::size_t active) {
  ring_.clear();
  ring_.reserve(active * config_.ring_replicas);
  for (std::size_t s = 0; s < active; ++s) {
    for (std::size_t r = 0; r < config_.ring_replicas; ++r) {
      const std::string point =
          "shard-" + std::to_string(s) + "-" + std::to_string(r);
      ring_.emplace_back(ring_hash(point), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t VerifierPool::shard_for(const std::string& agent_id) const {
  const std::uint64_t h = ring_hash(agent_id);
  std::lock_guard<std::mutex> lock(ring_mu_);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& point, std::uint64_t key) { return point.first < key; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

std::size_t VerifierPool::owner_of(const std::string& agent_id) const {
  {
    std::lock_guard<std::mutex> lock(owners_mu_);
    auto it = owners_.find(agent_id);
    if (it != owners_.end()) return it->second;
  }
  return shard_for(agent_id);
}

VerifierPool::Shard* VerifierPool::shard_ptr(std::size_t shard) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return shards_[shard].get();
}

netsim::SimNetwork& VerifierPool::network(std::size_t shard) {
  return shards_.at(shard)->network;
}

SimClock& VerifierPool::clock(std::size_t shard) {
  return shards_.at(shard)->clock;
}

Verifier& VerifierPool::verifier(std::size_t shard) {
  return shards_.at(shard)->verifier;
}

const Verifier& VerifierPool::verifier(std::size_t shard) const {
  return shards_.at(shard)->verifier;
}

const AttestationScheduler& VerifierPool::scheduler(std::size_t shard) const {
  return shards_.at(shard)->scheduler;
}

void VerifierPool::trust_manufacturer(const crypto::PublicKey& ca_key) {
  trusted_cas_.push_back(ca_key);  // replayed onto shards built by resize()
  for (auto& shard : shards_) shard->registrar.trust_manufacturer(ca_key);
}

Status VerifierPool::enroll(const std::string& agent_id,
                            const std::string& address) {
  const std::size_t s = shard_for(agent_id);
  Shard& shard = *shard_ptr(s);
  if (Status st = shard.verifier.add_agent(agent_id, address); !st.ok()) {
    return st;
  }
  shard.scheduler.enroll(agent_id);
  {
    std::lock_guard<std::mutex> lock(owners_mu_);
    owners_[agent_id] = s;
  }
  if (metrics_) {
    metrics_
        ->gauge("cia_pool_agents", {{"shard", std::to_string(s)}})
        .set(static_cast<double>(shard.verifier.agent_ids().size()));
  }
  return Status::ok_status();
}

Status VerifierPool::set_policy(const std::string& agent_id,
                                RuntimePolicy policy) {
  std::uint64_t revision;
  {
    std::lock_guard<std::mutex> lock(revision_mu_);
    revision = ++revision_;
    last_pushed_digest_.clear();  // content of the head revision unknown now
    last_pushed_index_.reset();
  }
  auto index = PolicyIndex::build(policy, revision);
  Shard& shard = *shard_ptr(owner_of(agent_id));
  std::lock_guard<std::mutex> lock(shard.mailbox_mu);
  shard.mailbox.push_back({agent_id, std::move(policy), std::move(index)});
  return Status::ok_status();
}

Status VerifierPool::set_policy_bulk(const std::vector<std::string>& agent_ids,
                                     const RuntimePolicy& policy) {
  std::uint64_t revision;
  {
    std::lock_guard<std::mutex> lock(revision_mu_);
    revision = ++revision_;
    last_pushed_digest_.clear();  // content of the head revision unknown now
    last_pushed_index_.reset();
  }
  // One index for the whole revision; every covered agent on every shard
  // shares it read-only.
  const auto index = PolicyIndex::build(policy, revision);
  for (const std::string& id : agent_ids) {
    Shard& shard = *shard_ptr(owner_of(id));
    std::lock_guard<std::mutex> lock(shard.mailbox_mu);
    shard.mailbox.push_back({id, policy, index});
  }
  return Status::ok_status();
}

Status VerifierPool::push_revision(const std::vector<std::string>& agent_ids,
                                   const RuntimePolicy& policy,
                                   const std::string& digest,
                                   const policy_store::PolicyDelta* delta) {
  if (digest.empty()) {
    return err(Errc::kInvalidArgument, "push_revision needs a content digest");
  }
  std::uint64_t revision = 0;
  std::shared_ptr<const PolicyIndex> index;
  std::shared_ptr<const PolicyIndex> base;
  const char* mode = "full";
  {
    std::lock_guard<std::mutex> lock(revision_mu_);
    if (digest == last_pushed_digest_ && last_pushed_index_ != nullptr) {
      // Same content as the head revision: reuse its index outright (the
      // promote path — the canary slice already paid for this build).
      index = last_pushed_index_;
      mode = "reused";
    } else {
      revision = ++revision_;
      if (delta != nullptr && delta->base_digest == last_pushed_digest_ &&
          last_pushed_index_ != nullptr && !delta->touches_excludes()) {
        base = last_pushed_index_;
      }
    }
  }
  if (index == nullptr) {
    if (base != nullptr) {
      index = PolicyIndex::build_incremental(base, policy, *delta, revision);
      mode = "incremental";
    } else {
      index = PolicyIndex::build(policy, revision);
    }
  }
  {
    std::lock_guard<std::mutex> lock(revision_mu_);
    last_pushed_digest_ = digest;
    last_pushed_index_ = index;
  }
  if (metrics_) {
    metrics_->counter("cia_policy_index_builds_total", {{"mode", mode}}).inc();
    if (delta != nullptr) {
      metrics_->counter("cia_policy_delta_entries_total", {})
          .inc(delta->entry_count());
    }
  }
  for (const std::string& id : agent_ids) {
    Shard& shard = *shard_ptr(owner_of(id));
    std::lock_guard<std::mutex> lock(shard.mailbox_mu);
    shard.mailbox.push_back({id, policy, index});
  }
  return Status::ok_status();
}

Status VerifierPool::set_fleet_policy(const RuntimePolicy& policy) {
  return set_policy_bulk(agent_ids(), policy);
}

std::uint64_t VerifierPool::policy_revision() const {
  std::lock_guard<std::mutex> lock(revision_mu_);
  return revision_;
}

std::uint64_t VerifierPool::policy_revision_of(
    const std::string& agent_id) const {
  const std::size_t s = owner_of(agent_id);
  const Verifier* v;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    v = &shards_[s]->verifier;
  }
  return v->policy_revision_of(agent_id);
}

void VerifierPool::set_fleet_faults(const netsim::FaultProfile& faults) {
  fleet_faults_ = faults;
  for (auto& shard : shards_) shard->network.set_faults(faults);
}

void VerifierPool::set_fleet_schedule(const netsim::FaultSchedule& schedule) {
  fleet_schedule_ = schedule;
  for (auto& shard : shards_) shard->network.set_global_schedule(schedule);
}

void VerifierPool::apply_pending(Shard& shard) {
  std::vector<PendingPolicy> pending;
  {
    std::lock_guard<std::mutex> lock(shard.mailbox_mu);
    pending.swap(shard.mailbox);
  }
  for (PendingPolicy& p : pending) {
    // The swap itself is copy-on-write: an appraisal that already
    // snapshotted the old index keeps it alive through its shared_ptr.
    Status st = shard.verifier.set_indexed_policy(
        p.agent_id, std::move(p.policy), std::move(p.index));
    if (!st.ok()) {
      CIA_LOG_WARN("pool", "policy swap for " + p.agent_id +
                               " failed: " + st.error().message);
      continue;
    }
    ++shard.policy_swaps;
  }
}

void VerifierPool::record_batch(Shard& shard, std::size_t batch_size,
                                SimTime started) {
  ++shard.batches;
  if (!metrics_) return;
  const telemetry::Labels labels{{"shard", std::to_string(shard.index)}};
  metrics_
      ->histogram("cia_pool_batch_size", labels, telemetry::count_buckets())
      .observe(static_cast<double>(batch_size));
  metrics_
      ->histogram("cia_pool_round_latency_seconds", labels,
                  telemetry::latency_seconds_buckets())
      .observe(static_cast<double>(shard.clock.now() - started));
  metrics_->counter("cia_pool_polls_total", labels).inc(batch_size);
  metrics_->counter("cia_pool_batches_total", labels).inc();
  // Index lookup tallies accumulate inside the shard verifier; export
  // the delta since the last batch so the pool counters stay monotonic.
  const Verifier::IndexStats& stats = shard.verifier.index_stats();
  if (stats.hits > shard.exported_hits) {
    metrics_->counter("cia_pool_index_hits_total", labels)
        .inc(stats.hits - shard.exported_hits);
    shard.exported_hits = stats.hits;
  }
  if (stats.misses > shard.exported_misses) {
    metrics_->counter("cia_pool_index_misses_total", labels)
        .inc(stats.misses - shard.exported_misses);
    shard.exported_misses = stats.misses;
  }
  const AppraisalCache::Stats& cs = shard.appraisal_cache.stats();
  if (cs.hits > shard.exported_cache_hits) {
    metrics_->counter("cia_pool_appraisal_cache_hits_total", labels)
        .inc(cs.hits - shard.exported_cache_hits);
    shard.exported_cache_hits = cs.hits;
  }
  if (cs.misses > shard.exported_cache_misses) {
    metrics_->counter("cia_pool_appraisal_cache_misses_total", labels)
        .inc(cs.misses - shard.exported_cache_misses);
    shard.exported_cache_misses = cs.misses;
  }
}

void VerifierPool::parallel_shards(const std::function<void(Shard&)>& body) {
  // One worker per shard, joined before returning: the join is the
  // ownership handoff that lets the driver thread inspect shard state
  // between rounds without synchronization.
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (auto& shard : shards_) {
    workers.emplace_back([&body, &shard] { body(*shard); });
  }
  for (std::thread& w : workers) w.join();
}

std::size_t VerifierPool::advance_to(SimTime t) {
  // Excludes resize(): topology only changes at round boundaries, never
  // while shard workers are in flight.
  std::lock_guard<std::mutex> drive(drive_mu_);
  std::size_t before = 0;
  for (auto& shard : shards_) before += shard->polls;
  parallel_shards([this, t](Shard& shard) {
    while (true) {
      const SimTime due = shard.scheduler.next_due();
      if (due > t) break;  // nothing left before the horizon
      shard.clock.advance_to(due);
      apply_pending(shard);  // batch boundary: swap in pending policies
      const SimTime started = shard.clock.now();
      const std::size_t polled = shard.scheduler.tick();
      shard.polls += polled;
      if (polled > 0) record_batch(shard, polled, started);
    }
    shard.clock.advance_to(t);
    stage_alerts(shard);  // compact this round's raw alerts, still owner
  });
  drain_round_boundary_locked();
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->polls;
  return total - before;
}

std::size_t VerifierPool::run_round() {
  std::lock_guard<std::mutex> drive(drive_mu_);
  std::size_t before = 0;
  for (auto& shard : shards_) before += shard->polls;
  parallel_shards([this](Shard& shard) {
    apply_pending(shard);
    const SimTime started = shard.clock.now();
    const auto rounds = shard.verifier.attest_all();
    shard.polls += rounds.size();
    if (!rounds.empty()) record_batch(shard, rounds.size(), started);
    stage_alerts(shard);  // compact this round's raw alerts, still owner
  });
  drain_round_boundary_locked();
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->polls;
  return total - before;
}

void VerifierPool::stage_alerts(Shard& shard) {
  if (!pipeline_) return;
  const std::vector<Alert>& alerts = shard.verifier.alerts();
  for (; shard.alerts_staged < alerts.size(); ++shard.alerts_staged) {
    shard.alert_stage.ingest(alerts[shard.alerts_staged]);
  }
}

void VerifierPool::drain_round_boundary_locked() {
  // Deferred revocation fan-out. The workers have joined, so the driver
  // owns every shard: shard-local notifiers fire inside
  // drain_revocations() in shard order, then the merged stream goes to
  // pool-level notifiers in an order that does not depend on the
  // partition (event times and agent transitions are shard-count
  // invariant; shard order is not).
  std::vector<RevocationEvent> events;
  for (auto& shard : shards_) {
    std::vector<RevocationEvent> drained = shard->verifier.drain_revocations();
    events.insert(events.end(), drained.begin(), drained.end());
  }
  if (!pool_notifiers_.empty() && !events.empty()) {
    std::sort(events.begin(), events.end(),
              [](const RevocationEvent& a, const RevocationEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.agent_id != b.agent_id) return a.agent_id < b.agent_id;
                return a.reason < b.reason;
              });
    for (RevocationNotifier* notifier : pool_notifiers_) {
      for (const RevocationEvent& event : events) {
        notifier->on_revocation(event);
      }
    }
  }

  if (pipeline_) {
    SimTime now = 0;
    for (auto& shard : shards_) {
      stage_alerts(*shard);  // catch drains outside a round (e.g. tests)
      now = std::max(now, shard->clock.now());
    }
    for (auto& shard : shards_) {
      if (!shard->alert_stage.empty()) {
        pipeline_->fold(shard->alert_stage.take());
      }
    }
    if (const std::uint64_t after = pipeline_->config().staleness_after;
        after > 0) {
      for (auto& shard : shards_) {
        for (const auto& [id, rounds] : shard->verifier.stale_agents(after)) {
          pipeline_->observe_staleness(id, rounds, now);
        }
      }
    }
    pipeline_->end_round(now);
  }

  // The rollout controller watches the fully folded round: it runs last,
  // after alerts and incidents are settled, so its health gate reads the
  // same numbers the cia_alert_*/cia_incident_* counters export. Any
  // pushes it makes land in shard mailboxes and apply next round.
  if (rollout_) {
    SimTime now = 0;
    for (auto& shard : shards_) now = std::max(now, shard->clock.now());
    rollout_->on_round_boundary(now);
  }
}

void VerifierPool::use_rollout(RolloutHook* rollout) { rollout_ = rollout; }

void VerifierPool::use_alert_pipeline(alert_pipeline::AlertPipeline* pipeline) {
  pipeline_ = pipeline;
  // Only alerts raised from here on feed the pipeline: pre-attachment
  // history is the verifier's, not the operator stream's.
  for (auto& shard : shards_) {
    shard->alerts_staged = shard->verifier.alerts().size();
  }
}

void VerifierPool::add_notifier(RevocationNotifier* notifier) {
  pool_notifiers_.push_back(notifier);
}

void VerifierPool::wire_shard_telemetry(Shard& shard) {
  shard.network.use_telemetry(metrics_);
  shard.verifier.use_telemetry(metrics_);
  shard.scheduler.use_telemetry(metrics_);
  if (shard.transport) shard.transport->use_telemetry(metrics_);
}

void VerifierPool::use_telemetry(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& shard : shards_) wire_shard_telemetry(*shard);
  handoff_net_->use_telemetry(metrics);
  if (metrics_) {
    metrics_->gauge("cia_pool_active_shards", {})
        .set(static_cast<double>(active_shards_));
  }
}

std::optional<AgentState> VerifierPool::state(
    const std::string& agent_id) const {
  const std::size_t s = owner_of(agent_id);
  const Verifier* v;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    v = &shards_[s]->verifier;
  }
  return v->state(agent_id);
}

Status VerifierPool::resolve_failure(const std::string& agent_id) {
  return shard_ptr(owner_of(agent_id))->verifier.resolve_failure(agent_id);
}

std::vector<std::string> VerifierPool::agent_ids() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(owners_mu_);
  ids.reserve(owners_.size());
  for (const auto& [id, shard] : owners_) ids.push_back(id);
  return ids;
}

std::vector<Alert> VerifierPool::alerts() const {
  std::vector<Alert> merged;
  for (const auto& shard : shards_) {
    const auto& alerts = shard->verifier.alerts();
    merged.insert(merged.end(), alerts.begin(), alerts.end());
  }
  // Shard-count-independent order: an alert's identity is (time, agent,
  // log index, type), none of which depend on the partition.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Alert& a, const Alert& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.agent_id != b.agent_id) return a.agent_id < b.agent_id;
                     if (a.log_index != b.log_index) return a.log_index < b.log_index;
                     return static_cast<int>(a.type) < static_cast<int>(b.type);
                   });
  return merged;
}

Status VerifierPool::unenroll(const std::string& agent_id) {
  std::lock_guard<std::mutex> drive(drive_mu_);
  std::size_t s;
  {
    std::lock_guard<std::mutex> lock(owners_mu_);
    auto it = owners_.find(agent_id);
    if (it == owners_.end()) {
      return err(Errc::kNotFound, "unenroll: unknown agent " + agent_id);
    }
    s = it->second;
    owners_.erase(it);
  }
  Shard& shard = *shard_ptr(s);
  const std::optional<std::string> addr =
      shard.verifier.agent_address(agent_id);
  shard.verifier.remove_agent(agent_id);
  shard.scheduler.remove(agent_id);
  if (addr) shard.network.detach(*addr);
  if (metrics_) {
    metrics_->gauge("cia_pool_agents", {{"shard", std::to_string(s)}})
        .set(static_cast<double>(shard.verifier.agent_ids().size()));
  }
  return Status::ok_status();
}

Status VerifierPool::resize(std::size_t new_shards) {
  // The round-boundary drain: a resize queues behind any in-flight
  // advance_to/run_round and blocks new rounds until the topology is
  // settled and every moved agent has landed somewhere consistent.
  std::lock_guard<std::mutex> drive(drive_mu_);
  if (new_shards == 0) new_shards = 1;
  if (new_shards == active_shards_) return Status::ok_status();

  if (new_shards > shards_.size()) {
    // Construct the additional shards with the constructor's exact seed
    // derivations, clocks advanced to the fleet's current virtual time so
    // a migrated agent never observes time running backwards.
    SimTime now = 0;
    for (const auto& shard : shards_) now = std::max(now, shard->clock.now());
    for (std::size_t s = shards_.size(); s < new_shards; ++s) {
      auto shard = std::make_unique<Shard>(seed_, s, config_);
      shard->clock.advance_to(now);
      for (const crypto::PublicKey& ca : trusted_cas_) {
        shard->registrar.trust_manufacturer(ca);
      }
      // Replay the fleet fault configuration: a shard born mid-chaos
      // must drop and tamper exactly like its siblings, or migrated
      // agents would sail through a storm untouched.
      if (fleet_faults_) shard->network.set_faults(*fleet_faults_);
      if (fleet_schedule_) shard->network.set_global_schedule(*fleet_schedule_);
      if (metrics_) wire_shard_telemetry(*shard);
      ports_.push_back(std::make_unique<MigrationPort>(this, s));
      handoff_net_->attach(handoff_address(s), ports_.back().get());
      std::lock_guard<std::mutex> lock(ring_mu_);
      shards_.push_back(std::move(shard));
    }
  }

  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    rebuild_ring_locked(new_shards);
  }
  active_shards_ = new_shards;
  ++migration_.resizes;
  if (metrics_) {
    metrics_->counter("cia_pool_resizes_total", {}).inc();
    metrics_->gauge("cia_pool_active_shards", {})
        .set(static_cast<double>(active_shards_));
  }

  // Snapshot assignments first: shard_for takes ring_mu_, and the pool's
  // lock order (owners_mu_ -> ring_mu_) forbids calling it under
  // owners_mu_. std::map order keeps the migration sequence — and with
  // it every handoff-fault draw — deterministic.
  std::vector<std::pair<std::string, std::size_t>> assignment;
  {
    std::lock_guard<std::mutex> lock(owners_mu_);
    assignment.assign(owners_.begin(), owners_.end());
  }
  for (const auto& [id, src] : assignment) {
    const std::size_t dst = shard_for(id);
    if (dst == src) continue;  // unmoved agents never notice a resize
    const MigrationResult r = migrate_agent(id, src, dst);
    const char* label = "failed";
    switch (r) {
      case MigrationResult::kOk:
        ++migration_.ok;
        label = "ok";
        break;
      case MigrationResult::kFallback:
        ++migration_.fallback;
        label = "fallback";
        break;
      case MigrationResult::kFailed:
        ++migration_.failed;
        break;
    }
    if (metrics_) {
      metrics_->counter("cia_pool_migrations_total", {{"result", label}})
          .inc();
    }
  }
  if (metrics_) {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (const auto& shard : shards_) {
      metrics_
          ->gauge("cia_pool_agents", {{"shard", std::to_string(shard->index)}})
          .set(static_cast<double>(shard->verifier.agent_ids().size()));
    }
  }
  return Status::ok_status();
}

VerifierPool::MigrationResult VerifierPool::migrate_agent(
    const std::string& agent_id, std::size_t src_idx, std::size_t dst_idx) {
  Shard& src = *shard_ptr(src_idx);
  Shard& dst = *shard_ptr(dst_idx);

  auto slice = src.verifier.export_agent(agent_id);
  if (!slice.ok()) {
    CIA_LOG_WARN("pool", "migration export for " + agent_id +
                             " failed: " + slice.error().message);
    return MigrationResult::kFailed;
  }
  const std::optional<std::string> addr =
      src.verifier.agent_address(agent_id);

  HandoffPayload payload;
  payload.agent_id = agent_id;
  payload.source_shard = src_idx;
  payload.dest_shard = dst_idx;
  payload.agent_slice = slice.value();
  if (const auto* sched = src.scheduler.schedule(agent_id)) {
    payload.schedule = *sched;
  }

  // The enrolment record moves over the in-process control plane; the
  // hostile surface is the data-plane handoff below. Doing it first also
  // arms the fallback path: clean re-enrollment needs the destination
  // registrar to already know the agent.
  if (Status st = src.registrar.transfer_enrolment(agent_id, dst.registrar);
      !st.ok()) {
    CIA_LOG_WARN("pool", "enrolment transfer for " + agent_id +
                             " failed: " + st.error().message);
    return MigrationResult::kFailed;
  }

  const Bytes wire = payload.encode();
  const SimTime handoff_started = handoff_clock_.now();
  bool delivered = false;
  for (std::size_t attempt = 0; attempt < config_.migration_attempts;
       ++attempt) {
    if (attempt > 0) {
      ++migration_.retries;
      if (metrics_) {
        metrics_->counter("cia_pool_migration_retries_total", {}).inc();
      }
    }
    auto reply =
        handoff_net_->call(handoff_address(dst_idx), kMsgMigrate, wire);
    if (reply.ok() && reply.value() == to_bytes(std::string("ok"))) {
      delivered = true;
      break;
    }
  }

  const auto commit_move = [&] {
    if (addr) move_endpoint(src, dst, *addr);
    src.verifier.remove_agent(agent_id);
    src.scheduler.remove(agent_id);
    {
      std::lock_guard<std::mutex> lock(owners_mu_);
      owners_[agent_id] = dst_idx;
    }
    ++handoffs_[agent_id];
  };

  if (delivered) {
    commit_move();
    if (metrics_) {
      metrics_
          ->histogram("cia_pool_migration_bytes", {},
                      telemetry::bytes_buckets())
          .observe(static_cast<double>(wire.size()));
      metrics_
          ->histogram("cia_pool_migration_handoff_seconds", {},
                      telemetry::latency_seconds_buckets())
          .observe(
              static_cast<double>(handoff_clock_.now() - handoff_started));
    }
    return MigrationResult::kOk;
  }

  // Handoff exhausted its attempts: fall back to clean re-enrollment of
  // this one agent on the destination. Its counters reset, but seeding
  // the audit tail keeps the sub-chain unforked. Capture the tail before
  // anything mutates the source.
  const AuditLog::AgentTail tail = src.verifier.audit().agent_tail(agent_id);
  if (!addr) {
    CIA_LOG_WARN("pool", "migration of " + agent_id +
                             " failed: no address for fallback re-enrollment");
    return MigrationResult::kFailed;
  }
  // The endpoint must be reachable on the destination network before
  // add_agent probes it.
  move_endpoint(src, dst, *addr);
  bool enrolled = false;
  for (std::size_t attempt = 0; attempt < config_.migration_attempts;
       ++attempt) {
    Status st = dst.verifier.add_agent(agent_id, *addr);
    // kAlreadyExists: a handoff attempt WAS applied on the destination
    // but every acknowledgement back to us was lost or tampered. The
    // imported state is complete — keep it.
    if (st.ok() || st.error().code == Errc::kAlreadyExists) {
      enrolled = true;
      break;
    }
  }
  if (enrolled) {
    dst.verifier.seed_audit_tail(agent_id, tail);
    dst.scheduler.enroll(agent_id);
    src.verifier.remove_agent(agent_id);
    src.scheduler.remove(agent_id);
    {
      std::lock_guard<std::mutex> lock(owners_mu_);
      owners_[agent_id] = dst_idx;
    }
    ++handoffs_[agent_id];
    return MigrationResult::kFallback;
  }

  // Even the fallback failed: put the endpoint back and leave the agent
  // on its source shard. owners_ tracks actual assignment, so routing
  // stays correct and the next resize retries the move.
  move_endpoint(dst, src, *addr);
  CIA_LOG_WARN("pool", "migration of " + agent_id + " to shard " +
                           std::to_string(dst_idx) +
                           " failed; agent stays on shard " +
                           std::to_string(src_idx));
  return MigrationResult::kFailed;
}

void VerifierPool::move_endpoint(Shard& src, Shard& dst,
                                 const std::string& address) {
  if (netsim::Endpoint* ep = src.network.endpoint(address)) {
    src.network.detach(address);
    dst.network.attach(address, ep);
  }
  // The per-link fault stream follows the agent: all shard networks share
  // one seed, so moving the live Rng preserves the exact fault sequence
  // the agent would have seen had it never migrated.
  Rng rng(0);
  if (src.network.take_link_rng(address, &rng)) {
    dst.network.put_link_rng(address, rng);
  }
}

Result<Bytes> VerifierPool::accept_migration(std::size_t shard,
                                             const HandoffPayload& p) {
  if (p.dest_shard != shard) {
    return err(Errc::kProtocolViolation, "handoff: misrouted payload");
  }
  Shard& dst = *shard_ptr(shard);
  // import_agent validates the slice in full before touching any state
  // and replaces by id, so a duplicated delivery re-applies idempotently.
  if (Status st = dst.verifier.import_agent(p.agent_slice); !st.ok()) {
    return st.error();
  }
  dst.scheduler.adopt(p.agent_id, p.schedule);
  return to_bytes(std::string("ok"));
}

Result<Bytes> VerifierPool::MigrationPort::handle(const std::string& kind,
                                                  const Bytes& payload) {
  if (kind != kMsgMigrate) {
    return err(Errc::kProtocolViolation,
               "handoff: unexpected message kind " + kind);
  }
  auto decoded = HandoffPayload::decode(payload);
  if (!decoded.ok()) return decoded.error();
  return pool->accept_migration(shard, decoded.value());
}

void VerifierPool::set_handoff_faults(const netsim::FaultProfile& faults) {
  handoff_net_->set_faults(faults);
}

std::uint64_t VerifierPool::handoffs(const std::string& agent_id) const {
  auto it = handoffs_.find(agent_id);
  return it == handoffs_.end() ? 0 : it->second;
}

VerifierPool::Stats VerifierPool::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    s.polls += shard->polls;
    s.batches += shard->batches;
    s.policy_swaps += shard->policy_swaps;
    const Verifier::IndexStats& is = shard->verifier.index_stats();
    s.index_hits += is.hits;
    s.index_misses += is.misses;
    const AppraisalCache::Stats& cs = shard->appraisal_cache.stats();
    s.cache_hits += cs.hits;
    s.cache_misses += cs.misses;
  }
  return s;
}

}  // namespace cia::keylime
