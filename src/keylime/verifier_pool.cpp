#include "keylime/verifier_pool.hpp"

#include <algorithm>
#include <thread>

#include "common/log.hpp"

namespace cia::keylime {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// murmur3's 64-bit finalizer. FNV-1a alone is unusable as a ring hash:
/// ids that differ only in trailing characters ("agent-0001",
/// "agent-0002", ...) hash within ~2^40 of each other — one multiply by
/// the FNV prime never reaches the high bits — so an entire fleet of
/// sequentially named agents collapses into a single ring gap and one
/// shard owns everything. fmix64 avalanches every input bit across the
/// word.
std::uint64_t fmix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t ring_hash(const std::string& s) { return fmix64(fnv1a(s)); }

}  // namespace

VerifierPool::Shard::Shard(std::uint64_t pool_seed, std::size_t shard_index,
                           const VerifierPoolConfig& config)
    : index(shard_index),
      clock(),
      // Every shard network uses the SAME seed: per-link fault streams
      // derive from (network seed ^ fnv1a(address)), so the faults an
      // agent experiences depend only on the pool seed and its own
      // address — never on which shard it landed on. This is the
      // invariant the cross-shard-count determinism tests pin down.
      network(&clock, pool_seed ^ 0xf1ee7ULL),
      registrar(&network, &clock, pool_seed ^ 1),
      verifier(&network, &clock,
               pool_seed ^ 2 ^ (0x9e3779b97f4a7c15ULL * (shard_index + 1)),
               config.verifier),
      transport(config.retrying_transport
                    ? std::make_unique<netsim::RetryingTransport>(
                          &network, &clock,
                          pool_seed ^ 3 ^ (0xbf58476d1ce4e5b9ULL *
                                           (shard_index + 1)),
                          config.retry)
                    : nullptr),
      scheduler(&verifier, &clock, config.scheduler) {
  if (transport) verifier.use_transport(transport.get());
  verifier.use_appraisal_cache(&appraisal_cache);
}

VerifierPool::VerifierPool(std::uint64_t seed, VerifierPoolConfig config)
    : seed_(seed), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.ring_replicas == 0) config_.ring_replicas = 1;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(seed_, s, config_));
    for (std::size_t r = 0; r < config_.ring_replicas; ++r) {
      const std::string point =
          "shard-" + std::to_string(s) + "-" + std::to_string(r);
      ring_.emplace_back(ring_hash(point), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

VerifierPool::~VerifierPool() = default;

std::size_t VerifierPool::shard_for(const std::string& agent_id) const {
  const std::uint64_t h = ring_hash(agent_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& point, std::uint64_t key) { return point.first < key; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

netsim::SimNetwork& VerifierPool::network(std::size_t shard) {
  return shards_.at(shard)->network;
}

SimClock& VerifierPool::clock(std::size_t shard) {
  return shards_.at(shard)->clock;
}

Verifier& VerifierPool::verifier(std::size_t shard) {
  return shards_.at(shard)->verifier;
}

const Verifier& VerifierPool::verifier(std::size_t shard) const {
  return shards_.at(shard)->verifier;
}

const AttestationScheduler& VerifierPool::scheduler(std::size_t shard) const {
  return shards_.at(shard)->scheduler;
}

void VerifierPool::trust_manufacturer(const crypto::PublicKey& ca_key) {
  for (auto& shard : shards_) shard->registrar.trust_manufacturer(ca_key);
}

Status VerifierPool::enroll(const std::string& agent_id,
                            const std::string& address) {
  const std::size_t s = shard_for(agent_id);
  Shard& shard = *shards_[s];
  if (Status st = shard.verifier.add_agent(agent_id, address); !st.ok()) {
    return st;
  }
  shard.scheduler.enroll(agent_id);
  {
    std::lock_guard<std::mutex> lock(owners_mu_);
    owners_[agent_id] = s;
  }
  if (metrics_) {
    metrics_
        ->gauge("cia_pool_agents", {{"shard", std::to_string(s)}})
        .set(static_cast<double>(shard.verifier.agent_ids().size()));
  }
  return Status::ok_status();
}

Status VerifierPool::set_policy(const std::string& agent_id,
                                RuntimePolicy policy) {
  std::uint64_t revision;
  {
    std::lock_guard<std::mutex> lock(revision_mu_);
    revision = ++revision_;
  }
  auto index = PolicyIndex::build(policy, revision);
  Shard& shard = *shards_[shard_for(agent_id)];
  std::lock_guard<std::mutex> lock(shard.mailbox_mu);
  shard.mailbox.push_back({agent_id, std::move(policy), std::move(index)});
  return Status::ok_status();
}

Status VerifierPool::set_policy_bulk(const std::vector<std::string>& agent_ids,
                                     const RuntimePolicy& policy) {
  std::uint64_t revision;
  {
    std::lock_guard<std::mutex> lock(revision_mu_);
    revision = ++revision_;
  }
  // One index for the whole revision; every covered agent on every shard
  // shares it read-only.
  const auto index = PolicyIndex::build(policy, revision);
  for (const std::string& id : agent_ids) {
    Shard& shard = *shards_[shard_for(id)];
    std::lock_guard<std::mutex> lock(shard.mailbox_mu);
    shard.mailbox.push_back({id, policy, index});
  }
  return Status::ok_status();
}

Status VerifierPool::set_fleet_policy(const RuntimePolicy& policy) {
  return set_policy_bulk(agent_ids(), policy);
}

std::uint64_t VerifierPool::policy_revision() const {
  std::lock_guard<std::mutex> lock(revision_mu_);
  return revision_;
}

void VerifierPool::set_fleet_faults(const netsim::FaultProfile& faults) {
  for (auto& shard : shards_) shard->network.set_faults(faults);
}

void VerifierPool::set_fleet_schedule(const netsim::FaultSchedule& schedule) {
  for (auto& shard : shards_) shard->network.set_global_schedule(schedule);
}

void VerifierPool::apply_pending(Shard& shard) {
  std::vector<PendingPolicy> pending;
  {
    std::lock_guard<std::mutex> lock(shard.mailbox_mu);
    pending.swap(shard.mailbox);
  }
  for (PendingPolicy& p : pending) {
    // The swap itself is copy-on-write: an appraisal that already
    // snapshotted the old index keeps it alive through its shared_ptr.
    Status st = shard.verifier.set_indexed_policy(
        p.agent_id, std::move(p.policy), std::move(p.index));
    if (!st.ok()) {
      CIA_LOG_WARN("pool", "policy swap for " + p.agent_id +
                               " failed: " + st.error().message);
      continue;
    }
    ++shard.policy_swaps;
  }
}

void VerifierPool::record_batch(Shard& shard, std::size_t batch_size,
                                SimTime started) {
  ++shard.batches;
  if (!metrics_) return;
  const telemetry::Labels labels{{"shard", std::to_string(shard.index)}};
  metrics_
      ->histogram("cia_pool_batch_size", labels, telemetry::count_buckets())
      .observe(static_cast<double>(batch_size));
  metrics_
      ->histogram("cia_pool_round_latency_seconds", labels,
                  telemetry::latency_seconds_buckets())
      .observe(static_cast<double>(shard.clock.now() - started));
  metrics_->counter("cia_pool_polls_total", labels).inc(batch_size);
  metrics_->counter("cia_pool_batches_total", labels).inc();
  // Index lookup tallies accumulate inside the shard verifier; export
  // the delta since the last batch so the pool counters stay monotonic.
  const Verifier::IndexStats& stats = shard.verifier.index_stats();
  if (stats.hits > shard.exported_hits) {
    metrics_->counter("cia_pool_index_hits_total", labels)
        .inc(stats.hits - shard.exported_hits);
    shard.exported_hits = stats.hits;
  }
  if (stats.misses > shard.exported_misses) {
    metrics_->counter("cia_pool_index_misses_total", labels)
        .inc(stats.misses - shard.exported_misses);
    shard.exported_misses = stats.misses;
  }
  const AppraisalCache::Stats& cs = shard.appraisal_cache.stats();
  if (cs.hits > shard.exported_cache_hits) {
    metrics_->counter("cia_pool_appraisal_cache_hits_total", labels)
        .inc(cs.hits - shard.exported_cache_hits);
    shard.exported_cache_hits = cs.hits;
  }
  if (cs.misses > shard.exported_cache_misses) {
    metrics_->counter("cia_pool_appraisal_cache_misses_total", labels)
        .inc(cs.misses - shard.exported_cache_misses);
    shard.exported_cache_misses = cs.misses;
  }
}

void VerifierPool::parallel_shards(const std::function<void(Shard&)>& body) {
  // One worker per shard, joined before returning: the join is the
  // ownership handoff that lets the driver thread inspect shard state
  // between rounds without synchronization.
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (auto& shard : shards_) {
    workers.emplace_back([&body, &shard] { body(*shard); });
  }
  for (std::thread& w : workers) w.join();
}

std::size_t VerifierPool::advance_to(SimTime t) {
  std::size_t before = 0;
  for (auto& shard : shards_) before += shard->polls;
  parallel_shards([this, t](Shard& shard) {
    while (true) {
      const SimTime due = shard.scheduler.next_due();
      if (due > t) break;  // nothing left before the horizon
      shard.clock.advance_to(due);
      apply_pending(shard);  // batch boundary: swap in pending policies
      const SimTime started = shard.clock.now();
      const std::size_t polled = shard.scheduler.tick();
      shard.polls += polled;
      if (polled > 0) record_batch(shard, polled, started);
    }
    shard.clock.advance_to(t);
  });
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->polls;
  return total - before;
}

std::size_t VerifierPool::run_round() {
  std::size_t before = 0;
  for (auto& shard : shards_) before += shard->polls;
  parallel_shards([this](Shard& shard) {
    apply_pending(shard);
    const SimTime started = shard.clock.now();
    const auto rounds = shard.verifier.attest_all();
    shard.polls += rounds.size();
    if (!rounds.empty()) record_batch(shard, rounds.size(), started);
  });
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->polls;
  return total - before;
}

void VerifierPool::use_telemetry(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& shard : shards_) {
    shard->network.use_telemetry(metrics);
    shard->verifier.use_telemetry(metrics);
    shard->scheduler.use_telemetry(metrics);
    if (shard->transport) shard->transport->use_telemetry(metrics);
  }
}

std::optional<AgentState> VerifierPool::state(
    const std::string& agent_id) const {
  return shards_[shard_for(agent_id)]->verifier.state(agent_id);
}

Status VerifierPool::resolve_failure(const std::string& agent_id) {
  return shards_[shard_for(agent_id)]->verifier.resolve_failure(agent_id);
}

std::vector<std::string> VerifierPool::agent_ids() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(owners_mu_);
  ids.reserve(owners_.size());
  for (const auto& [id, shard] : owners_) ids.push_back(id);
  return ids;
}

std::vector<Alert> VerifierPool::alerts() const {
  std::vector<Alert> merged;
  for (const auto& shard : shards_) {
    const auto& alerts = shard->verifier.alerts();
    merged.insert(merged.end(), alerts.begin(), alerts.end());
  }
  // Shard-count-independent order: an alert's identity is (time, agent,
  // log index, type), none of which depend on the partition.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Alert& a, const Alert& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.agent_id != b.agent_id) return a.agent_id < b.agent_id;
                     if (a.log_index != b.log_index) return a.log_index < b.log_index;
                     return static_cast<int>(a.type) < static_cast<int>(b.type);
                   });
  return merged;
}

VerifierPool::Stats VerifierPool::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    s.polls += shard->polls;
    s.batches += shard->batches;
    s.policy_swaps += shard->policy_swaps;
    const Verifier::IndexStats& is = shard->verifier.index_stats();
    s.index_hits += is.hits;
    s.index_misses += is.misses;
    const AppraisalCache::Stats& cs = shard->appraisal_cache.stats();
    s.cache_hits += cs.hits;
    s.cache_misses += cs.misses;
  }
  return s;
}

}  // namespace cia::keylime
