// An immutable hash-map index over one RuntimePolicy revision.
//
// The paper's deployment appraises every IMA entry against a 323,734-line
// (46 MB) policy; RuntimePolicy::check pays an ordered-map path lookup
// plus a glob scan over the exclude list on every call. PolicyIndex is
// built once per policy revision and answers the same query from a flat
// hash table with the exclusion verdict precomputed per indexed path —
// the hot path (an allowed entry) is one string hash and one memcmp-sized
// compare.
//
// Indexes are shared read-only across verifier shards via
// shared_ptr<const PolicyIndex>: a dynamic policy update builds a fresh
// index and swaps the pointer (copy-on-write), so a shard mid-appraisal
// keeps its consistent snapshot and never observes a torn table.
// check() must agree with RuntimePolicy::check on every input — a
// property test in tests/property_test.cpp holds the two implementations
// against each other over generated policies and adversarial paths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "keylime/runtime_policy.hpp"

namespace cia::keylime {

namespace policy_store {
struct PolicyDelta;
}  // namespace policy_store

class PolicyIndex {
 public:
  /// Build an index over `policy`. `revision` tags the snapshot (the
  /// pool bumps it once per dynamic policy push) and is observability
  /// metadata only — lookups never consult it.
  static std::shared_ptr<const PolicyIndex> build(const RuntimePolicy& policy,
                                                  std::uint64_t revision = 0);

  /// Build the index for `target` as a thin overlay layer over `base`:
  /// only the paths `delta` names are stored (plus tombstones for
  /// removals); everything else resolves through the shared base table.
  /// For the paper's §III-C shape (a ~1.3k-entry daily update against a
  /// 300k-entry base) the layer costs O(delta), not O(base) — neither
  /// the per-path exclude-glob scan of a full build nor a deep copy of
  /// the base table. Every kMaxLayerDepth layers the chain is flattened
  /// (one deep copy, replaying the overlays) so lookup depth stays
  /// bounded under an unbounded stream of daily deltas. Preconditions
  /// (the pool's push path guarantees them): `base` indexes the policy
  /// delta.base_digest names, and `target` == apply(base policy, delta).
  /// Falls back to a full build when the delta replaces the exclude
  /// list, since every precomputed per-path exclusion verdict goes stale
  /// then. The result is a fresh snapshot: new uid, caller-supplied
  /// revision.
  static std::shared_ptr<const PolicyIndex> build_incremental(
      const std::shared_ptr<const PolicyIndex>& base,
      const RuntimePolicy& target, const policy_store::PolicyDelta& delta,
      std::uint64_t revision);

  /// Process-wide count of full build() calls / incremental patches —
  /// the dedupe pins: a bulk push to N agents or shards must cost one
  /// build, and a delta push must cost zero full builds.
  static std::uint64_t full_build_count();
  static std::uint64_t incremental_build_count();

  /// Exactly RuntimePolicy::check, answered from the index. When
  /// `known` is non-null it reports whether the path was resolved from
  /// the table (hit) or fell through to the exclude-glob scan (miss).
  PolicyMatch check(const std::string& path, const std::string& hash_hex,
                    bool* known = nullptr) const;
  /// Digest-keyed probe: compares the digest against the stored hex
  /// strings nibble-by-nibble instead of rendering it to a temporary
  /// 64-byte string per call. Heterogeneous (string_view) path lookup so
  /// zero-copy decoded entries probe without materializing the path.
  PolicyMatch check(std::string_view path, const crypto::Digest& hash,
                    bool* known = nullptr) const;

  std::uint64_t revision() const { return revision_; }

  /// Process-unique id of this built index, assigned by build(). Unlike
  /// `revision()` (caller-supplied metadata, defaults to 0), uid() never
  /// collides between two distinct indexes, so verdict caches key on it
  /// to make a copy-on-write policy swap an implicit cache invalidation.
  std::uint64_t uid() const { return uid_; }
  std::size_t path_count() const { return path_count_; }
  std::size_t entry_count() const { return entry_count_; }

  /// How many overlay layers sit between this index and the flat root
  /// table (0 for a full build). Exposed for tests pinning the flatten
  /// policy.
  std::size_t layer_depth() const { return layer_depth_; }

  /// Flatten threshold: an incremental build whose overlay chain would
  /// exceed this depth deep-copies the root and replays the layers
  /// instead of linking another one.
  static constexpr std::size_t kMaxLayerDepth = 8;

  /// Paths absent from the table still need an exclusion verdict. The
  /// exclude list is compiled at build time: globs of the shape
  /// "DIR/*" (a literal directory prefix, one trailing star) become hash
  /// probes on the path's "/" boundaries; only general patterns —
  /// suffix/infix globs like "*.log" or "*/__pycache__/*" — fall back to
  /// the backtracking matcher. Exposed for tests.
  bool excluded_by_scan(std::string_view path) const;

 private:
  struct PathEntry {
    bool excluded = false;  // is_excluded(path), precomputed at build
    std::vector<std::string> hashes;
  };

  /// Transparent hash/equality so string_view keys probe without an
  /// owning std::string temporary.
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  /// The full table for a root index; only the patched paths for an
  /// overlay layer (lookups fall through to base_ on a miss).
  std::unordered_map<std::string, PathEntry, SvHash, SvEq> paths_;
  /// Overlay tombstones: paths the delta removed. A hit here hides any
  /// base entry — the path behaves as not-in-table (exclude-scan
  /// verdict, known=false). Empty on root indexes.
  std::unordered_set<std::string, SvHash, SvEq> removed_;
  /// The shared parent layer, nullptr for a root (full-build) index.
  /// Excludes are identical across a chain (a delta that touches them
  /// forces a full rebuild), so each layer copies the compiled globs.
  std::shared_ptr<const PolicyIndex> base_;
  /// Compiled "DIR/*" excludes, keyed by the literal prefix (ends '/').
  std::unordered_set<std::string, SvHash, SvEq> dir_excludes_;
  /// Everything the compiler could not reduce to a prefix probe.
  std::vector<std::string> general_excludes_;
  std::size_t entry_count_ = 0;
  std::size_t path_count_ = 0;
  std::size_t layer_depth_ = 0;
  std::uint64_t revision_ = 0;
  std::uint64_t uid_ = 0;
};

}  // namespace cia::keylime
