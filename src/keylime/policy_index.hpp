// An immutable hash-map index over one RuntimePolicy revision.
//
// The paper's deployment appraises every IMA entry against a 323,734-line
// (46 MB) policy; RuntimePolicy::check pays an ordered-map path lookup
// plus a glob scan over the exclude list on every call. PolicyIndex is
// built once per policy revision and answers the same query from a flat
// hash table with the exclusion verdict precomputed per indexed path —
// the hot path (an allowed entry) is one string hash and one memcmp-sized
// compare.
//
// Indexes are shared read-only across verifier shards via
// shared_ptr<const PolicyIndex>: a dynamic policy update builds a fresh
// index and swaps the pointer (copy-on-write), so a shard mid-appraisal
// keeps its consistent snapshot and never observes a torn table.
// check() must agree with RuntimePolicy::check on every input — a
// property test in tests/property_test.cpp holds the two implementations
// against each other over generated policies and adversarial paths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "keylime/runtime_policy.hpp"

namespace cia::keylime {

class PolicyIndex {
 public:
  /// Build an index over `policy`. `revision` tags the snapshot (the
  /// pool bumps it once per dynamic policy push) and is observability
  /// metadata only — lookups never consult it.
  static std::shared_ptr<const PolicyIndex> build(const RuntimePolicy& policy,
                                                  std::uint64_t revision = 0);

  /// Exactly RuntimePolicy::check, answered from the index. When
  /// `known` is non-null it reports whether the path was resolved from
  /// the table (hit) or fell through to the exclude-glob scan (miss).
  PolicyMatch check(const std::string& path, const std::string& hash_hex,
                    bool* known = nullptr) const;
  /// Digest-keyed probe: compares the digest against the stored hex
  /// strings nibble-by-nibble instead of rendering it to a temporary
  /// 64-byte string per call. Heterogeneous (string_view) path lookup so
  /// zero-copy decoded entries probe without materializing the path.
  PolicyMatch check(std::string_view path, const crypto::Digest& hash,
                    bool* known = nullptr) const;

  std::uint64_t revision() const { return revision_; }

  /// Process-unique id of this built index, assigned by build(). Unlike
  /// `revision()` (caller-supplied metadata, defaults to 0), uid() never
  /// collides between two distinct indexes, so verdict caches key on it
  /// to make a copy-on-write policy swap an implicit cache invalidation.
  std::uint64_t uid() const { return uid_; }
  std::size_t path_count() const { return paths_.size(); }
  std::size_t entry_count() const { return entry_count_; }

  /// Paths absent from the table still need an exclusion verdict. The
  /// exclude list is compiled at build time: globs of the shape
  /// "DIR/*" (a literal directory prefix, one trailing star) become hash
  /// probes on the path's "/" boundaries; only general patterns —
  /// suffix/infix globs like "*.log" or "*/__pycache__/*" — fall back to
  /// the backtracking matcher. Exposed for tests.
  bool excluded_by_scan(std::string_view path) const;

 private:
  struct PathEntry {
    bool excluded = false;  // is_excluded(path), precomputed at build
    std::vector<std::string> hashes;
  };

  /// Transparent hash/equality so string_view keys probe without an
  /// owning std::string temporary.
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, PathEntry, SvHash, SvEq> paths_;
  /// Compiled "DIR/*" excludes, keyed by the literal prefix (ends '/').
  std::unordered_set<std::string, SvHash, SvEq> dir_excludes_;
  /// Everything the compiler could not reduce to a prefix probe.
  std::vector<std::string> general_excludes_;
  std::size_t entry_count_ = 0;
  std::uint64_t revision_ = 0;
  std::uint64_t uid_ = 0;
};

}  // namespace cia::keylime
