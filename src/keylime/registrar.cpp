#include "keylime/registrar.hpp"

#include "common/log.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace cia::keylime {

Registrar::Registrar(netsim::SimNetwork* network, SimClock* clock,
                     std::uint64_t seed)
    : network_(network), clock_(clock), rng_(seed) {
  network_->attach(address(), this);
}

Registrar::~Registrar() { network_->detach(address()); }

void Registrar::trust_manufacturer(const crypto::PublicKey& ca_key) {
  trusted_cas_.push_back(ca_key);
}

Result<Bytes> Registrar::handle(const std::string& kind, const Bytes& payload) {
  if (kind == kMsgRegister) return handle_register(payload);
  if (kind == kMsgActivate) return handle_activate(payload);
  if (kind == kMsgGetAgent) return handle_get_agent(payload);
  return err(Errc::kProtocolViolation, "registrar: unknown message " + kind);
}

Result<Bytes> Registrar::handle_register(const Bytes& payload) {
  auto req = RegisterRequest::decode(payload);
  if (!req.ok()) return req.error();

  auto cert = crypto::Certificate::decode(req.value().ek_cert);
  if (!cert) {
    return err(Errc::kCorrupted, "unparseable EK certificate");
  }
  bool trusted = false;
  for (const auto& ca : trusted_cas_) {
    if (crypto::verify_certificate(*cert, ca, clock_->now())) {
      trusted = true;
      break;
    }
  }
  if (!trusted) {
    return err(Errc::kPermissionDenied,
               "EK certificate does not chain to a trusted manufacturer");
  }
  auto ak = crypto::PublicKey::decode(req.value().ak_pub);
  if (!ak) return err(Errc::kCorrupted, "bad AK encoding");

  // Challenge: a fresh secret only the certified EK's TPM can recover,
  // bound to the name of the AK being registered.
  Enrolment enrolment;
  enrolment.ak_pub = req.value().ak_pub;
  enrolment.expected_secret = rng_.bytes(32);
  const std::string ak_name = crypto::digest_hex(crypto::sha256(req.value().ak_pub));

  // The credential is encrypted to the EK from the certificate; only the
  // TPM holding that EK can recover the secret and prove AK co-residency.
  RegisterChallenge challenge;
  challenge.blob = tpm::make_credential(cert->subject_key, ak_name,
                                        enrolment.expected_secret,
                                        rng_.bytes(32));
  enrolments_[req.value().agent_id] = std::move(enrolment);
  return challenge.encode();
}

Result<Bytes> Registrar::handle_activate(const Bytes& payload) {
  auto req = ActivateRequest::decode(payload);
  if (!req.ok()) return req.error();
  auto it = enrolments_.find(req.value().agent_id);
  if (it == enrolments_.end()) {
    return err(Errc::kNotFound, "no pending enrolment for " + req.value().agent_id);
  }
  const crypto::Digest expected = crypto::hmac_sha256(
      it->second.expected_secret, to_bytes(req.value().agent_id));
  if (Bytes(expected.begin(), expected.end()) != req.value().proof) {
    return err(Errc::kPermissionDenied, "credential activation proof mismatch");
  }
  it->second.active = true;
  CIA_LOG_INFO("registrar", req.value().agent_id + " activated");
  return Bytes{};
}

Result<Bytes> Registrar::handle_get_agent(const Bytes& payload) {
  auto req = GetAgentRequest::decode(payload);
  if (!req.ok()) return req.error();
  GetAgentResponse resp;
  auto it = enrolments_.find(req.value().agent_id);
  if (it != enrolments_.end()) {
    resp.active = it->second.active;
    resp.ak_pub = it->second.ak_pub;
  }
  return resp.encode();
}

bool Registrar::is_active(const std::string& agent_id) const {
  auto it = enrolments_.find(agent_id);
  return it != enrolments_.end() && it->second.active;
}

Status Registrar::transfer_enrolment(const std::string& agent_id,
                                     Registrar& dest) const {
  auto it = enrolments_.find(agent_id);
  if (it == enrolments_.end()) {
    return err(Errc::kNotFound, "no enrolment for " + agent_id);
  }
  if (!it->second.active) {
    return err(Errc::kPermissionDenied,
               agent_id + " is not activated; refusing to transfer");
  }
  dest.enrolments_[agent_id] = it->second;
  return Status::ok_status();
}

std::size_t Registrar::registered_count() const {
  std::size_t n = 0;
  for (const auto& [id, e] : enrolments_) {
    (void)id;
    if (e.active) ++n;
  }
  return n;
}

}  // namespace cia::keylime
