// The Keylime verifier: polls agents, validates quotes, replays the IMA
// log against PCR 10, and matches every entry against the runtime policy.
//
// Failure semantics are modelled after stock Keylime and are the subject
// of problem P2: on the first policy violation the verifier marks the
// agent FAILED and stops polling it, leaving every subsequent measurement
// unevaluated until an operator resolves the failure. The
// `continue_on_failure` option implements the paper's recommended fix —
// keep attesting, quarantine violations as alerts, never leave the log
// partially evaluated.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "keylime/appraisal_cache.hpp"
#include "keylime/audit.hpp"
#include "keylime/messages.hpp"
#include "keylime/notifier.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/runtime_policy.hpp"
#include "netsim/network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cia::keylime {

enum class AgentState {
  kAttesting,  // healthy, polled every interval
  kFailed,     // attestation failed; polling stopped (stock behaviour)
};

enum class AlertType {
  kQuoteInvalid,          // signature or nonce check failed
  kReplayMismatch,        // IMA log does not reproduce quoted PCR 10
  kHashMismatch,          // measured hash not acceptable for the path
  kNotInPolicy,           // measured path absent from the policy
  kMeasuredBootMismatch,  // PCR 0/4/7 differ from the golden refstate
  kCommsFailure,          // agent unreachable / garbled response
};

const char* alert_type_name(AlertType t);

struct Alert {
  SimTime time = 0;
  std::string agent_id;
  AlertType type = AlertType::kQuoteInvalid;
  std::string path;               // offending file (policy alerts)
  std::string observed_hash_hex;  // measured hash (policy alerts)
  std::string detail;
  std::size_t log_index = 0;  // global index of the offending entry
  /// PolicyIndex revision the entry was appraised under (0 when the
  /// agent had no indexed policy installed). Part of the alert-pipeline
  /// dedup key: the same digest alerting under two policy revisions is
  /// two distinct root causes.
  std::uint64_t policy_revision = 0;
};

/// Result of one poll round against one agent.
struct AttestationRound {
  std::size_t new_entries = 0;
  std::size_t evaluated = 0;
  std::vector<Alert> alerts;
  AgentState state = AgentState::kAttesting;
  bool reboot_detected = false;
};

struct VerifierConfig {
  /// The paper's P2 mitigation: evaluate the complete log even after a
  /// violation instead of halting at the first bad entry.
  bool continue_on_failure = false;

  /// Seed for the per-agent quote-nonce streams (defaults to the
  /// verifier's own seed). Nonces are derived from (nonce_seed, agent_id,
  /// per-agent counter), not from the verifier's shared RNG, so an
  /// agent's challenge sequence — and therefore its quote digests and
  /// audit sub-chain — does not depend on which other agents share the
  /// verifier. A VerifierPool gives every shard the same nonce_seed,
  /// which is what makes audit chains invariant under resharding.
  std::optional<std::uint64_t> nonce_seed;

  /// Queue revocation events instead of firing notifiers inline from
  /// raise(). A VerifierPool sets this on every shard verifier: raise()
  /// runs on shard worker threads, and a notifier registered on more
  /// than one shard (or at the pool level) must only ever be invoked
  /// from the driver thread at the round-boundary drain
  /// (drain_revocations()). Solo verifiers keep inline delivery.
  bool defer_revocations = false;
};

/// Golden measured-boot state (the "mb_refstate" of real Keylime): the
/// expected values of the boot-chain PCRs, captured from a known-good
/// machine of the same image. When installed for an agent, every quote's
/// PCR 0/4/7 must match or attestation fails — this is how bootkits and
/// tampered kernels surface even though IMA never measures them.
struct MbRefstate {
  crypto::Digest pcr0{};
  crypto::Digest pcr4{};
  crypto::Digest pcr7{};

  static MbRefstate capture(const tpm::Tpm2& tpm);
  bool operator==(const MbRefstate&) const = default;
};

/// The PCRs every quote covers: the measured-boot chain plus IMA's PCR.
const std::vector<int>& quoted_pcrs();

/// The outcome of a boot-log attestation: whether the agent's claimed
/// event log is consistent with the quoted PCRs, plus the component-level
/// diff against the pinned golden event log — the operator-actionable
/// answer to "PCR 4 changed, but WHAT changed?".
struct BootLogReport {
  bool log_matches_quote = false;  // events fold to the quoted PCR values
  std::vector<std::string> changed;  // same component, different digest
  std::vector<std::string> added;    // components not in the baseline
  std::vector<std::string> removed;  // baseline components now absent
  bool clean() const {
    return log_matches_quote && changed.empty() && added.empty() &&
           removed.empty();
  }
};

class Verifier : public PolicySink {
 public:
  Verifier(netsim::SimNetwork* network, SimClock* clock, std::uint64_t seed,
           VerifierConfig config = {});

  /// Route all RPCs (registrar lookups, agent quotes) through `transport`
  /// instead of the raw network — stack a netsim::RetryingTransport here
  /// so transient faults are retried before they surface as comms alerts.
  /// Passing nullptr restores the raw network path.
  void use_transport(netsim::Transport* transport);

  /// Export round/alert/appraisal metrics to `metrics` and emit one
  /// hierarchical span tree per attestation round (quote request -> TPM
  /// verify -> IMA appraisal -> policy decision) on `tracer`. Either may
  /// be nullptr; telemetry never alters attestation behaviour.
  void use_telemetry(telemetry::MetricsRegistry* metrics,
                     telemetry::Tracer* tracer = nullptr);

  /// Enrol an agent for continuous attestation. Fetches and pins its AK
  /// from the registrar; fails if the agent is not activated there.
  Status add_agent(const std::string& agent_id, const std::string& address);

  /// Install/replace the runtime policy for an agent (the dynamic policy
  /// generator pushes through here before each scheduled update). Drops
  /// any installed PolicyIndex — a plain push has no index revision, so
  /// appraisal falls back to RuntimePolicy::check until one is installed.
  Status set_policy(const std::string& agent_id, RuntimePolicy policy) override;

  /// Install a policy together with a prebuilt shared lookup index (the
  /// VerifierPool path: one index per policy revision, shared read-only
  /// across every shard and agent it covers). The swap is copy-on-write:
  /// an appraisal already running against the old index keeps its
  /// snapshot alive through the shared_ptr.
  Status set_indexed_policy(const std::string& agent_id, RuntimePolicy policy,
                            std::shared_ptr<const PolicyIndex> index);

  /// Bulk push with index dedupe: builds ONE PolicyIndex for the batch
  /// and installs it on every listed agent via set_indexed_policy. The
  /// solo-verifier counterpart of the pool's shared-index push — the
  /// orchestrator's bulk pushes land here when the sink is a plain
  /// Verifier, so its agents get indexed appraisal too instead of the
  /// linear fallback set_policy leaves behind.
  Status set_policy_bulk(const std::vector<std::string>& agent_ids,
                         const RuntimePolicy& policy) override;

  /// Revision tag of the agent's installed PolicyIndex (0 when none) —
  /// what Alert::policy_revision will carry for its next appraisal. The
  /// rollout checks use this to prove no non-canary agent ever held a
  /// rolled-back revision.
  std::uint64_t policy_revision_of(const std::string& agent_id) const;

  /// Cumulative PolicyIndex lookup tallies across all agents: a hit
  /// resolved the path from the index table, a miss fell through to the
  /// exclude-glob scan. Entries appraised without an index count in
  /// neither.
  struct IndexStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  const IndexStats& index_stats() const { return index_stats_; }

  /// Attach a policy-verdict cache (non-owning; nullptr detaches).
  /// Appraisal consults it before the PolicyIndex probe; it only
  /// participates on indexed appraisals, since a cached verdict is keyed
  /// by PolicyIndex::uid() so copy-on-write policy swaps invalidate it.
  /// The cache is not thread-safe — give each verifier (pool shard) its
  /// own instance.
  void use_appraisal_cache(AppraisalCache* cache) { cache_ = cache; }

  /// Install a measured-boot refstate for an agent; PCR 0/4/7 of every
  /// subsequent quote must match it.
  Status set_mb_refstate(const std::string& agent_id, MbRefstate refstate);

  /// Pin a golden boot event log (captured from a known-good machine of
  /// the same image) for component-level boot diagnostics.
  Status set_boot_baseline(const std::string& agent_id,
                           std::vector<oskernel::BootEvent> events);

  /// Fetch the agent's boot event log, check it reproduces the quoted
  /// boot-chain PCRs, and diff it against the pinned baseline.
  Result<BootLogReport> attest_boot_log(const std::string& agent_id);

  const RuntimePolicy* policy(const std::string& agent_id) const;

  /// One attestation round: challenge, verify, evaluate.
  /// For a FAILED agent this is a no-op unless continue_on_failure.
  Result<AttestationRound> attest_once(const std::string& agent_id);

  /// Poll every enrolled agent once.
  std::vector<AttestationRound> attest_all();

  /// Operator action: clear the FAILED state so polling resumes. Pending
  /// (never-evaluated) entries are examined on the next round.
  Status resolve_failure(const std::string& agent_id);

  std::optional<AgentState> state(const std::string& agent_id) const;

  /// Entries received but not yet policy-evaluated (non-empty exactly when
  /// a failure froze evaluation mid-log — the "incomplete attestation
  /// log" of P2).
  std::size_t pending_entries(const std::string& agent_id) const;

  /// Rounds executed against this agent since its last fully successful
  /// attestation (clean round while kAttesting). Also exported as the
  /// gauge cia_verifier_rounds_since_success{agent}. The P2 blind spot
  /// made visible: under stock Keylime this freezes at its value when
  /// polling stops; under continue_on_failure it keeps growing until an
  /// operator resolves the failure — a monitorable, alertable number.
  std::uint64_t rounds_since_success(const std::string& agent_id) const;

  const std::vector<Alert>& alerts() const { return alerts_; }
  std::vector<Alert> alerts_for(const std::string& agent_id) const;

  std::vector<std::string> agent_ids() const;

  /// The durable-attestation chain: one signed record per poll round.
  const AuditLog& audit() const { return audit_; }

  /// Adopt an audit sub-chain continuation point for an agent (live
  /// migration fallback path: the destination re-enrols the agent but
  /// must keep extending the chain the source shard started).
  void seed_audit_tail(const std::string& agent_id,
                       const AuditLog::AgentTail& tail);

  /// The enrolled address of an agent (nullopt when unknown).
  std::optional<std::string> agent_address(const std::string& agent_id) const;

  /// Checkpoint format version written by checkpoint(). restore() accepts
  /// any version up to this and refuses newer ones outright — a state
  /// blob from a future build must never be half-understood.
  static constexpr int kCheckpointVersion = 2;

  /// Serialize the verifier's complete working state — every enrolled
  /// agent's record (pinned AK, policy, refstates, incremental log
  /// cursor, quarantine/failure state, unevaluated entries) plus the
  /// audit chain — to a JSON document. A verifier constructed with the
  /// same seed can restore() it after a crash and resume mid-fleet
  /// without duplicate alerts or a forked audit chain.
  json::Value checkpoint() const;

  /// Restore state from a checkpoint() document. The embedded audit
  /// chain must verify under this verifier's own signing key (same seed
  /// as the crashed instance). Replaces all agent state and alerts are
  /// NOT replayed — a restored FAILED agent stays failed, a restored
  /// healthy agent resumes at its saved log offset.
  Status restore(const json::Value& doc);

  /// Register a revocation notifier; fired on kAttesting -> kFailed
  /// transitions (inline from raise(), or at drain_revocations() when
  /// defer_revocations is set).
  void add_notifier(RevocationNotifier* notifier);

  /// Deliver every queued revocation event (defer_revocations mode) to
  /// this verifier's notifiers and hand the batch to the caller for
  /// pool-level fan-out. Must be called from the thread that owns the
  /// verifier between rounds; a pool drains every shard at each round
  /// boundary. No-op (empty result) when nothing is queued.
  std::vector<RevocationEvent> drain_revocations();

  /// Agents whose rounds_since_success is at least `min_rounds`, with
  /// their counters, in agent-id order — the alert pipeline's staleness
  /// scan (the P2 signal at fleet scope). O(agents), driver thread only.
  std::vector<std::pair<std::string, std::uint64_t>> stale_agents(
      std::uint64_t min_rounds) const;

  // ------------------------------------------- single-agent state slices
  // The unit of live migration: one agent's record in exactly the shape
  // checkpoint() embeds it, plus the agent's audit sub-chain tail and
  // nonce counter, so the importing verifier continues the agent's
  // attestation history without a seam.

  /// Serialize one enrolled agent's complete slice.
  Result<json::Value> export_agent(const std::string& agent_id) const;

  /// Adopt an agent slice produced by export_agent on another verifier.
  /// Fully validates before touching any state — a rejected slice leaves
  /// this verifier byte-identical — and is idempotent: re-importing the
  /// same slice (a duplicated handoff message) replaces the record with
  /// identical contents.
  Status import_agent(const json::Value& slice);

  /// Drop an agent (it migrated away or unenrolled). Its audit records
  /// stay — history is append-only — but its sub-chain tail is released
  /// to the destination shard.
  Status remove_agent(const std::string& agent_id);

  /// Validate an agent slice without applying it (the handoff payload
  /// decoder's hostile-input gate).
  static Status validate_agent_slice(const json::Value& slice);

 private:
  struct AgentRecord {
    std::string address;
    crypto::PublicKey ak;
    RuntimePolicy policy;
    std::shared_ptr<const PolicyIndex> index;  // null: linear appraisal
    std::optional<MbRefstate> mb_refstate;
    std::vector<oskernel::BootEvent> boot_baseline;
    AgentState state = AgentState::kAttesting;
    std::uint64_t log_offset = 0;        // entries fetched so far
    crypto::Digest accumulated_pcr{};    // fold of all fetched entries
    std::uint32_t boot_count = 0;
    std::uint64_t rounds_since_success = 0;
    std::uint64_t nonce_counter = 0;     // per-agent challenge stream cursor
    std::deque<std::pair<std::uint64_t, ima::LogEntry>> pending;  // unevaluated
  };

  /// A fully parsed agent slice: the record plus the audit sub-chain tail
  /// it carries (absent in v1 checkpoints).
  struct ParsedAgentSlice {
    std::string id;
    AgentRecord record;
    std::optional<AuditLog::AgentTail> tail;
  };

  json::Value agent_to_json(const std::string& agent_id,
                            const AgentRecord& rec) const;
  static Result<ParsedAgentSlice> agent_from_json(const json::Value& slice);

  /// Next 20-byte quote nonce for this agent (advances its counter).
  Bytes next_nonce(const std::string& agent_id, AgentRecord& rec);

  // path/observed_hash_hex/detail are taken by value and moved into the
  // Alert: call sites hand over freshly-built temporaries (path copies,
  // digest_hex renders), so the storm path pays one string construction
  // per field instead of construct-then-copy.
  void raise(AgentRecord& rec, const std::string& agent_id, AlertType type,
             std::string path, std::string observed_hash_hex,
             std::string detail, std::size_t log_index,
             AttestationRound& round);

  Result<AttestationRound> attest_once_impl(const std::string& agent_id);

  /// One policy verdict on the appraisal hot path: verdict cache (when
  /// attached and an index is installed), then PolicyIndex probe, then
  /// the linear RuntimePolicy scan when no index is installed.
  /// `template_hash` must be the hash the verifier computed/verified from
  /// the entry's own data — it is the cache key.
  PolicyMatch appraise(AgentRecord& rec, const PolicyIndex* index,
                       std::string_view path, const crypto::Digest& file_hash,
                       const crypto::Digest& template_hash);

  /// Open a child span on the attached tracer (no-op scope when tracing
  /// is off).
  std::optional<telemetry::Tracer::Scope> trace_span(const char* name);

  netsim::SimNetwork* network_;
  netsim::Transport* transport_;  // defaults to network_
  SimClock* clock_;
  Rng rng_;
  VerifierConfig config_;
  std::uint64_t nonce_seed_;
  std::map<std::string, AgentRecord> agents_;
  std::vector<Alert> alerts_;
  AuditLog audit_;
  std::vector<RevocationNotifier*> notifiers_;
  std::vector<RevocationEvent> pending_revocations_;  // defer_revocations
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  crypto::Digest last_quote_digest_{};  // set by attest_once_impl
  IndexStats index_stats_;
  AppraisalCache* cache_ = nullptr;  // optional, non-owning
  std::uint64_t bulk_revision_ = 0;  // revision tags for bulk-built indexes
};

}  // namespace cia::keylime
