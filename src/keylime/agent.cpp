#include "keylime/agent.hpp"

#include <chrono>

#include "common/log.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime {

Agent::Agent(oskernel::Machine* machine, netsim::SimNetwork* network)
    : machine_(machine),
      network_(network),
      transport_(network),
      agent_id_(machine->hostname()) {
  network_->attach(address(), this);
}

void Agent::use_transport(netsim::Transport* transport) {
  transport_ = transport ? transport : network_;
}

Agent::~Agent() { network_->detach(address()); }

Status Agent::register_with(const std::string& registrar_address) {
  RegisterRequest req;
  req.agent_id = agent_id_;
  req.ek_cert = machine_->tpm().ek_certificate().encode();
  req.ak_pub = machine_->tpm().ak_public().encode();

  auto challenge_bytes = transport_->call(registrar_address, kMsgRegister,
                                          req.encode());
  if (!challenge_bytes.ok()) return challenge_bytes.error();
  auto challenge = RegisterChallenge::decode(challenge_bytes.value());
  if (!challenge.ok()) return challenge.error();

  // Only our TPM (holding the certified EK) can open the credential.
  auto secret = machine_->tpm().activate_credential(challenge.value().blob);
  if (!secret.ok()) return secret.error();

  ActivateRequest activate;
  activate.agent_id = agent_id_;
  const crypto::Digest proof =
      crypto::hmac_sha256(secret.value(), to_bytes(agent_id_));
  activate.proof = Bytes(proof.begin(), proof.end());

  auto ack = transport_->call(registrar_address, kMsgActivate, activate.encode());
  if (!ack.ok()) return ack.error();
  CIA_LOG_INFO("agent", agent_id_ + " registered");
  return Status::ok_status();
}

Result<Bytes> Agent::handle(const std::string& kind, const Bytes& payload) {
  if (kind == kMsgBootLog) {
    BootLogResponse resp;
    resp.events = machine_->boot_event_log();
    return resp.encode();
  }
  if (kind != kMsgQuote) {
    return err(Errc::kProtocolViolation, "agent: unknown message " + kind);
  }
  auto req = QuoteRequest::decode(payload);
  if (!req.ok()) return req.error();

  const auto wall_start = std::chrono::steady_clock::now();
  const auto boot_count = static_cast<std::uint32_t>(machine_->boot_count());
  // Quote over the challenge with our boot counter bound in, so the
  // verifier can trust the reboot signal as much as the quote itself.
  const tpm::Quote quote = machine_->tpm().quote(
      bound_quote_nonce(req.value().nonce, boot_count), quoted_pcrs());
  // Serialize the log tail straight from the borrowed span — the old
  // path deep-copied every entry into a QuoteResponse it encoded and
  // immediately threw away.
  const std::span<const ima::LogEntry> entries =
      machine_->ima().log_since(req.value().log_offset);
  Bytes encoded = encode_quote_response(quote, entries,
                                        machine_->ima().log().size(),
                                        boot_count);
  if (metrics_) {
    const telemetry::Labels labels{{"agent", agent_id_}};
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
    metrics_
        ->histogram("cia_agent_quote_us", labels,
                    telemetry::wallclock_micros_buckets())
        .observe(us);
    if (!entries.empty()) {
      metrics_->counter("cia_agent_entries_shipped_total", labels)
          .inc(entries.size());
    }
    metrics_->counter("cia_agent_log_bytes_shipped_total", labels)
        .inc(encoded.size());
  }
  return encoded;
}

}  // namespace cia::keylime
