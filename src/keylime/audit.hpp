// Durable attestation: an append-only, hash-chained, verifier-signed
// record of every attestation round.
//
// Keylime's "durable attestation" extension makes security *auditable*:
// months later, an auditor can prove what the verifier observed and when,
// without trusting the verifier's current state. Each record binds the
// round's quote and verdict to the previous record's hash; the verifier
// signs every record, so tampering with, reordering, or rewriting history
// is detectable by anyone holding the verifier's public key.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace cia::keylime {

/// Verdict of one recorded round.
enum class AuditVerdict {
  kPassed,       // quote valid, all evaluated entries in policy
  kFailed,       // at least one alert raised
  kRebootSeen,   // measurement list restarted
  kUnreachable,  // comms failure
};

const char* audit_verdict_name(AuditVerdict v);

struct AuditRecord {
  std::uint64_t sequence = 0;
  SimTime time = 0;
  std::string agent_id;
  AuditVerdict verdict = AuditVerdict::kPassed;
  std::size_t alerts = 0;
  std::size_t log_entries_evaluated = 0;
  std::uint64_t agent_seq = 0;      // position in this agent's own sub-chain
  crypto::Digest quote_digest{};    // SHA-256 of the quote's attested message
  crypto::Digest prev_hash{};       // chain link (zero for the first record)
  crypto::Digest agent_prev_hash{}; // per-agent sub-chain link (zero at start)
  crypto::Digest record_hash{};     // hash over all fields above
  crypto::Signature signature;      // verifier's signature over record_hash

  /// Recompute the record hash from the fields (excluding hash+signature).
  crypto::Digest compute_hash() const;

  /// Hash of the per-agent sub-chain fields only. Unlike record_hash it
  /// excludes sequence/prev_hash, so an agent's sub-chain hashes are
  /// identical no matter which shard's log each record landed in — the
  /// property live resharding relies on to prove continuity.
  crypto::Digest agent_hash() const;

  json::Value to_json() const;
  static Result<AuditRecord> from_json(const json::Value& doc);
};

/// The verifier-side appender.
class AuditLog {
 public:
  /// Where an agent's sub-chain will continue: the agent_seq the next
  /// record gets and the agent_hash it must link to. Migrates with the
  /// agent so a destination shard extends — never forks — the chain.
  struct AgentTail {
    std::uint64_t next_seq = 0;
    crypto::Digest prev_hash{};
  };

  explicit AuditLog(crypto::KeyPair signing_key)
      : key_(std::move(signing_key)) {}

  const crypto::PublicKey& public_key() const { return key_.pub; }

  /// Append a record; fills sequence, prev_hash, agent_seq,
  /// agent_prev_hash, record_hash, signature.
  const AuditRecord& append(SimTime time, const std::string& agent_id,
                            AuditVerdict verdict, std::size_t alerts,
                            std::size_t evaluated,
                            const crypto::Digest& quote_digest);

  const std::vector<AuditRecord>& records() const { return records_; }

  /// Hash of the newest record (zero when the chain is empty) — the
  /// value an external anchor publishes, and what a checkpoint pins.
  crypto::Digest head() const;

  /// This agent's sub-chain continuation point (a fresh tail — next_seq 0,
  /// zero prev — when the agent has never been recorded here).
  AgentTail agent_tail(const std::string& agent_id) const;

  /// Adopt a sub-chain continuation point handed over by another shard's
  /// log (agent migration or checkpoint restore).
  void set_agent_tail(const std::string& agent_id, const AgentTail& tail);

  /// Forget an agent's tail (the agent migrated away; its records stay).
  void drop_agent_tail(const std::string& agent_id);

  /// Adopt a previously exported chain (verifier crash-recovery). The
  /// records must form a valid chain signed by this log's own key;
  /// subsequent appends continue from the restored head, so a restart
  /// never forks or truncates history undetectably. Per-agent tails are
  /// rebuilt from the records (callers holding migrated-in tails newer
  /// than the records re-seed them via set_agent_tail afterwards).
  Status restore(std::vector<AuditRecord> records);

 private:
  crypto::KeyPair key_;
  std::vector<AuditRecord> records_;
  std::map<std::string, AgentTail> tails_;
};

/// Export a chain (with the verifier's public key) as a JSON document the
/// auditor can verify offline.
json::Value export_audit_chain(const std::vector<AuditRecord>& records,
                               const crypto::PublicKey& verifier_key);

/// Import an exported chain: returns the records and the embedded key.
Result<std::pair<std::vector<AuditRecord>, crypto::PublicKey>>
import_audit_chain(const json::Value& doc);

/// Offline audit: verify a chain's integrity against the verifier's
/// public key. Detects tampered fields, broken links, reordered records,
/// and bad signatures. Also checks each agent's sub-chain linkage within
/// the log: an agent's first record may sit at any agent_seq (its earlier
/// history can live on another shard), but every later record must extend
/// the previous one. (Truncation of the tail requires an external
/// anchor — the caller compares the final hash against a published one.)
Status verify_audit_chain(const std::vector<AuditRecord>& records,
                          const crypto::PublicKey& verifier_key);

}  // namespace cia::keylime
