// Revocation notification: Keylime's mechanism for telling the rest of
// the infrastructure that a node can no longer be trusted.
//
// When an agent transitions to FAILED the verifier fans the event out to
// registered notifiers (in real deployments: webhooks, a message bus, a
// certificate revocation service). Notifiers fire on the *transition*,
// not on every alert, so a flapping node does not storm downstream
// systems.
#pragma once

#include <string>
#include <vector>

#include "common/sim_clock.hpp"

namespace cia::keylime {

struct Alert;  // verifier.hpp

/// A revocation event: the agent and the alert that tripped it.
struct RevocationEvent {
  SimTime time = 0;
  std::string agent_id;
  std::string reason;  // rendered alert summary
};

/// Downstream consumer interface.
class RevocationNotifier {
 public:
  virtual ~RevocationNotifier() = default;
  virtual void on_revocation(const RevocationEvent& event) = 0;
};

/// An in-process notifier that records events (the test/bench stand-in
/// for a webhook endpoint).
class CollectingNotifier : public RevocationNotifier {
 public:
  void on_revocation(const RevocationEvent& event) override {
    events_.push_back(event);
  }
  const std::vector<RevocationEvent>& events() const { return events_; }

 private:
  std::vector<RevocationEvent> events_;
};

}  // namespace cia::keylime
