#include "keylime/policy_index.hpp"

#include <algorithm>

#include "common/strutil.hpp"

namespace cia::keylime {

namespace {

/// Is `glob` of the shape "PREFIX*" where PREFIX is literal (no other
/// metacharacters) and names a directory (ends with '/')? Such a glob
/// matches a path exactly when PREFIX is a prefix of it — glob_match's
/// '*' spans any characters, '/' included — so it compiles to a hash
/// probe instead of a backtracking scan.
bool is_dir_prefix_glob(const std::string& glob, std::string* prefix) {
  if (glob.size() < 2 || glob.back() != '*') return false;
  const std::string head = glob.substr(0, glob.size() - 1);
  if (head.find_first_of("*?") != std::string::npos) return false;
  if (head.back() != '/') return false;
  *prefix = head;
  return true;
}

}  // namespace

std::shared_ptr<const PolicyIndex> PolicyIndex::build(
    const RuntimePolicy& policy, std::uint64_t revision) {
  auto index = std::make_shared<PolicyIndex>();
  index->revision_ = revision;
  index->entry_count_ = policy.entry_count();
  for (const std::string& glob : policy.excludes()) {
    std::string prefix;
    if (is_dir_prefix_glob(glob, &prefix)) {
      index->dir_excludes_.insert(std::move(prefix));
    } else {
      index->general_excludes_.push_back(glob);
    }
  }
  index->paths_.reserve(policy.path_count());
  policy.for_each_path(
      [&](const std::string& path, const std::vector<std::string>& hashes) {
        PathEntry entry;
        entry.excluded = index->excluded_by_scan(path);
        entry.hashes = hashes;
        index->paths_.emplace(path, std::move(entry));
      });
  return index;
}

bool PolicyIndex::excluded_by_scan(const std::string& path) const {
  if (!dir_excludes_.empty()) {
    // A compiled "DIR/*" glob matches iff DIR/ is a prefix of the path,
    // and every such prefix ends at one of the path's '/' characters.
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] != '/') continue;
      if (dir_excludes_.count(path.substr(0, i + 1)) != 0) return true;
    }
  }
  for (const std::string& glob : general_excludes_) {
    if (glob_match(glob, path)) return true;
  }
  return false;
}

PolicyMatch PolicyIndex::check(const std::string& path,
                               const std::string& hash_hex,
                               bool* known) const {
  auto it = paths_.find(path);
  if (it != paths_.end()) {
    if (known) *known = true;
    const PathEntry& entry = it->second;
    if (entry.excluded) return PolicyMatch::kExcluded;
    if (std::find(entry.hashes.begin(), entry.hashes.end(), hash_hex) !=
        entry.hashes.end()) {
      return PolicyMatch::kAllowed;
    }
    return PolicyMatch::kHashMismatch;
  }
  if (known) *known = false;
  if (excluded_by_scan(path)) return PolicyMatch::kExcluded;
  return PolicyMatch::kNotInPolicy;
}

PolicyMatch PolicyIndex::check(const std::string& path,
                               const crypto::Digest& hash,
                               bool* known) const {
  return check(path, crypto::digest_hex(hash), known);
}

}  // namespace cia::keylime
