#include "keylime/policy_index.hpp"

#include <algorithm>
#include <atomic>

#include "common/strutil.hpp"

namespace cia::keylime {

namespace {

/// uid() source. Starts at 1 so 0 stays "no index" in cache slots.
std::atomic<std::uint64_t> g_next_index_uid{1};

/// Does the stored policy hash (lowercase hex, as digest_hex renders)
/// name exactly this digest? Nibble-wise compare — the old path rendered
/// the digest to a temporary 64-byte string per probe.
bool hex_names_digest(const std::string& hex, const crypto::Digest& d) {
  if (hex.size() != 2 * d.size()) return false;
  static constexpr char kDigits[] = "0123456789abcdef";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (hex[2 * i] != kDigits[d[i] >> 4] ||
        hex[2 * i + 1] != kDigits[d[i] & 0x0f]) {
      return false;
    }
  }
  return true;
}

/// Is `glob` of the shape "PREFIX*" where PREFIX is literal (no other
/// metacharacters) and names a directory (ends with '/')? Such a glob
/// matches a path exactly when PREFIX is a prefix of it — glob_match's
/// '*' spans any characters, '/' included — so it compiles to a hash
/// probe instead of a backtracking scan.
bool is_dir_prefix_glob(const std::string& glob, std::string* prefix) {
  if (glob.size() < 2 || glob.back() != '*') return false;
  const std::string head = glob.substr(0, glob.size() - 1);
  if (head.find_first_of("*?") != std::string::npos) return false;
  if (head.back() != '/') return false;
  *prefix = head;
  return true;
}

}  // namespace

std::shared_ptr<const PolicyIndex> PolicyIndex::build(
    const RuntimePolicy& policy, std::uint64_t revision) {
  auto index = std::make_shared<PolicyIndex>();
  index->revision_ = revision;
  index->uid_ = g_next_index_uid.fetch_add(1, std::memory_order_relaxed);
  index->entry_count_ = policy.entry_count();
  for (const std::string& glob : policy.excludes()) {
    std::string prefix;
    if (is_dir_prefix_glob(glob, &prefix)) {
      index->dir_excludes_.insert(std::move(prefix));
    } else {
      index->general_excludes_.push_back(glob);
    }
  }
  index->paths_.reserve(policy.path_count());
  policy.for_each_path(
      [&](const std::string& path, const std::vector<std::string>& hashes) {
        PathEntry entry;
        entry.excluded = index->excluded_by_scan(path);
        entry.hashes = hashes;
        index->paths_.emplace(path, std::move(entry));
      });
  return index;
}

bool PolicyIndex::excluded_by_scan(std::string_view path) const {
  if (!dir_excludes_.empty()) {
    // A compiled "DIR/*" glob matches iff DIR/ is a prefix of the path,
    // and every such prefix ends at one of the path's '/' characters.
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] != '/') continue;
      if (dir_excludes_.count(path.substr(0, i + 1)) != 0) return true;
    }
  }
  if (!general_excludes_.empty()) {
    const std::string owned(path);  // glob_match wants std::string
    for (const std::string& glob : general_excludes_) {
      if (glob_match(glob, owned)) return true;
    }
  }
  return false;
}

PolicyMatch PolicyIndex::check(const std::string& path,
                               const std::string& hash_hex,
                               bool* known) const {
  auto it = paths_.find(path);
  if (it != paths_.end()) {
    if (known) *known = true;
    const PathEntry& entry = it->second;
    if (entry.excluded) return PolicyMatch::kExcluded;
    if (std::find(entry.hashes.begin(), entry.hashes.end(), hash_hex) !=
        entry.hashes.end()) {
      return PolicyMatch::kAllowed;
    }
    return PolicyMatch::kHashMismatch;
  }
  if (known) *known = false;
  if (excluded_by_scan(path)) return PolicyMatch::kExcluded;
  return PolicyMatch::kNotInPolicy;
}

PolicyMatch PolicyIndex::check(std::string_view path,
                               const crypto::Digest& hash,
                               bool* known) const {
  auto it = paths_.find(path);
  if (it != paths_.end()) {
    if (known) *known = true;
    const PathEntry& entry = it->second;
    if (entry.excluded) return PolicyMatch::kExcluded;
    for (const std::string& h : entry.hashes) {
      if (hex_names_digest(h, hash)) return PolicyMatch::kAllowed;
    }
    return PolicyMatch::kHashMismatch;
  }
  if (known) *known = false;
  if (excluded_by_scan(path)) return PolicyMatch::kExcluded;
  return PolicyMatch::kNotInPolicy;
}

}  // namespace cia::keylime
