#include "keylime/policy_index.hpp"

#include <algorithm>
#include <atomic>

#include "common/strutil.hpp"
#include "keylime/policy_store/store.hpp"

namespace cia::keylime {

namespace {

/// uid() source. Starts at 1 so 0 stays "no index" in cache slots.
std::atomic<std::uint64_t> g_next_index_uid{1};

/// Build-count telemetry sources (full_build_count() and friends).
std::atomic<std::uint64_t> g_full_builds{0};
std::atomic<std::uint64_t> g_incremental_builds{0};

/// Does the stored policy hash (lowercase hex, as digest_hex renders)
/// name exactly this digest? Nibble-wise compare — the old path rendered
/// the digest to a temporary 64-byte string per probe.
bool hex_names_digest(const std::string& hex, const crypto::Digest& d) {
  if (hex.size() != 2 * d.size()) return false;
  static constexpr char kDigits[] = "0123456789abcdef";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (hex[2 * i] != kDigits[d[i] >> 4] ||
        hex[2 * i + 1] != kDigits[d[i] & 0x0f]) {
      return false;
    }
  }
  return true;
}

/// Is `glob` of the shape "PREFIX*" where PREFIX is literal (no other
/// metacharacters) and names a directory (ends with '/')? Such a glob
/// matches a path exactly when PREFIX is a prefix of it — glob_match's
/// '*' spans any characters, '/' included — so it compiles to a hash
/// probe instead of a backtracking scan.
bool is_dir_prefix_glob(const std::string& glob, std::string* prefix) {
  if (glob.size() < 2 || glob.back() != '*') return false;
  const std::string head = glob.substr(0, glob.size() - 1);
  if (head.find_first_of("*?") != std::string::npos) return false;
  if (head.back() != '/') return false;
  *prefix = head;
  return true;
}

}  // namespace

std::shared_ptr<const PolicyIndex> PolicyIndex::build(
    const RuntimePolicy& policy, std::uint64_t revision) {
  g_full_builds.fetch_add(1, std::memory_order_relaxed);
  auto index = std::make_shared<PolicyIndex>();
  index->revision_ = revision;
  index->uid_ = g_next_index_uid.fetch_add(1, std::memory_order_relaxed);
  index->entry_count_ = policy.entry_count();
  for (const std::string& glob : policy.excludes()) {
    std::string prefix;
    if (is_dir_prefix_glob(glob, &prefix)) {
      index->dir_excludes_.insert(std::move(prefix));
    } else {
      index->general_excludes_.push_back(glob);
    }
  }
  index->paths_.reserve(policy.path_count());
  policy.for_each_path(
      [&](const std::string& path, const std::vector<std::string>& hashes) {
        PathEntry entry;
        entry.excluded = index->excluded_by_scan(path);
        entry.hashes = hashes;
        index->paths_.emplace(path, std::move(entry));
      });
  index->path_count_ = index->paths_.size();
  return index;
}

std::shared_ptr<const PolicyIndex> PolicyIndex::build_incremental(
    const std::shared_ptr<const PolicyIndex>& base, const RuntimePolicy& target,
    const policy_store::PolicyDelta& delta, std::uint64_t revision) {
  if (base == nullptr || delta.touches_excludes()) {
    // No base table to patch, or the exclude list changed under the
    // precomputed per-path exclusion verdicts: full rebuild.
    return build(target, revision);
  }
  g_incremental_builds.fetch_add(1, std::memory_order_relaxed);
  auto index = std::make_shared<PolicyIndex>();
  if (base->layer_depth_ < kMaxLayerDepth) {
    // Thin overlay: store only the delta's paths (plus tombstones);
    // everything else resolves through the shared base. O(delta), so a
    // §III-C daily update costs ~1.3k patched entries against a 300k
    // table it never touches.
    index->base_ = base;
    index->layer_depth_ = base->layer_depth_ + 1;
    index->dir_excludes_ = base->dir_excludes_;
    index->general_excludes_ = base->general_excludes_;
  } else {
    // Chain at the depth bound: flatten. One deep copy of the root
    // table, then replay each overlay oldest-first — amortized over
    // kMaxLayerDepth O(delta) layers.
    std::vector<const PolicyIndex*> chain;
    const PolicyIndex* root = base.get();
    while (root->base_ != nullptr) {
      chain.push_back(root);
      root = root->base_.get();
    }
    index->paths_ = root->paths_;
    index->dir_excludes_ = root->dir_excludes_;
    index->general_excludes_ = root->general_excludes_;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      for (const std::string& removed : (*it)->removed_) {
        index->paths_.erase(removed);
      }
      for (const auto& [path, entry] : (*it)->paths_) {
        index->paths_.insert_or_assign(path, entry);
      }
    }
  }
  index->revision_ = revision;
  index->uid_ = g_next_index_uid.fetch_add(1, std::memory_order_relaxed);
  index->entry_count_ = target.entry_count();
  index->path_count_ = target.path_count();
  for (const policy_store::DeltaEntry& e : delta.entries) {
    if (e.op == policy_store::DeltaEntry::Op::kRemove) {
      if (index->base_ != nullptr) {
        index->removed_.insert(e.path);
      } else {
        index->paths_.erase(e.path);
      }
      continue;
    }
    PathEntry entry;
    entry.excluded = index->excluded_by_scan(e.path);
    entry.hashes = e.hashes;
    index->paths_.insert_or_assign(e.path, std::move(entry));
  }
  return index;
}

std::uint64_t PolicyIndex::full_build_count() {
  return g_full_builds.load(std::memory_order_relaxed);
}

std::uint64_t PolicyIndex::incremental_build_count() {
  return g_incremental_builds.load(std::memory_order_relaxed);
}

bool PolicyIndex::excluded_by_scan(std::string_view path) const {
  if (!dir_excludes_.empty()) {
    // A compiled "DIR/*" glob matches iff DIR/ is a prefix of the path,
    // and every such prefix ends at one of the path's '/' characters.
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] != '/') continue;
      if (dir_excludes_.count(path.substr(0, i + 1)) != 0) return true;
    }
  }
  if (!general_excludes_.empty()) {
    const std::string owned(path);  // glob_match wants std::string
    for (const std::string& glob : general_excludes_) {
      if (glob_match(glob, owned)) return true;
    }
  }
  return false;
}

PolicyMatch PolicyIndex::check(const std::string& path,
                               const std::string& hash_hex,
                               bool* known) const {
  // Walk the overlay chain youngest-first: a patched entry wins, a
  // tombstone hides every older layer, a root miss falls through to the
  // exclude scan. A full-build index is a single iteration (base_ null).
  for (const PolicyIndex* layer = this;; layer = layer->base_.get()) {
    auto it = layer->paths_.find(path);
    if (it != layer->paths_.end()) {
      if (known) *known = true;
      const PathEntry& entry = it->second;
      if (entry.excluded) return PolicyMatch::kExcluded;
      if (std::find(entry.hashes.begin(), entry.hashes.end(), hash_hex) !=
          entry.hashes.end()) {
        return PolicyMatch::kAllowed;
      }
      return PolicyMatch::kHashMismatch;
    }
    if (layer->base_ == nullptr || layer->removed_.count(path) != 0) break;
  }
  if (known) *known = false;
  if (excluded_by_scan(path)) return PolicyMatch::kExcluded;
  return PolicyMatch::kNotInPolicy;
}

PolicyMatch PolicyIndex::check(std::string_view path,
                               const crypto::Digest& hash,
                               bool* known) const {
  for (const PolicyIndex* layer = this;; layer = layer->base_.get()) {
    auto it = layer->paths_.find(path);
    if (it != layer->paths_.end()) {
      if (known) *known = true;
      const PathEntry& entry = it->second;
      if (entry.excluded) return PolicyMatch::kExcluded;
      for (const std::string& h : entry.hashes) {
        if (hex_names_digest(h, hash)) return PolicyMatch::kAllowed;
      }
      return PolicyMatch::kHashMismatch;
    }
    if (layer->base_ == nullptr || layer->removed_.count(path) != 0) break;
  }
  if (known) *known = false;
  if (excluded_by_scan(path)) return PolicyMatch::kExcluded;
  return PolicyMatch::kNotInPolicy;
}

}  // namespace cia::keylime
