#include "keylime/messages.hpp"

namespace cia::keylime {

using netsim::WireReader;
using netsim::WireWriter;

// Propagate a Result error from a sub-read.
#define CIA_TRY(var, expr)            \
  auto var##_r = (expr);              \
  if (!var##_r.ok()) return var##_r.error(); \
  auto var = std::move(var##_r).take()

Bytes RegisterRequest::encode() const {
  WireWriter w;
  w.put_string(agent_id);
  w.put_bytes(ek_cert);
  w.put_bytes(ak_pub);
  return w.take();
}

Result<RegisterRequest> RegisterRequest::decode(const Bytes& b) {
  WireReader r(b);
  CIA_TRY(agent_id, r.string());
  CIA_TRY(ek_cert, r.bytes());
  CIA_TRY(ak_pub, r.bytes());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  return RegisterRequest{std::move(agent_id), std::move(ek_cert),
                         std::move(ak_pub)};
}

Bytes RegisterChallenge::encode() const {
  WireWriter w;
  w.put_bytes(blob.ephemeral_pub);
  w.put_bytes(blob.encrypted);
  w.put_bytes(blob.mac);
  w.put_string(blob.ak_name);
  return w.take();
}

Result<RegisterChallenge> RegisterChallenge::decode(const Bytes& b) {
  WireReader r(b);
  RegisterChallenge c;
  CIA_TRY(eph, r.bytes());
  CIA_TRY(enc, r.bytes());
  CIA_TRY(mac, r.bytes());
  CIA_TRY(name, r.string());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  c.blob.ephemeral_pub = std::move(eph);
  c.blob.encrypted = std::move(enc);
  c.blob.mac = std::move(mac);
  c.blob.ak_name = std::move(name);
  return c;
}

Bytes ActivateRequest::encode() const {
  WireWriter w;
  w.put_string(agent_id);
  w.put_bytes(proof);
  return w.take();
}

Result<ActivateRequest> ActivateRequest::decode(const Bytes& b) {
  WireReader r(b);
  CIA_TRY(agent_id, r.string());
  CIA_TRY(proof, r.bytes());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  return ActivateRequest{std::move(agent_id), std::move(proof)};
}

Bytes GetAgentRequest::encode() const {
  WireWriter w;
  w.put_string(agent_id);
  return w.take();
}

Result<GetAgentRequest> GetAgentRequest::decode(const Bytes& b) {
  WireReader r(b);
  CIA_TRY(agent_id, r.string());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  return GetAgentRequest{std::move(agent_id)};
}

Bytes GetAgentResponse::encode() const {
  WireWriter w;
  w.put_bool(active);
  w.put_bytes(ak_pub);
  return w.take();
}

Result<GetAgentResponse> GetAgentResponse::decode(const Bytes& b) {
  WireReader r(b);
  CIA_TRY(active, r.boolean());
  CIA_TRY(ak_pub, r.bytes());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  return GetAgentResponse{active, std::move(ak_pub)};
}

Bytes QuoteRequest::encode() const {
  WireWriter w;
  w.put_bytes(nonce);
  w.put_u64(log_offset);
  return w.take();
}

Result<QuoteRequest> QuoteRequest::decode(const Bytes& b) {
  WireReader r(b);
  CIA_TRY(nonce, r.bytes());
  CIA_TRY(offset, r.u64());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  return QuoteRequest{std::move(nonce), offset};
}

Bytes BootLogResponse::encode() const {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) {
    w.put_u32(static_cast<std::uint32_t>(e.pcr));
    w.put_string(e.description);
    w.put_digest(e.digest);
  }
  return w.take();
}

Result<BootLogResponse> BootLogResponse::decode(const Bytes& b) {
  WireReader r(b);
  BootLogResponse resp;
  CIA_TRY(count, r.u32());
  if (count > 4096) return err(Errc::kCorrupted, "implausible boot log size");
  resp.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    oskernel::BootEvent e;
    CIA_TRY(pcr, r.u32());
    CIA_TRY(description, r.string());
    CIA_TRY(digest, r.digest());
    if (pcr >= static_cast<std::uint32_t>(tpm::kNumPcrs)) {
      return err(Errc::kCorrupted, "bad PCR in boot log");
    }
    e.pcr = static_cast<int>(pcr);
    e.description = std::move(description);
    e.digest = digest;
    resp.events.push_back(std::move(e));
  }
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  return resp;
}

void encode_quote(WireWriter& w, const tpm::Quote& q) {
  w.put_string(q.device_id);
  w.put_bytes(q.nonce);
  w.put_u32(static_cast<std::uint32_t>(q.pcr_indices.size()));
  for (std::size_t i = 0; i < q.pcr_indices.size(); ++i) {
    w.put_u32(static_cast<std::uint32_t>(q.pcr_indices[i]));
    w.put_digest(q.pcr_values[i]);
  }
  w.put_bytes(q.signature.encode());
}

Result<tpm::Quote> decode_quote(WireReader& r) {
  tpm::Quote q;
  CIA_TRY(device_id, r.string());
  CIA_TRY(nonce, r.bytes());
  CIA_TRY(count, r.u32());
  if (count > tpm::kNumPcrs) return err(Errc::kCorrupted, "too many PCRs");
  for (std::uint32_t i = 0; i < count; ++i) {
    CIA_TRY(idx, r.u32());
    CIA_TRY(value, r.digest());
    if (idx >= tpm::kNumPcrs) return err(Errc::kCorrupted, "bad PCR index");
    q.pcr_indices.push_back(static_cast<int>(idx));
    q.pcr_values.push_back(value);
  }
  CIA_TRY(sig_bytes, r.bytes());
  auto sig = crypto::Signature::decode(sig_bytes);
  if (!sig) return err(Errc::kCorrupted, "bad signature encoding");
  q.device_id = std::move(device_id);
  q.nonce = std::move(nonce);
  q.signature = *sig;
  return q;
}

void encode_log_entry(WireWriter& w, const ima::LogEntry& e) {
  w.put_u32(static_cast<std::uint32_t>(e.pcr));
  w.put_digest(e.template_hash);
  w.put_string(e.template_name);
  w.put_digest(e.file_hash);
  w.put_string(e.path);
}

Result<ima::LogEntry> decode_log_entry(WireReader& r) {
  ima::LogEntry e;
  CIA_TRY(pcr, r.u32());
  CIA_TRY(template_hash, r.digest());
  CIA_TRY(template_name, r.string());
  CIA_TRY(file_hash, r.digest());
  CIA_TRY(path, r.string());
  e.pcr = static_cast<int>(pcr);
  e.template_hash = template_hash;
  e.template_name = std::move(template_name);
  e.file_hash = file_hash;
  e.path = std::move(path);
  return e;
}

Bytes encode_quote_response(const tpm::Quote& quote,
                            std::span<const ima::LogEntry> entries,
                            std::uint64_t total_log_length,
                            std::uint32_t boot_count) {
  WireWriter w;
  encode_quote(w, quote);
  w.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) encode_log_entry(w, e);
  w.put_u64(total_log_length);
  w.put_u32(boot_count);
  return w.take();
}

Bytes QuoteResponse::encode() const {
  return encode_quote_response(quote, entries, total_log_length, boot_count);
}

ima::LogEntry LogEntryView::materialize() const {
  ima::LogEntry e;
  e.pcr = pcr;
  e.template_hash = template_hash;
  e.template_name = std::string(template_name);
  e.file_hash = file_hash;
  e.path = std::string(path);
  return e;
}

namespace {
Result<LogEntryView> decode_log_entry_view(WireReader& r) {
  LogEntryView e;
  CIA_TRY(pcr, r.u32());
  CIA_TRY(template_hash, r.digest());
  CIA_TRY(template_name, r.string_view());
  CIA_TRY(file_hash, r.digest());
  CIA_TRY(path, r.string_view());
  e.pcr = static_cast<int>(pcr);
  e.template_hash = template_hash;
  e.template_name = template_name;
  e.file_hash = file_hash;
  e.path = path;
  return e;
}
}  // namespace

Result<QuoteResponseView> QuoteResponseView::decode(const Bytes& b) {
  WireReader r(b);
  QuoteResponseView resp;
  CIA_TRY(quote, decode_quote(r));
  resp.quote = std::move(quote);
  CIA_TRY(count, r.u32());
  // A serialized entry is at least 84 bytes (u32 + two digests + two
  // empty length-prefixed strings); a count the remaining payload cannot
  // possibly hold is corruption, and reserving for it would let a
  // 4-byte field demand gigabytes before the first entry read fails.
  constexpr std::uint32_t kMinEntryBytes = 4 + 32 + 8 + 32 + 8;
  if (count > r.remaining() / kMinEntryBytes) {
    return err(Errc::kCorrupted, "implausible entry count");
  }
  resp.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CIA_TRY(entry, decode_log_entry_view(r));
    resp.entries.push_back(entry);
  }
  CIA_TRY(total, r.u64());
  CIA_TRY(boots, r.u32());
  if (!r.at_end()) return err(Errc::kCorrupted, "trailing bytes");
  resp.total_log_length = total;
  resp.boot_count = boots;
  return resp;
}

QuoteResponse QuoteResponseView::materialize() const {
  QuoteResponse resp;
  resp.quote = quote;
  resp.entries.reserve(entries.size());
  for (const auto& e : entries) resp.entries.push_back(e.materialize());
  resp.total_log_length = total_log_length;
  resp.boot_count = boot_count;
  return resp;
}

Result<QuoteResponse> QuoteResponse::decode(const Bytes& b) {
  // Single-source the validation: the owning decode is the view decode
  // plus a deep copy, so the two can never drift apart.
  CIA_TRY(view, QuoteResponseView::decode(b));
  return view.materialize();
}

Bytes bound_quote_nonce(const Bytes& challenge, std::uint32_t boot_count) {
  Bytes bound = challenge;
  bound.push_back(static_cast<std::uint8_t>(boot_count));
  bound.push_back(static_cast<std::uint8_t>(boot_count >> 8));
  bound.push_back(static_cast<std::uint8_t>(boot_count >> 16));
  bound.push_back(static_cast<std::uint8_t>(boot_count >> 24));
  return bound;
}

}  // namespace cia::keylime
