#include "keylime/migration.hpp"

#include <limits>

#include "common/strutil.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime {

Bytes HandoffPayload::encode() const {
  json::Value doc;
  doc.set("version", kVersion);
  doc.set("agent", agent_id);
  doc.set("source_shard", static_cast<std::int64_t>(source_shard));
  doc.set("dest_shard", static_cast<std::int64_t>(dest_shard));
  doc.set("slice", agent_slice);
  json::Value sched;
  sched.set("next_poll", static_cast<std::int64_t>(schedule.next_poll));
  sched.set("backoff", static_cast<std::int64_t>(schedule.current_backoff));
  sched.set("polls", static_cast<std::int64_t>(schedule.polls));
  sched.set("comms_failures",
            static_cast<std::int64_t>(schedule.comms_failures));
  doc.set("schedule", std::move(sched));
  return to_bytes(doc.dump());
}

namespace {

Result<std::int64_t> non_negative(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (!v || !v->is_number()) {
    return err(Errc::kCorrupted, std::string("handoff: missing ") + key);
  }
  const std::int64_t n = v->as_int();
  if (n < 0) {
    return err(Errc::kCorrupted, std::string("handoff: negative ") + key);
  }
  return n;
}

}  // namespace

Result<HandoffPayload> HandoffPayload::decode(const Bytes& raw) {
  auto doc = json::parse(std::string(raw.begin(), raw.end()));
  if (!doc.ok()) return doc.error();
  const json::Value& root = doc.value();
  if (!root.is_object()) {
    return err(Errc::kCorrupted, "handoff: payload is not an object");
  }

  auto version = non_negative(root, "version");
  if (!version.ok()) return version.error();
  if (version.value() < 1 || version.value() > kVersion) {
    return err(Errc::kInvalidArgument,
               strformat("handoff: unsupported version %lld",
                         static_cast<long long>(version.value())));
  }

  HandoffPayload p;
  const json::Value* agent = root.find("agent");
  if (!agent || !agent->is_string() || agent->as_string().empty()) {
    return err(Errc::kCorrupted, "handoff: missing agent id");
  }
  p.agent_id = agent->as_string();

  auto source = non_negative(root, "source_shard");
  if (!source.ok()) return source.error();
  auto dest = non_negative(root, "dest_shard");
  if (!dest.ok()) return dest.error();
  p.source_shard = static_cast<std::uint64_t>(source.value());
  p.dest_shard = static_cast<std::uint64_t>(dest.value());
  if (p.source_shard == p.dest_shard) {
    return err(Errc::kCorrupted, "handoff: source and dest shard are equal");
  }

  const json::Value* slice = root.find("slice");
  if (!slice || !slice->is_object()) {
    return err(Errc::kCorrupted, "handoff: missing agent slice");
  }
  if (Status s = Verifier::validate_agent_slice(*slice); !s.ok()) {
    return s.error();
  }
  const json::Value* slice_id = slice->find("id");
  if (!slice_id || !slice_id->is_string() ||
      slice_id->as_string() != p.agent_id) {
    return err(Errc::kCorrupted,
               "handoff: slice id does not match the envelope agent");
  }
  p.agent_slice = *slice;

  const json::Value* sched = root.find("schedule");
  if (!sched || !sched->is_object()) {
    return err(Errc::kCorrupted, "handoff: missing schedule");
  }
  auto next_poll = non_negative(*sched, "next_poll");
  if (!next_poll.ok()) return next_poll.error();
  auto backoff = non_negative(*sched, "backoff");
  if (!backoff.ok()) return backoff.error();
  auto polls = non_negative(*sched, "polls");
  if (!polls.ok()) return polls.error();
  auto comms = non_negative(*sched, "comms_failures");
  if (!comms.ok()) return comms.error();
  p.schedule.next_poll = next_poll.value();
  p.schedule.current_backoff = backoff.value();
  p.schedule.polls = static_cast<std::uint64_t>(polls.value());
  p.schedule.comms_failures = static_cast<std::uint64_t>(comms.value());
  return p;
}

}  // namespace cia::keylime
