// A policy-verdict cache for the appraisal hot path.
//
// The common fleet case is massive cross-agent redundancy: every node
// runs the same distro binaries, so the same ima-ng template hash —
// sha256(file_hash || path), which the verifier recomputes itself and
// which therefore uniquely names the (content, path) pair being judged —
// is appraised thousands of times per round. The cache maps
// (template_hash, policy-index uid) -> PolicyMatch so repeats skip the
// PolicyIndex probe entirely.
//
// Keying on PolicyIndex::uid() (process-unique per built index) makes a
// copy-on-write policy swap an implicit, immediate invalidation: the new
// index has a uid no cached slot carries, so every lookup under it
// misses and re-probes. No epochs, no flush walk, no way to serve a
// verdict from a retired policy revision.
//
// The cache is deliberately NOT thread-safe. The sharded pool gives each
// shard its own instance (shards are single-threaded and joined at round
// boundaries), which keeps per-shard telemetry deterministic for a fixed
// (seed, shards) pair — a shared cache would make hit counts depend on
// cross-shard interleaving.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/sha256.hpp"
#include "keylime/runtime_policy.hpp"

namespace cia::keylime {

class AppraisalCache {
 public:
  /// Default capacity comfortably holds the paper's 324k-line policy
  /// working set. Rounded up to a power of two.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 19;

  explicit AppraisalCache(std::size_t capacity = kDefaultCapacity);

  /// Cached verdict for this template hash under this policy index, or
  /// nullopt. Counts a hit or miss.
  std::optional<PolicyMatch> lookup(const crypto::Digest& template_hash,
                                    std::uint64_t index_uid);

  /// Remember a verdict. Direct-mapped: an occupied colliding slot is
  /// evicted (counted); identical re-inserts are no-ops.
  void insert(const crypto::Digest& template_hash, std::uint64_t index_uid,
              PolicyMatch verdict);

  /// Drop every entry (stats survive).
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    crypto::Digest key{};
    std::uint64_t uid = 0;  // 0 = empty (build() starts uids at 1)
    PolicyMatch verdict = PolicyMatch::kNotInPolicy;
  };

  std::size_t slot_of(const crypto::Digest& template_hash) const;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  Stats stats_;
};

}  // namespace cia::keylime
