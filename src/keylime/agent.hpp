// The Keylime agent: the only component on the untrusted machine.
//
// It serves quote requests (TPM quote over PCR 10 + the IMA measurement
// list from a requested offset) and drives its own enrolment with the
// registrar (EK certificate + AK, then credential activation).
#pragma once

#include <string>

#include "crypto/hmac.hpp"
#include "keylime/messages.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"
#include "telemetry/metrics.hpp"

namespace cia::keylime {

class Agent : public netsim::Endpoint {
 public:
  /// Binds to `machine` and attaches to the network at address().
  Agent(oskernel::Machine* machine, netsim::SimNetwork* network);
  ~Agent() override;

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  const std::string& agent_id() const { return agent_id_; }
  std::string address() const { return "agent:" + agent_id_; }

  /// Enrol with the registrar: register -> activate credential -> prove.
  Status register_with(const std::string& registrar_address);

  /// Route the agent's outbound RPCs (registration) through `transport`
  /// instead of the raw network; nullptr restores the raw path.
  void use_transport(netsim::Transport* transport);

  /// Export quote-serving metrics (quote generation wall time, entries
  /// and encoded bytes shipped) to `metrics`; nullptr turns them off.
  void use_telemetry(telemetry::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }

  /// netsim::Endpoint: serve quote requests.
  Result<Bytes> handle(const std::string& kind, const Bytes& payload) override;

 private:
  oskernel::Machine* machine_;
  netsim::SimNetwork* network_;
  netsim::Transport* transport_;  // defaults to network_
  std::string agent_id_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace cia::keylime
