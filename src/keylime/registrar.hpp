// The Keylime registrar: guards against spoofed or compromised TPMs.
//
// Registration is accepted only when (1) the agent's EK certificate
// chains to a trusted TPM manufacturer, and (2) the agent proves via
// credential activation that the offered AK lives in the same TPM as
// that EK. The verifier then sources AKs exclusively from here.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "crypto/cert.hpp"
#include "keylime/messages.hpp"
#include "netsim/network.hpp"

namespace cia::keylime {

class Registrar : public netsim::Endpoint {
 public:
  Registrar(netsim::SimNetwork* network, SimClock* clock, std::uint64_t seed);
  ~Registrar() override;

  Registrar(const Registrar&) = delete;
  Registrar& operator=(const Registrar&) = delete;

  static std::string address() { return "registrar"; }

  /// Trust a TPM manufacturer's signing key.
  void trust_manufacturer(const crypto::PublicKey& ca_key);

  /// netsim::Endpoint.
  Result<Bytes> handle(const std::string& kind, const Bytes& payload) override;

  /// Is the agent fully registered (EK verified + credential activated)?
  bool is_active(const std::string& agent_id) const;

  /// Copy an agent's activated enrolment into another registrar (the
  /// control-plane half of live migration — shard registrars are one
  /// logical service, so this transfer is in-process and reliable). The
  /// enrolment must exist and be active. The source keeps its copy until
  /// the data-plane handoff commits.
  Status transfer_enrolment(const std::string& agent_id, Registrar& dest) const;

  std::size_t registered_count() const;

 private:
  struct Enrolment {
    Bytes ak_pub;
    Bytes expected_secret;
    bool active = false;
  };

  Result<Bytes> handle_register(const Bytes& payload);
  Result<Bytes> handle_activate(const Bytes& payload);
  Result<Bytes> handle_get_agent(const Bytes& payload);

  netsim::SimNetwork* network_;
  SimClock* clock_;
  Rng rng_;
  std::vector<crypto::PublicKey> trusted_cas_;
  std::map<std::string, Enrolment> enrolments_;
};

}  // namespace cia::keylime
