// The Keylime runtime policy: an allowlist of (path -> acceptable hashes)
// plus an exclude list of glob patterns.
//
// Two details matter for the paper's findings:
//   * excludes are *path globs evaluated by Keylime*, independent of the
//     filesystem-level exclusions inside IMA — the mismatch between the
//     two exclusion mechanisms is what P4 exploits, and an over-broad
//     exclude ("/tmp/*") is exactly P1;
//   * a path may accumulate several acceptable hashes: during an update
//     window both the old and the new version of a file must validate
//     (§III-C "Handling Policy-File Consistency During Update");
//     deduplication afterwards drops all but the newest.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "crypto/sha256.hpp"

namespace cia::keylime {

/// Outcome of matching one IMA log entry against the policy.
enum class PolicyMatch {
  kAllowed,       // path present, hash acceptable
  kHashMismatch,  // path present, hash unknown ("modified file")
  kNotInPolicy,   // path absent ("missing file in the policy")
  kExcluded,      // path matches an exclude glob; not evaluated
};

const char* policy_match_name(PolicyMatch m);

class RuntimePolicy {
 public:
  /// Append an acceptable hash for a path (keeps prior hashes).
  void allow(const std::string& path, const std::string& hash_hex);
  void allow(const std::string& path, const crypto::Digest& hash);

  /// Add an exclude glob (Keylime-side, path based).
  void exclude(const std::string& glob);

  bool is_excluded(const std::string& path) const;

  /// Match a measured (path, hash) pair.
  PolicyMatch check(const std::string& path, const std::string& hash_hex) const;
  PolicyMatch check(const std::string& path, const crypto::Digest& hash) const;

  /// Number of (path, hash) lines — the paper's "policy lines".
  std::size_t entry_count() const { return entry_count_; }

  /// Number of distinct paths.
  std::size_t path_count() const { return allow_.size(); }

  const std::vector<std::string>& excludes() const { return excludes_; }

  /// Serialized size in bytes (what the paper reports as policy MB).
  std::uint64_t byte_size() const;

  /// Drop all but the most recent hash for every path (post-update
  /// deduplication). Returns the number of lines removed.
  std::size_t dedup();

  /// Remove every entry whose path starts with `prefix` (used to retire
  /// an outdated kernel's modules). Returns the number of lines removed.
  std::size_t remove_prefix(const std::string& prefix);

  /// One "path sha256:hash" line per entry plus "exclude <glob>" lines.
  std::string serialize() const;
  static Result<RuntimePolicy> parse(const std::string& text);

  /// Keylime-style JSON runtime policy:
  ///   {"meta":{"version":1},
  ///    "digests":{"/path":["<hex>", ...], ...},
  ///    "excludes":["glob", ...]}
  json::Value to_json() const;
  static Result<RuntimePolicy> from_json(const json::Value& doc);

  /// Union with another policy (their hashes appended after ours).
  void merge(const RuntimePolicy& other);

  /// The acceptable-hash list for one exact path (nullptr when absent).
  const std::vector<std::string>* hashes_for(const std::string& path) const;

  /// Replace the acceptable-hash list for one exact path, creating the
  /// path when absent. An empty list removes the path. This is the
  /// delta-apply primitive: unlike allow() it never merges, so applying
  /// a policy_store::PolicyDelta reproduces the target policy exactly.
  void set_hashes(const std::string& path, std::vector<std::string> hashes);

  /// Remove one exact path (all its hashes). Returns lines removed.
  std::size_t remove_path(const std::string& path);

  /// Replace the exclude-glob list wholesale (order is part of the
  /// canonical form, so a delta that touches excludes carries the full
  /// new list).
  void set_excludes(std::vector<std::string> globs);

  /// Visit every (path, acceptable-hash list) pair in path order — the
  /// bulk-read hook PolicyIndex::build uses so an index never has to
  /// round-trip 300k entries through JSON or text.
  void for_each_path(
      const std::function<void(const std::string& path,
                               const std::vector<std::string>& hashes)>& fn)
      const;

 private:
  // Insertion-ordered acceptable hashes per path.
  std::map<std::string, std::vector<std::string>> allow_;
  std::vector<std::string> excludes_;
  std::size_t entry_count_ = 0;
};

namespace policy_store {
struct PolicyDelta;
}  // namespace policy_store

/// Anything that can receive runtime-policy pushes for enrolled agents:
/// a Verifier directly, or a VerifierPool routing each agent to its
/// owning shard. The dynamic-policy orchestrator pushes through this
/// interface so single-verifier and sharded deployments share one update
/// workflow.
class PolicySink {
 public:
  virtual ~PolicySink() = default;

  /// Install/replace the runtime policy for one agent.
  virtual Status set_policy(const std::string& agent_id,
                            RuntimePolicy policy) = 0;

  /// Install one policy on many agents. The default loops set_policy;
  /// sharded implementations override it to build the shared lookup
  /// index once per policy revision instead of once per agent.
  virtual Status set_policy_bulk(const std::vector<std::string>& agent_ids,
                                 const RuntimePolicy& policy);

  /// Push one content-addressed revision to many agents. `digest` is
  /// policy_store::policy_digest(policy); `delta` (may be null) rebases
  /// it from the previously pushed revision. The default ignores both
  /// and does a full set_policy_bulk; sharded sinks override it to patch
  /// their lookup index incrementally when the delta's base digest
  /// matches the revision they last built, instead of re-indexing 300k
  /// entries for a 1.3k-entry daily update (the paper's §III-C shape).
  virtual Status push_revision(const std::vector<std::string>& agent_ids,
                               const RuntimePolicy& policy,
                               const std::string& digest,
                               const policy_store::PolicyDelta* delta);
};

}  // namespace cia::keylime
