#include "keylime/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace cia::keylime {

namespace {

/// FNV-1a of the agent id, used for the stable stagger offset and as the
/// base of the per-agent retry jitter.
std::uint64_t agent_hash(const std::string& agent_id) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : agent_id) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Stable stagger offset within the poll interval.
SimTime stagger(const std::string& agent_id, SimTime interval) {
  return static_cast<SimTime>(agent_hash(agent_id) %
                              static_cast<std::uint64_t>(interval));
}

/// Deterministic jitter in [0, backoff/4] keyed by (agent, failure
/// count): agents that lost connectivity together retry apart, and the
/// sequence is reproducible run-to-run.
SimTime retry_jitter(const std::string& agent_id, std::uint64_t failures,
                     SimTime backoff) {
  const SimTime span = backoff / 4;
  if (span <= 0) return 0;
  std::uint64_t h = agent_hash(agent_id);
  h ^= failures + 0x9e3779b97f4a7c15ull;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  return static_cast<SimTime>(h % static_cast<std::uint64_t>(span + 1));
}

}  // namespace

void AttestationScheduler::enroll(const std::string& agent_id) {
  AgentSchedule schedule;
  schedule.next_poll = clock_->now() + stagger(agent_id, config_.poll_interval);
  // operator[] replaces any existing slot, so a re-enrolled id (agent
  // reinstall, registrar re-activation) cannot be polled twice per round.
  agents_[agent_id] = schedule;
}

std::size_t AttestationScheduler::tick() {
  std::size_t performed = 0;
  const SimTime now = clock_->now();
  for (auto& [agent_id, schedule] : agents_) {
    if (schedule.next_poll > now) continue;
    ++performed;
    ++schedule.polls;
    auto round = verifier_->attest_once(agent_id);

    // A round succeeded only if the verifier completed it without a
    // comms alert; an errored call is a failure, not a reset.
    bool comms_failure = !round.ok();
    if (round.ok()) {
      for (const auto& alert : round.value().alerts) {
        comms_failure |= alert.type == AlertType::kCommsFailure;
      }
    }
    if (metrics_) {
      metrics_->counter("cia_scheduler_polls_total").inc();
      if (comms_failure) {
        metrics_->counter("cia_scheduler_comms_failures_total").inc();
      }
    }
    if (comms_failure) {
      ++schedule.comms_failures;
      schedule.current_backoff =
          schedule.current_backoff == 0
              ? config_.initial_backoff
              : std::min(schedule.current_backoff * 2, config_.max_backoff);
      const SimTime jitter = retry_jitter(agent_id, schedule.comms_failures,
                                          schedule.current_backoff);
      schedule.next_poll = now + schedule.current_backoff + jitter;
      if (metrics_) {
        metrics_
            ->histogram("cia_scheduler_retry_jitter_seconds", {},
                        telemetry::latency_seconds_buckets())
            .observe(static_cast<double>(jitter));
      }
    } else {
      schedule.current_backoff = 0;
      schedule.next_poll = now + config_.poll_interval;
    }
  }
  if (metrics_) {
    metrics_
        ->histogram("cia_scheduler_queue_depth", {},
                    telemetry::count_buckets())
        .observe(static_cast<double>(performed));
    metrics_->gauge("cia_scheduler_healthy_agents")
        .set(static_cast<double>(healthy_count()));
    metrics_->gauge("cia_scheduler_backing_off_agents")
        .set(static_cast<double>(backing_off_count()));
  }
  return performed;
}

SimTime AttestationScheduler::next_due() const {
  SimTime earliest = std::numeric_limits<SimTime>::max();
  for (const auto& [agent_id, schedule] : agents_) {
    (void)agent_id;
    earliest = std::min(earliest, schedule.next_poll);
  }
  return earliest;
}

std::size_t AttestationScheduler::healthy_count() const {
  std::size_t n = 0;
  for (const auto& [agent_id, schedule] : agents_) {
    (void)agent_id;
    if (schedule.current_backoff == 0) ++n;
  }
  return n;
}

std::size_t AttestationScheduler::backing_off_count() const {
  return agents_.size() - healthy_count();
}

const AttestationScheduler::AgentSchedule* AttestationScheduler::schedule(
    const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  return it == agents_.end() ? nullptr : &it->second;
}

}  // namespace cia::keylime
