#include "keylime/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace cia::keylime {

namespace {

/// Stable stagger offset: FNV-1a of the agent id modulo the interval.
SimTime stagger(const std::string& agent_id, SimTime interval) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : agent_id) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<SimTime>(h % static_cast<std::uint64_t>(interval));
}

}  // namespace

void AttestationScheduler::enroll(const std::string& agent_id) {
  AgentSchedule schedule;
  schedule.next_poll = clock_->now() + stagger(agent_id, config_.poll_interval);
  agents_[agent_id] = schedule;
}

std::size_t AttestationScheduler::tick() {
  std::size_t performed = 0;
  const SimTime now = clock_->now();
  for (auto& [agent_id, schedule] : agents_) {
    if (schedule.next_poll > now) continue;
    ++performed;
    ++schedule.polls;
    auto round = verifier_->attest_once(agent_id);

    bool comms_failure = false;
    if (round.ok()) {
      for (const auto& alert : round.value().alerts) {
        comms_failure |= alert.type == AlertType::kCommsFailure;
      }
    }
    if (comms_failure) {
      ++schedule.comms_failures;
      schedule.current_backoff =
          schedule.current_backoff == 0
              ? config_.initial_backoff
              : std::min(schedule.current_backoff * 2, config_.max_backoff);
      schedule.next_poll = now + schedule.current_backoff;
    } else {
      schedule.current_backoff = 0;
      schedule.next_poll = now + config_.poll_interval;
    }
  }
  return performed;
}

SimTime AttestationScheduler::next_due() const {
  SimTime earliest = std::numeric_limits<SimTime>::max();
  for (const auto& [agent_id, schedule] : agents_) {
    (void)agent_id;
    earliest = std::min(earliest, schedule.next_poll);
  }
  return earliest;
}

const AttestationScheduler::AgentSchedule* AttestationScheduler::schedule(
    const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  return it == agents_.end() ? nullptr : &it->second;
}

}  // namespace cia::keylime
