#include "keylime/verifier.hpp"

#include <chrono>
#include <limits>

#include "common/hex.hpp"
#include "common/log.hpp"
#include "common/strutil.hpp"
#include "keylime/registrar.hpp"

namespace cia::keylime {

const char* alert_type_name(AlertType t) {
  switch (t) {
    case AlertType::kQuoteInvalid: return "quote_invalid";
    case AlertType::kReplayMismatch: return "replay_mismatch";
    case AlertType::kHashMismatch: return "hash_mismatch";
    case AlertType::kNotInPolicy: return "not_in_policy";
    case AlertType::kMeasuredBootMismatch: return "measured_boot_mismatch";
    case AlertType::kCommsFailure: return "comms_failure";
  }
  return "?";
}

MbRefstate MbRefstate::capture(const tpm::Tpm2& tpm) {
  return MbRefstate{tpm.pcr_value(0), tpm.pcr_value(4), tpm.pcr_value(7)};
}

const std::vector<int>& quoted_pcrs() {
  static const std::vector<int> kPcrs = {0, 4, 7, tpm::kImaPcr};
  return kPcrs;
}

Verifier::Verifier(netsim::SimNetwork* network, SimClock* clock,
                   std::uint64_t seed, VerifierConfig config)
    : network_(network),
      transport_(network),
      clock_(clock),
      rng_(seed),
      config_(config),
      nonce_seed_(config.nonce_seed.value_or(seed)),
      audit_(crypto::derive_keypair(
          to_bytes(strformat("verifier-%llu",
                             static_cast<unsigned long long>(seed))),
          "audit-signing")) {}

void Verifier::use_transport(netsim::Transport* transport) {
  transport_ = transport ? transport : network_;
}

void Verifier::use_telemetry(telemetry::MetricsRegistry* metrics,
                             telemetry::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
}

std::optional<telemetry::Tracer::Scope> Verifier::trace_span(
    const char* name) {
  if (!tracer_) return std::nullopt;
  return tracer_->span(name, "verifier");
}

void Verifier::add_notifier(RevocationNotifier* notifier) {
  notifiers_.push_back(notifier);
}

std::vector<RevocationEvent> Verifier::drain_revocations() {
  std::vector<RevocationEvent> events;
  events.swap(pending_revocations_);
  for (const RevocationEvent& event : events) {
    for (RevocationNotifier* n : notifiers_) n->on_revocation(event);
  }
  return events;
}

std::vector<std::pair<std::string, std::uint64_t>> Verifier::stale_agents(
    std::uint64_t min_rounds) const {
  std::vector<std::pair<std::string, std::uint64_t>> stale;
  for (const auto& [id, rec] : agents_) {
    if (rec.rounds_since_success >= min_rounds) {
      stale.emplace_back(id, rec.rounds_since_success);
    }
  }
  return stale;
}

Bytes Verifier::next_nonce(const std::string& agent_id, AgentRecord& rec) {
  // Derived, not drawn from rng_: the stream depends only on
  // (nonce_seed, agent_id, counter), and the counter rides along in
  // checkpoints and migration slices, so the challenge sequence an agent
  // sees is identical no matter which shard currently owns it.
  crypto::Sha256 ctx;
  ctx.update(strformat("nonce:%llu:%llu:",
                       static_cast<unsigned long long>(nonce_seed_),
                       static_cast<unsigned long long>(rec.nonce_counter)));
  ctx.update(agent_id);
  const crypto::Digest d = ctx.finish();
  ++rec.nonce_counter;
  return Bytes(d.begin(), d.begin() + 20);
}

Status Verifier::add_agent(const std::string& agent_id,
                           const std::string& address) {
  GetAgentRequest req{agent_id};
  auto resp_bytes =
      transport_->call(Registrar::address(), kMsgGetAgent, req.encode());
  if (!resp_bytes.ok()) return resp_bytes.error();
  auto resp = GetAgentResponse::decode(resp_bytes.value());
  if (!resp.ok()) return resp.error();
  if (!resp.value().active) {
    return err(Errc::kPermissionDenied,
               agent_id + " is not activated at the registrar");
  }
  auto ak = crypto::PublicKey::decode(resp.value().ak_pub);
  if (!ak) return err(Errc::kCorrupted, "registrar returned a bad AK");

  AgentRecord rec;
  rec.address = address;
  rec.ak = *ak;
  rec.accumulated_pcr = crypto::zero_digest();
  agents_[agent_id] = std::move(rec);
  return Status::ok_status();
}

Status Verifier::set_policy(const std::string& agent_id, RuntimePolicy policy) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  it->second.policy = std::move(policy);
  it->second.index.reset();  // a stale index must never outlive its policy
  return Status::ok_status();
}

Status Verifier::set_indexed_policy(const std::string& agent_id,
                                    RuntimePolicy policy,
                                    std::shared_ptr<const PolicyIndex> index) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  it->second.policy = std::move(policy);
  it->second.index = std::move(index);
  return Status::ok_status();
}

Status Verifier::set_policy_bulk(const std::vector<std::string>& agent_ids,
                                 const RuntimePolicy& policy) {
  // One shared index for the whole batch. The default PolicySink loop
  // would call set_policy per agent, which drops the index and leaves
  // every solo-verifier agent on the linear RuntimePolicy scan — N
  // agents would then pay N linear appraisals per round where one
  // build covers them all.
  const auto index = PolicyIndex::build(policy, ++bulk_revision_);
  for (const std::string& id : agent_ids) {
    if (Status s = set_indexed_policy(id, policy, index); !s.ok()) return s;
  }
  return Status::ok_status();
}

std::uint64_t Verifier::policy_revision_of(const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  if (it == agents_.end() || it->second.index == nullptr) return 0;
  return it->second.index->revision();
}

Status Verifier::set_mb_refstate(const std::string& agent_id,
                                 MbRefstate refstate) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  it->second.mb_refstate = refstate;
  return Status::ok_status();
}

Status Verifier::set_boot_baseline(const std::string& agent_id,
                                   std::vector<oskernel::BootEvent> events) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  it->second.boot_baseline = std::move(events);
  return Status::ok_status();
}

Result<BootLogReport> Verifier::attest_boot_log(const std::string& agent_id) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  AgentRecord& rec = it->second;

  // Fetch the claimed event log.
  auto log_bytes = transport_->call(rec.address, kMsgBootLog, {});
  if (!log_bytes.ok()) return log_bytes.error();
  auto log = BootLogResponse::decode(log_bytes.value());
  if (!log.ok()) return log.error();

  // Fetch a fresh quote (no measurement entries needed).
  QuoteRequest req;
  req.nonce = rng_.bytes(20);
  req.log_offset = std::numeric_limits<std::uint64_t>::max();
  auto quote_bytes = transport_->call(rec.address, kMsgQuote, req.encode());
  if (!quote_bytes.ok()) return quote_bytes.error();
  auto resp = QuoteResponse::decode(quote_bytes.value());
  if (!resp.ok()) return resp.error();
  if (!resp.value().quote.verify(rec.ak) ||
      resp.value().quote.nonce !=
          bound_quote_nonce(req.nonce, resp.value().boot_count) ||
      resp.value().quote.pcr_indices != quoted_pcrs()) {
    return err(Errc::kCryptoFailure, "bad quote during boot-log attestation");
  }

  BootLogReport report;

  // The claimed events, folded per PCR from zero, must reproduce the
  // quoted boot-chain PCRs — otherwise the log itself is a lie.
  std::map<int, crypto::Digest> folded;
  for (const auto& event : log.value().events) {
    auto [fold_it, inserted] = folded.emplace(event.pcr, crypto::zero_digest());
    crypto::Sha256 ctx;
    ctx.update(fold_it->second.data(), fold_it->second.size());
    ctx.update(event.digest.data(), event.digest.size());
    fold_it->second = ctx.finish();
  }
  report.log_matches_quote = true;
  const auto& pcrs = quoted_pcrs();
  for (std::size_t i = 0; i + 1 < pcrs.size(); ++i) {  // skip IMA's PCR
    const auto fold_it = folded.find(pcrs[i]);
    const crypto::Digest expected =
        fold_it == folded.end() ? crypto::zero_digest() : fold_it->second;
    if (expected != resp.value().quote.pcr_values[i]) {
      report.log_matches_quote = false;
    }
  }

  // Component-level diff against the golden baseline.
  const auto key = [](const oskernel::BootEvent& e) {
    return std::to_string(e.pcr) + ":" + e.description;
  };
  std::map<std::string, crypto::Digest> baseline;
  for (const auto& e : rec.boot_baseline) baseline[key(e)] = e.digest;
  std::map<std::string, crypto::Digest> current;
  for (const auto& e : log.value().events) current[key(e)] = e.digest;
  for (const auto& [k, digest] : current) {
    auto b = baseline.find(k);
    if (b == baseline.end()) {
      report.added.push_back(k);
    } else if (b->second != digest) {
      report.changed.push_back(k);
    }
  }
  for (const auto& [k, digest] : baseline) {
    (void)digest;
    if (!current.count(k)) report.removed.push_back(k);
  }
  return report;
}

const RuntimePolicy* Verifier::policy(const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  return it == agents_.end() ? nullptr : &it->second.policy;
}

void Verifier::raise(AgentRecord& rec, const std::string& agent_id,
                     AlertType type, std::string path,
                     std::string observed_hash_hex, std::string detail,
                     std::size_t log_index, AttestationRound& round) {
  Alert alert;
  alert.time = clock_->now();
  alert.agent_id = agent_id;
  alert.type = type;
  alert.path = std::move(path);
  alert.observed_hash_hex = std::move(observed_hash_hex);
  alert.detail = std::move(detail);
  alert.log_index = log_index;
  alert.policy_revision = rec.index ? rec.index->revision() : 0;
  // The round's copy is unavoidable (both streams are observable); the
  // durable one is a move of the fully-built alert.
  round.alerts.push_back(alert);
  alerts_.push_back(std::move(alert));
  const Alert& raised = alerts_.back();
  // Formatting the line and its fields allocates per alert; skip all of
  // it when nothing would be delivered — neither printed at the current
  // threshold nor handed to the warn observer — so a mismatch storm on a
  // silenced log does not allocate per entry.
  if (log_line_enabled(LogLevel::kWarn)) {
    log_line(LogLevel::kWarn, "verifier",
             strformat("%s: %s", agent_id.c_str(), alert_type_name(type)),
             {{"agent", agent_id},
              {"path", raised.path},
              {"detail", raised.detail},
              {"log_index", strformat("%zu", log_index)}});
  }
  if (metrics_) {
    metrics_
        ->counter("cia_verifier_alerts_total",
                  {{"agent", agent_id}, {"type", alert_type_name(type)}})
        .inc();
  }
  if (tracer_) {
    tracer_->annotate("alert", alert_type_name(type));
    if (!raised.path.empty()) tracer_->annotate("alert_path", raised.path);
  }
  // Revocation fan-out fires on the healthy -> failed transition only.
  // Under defer_revocations (the pool path: this code runs on a shard
  // worker thread) the event is queued for the driver's round-boundary
  // drain instead of invoking notifiers inline.
  if (rec.state != AgentState::kFailed) {
    RevocationEvent event;
    event.time = clock_->now();
    event.agent_id = agent_id;
    event.reason =
        strformat("%s %s", alert_type_name(type), raised.path.c_str());
    if (config_.defer_revocations) {
      pending_revocations_.push_back(std::move(event));
    } else {
      for (RevocationNotifier* n : notifiers_) n->on_revocation(event);
    }
    if (metrics_) {
      metrics_->counter("cia_verifier_revocations_total", {{"agent", agent_id}})
          .inc();
    }
  }
  rec.state = AgentState::kFailed;
  round.state = AgentState::kFailed;
}

Result<AttestationRound> Verifier::attest_once(const std::string& agent_id) {
  last_quote_digest_ = crypto::zero_digest();
  std::optional<telemetry::Tracer::Scope> round_span;
  if (tracer_) {
    round_span.emplace(tracer_->span("attestation_round", "verifier"));
    tracer_->annotate("agent", agent_id);
  }
  const SimTime started = clock_->now();
  auto result = attest_once_impl(agent_id);
  if (!result.ok()) return result;
  const AttestationRound& round = result.value();

  // Frozen agents (P2) are not polled, so no durable record is produced.
  const bool frozen = round.state == AgentState::kFailed &&
                      round.alerts.empty() && !round.reboot_detected &&
                      round.new_entries == 0 && round.evaluated == 0 &&
                      !config_.continue_on_failure;
  if (!frozen) {
    AuditVerdict verdict = AuditVerdict::kPassed;
    if (round.reboot_detected) {
      verdict = AuditVerdict::kRebootSeen;
    } else if (!round.alerts.empty()) {
      verdict = (round.alerts.size() == 1 &&
                 round.alerts[0].type == AlertType::kCommsFailure)
                    ? AuditVerdict::kUnreachable
                    : AuditVerdict::kFailed;
    }
    audit_.append(clock_->now(), agent_id, verdict, round.alerts.size(),
                  round.evaluated, last_quote_digest_);
  }

  // Observability: classify the round, track the per-agent freshness
  // gauge (the P2 "how stale is this agent's last good attestation"
  // signal), and record the round's virtual latency.
  const bool comms_only =
      round.alerts.size() == 1 &&
      round.alerts[0].type == AlertType::kCommsFailure;
  const char* outcome = frozen                 ? "frozen"
                        : round.reboot_detected ? "reboot"
                        : comms_only            ? "comms_failure"
                        : !round.alerts.empty() ? "alerted"
                                                : "passed";
  auto rec_it = agents_.find(agent_id);
  if (rec_it != agents_.end() && !frozen) {
    AgentRecord& rec = rec_it->second;
    const bool success = round.alerts.empty() && !round.reboot_detected &&
                         rec.state == AgentState::kAttesting;
    rec.rounds_since_success = success ? 0 : rec.rounds_since_success + 1;
    if (metrics_) {
      metrics_
          ->gauge("cia_verifier_rounds_since_success", {{"agent", agent_id}})
          .set(static_cast<double>(rec.rounds_since_success));
    }
  }
  if (metrics_) {
    metrics_
        ->counter("cia_verifier_rounds_total",
                  {{"agent", agent_id}, {"outcome", outcome}})
        .inc();
    if (!frozen) {
      metrics_->histogram("cia_verifier_round_seconds", {{"agent", agent_id}})
          .observe(static_cast<double>(clock_->now() - started));
      if (round.evaluated > 0) {
        metrics_->counter("cia_verifier_entries_evaluated_total",
                          {{"agent", agent_id}})
            .inc(round.evaluated);
      }
    }
  }
  if (round_span) tracer_->annotate(round_span->id(), "outcome", outcome);
  return result;
}

Result<AttestationRound> Verifier::attest_once_impl(const std::string& agent_id) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  AgentRecord& rec = it->second;
  AttestationRound round;
  round.state = rec.state;

  // Stock Keylime: a failed agent is no longer polled (P2). With the
  // mitigation we keep polling and keep evaluating.
  if (rec.state == AgentState::kFailed && !config_.continue_on_failure) {
    return round;
  }

  QuoteRequest req;
  req.nonce = next_nonce(agent_id, rec);
  req.log_offset = rec.log_offset;
  auto resp_bytes = [&] {
    auto span = trace_span("quote_request");
    return transport_->call(rec.address, kMsgQuote, req.encode());
  }();
  if (!resp_bytes.ok()) {
    Alert alert;
    alert.time = clock_->now();
    alert.agent_id = agent_id;
    alert.type = AlertType::kCommsFailure;
    alert.detail = resp_bytes.error().to_string();
    alerts_.push_back(alert);
    round.alerts.push_back(alert);
    return round;  // transient: do not fail the agent on comms errors
  }
  // Zero-copy decode: the entry views borrow resp_bytes, which stays
  // alive (and unmodified) for the rest of this round.
  auto resp = QuoteResponseView::decode(resp_bytes.value());
  if (!resp.ok()) {
    raise(rec, agent_id, AlertType::kQuoteInvalid, "", "",
          "unparseable response: " + resp.error().message, rec.log_offset,
          round);
    return round;
  }
  QuoteResponseView& qr = resp.value();
  last_quote_digest_ = crypto::sha256(qr.quote.attested_message());

  {
    // 1. The quote must be genuine and fresh. The expected nonce binds
    // the response's claimed boot_count under the AK signature
    // (bound_quote_nonce): acting on an unauthenticated reboot signal
    // used to let one garbled response roll log_offset back to zero, so
    // the retry after a transport fault re-fetched the complete log and
    // appraised (and alerted on) every entry a second time.
    auto span = trace_span("tpm_verify");
    if (!qr.quote.verify(rec.ak) ||
        qr.quote.nonce != bound_quote_nonce(req.nonce, qr.boot_count) ||
        qr.quote.pcr_indices != quoted_pcrs()) {
      raise(rec, agent_id, AlertType::kQuoteInvalid, "", "",
            "bad signature, nonce, or PCR selection", rec.log_offset, round);
      return round;
    }

    // 2. Reboot: the agent's measurement list restarted. Reset
    // incremental state; the next round fetches the fresh log from
    // index 0. On first contact (boot_count 0 sentinel) simply adopt
    // the agent's count. Runs only on a verified quote — see step 1.
    if (rec.boot_count == 0) {
      rec.boot_count = qr.boot_count;
    } else if (qr.boot_count != rec.boot_count) {
      rec.boot_count = qr.boot_count;
      rec.log_offset = 0;
      rec.accumulated_pcr = crypto::zero_digest();
      rec.pending.clear();
      round.reboot_detected = true;
      return round;
    }

    // 2b. The boot chain must match the golden refstate, when one is
    // pinned.
    if (rec.mb_refstate) {
      const MbRefstate quoted{qr.quote.pcr_values[0], qr.quote.pcr_values[1],
                              qr.quote.pcr_values[2]};
      if (!(quoted == *rec.mb_refstate)) {
        raise(rec, agent_id, AlertType::kMeasuredBootMismatch, "", "",
              "PCR 0/4/7 diverge from the measured-boot refstate",
              rec.log_offset, round);
        return round;
      }
    }
  }

  {
    auto span = trace_span("ima_appraisal");
    if (tracer_) {
      tracer_->annotate("entries", strformat("%zu", qr.entries.size()));
    }

    // 3+4, block-pipelined. Each entry's template hash must be the hash
    // of its own data — otherwise a man-in-the-middle could swap the
    // path or file hash the policy evaluates while leaving the PCR fold
    // intact — and the shipped fragment must reproduce the quoted
    // PCR 10. The template hashes are independent of each other, so a
    // block of them goes through sha256_batch (multi-lane SHA-NI/AVX2
    // when the host has it); only the PCR fold, an inherently sequential
    // hash chain, runs entry-at-a-time — over already-computed hashes,
    // via the fused two-block pcr_fold. Blocks are checked in entry
    // order before any of their hashes are folded, so the first
    // mismatching entry raises exactly the alert the entry-at-a-time
    // loop raised, and a mismatch discards the whole round's fold just
    // as before. Folding the *recomputed* hash is safe because the
    // equality check just pinned it to the shipped one.
    constexpr std::size_t kVerifyBlock = 128;  // multiple of every lane width
    crypto::HashInput inputs[kVerifyBlock];
    crypto::Digest computed[kVerifyBlock];
    crypto::Digest folded = rec.accumulated_pcr;
    const std::size_t total_entries = qr.entries.size();
    for (std::size_t base = 0; base < total_entries; base += kVerifyBlock) {
      const std::size_t count = std::min(kVerifyBlock, total_entries - base);
      for (std::size_t i = 0; i < count; ++i) {
        const LogEntryView& e = qr.entries[base + i];
        inputs[i] = {e.file_hash.data(), e.file_hash.size(),
                     reinterpret_cast<const std::uint8_t*>(e.path.data()),
                     e.path.size()};
      }
      crypto::sha256_batch(inputs, count, computed);
      for (std::size_t i = 0; i < count; ++i) {
        if (computed[i] != qr.entries[base + i].template_hash) {
          raise(rec, agent_id, AlertType::kReplayMismatch,
                std::string(qr.entries[base + i].path), "",
                "template hash does not match entry data", rec.log_offset,
                round);
          return round;
        }
      }
      for (std::size_t i = 0; i < count; ++i) {
        folded = crypto::pcr_fold(folded, computed[i]);
      }
    }
    if (folded != qr.quote.pcr_values[3]) {
      raise(rec, agent_id, AlertType::kReplayMismatch, "", "",
            "measurement list does not reproduce quoted PCR", rec.log_offset,
            round);
      return round;
    }

    // Accept the fragment.
    round.new_entries = qr.entries.size();
    rec.accumulated_pcr = folded;
  }

  // 5. Evaluate against the runtime policy, in order: backlog first
  // (owning entries a halted round or checkpoint restore left behind),
  // then this round's entries appraised in place straight off the
  // decoded views — the accepted fragment only ever touches the heap if
  // evaluation halts and the remainder must outlive the response buffer.
  // Appraisal goes through the shared PolicyIndex snapshot when one is
  // installed (the shared_ptr keeps this round's revision alive across a
  // concurrent copy-on-write policy swap), else the linear RuntimePolicy
  // scan.
  auto span = trace_span("policy_decision");
  const std::shared_ptr<const PolicyIndex> index_snapshot = rec.index;
  const std::uint64_t base_offset = rec.log_offset;
  rec.log_offset += qr.entries.size();

  bool halted = false;
  while (!rec.pending.empty()) {
    const auto& [index, entry] = rec.pending.front();
    ++round.evaluated;
    if (entry.path == "boot_aggregate") {
      rec.pending.pop_front();
      continue;
    }
    const PolicyMatch match = appraise(rec, index_snapshot.get(), entry.path,
                                       entry.file_hash, entry.template_hash);
    if (match == PolicyMatch::kAllowed || match == PolicyMatch::kExcluded) {
      rec.pending.pop_front();
      continue;
    }
    const AlertType type = (match == PolicyMatch::kHashMismatch)
                               ? AlertType::kHashMismatch
                               : AlertType::kNotInPolicy;
    raise(rec, agent_id, type, entry.path,
          crypto::digest_hex(entry.file_hash),
          policy_match_name(match), index, round);
    rec.pending.pop_front();
    if (!config_.continue_on_failure) {
      halted = true;
      break;
    }
  }

  std::size_t next = 0;
  if (!halted) {
    for (; next < qr.entries.size(); ++next) {
      const LogEntryView& entry = qr.entries[next];
      ++round.evaluated;
      if (entry.path == "boot_aggregate") continue;
      const PolicyMatch match = appraise(rec, index_snapshot.get(), entry.path,
                                         entry.file_hash, entry.template_hash);
      if (match == PolicyMatch::kAllowed || match == PolicyMatch::kExcluded) {
        continue;
      }
      const AlertType type = (match == PolicyMatch::kHashMismatch)
                                 ? AlertType::kHashMismatch
                                 : AlertType::kNotInPolicy;
      raise(rec, agent_id, type, std::string(entry.path),
            crypto::digest_hex(entry.file_hash), policy_match_name(match),
            base_offset + next, round);
      if (!config_.continue_on_failure) {
        ++next;  // this entry is judged; the rest stay unevaluated
        halted = true;
        break;
      }
    }
  }
  // Entries not evaluated this round are the incomplete-attestation
  // window attackers exploit (P2). Materialize them into the owning
  // backlog — the views die with this round's response buffer.
  for (; next < qr.entries.size(); ++next) {
    rec.pending.emplace_back(base_offset + next, qr.entries[next].materialize());
  }
  if (tracer_) {
    tracer_->annotate("evaluated", strformat("%zu", round.evaluated));
  }
  return round;
}

PolicyMatch Verifier::appraise(AgentRecord& rec, const PolicyIndex* index,
                               std::string_view path,
                               const crypto::Digest& file_hash,
                               const crypto::Digest& template_hash) {
  if (!index) {
    // Legacy linear path. No cache here: a cached verdict must be keyed
    // to an index uid so policy swaps invalidate it.
    return rec.policy.check(std::string(path), file_hash);
  }
  if (cache_) {
    if (const auto cached = cache_->lookup(template_hash, index->uid())) {
      return *cached;
    }
  }
  bool known = false;
  const PolicyMatch match = index->check(path, file_hash, &known);
  ++(known ? index_stats_.hits : index_stats_.misses);
  if (cache_) cache_->insert(template_hash, index->uid(), match);
  return match;
}

std::vector<AttestationRound> Verifier::attest_all() {
  std::vector<AttestationRound> rounds;
  for (auto& [agent_id, rec] : agents_) {
    (void)rec;
    auto round = attest_once(agent_id);
    if (round.ok()) rounds.push_back(std::move(round).take());
  }
  return rounds;
}

Status Verifier::resolve_failure(const std::string& agent_id) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  it->second.state = AgentState::kAttesting;
  return Status::ok_status();
}

std::optional<AgentState> Verifier::state(const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) return std::nullopt;
  return it->second.state;
}

std::size_t Verifier::pending_entries(const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  return it == agents_.end() ? 0 : it->second.pending.size();
}

std::uint64_t Verifier::rounds_since_success(const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  return it == agents_.end() ? 0 : it->second.rounds_since_success;
}

std::vector<Alert> Verifier::alerts_for(const std::string& agent_id) const {
  std::vector<Alert> out;
  for (const auto& a : alerts_) {
    if (a.agent_id == agent_id) out.push_back(a);
  }
  return out;
}

namespace {

Result<crypto::Digest> checkpoint_digest(const json::Value* v,
                                         const char* field) {
  if (!v || !v->is_string()) {
    return err(Errc::kCorrupted,
               std::string("checkpoint: missing digest field ") + field);
  }
  auto bytes = from_hex(v->as_string());
  if (!bytes.ok() || bytes.value().size() != crypto::kSha256Size) {
    return err(Errc::kCorrupted,
               std::string("checkpoint: bad digest in ") + field);
  }
  crypto::Digest d;
  std::copy(bytes.value().begin(), bytes.value().end(), d.begin());
  return d;
}

const json::Value* checkpoint_field(const json::Value& obj, const char* key,
                                    bool (json::Value::*is_type)() const) {
  const json::Value* v = obj.find(key);
  return (v && (v->*is_type)()) ? v : nullptr;
}

}  // namespace

json::Value Verifier::agent_to_json(const std::string& agent_id,
                                    const AgentRecord& rec) const {
  json::Value a;
  a.set("id", agent_id);
  a.set("address", rec.address);
  a.set("ak", to_hex(rec.ak.encode()));
  a.set("policy", rec.policy.to_json());
  a.set("state", rec.state == AgentState::kFailed ? "failed" : "attesting");
  a.set("log_offset", static_cast<std::int64_t>(rec.log_offset));
  a.set("accumulated_pcr", crypto::digest_hex(rec.accumulated_pcr));
  a.set("boot_count", static_cast<std::int64_t>(rec.boot_count));
  a.set("rounds_since_success",
        static_cast<std::int64_t>(rec.rounds_since_success));
  a.set("nonce_counter", static_cast<std::int64_t>(rec.nonce_counter));
  const AuditLog::AgentTail tail = audit_.agent_tail(agent_id);
  a.set("audit_seq", static_cast<std::int64_t>(tail.next_seq));
  a.set("audit_prev", crypto::digest_hex(tail.prev_hash));
  if (rec.mb_refstate) {
    json::Value mb;
    mb.set("pcr0", crypto::digest_hex(rec.mb_refstate->pcr0));
    mb.set("pcr4", crypto::digest_hex(rec.mb_refstate->pcr4));
    mb.set("pcr7", crypto::digest_hex(rec.mb_refstate->pcr7));
    a.set("mb_refstate", std::move(mb));
  }
  if (!rec.boot_baseline.empty()) {
    json::Value events{json::Array{}};
    for (const auto& e : rec.boot_baseline) {
      json::Value ev;
      ev.set("pcr", e.pcr);
      ev.set("description", e.description);
      ev.set("digest", crypto::digest_hex(e.digest));
      events.push_back(std::move(ev));
    }
    a.set("boot_baseline", std::move(events));
  }
  if (!rec.pending.empty()) {
    json::Value pending{json::Array{}};
    for (const auto& [index, entry] : rec.pending) {
      json::Value p;
      p.set("index", static_cast<std::int64_t>(index));
      p.set("pcr", entry.pcr);
      p.set("template_name", entry.template_name);
      p.set("template_hash", crypto::digest_hex(entry.template_hash));
      p.set("file_hash", crypto::digest_hex(entry.file_hash));
      p.set("path", entry.path);
      pending.push_back(std::move(p));
    }
    a.set("pending", std::move(pending));
  }
  return a;
}

json::Value Verifier::checkpoint() const {
  const auto wall_start = std::chrono::steady_clock::now();
  json::Value doc;
  doc.set("version", kCheckpointVersion);
  json::Value agents{json::Array{}};
  for (const auto& [id, rec] : agents_) {
    agents.push_back(agent_to_json(id, rec));
  }
  doc.set("agents", std::move(agents));
  doc.set("audit", export_audit_chain(audit_.records(), audit_.public_key()));
  if (metrics_) {
    metrics_->counter("cia_verifier_checkpoints_total").inc();
    metrics_->gauge("cia_verifier_checkpoint_bytes")
        .set(static_cast<double>(doc.dump().size()));
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
    metrics_
        ->histogram("cia_verifier_checkpoint_us", {},
                    telemetry::wallclock_micros_buckets())
        .observe(us);
  }
  return doc;
}

Status Verifier::restore(const json::Value& doc) {
  if (!doc.is_object()) {
    return err(Errc::kCorrupted, "checkpoint is not an object");
  }
  // Version gate: a checkpoint missing the field predates versioning
  // (v1); anything newer than this build writes is refused outright
  // rather than half-understood. Unknown *fields* within a known version
  // are ignored, so appending a field stays forward-compatible.
  std::int64_t version = 1;
  if (const json::Value* v = doc.find("version")) {
    if (!v->is_number() || v->as_int() < 1) {
      return err(Errc::kCorrupted, "checkpoint: bad version field");
    }
    version = v->as_int();
  }
  if (version > kCheckpointVersion) {
    return err(Errc::kInvalidArgument,
               strformat("checkpoint version %lld is newer than the supported "
                         "%d; refusing partial restore",
                         static_cast<long long>(version), kCheckpointVersion));
  }
  const json::Value* agents_field = doc.find("agents");
  const json::Value* audit_field = doc.find("audit");
  if (!agents_field || !agents_field->is_array() || !audit_field) {
    return err(Errc::kCorrupted, "checkpoint is missing agents/audit");
  }

  // The audit chain must be OUR chain: records signed under this
  // verifier's key (derived from the seed). A checkpoint from a
  // different verifier would fork history and is refused.
  auto chain = import_audit_chain(*audit_field);
  if (!chain.ok()) return chain.error();
  if (!(chain.value().second == audit_.public_key())) {
    return err(Errc::kPermissionDenied,
               "checkpoint audit chain was signed by a different verifier");
  }

  std::map<std::string, AgentRecord> restored;
  std::map<std::string, AuditLog::AgentTail> tails;
  for (const json::Value& a : agents_field->as_array()) {
    auto slice = agent_from_json(a);
    if (!slice.ok()) return slice.error();
    ParsedAgentSlice parsed = std::move(slice).take();
    if (parsed.tail) tails[parsed.id] = *parsed.tail;
    restored[parsed.id] = std::move(parsed.record);
  }

  if (Status s = audit_.restore(std::move(chain.value().first)); !s.ok()) {
    return s;
  }
  // Tails rebuilt from the records cover agents whose whole history is in
  // this log; the checkpoint's explicit per-agent tails win for agents
  // that migrated in with a further-along sub-chain.
  for (const auto& [id, tail] : tails) audit_.set_agent_tail(id, tail);
  agents_ = std::move(restored);
  if (metrics_) metrics_->counter("cia_verifier_restores_total").inc();
  return Status::ok_status();
}

Result<Verifier::ParsedAgentSlice> Verifier::agent_from_json(
    const json::Value& a) {
  if (!a.is_object()) return err(Errc::kCorrupted, "checkpoint: bad agent");
  const json::Value* id = checkpoint_field(a, "id", &json::Value::is_string);
  const json::Value* address =
      checkpoint_field(a, "address", &json::Value::is_string);
  const json::Value* ak = checkpoint_field(a, "ak", &json::Value::is_string);
  const json::Value* policy_field = a.find("policy");
  const json::Value* state =
      checkpoint_field(a, "state", &json::Value::is_string);
  const json::Value* log_offset =
      checkpoint_field(a, "log_offset", &json::Value::is_number);
  const json::Value* boot_count =
      checkpoint_field(a, "boot_count", &json::Value::is_number);
  if (!id || !address || !ak || !policy_field || !state || !log_offset ||
      !boot_count) {
    return err(Errc::kCorrupted, "checkpoint: agent missing fields");
  }
  ParsedAgentSlice parsed;
  parsed.id = id->as_string();
  if (parsed.id.empty()) {
    return err(Errc::kCorrupted, "checkpoint: empty agent id");
  }
  AgentRecord& rec = parsed.record;
  rec.address = address->as_string();
  auto ak_bytes = from_hex(ak->as_string());
  if (!ak_bytes.ok()) return err(Errc::kCorrupted, "checkpoint: bad AK hex");
  auto ak_key = crypto::PublicKey::decode(ak_bytes.value());
  if (!ak_key) return err(Errc::kCorrupted, "checkpoint: bad AK encoding");
  rec.ak = *ak_key;
  auto policy = RuntimePolicy::from_json(*policy_field);
  if (!policy.ok()) return policy.error();
  rec.policy = std::move(policy).take();
  if (state->as_string() == "failed") {
    rec.state = AgentState::kFailed;
  } else if (state->as_string() == "attesting") {
    rec.state = AgentState::kAttesting;
  } else {
    return err(Errc::kCorrupted,
               "checkpoint: bad agent state " + state->as_string());
  }
  if (log_offset->as_int() < 0 || boot_count->as_int() < 0) {
    return err(Errc::kCorrupted, "checkpoint: negative counter");
  }
  rec.log_offset = static_cast<std::uint64_t>(log_offset->as_int());
  auto pcr = checkpoint_digest(a.find("accumulated_pcr"), "accumulated_pcr");
  if (!pcr.ok()) return pcr.error();
  rec.accumulated_pcr = pcr.value();
  rec.boot_count = static_cast<std::uint32_t>(boot_count->as_int());
  if (const json::Value* rss =
          checkpoint_field(a, "rounds_since_success",
                           &json::Value::is_number)) {
    if (rss->as_int() < 0) {
      return err(Errc::kCorrupted, "checkpoint: negative counter");
    }
    rec.rounds_since_success = static_cast<std::uint64_t>(rss->as_int());
  }
  if (const json::Value* nc =
          checkpoint_field(a, "nonce_counter", &json::Value::is_number)) {
    if (nc->as_int() < 0) {
      return err(Errc::kCorrupted, "checkpoint: negative counter");
    }
    rec.nonce_counter = static_cast<std::uint64_t>(nc->as_int());
  }
  // The audit sub-chain tail (absent in v1 checkpoints, which predate
  // per-agent chains): both halves must be present together.
  if (const json::Value* aseq = a.find("audit_seq")) {
    if (!aseq->is_number() || aseq->as_int() < 0) {
      return err(Errc::kCorrupted, "checkpoint: bad audit_seq");
    }
    auto aprev = checkpoint_digest(a.find("audit_prev"), "audit_prev");
    if (!aprev.ok()) return aprev.error();
    parsed.tail = AuditLog::AgentTail{
        static_cast<std::uint64_t>(aseq->as_int()), aprev.value()};
  } else if (a.find("audit_prev")) {
    return err(Errc::kCorrupted, "checkpoint: audit_prev without audit_seq");
  }
  if (const json::Value* mb = a.find("mb_refstate")) {
    MbRefstate ref;
    auto p0 = checkpoint_digest(mb->find("pcr0"), "pcr0");
    auto p4 = checkpoint_digest(mb->find("pcr4"), "pcr4");
    auto p7 = checkpoint_digest(mb->find("pcr7"), "pcr7");
    if (!p0.ok()) return p0.error();
    if (!p4.ok()) return p4.error();
    if (!p7.ok()) return p7.error();
    ref.pcr0 = p0.value();
    ref.pcr4 = p4.value();
    ref.pcr7 = p7.value();
    rec.mb_refstate = ref;
  }
  if (const json::Value* events = a.find("boot_baseline")) {
    if (!events->is_array()) {
      return err(Errc::kCorrupted, "checkpoint: bad boot_baseline");
    }
    for (const json::Value& ev : events->as_array()) {
      const json::Value* pcr_field =
          checkpoint_field(ev, "pcr", &json::Value::is_number);
      const json::Value* description =
          checkpoint_field(ev, "description", &json::Value::is_string);
      auto digest = checkpoint_digest(ev.find("digest"), "digest");
      if (!pcr_field || !description) {
        return err(Errc::kCorrupted, "checkpoint: bad boot event");
      }
      if (!digest.ok()) return digest.error();
      oskernel::BootEvent event;
      event.pcr = static_cast<int>(pcr_field->as_int());
      event.description = description->as_string();
      event.digest = digest.value();
      rec.boot_baseline.push_back(std::move(event));
    }
  }
  if (const json::Value* pending = a.find("pending")) {
    if (!pending->is_array()) {
      return err(Errc::kCorrupted, "checkpoint: bad pending list");
    }
    for (const json::Value& p : pending->as_array()) {
      const json::Value* index =
          checkpoint_field(p, "index", &json::Value::is_number);
      const json::Value* pcr_field =
          checkpoint_field(p, "pcr", &json::Value::is_number);
      const json::Value* template_name =
          checkpoint_field(p, "template_name", &json::Value::is_string);
      const json::Value* path =
          checkpoint_field(p, "path", &json::Value::is_string);
      auto template_hash =
          checkpoint_digest(p.find("template_hash"), "template_hash");
      auto file_hash = checkpoint_digest(p.find("file_hash"), "file_hash");
      if (!index || !pcr_field || !template_name || !path) {
        return err(Errc::kCorrupted, "checkpoint: bad pending entry");
      }
      if (index->as_int() < 0) {
        return err(Errc::kCorrupted, "checkpoint: negative pending index");
      }
      if (!template_hash.ok()) return template_hash.error();
      if (!file_hash.ok()) return file_hash.error();
      ima::LogEntry entry;
      entry.pcr = static_cast<int>(pcr_field->as_int());
      entry.template_name = template_name->as_string();
      entry.template_hash = template_hash.value();
      entry.file_hash = file_hash.value();
      entry.path = path->as_string();
      rec.pending.emplace_back(static_cast<std::uint64_t>(index->as_int()),
                               std::move(entry));
    }
  }
  return parsed;
}

Result<json::Value> Verifier::export_agent(const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  return agent_to_json(agent_id, it->second);
}

Status Verifier::import_agent(const json::Value& slice) {
  auto parsed = agent_from_json(slice);
  if (!parsed.ok()) return parsed.error();
  ParsedAgentSlice p = std::move(parsed).take();
  // All validation is done; commit atomically. Replace-by-id makes a
  // duplicated handoff message harmless.
  if (p.tail) audit_.set_agent_tail(p.id, *p.tail);
  agents_[p.id] = std::move(p.record);
  return Status::ok_status();
}

Status Verifier::remove_agent(const std::string& agent_id) {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) {
    return err(Errc::kNotFound, "unknown agent " + agent_id);
  }
  agents_.erase(it);
  audit_.drop_agent_tail(agent_id);
  return Status::ok_status();
}

Status Verifier::validate_agent_slice(const json::Value& slice) {
  auto parsed = agent_from_json(slice);
  if (!parsed.ok()) return parsed.error();
  return Status::ok_status();
}

void Verifier::seed_audit_tail(const std::string& agent_id,
                               const AuditLog::AgentTail& tail) {
  audit_.set_agent_tail(agent_id, tail);
}

std::optional<std::string> Verifier::agent_address(
    const std::string& agent_id) const {
  auto it = agents_.find(agent_id);
  if (it == agents_.end()) return std::nullopt;
  return it->second.address;
}

std::vector<std::string> Verifier::agent_ids() const {
  std::vector<std::string> out;
  out.reserve(agents_.size());
  for (const auto& [id, rec] : agents_) {
    (void)rec;
    out.push_back(id);
  }
  return out;
}

}  // namespace cia::keylime
