#include "keylime/audit.hpp"

#include <utility>

#include "common/hex.hpp"
#include "common/strutil.hpp"

namespace cia::keylime {

const char* audit_verdict_name(AuditVerdict v) {
  switch (v) {
    case AuditVerdict::kPassed: return "passed";
    case AuditVerdict::kFailed: return "failed";
    case AuditVerdict::kRebootSeen: return "reboot";
    case AuditVerdict::kUnreachable: return "unreachable";
  }
  return "?";
}

crypto::Digest AuditRecord::compute_hash() const {
  crypto::Sha256 ctx;
  ctx.update(strformat("audit:%llu:%lld:%s:%s:%zu:%zu:%llu:",
                       static_cast<unsigned long long>(sequence),
                       static_cast<long long>(time), agent_id.c_str(),
                       audit_verdict_name(verdict), alerts,
                       log_entries_evaluated,
                       static_cast<unsigned long long>(agent_seq)));
  ctx.update(quote_digest.data(), quote_digest.size());
  ctx.update(prev_hash.data(), prev_hash.size());
  ctx.update(agent_prev_hash.data(), agent_prev_hash.size());
  return ctx.finish();
}

crypto::Digest AuditRecord::agent_hash() const {
  crypto::Sha256 ctx;
  ctx.update(strformat("agentaudit:%llu:%lld:%s:%s:%zu:%zu:",
                       static_cast<unsigned long long>(agent_seq),
                       static_cast<long long>(time), agent_id.c_str(),
                       audit_verdict_name(verdict), alerts,
                       log_entries_evaluated));
  ctx.update(quote_digest.data(), quote_digest.size());
  ctx.update(agent_prev_hash.data(), agent_prev_hash.size());
  return ctx.finish();
}

const AuditRecord& AuditLog::append(SimTime time, const std::string& agent_id,
                                    AuditVerdict verdict, std::size_t alerts,
                                    std::size_t evaluated,
                                    const crypto::Digest& quote_digest) {
  AgentTail& tail = tails_[agent_id];
  AuditRecord record;
  record.sequence = records_.size();
  record.time = time;
  record.agent_id = agent_id;
  record.verdict = verdict;
  record.alerts = alerts;
  record.log_entries_evaluated = evaluated;
  record.agent_seq = tail.next_seq;
  record.quote_digest = quote_digest;
  record.prev_hash =
      records_.empty() ? crypto::zero_digest() : records_.back().record_hash;
  record.agent_prev_hash = tail.prev_hash;
  record.record_hash = record.compute_hash();
  record.signature = crypto::sign(key_, crypto::digest_bytes(record.record_hash));
  tail.next_seq = record.agent_seq + 1;
  tail.prev_hash = record.agent_hash();
  records_.push_back(std::move(record));
  return records_.back();
}

crypto::Digest AuditLog::head() const {
  return records_.empty() ? crypto::zero_digest() : records_.back().record_hash;
}

AuditLog::AgentTail AuditLog::agent_tail(const std::string& agent_id) const {
  auto it = tails_.find(agent_id);
  if (it == tails_.end()) return AgentTail{0, crypto::zero_digest()};
  return it->second;
}

void AuditLog::set_agent_tail(const std::string& agent_id,
                              const AgentTail& tail) {
  tails_[agent_id] = tail;
}

void AuditLog::drop_agent_tail(const std::string& agent_id) {
  tails_.erase(agent_id);
}

Status AuditLog::restore(std::vector<AuditRecord> records) {
  if (Status s = verify_audit_chain(records, key_.pub); !s.ok()) return s;
  records_ = std::move(records);
  tails_.clear();
  for (const AuditRecord& r : records_) {
    tails_[r.agent_id] = AgentTail{r.agent_seq + 1, r.agent_hash()};
  }
  return Status::ok_status();
}

namespace {

json::Value digest_json(const crypto::Digest& d) {
  return json::Value(crypto::digest_hex(d));
}

Result<crypto::Digest> digest_from_json(const json::Value* v,
                                        const char* field) {
  if (!v || !v->is_string()) {
    return err(Errc::kCorrupted, std::string("missing digest field ") + field);
  }
  auto bytes = from_hex(v->as_string());
  if (!bytes.ok() || bytes.value().size() != crypto::kSha256Size) {
    return err(Errc::kCorrupted, std::string("bad digest in ") + field);
  }
  crypto::Digest d;
  std::copy(bytes.value().begin(), bytes.value().end(), d.begin());
  return d;
}

}  // namespace

json::Value AuditRecord::to_json() const {
  json::Value doc;
  doc.set("sequence", static_cast<std::int64_t>(sequence));
  doc.set("time", static_cast<std::int64_t>(time));
  doc.set("agent", agent_id);
  doc.set("verdict", audit_verdict_name(verdict));
  doc.set("alerts", alerts);
  doc.set("evaluated", log_entries_evaluated);
  doc.set("agent_seq", static_cast<std::int64_t>(agent_seq));
  doc.set("quote_digest", digest_json(quote_digest));
  doc.set("prev_hash", digest_json(prev_hash));
  doc.set("agent_prev", digest_json(agent_prev_hash));
  doc.set("record_hash", digest_json(record_hash));
  doc.set("signature", to_hex(signature.encode()));
  return doc;
}

Result<AuditRecord> AuditRecord::from_json(const json::Value& doc) {
  if (!doc.is_object()) return err(Errc::kCorrupted, "record is not an object");
  AuditRecord r;
  const json::Value* seq = doc.find("sequence");
  const json::Value* time_field = doc.find("time");
  const json::Value* agent = doc.find("agent");
  const json::Value* verdict = doc.find("verdict");
  const json::Value* alerts = doc.find("alerts");
  const json::Value* evaluated = doc.find("evaluated");
  const json::Value* agent_seq = doc.find("agent_seq");
  const json::Value* signature = doc.find("signature");
  if (!seq || !seq->is_number() || !time_field || !time_field->is_number() ||
      !agent || !agent->is_string() || !verdict || !verdict->is_string() ||
      !alerts || !alerts->is_number() || !evaluated ||
      !evaluated->is_number() || !agent_seq || !agent_seq->is_number() ||
      agent_seq->as_int() < 0 || !signature || !signature->is_string()) {
    return err(Errc::kCorrupted, "record is missing required fields");
  }
  r.sequence = static_cast<std::uint64_t>(seq->as_int());
  r.agent_seq = static_cast<std::uint64_t>(agent_seq->as_int());
  r.time = time_field->as_int();
  r.agent_id = agent->as_string();
  const std::string verdict_name = verdict->as_string();
  if (verdict_name == "passed") {
    r.verdict = AuditVerdict::kPassed;
  } else if (verdict_name == "failed") {
    r.verdict = AuditVerdict::kFailed;
  } else if (verdict_name == "reboot") {
    r.verdict = AuditVerdict::kRebootSeen;
  } else if (verdict_name == "unreachable") {
    r.verdict = AuditVerdict::kUnreachable;
  } else {
    return err(Errc::kCorrupted, "bad verdict " + verdict_name);
  }
  r.alerts = static_cast<std::size_t>(alerts->as_int());
  r.log_entries_evaluated = static_cast<std::size_t>(evaluated->as_int());
  auto quote_digest = digest_from_json(doc.find("quote_digest"), "quote_digest");
  if (!quote_digest.ok()) return quote_digest.error();
  r.quote_digest = quote_digest.value();
  auto prev = digest_from_json(doc.find("prev_hash"), "prev_hash");
  if (!prev.ok()) return prev.error();
  r.prev_hash = prev.value();
  auto agent_prev = digest_from_json(doc.find("agent_prev"), "agent_prev");
  if (!agent_prev.ok()) return agent_prev.error();
  r.agent_prev_hash = agent_prev.value();
  auto hash = digest_from_json(doc.find("record_hash"), "record_hash");
  if (!hash.ok()) return hash.error();
  r.record_hash = hash.value();
  auto sig_bytes = from_hex(signature->as_string());
  if (!sig_bytes.ok()) return err(Errc::kCorrupted, "bad signature hex");
  auto sig = crypto::Signature::decode(sig_bytes.value());
  if (!sig) return err(Errc::kCorrupted, "bad signature encoding");
  r.signature = *sig;
  return r;
}

json::Value export_audit_chain(const std::vector<AuditRecord>& records,
                               const crypto::PublicKey& verifier_key) {
  json::Value doc;
  doc.set("verifier_key", to_hex(verifier_key.encode()));
  json::Value list{json::Array{}};
  for (const AuditRecord& r : records) list.push_back(r.to_json());
  doc.set("records", std::move(list));
  return doc;
}

Result<std::pair<std::vector<AuditRecord>, crypto::PublicKey>>
import_audit_chain(const json::Value& doc) {
  if (!doc.is_object()) return err(Errc::kCorrupted, "chain is not an object");
  const json::Value* key_field = doc.find("verifier_key");
  const json::Value* records_field = doc.find("records");
  if (!key_field || !key_field->is_string() || !records_field ||
      !records_field->is_array()) {
    return err(Errc::kCorrupted, "chain is missing fields");
  }
  auto key_bytes = from_hex(key_field->as_string());
  if (!key_bytes.ok()) return err(Errc::kCorrupted, "bad verifier key hex");
  auto key = crypto::PublicKey::decode(key_bytes.value());
  if (!key) return err(Errc::kCorrupted, "bad verifier key");
  std::vector<AuditRecord> records;
  for (const json::Value& entry : records_field->as_array()) {
    auto record = AuditRecord::from_json(entry);
    if (!record.ok()) return record.error();
    records.push_back(std::move(record).take());
  }
  return std::make_pair(std::move(records), *key);
}

Status verify_audit_chain(const std::vector<AuditRecord>& records,
                          const crypto::PublicKey& verifier_key) {
  crypto::Digest prev = crypto::zero_digest();
  std::map<std::string, AuditLog::AgentTail> tails;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const AuditRecord& r = records[i];
    if (r.sequence != i) {
      return err(Errc::kCorrupted,
                 strformat("record %zu: bad sequence number", i));
    }
    if (r.prev_hash != prev) {
      return err(Errc::kCorrupted, strformat("record %zu: broken chain", i));
    }
    if (r.record_hash != r.compute_hash()) {
      return err(Errc::kCorrupted, strformat("record %zu: tampered fields", i));
    }
    if (!crypto::verify(verifier_key, crypto::digest_bytes(r.record_hash),
                        r.signature)) {
      return err(Errc::kCorrupted, strformat("record %zu: bad signature", i));
    }
    // Per-agent sub-chain: the first record for an agent may continue a
    // chain begun elsewhere (it migrated in), so any starting point is
    // legal — but every later record here must extend the previous one.
    auto it = tails.find(r.agent_id);
    if (it != tails.end() &&
        (r.agent_seq != it->second.next_seq ||
         r.agent_prev_hash != it->second.prev_hash)) {
      return err(Errc::kCorrupted,
                 strformat("record %zu: broken agent sub-chain for %s", i,
                           r.agent_id.c_str()));
    }
    tails[r.agent_id] = AuditLog::AgentTail{r.agent_seq + 1, r.agent_hash()};
    prev = r.record_hash;
  }
  return Status::ok_status();
}

}  // namespace cia::keylime
