// Fleet polling scheduler.
//
// A production verifier polls thousands of agents; naive synchronized
// polling produces thundering herds and retry storms. The scheduler
// staggers agents across the poll interval (deterministically, by agent
// id) and applies exponential backoff with a cap to unreachable agents so
// a dead rack does not consume the polling budget. Backoff delays carry
// deterministic per-agent jitter so a rack that died together does not
// retry in lockstep, and backoff only resets after a round that actually
// succeeded — an error response is not recovery.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/sim_clock.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime {

struct SchedulerConfig {
  SimTime poll_interval = 60;          // healthy-agent poll period
  SimTime initial_backoff = 30;        // first retry after a comms failure
  SimTime max_backoff = 15 * kMinute;  // backoff ceiling
};

class AttestationScheduler {
 public:
  AttestationScheduler(Verifier* verifier, SimClock* clock,
                       SchedulerConfig config = {})
      : verifier_(verifier), clock_(clock), config_(config) {}

  /// Start polling an agent (already enrolled with the verifier). The
  /// first poll is staggered within the interval by a stable hash of the
  /// agent id. Re-enrolling an already-scheduled id replaces its slot —
  /// an agent is never double-scheduled.
  void enroll(const std::string& agent_id);

  /// Poll every agent whose next-poll time has arrived. Returns the
  /// number of polls performed.
  std::size_t tick();

  /// Earliest next-poll time across the fleet (SimTime max if empty).
  SimTime next_due() const;

  /// Agents currently on the healthy cadence (no backoff pending).
  std::size_t healthy_count() const;

  /// Agents currently in comms backoff.
  std::size_t backing_off_count() const;

  struct AgentSchedule {
    SimTime next_poll = 0;
    SimTime current_backoff = 0;  // 0 = healthy cadence
    std::uint64_t polls = 0;
    std::uint64_t comms_failures = 0;
  };

  const AgentSchedule* schedule(const std::string& agent_id) const;

  /// Adopt a schedule handed over by another shard's scheduler (live
  /// migration): the agent keeps its absolute next_poll, backoff state,
  /// and tallies, so a moved agent's cadence is seamless.
  void adopt(const std::string& agent_id, const AgentSchedule& schedule) {
    agents_[agent_id] = schedule;
  }

  /// Stop polling an agent (it migrated away or unenrolled).
  void remove(const std::string& agent_id) { agents_.erase(agent_id); }

  /// Point the scheduler at a restored verifier instance after
  /// crash-recovery; poll cadence and backoff state carry over.
  void rebind(Verifier* verifier) { verifier_ = verifier; }

  /// Export scheduler health to `metrics`: per-tick due-queue depth
  /// histogram, healthy/backing-off fleet gauges, poll and comms-failure
  /// counters, and the retry-jitter distribution. nullptr turns it off.
  void use_telemetry(telemetry::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }

 private:
  Verifier* verifier_;
  SimClock* clock_;
  SchedulerConfig config_;
  std::map<std::string, AgentSchedule> agents_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace cia::keylime
