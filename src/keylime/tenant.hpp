// The Keylime tenant: the operator-facing management tool.
//
// Wraps the enrolment workflow (registrar activation check -> verifier
// add -> initial policy install) and day-2 operations (policy pushes,
// failure resolution, fleet status reports).
#pragma once

#include <string>
#include <vector>

#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime {

class Tenant {
 public:
  Tenant(Verifier* verifier, Registrar* registrar)
      : verifier_(verifier), registrar_(registrar) {}

  /// Full enrolment: the agent must already have registered+activated
  /// with the registrar; installs `policy` and starts attestation.
  Status enroll(const Agent& agent, RuntimePolicy policy);

  /// Push a new runtime policy (dynamic policy updates land here).
  Status push_policy(const std::string& agent_id, RuntimePolicy policy);

  /// Operator resolves a failed agent after fixing its policy.
  Status resolve(const std::string& agent_id);

  /// Human-readable one-line-per-agent fleet status.
  std::string status_report() const;

  /// Machine-readable fleet status (for dashboards/automation):
  /// {"agents":[{"id","state","alerts","pending_entries"}...]}.
  json::Value status_json() const;

 private:
  Verifier* verifier_;
  Registrar* registrar_;
};

}  // namespace cia::keylime
