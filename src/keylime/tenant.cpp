#include "keylime/tenant.hpp"

#include "common/strutil.hpp"

namespace cia::keylime {

Status Tenant::enroll(const Agent& agent, RuntimePolicy policy) {
  if (!registrar_->is_active(agent.agent_id())) {
    return err(Errc::kPermissionDenied,
               agent.agent_id() + " has not completed registration");
  }
  if (Status s = verifier_->add_agent(agent.agent_id(), agent.address());
      !s.ok()) {
    return s;
  }
  return verifier_->set_policy(agent.agent_id(), std::move(policy));
}

Status Tenant::push_policy(const std::string& agent_id, RuntimePolicy policy) {
  return verifier_->set_policy(agent_id, std::move(policy));
}

Status Tenant::resolve(const std::string& agent_id) {
  return verifier_->resolve_failure(agent_id);
}

std::string Tenant::status_report() const {
  std::string out = "agent                 state      alerts\n";
  for (const std::string& id : verifier_->agent_ids()) {
    const auto state = verifier_->state(id);
    const char* state_name =
        (state && *state == AgentState::kFailed) ? "FAILED" : "attesting";
    out += strformat("%-21s %-10s %zu\n", id.c_str(), state_name,
                     verifier_->alerts_for(id).size());
  }
  return out;
}

json::Value Tenant::status_json() const {
  json::Value doc;
  json::Value agents{json::Array{}};
  for (const std::string& id : verifier_->agent_ids()) {
    const auto state = verifier_->state(id);
    json::Value entry;
    entry.set("id", id);
    entry.set("state", (state && *state == AgentState::kFailed) ? "failed"
                                                                : "attesting");
    entry.set("alerts", verifier_->alerts_for(id).size());
    entry.set("pending_entries", verifier_->pending_entries(id));
    agents.push_back(std::move(entry));
  }
  doc.set("agents", std::move(agents));
  return doc;
}

}  // namespace cia::keylime
