// A content-addressed runtime-policy revision store with digest-bound
// delta updates.
//
// The paper's §III-C numbers motivate the whole subsystem: a daily
// policy update is ~1,271 lines (0.16 MB) against a 323,734-line (46 MB)
// base, yet shipping the full policy and re-indexing it per push costs
// as if every update were a bootstrap. Here a revision is identified by
// the SHA-256 of its canonical JSON form (RuntimePolicy::to_json() over
// the ordered path map — deterministic by construction), and an update
// travels as a PolicyDelta: the base revision's digest, the target's,
// and the add/remove/replace entry patch between them.
//
// The digest binding implements the Ozga et al. "verify the update
// before the node does" semantics: apply() refuses a delta whose base
// digest does not name the policy it is applied to, and refuses its own
// output when the rebuilt policy does not hash to the claimed target —
// a verifier can never end up appraising against a policy whose
// provenance it cannot prove. apply() is pure (the base is copied before
// any mutation), so a rejected delta leaves no partial state anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "keylime/runtime_policy.hpp"

namespace cia::keylime::policy_store {

/// The content address of a policy: lowercase-hex SHA-256 of the
/// canonical JSON form (to_json().dump() — sorted paths, sorted keys).
std::string policy_digest(const RuntimePolicy& policy);

/// One patched path. kAdd introduces a path absent from the base,
/// kReplace swaps the acceptable-hash list of an existing path, kRemove
/// drops it (hashes empty).
struct DeltaEntry {
  enum class Op { kAdd, kRemove, kReplace };
  Op op = Op::kAdd;
  std::string path;
  std::vector<std::string> hashes;  // 64-hex each; empty for kRemove

  bool operator==(const DeltaEntry&) const = default;
};

const char* delta_op_name(DeltaEntry::Op op);

/// A digest-bound patch from one policy revision to another. Entries are
/// sorted by path (strictly increasing — the canonical form the strict
/// decoder enforces). When the exclude-glob list changed at all, the
/// delta carries the full new list (`excludes` engaged): exclude order
/// is part of the canonical form and the list is tiny next to the path
/// map, so wholesale replacement keeps apply() exact.
struct PolicyDelta {
  std::string base_digest;    // 64-hex, policy_digest of the base
  std::string target_digest;  // 64-hex, policy_digest of the result
  std::vector<DeltaEntry> entries;
  std::optional<std::vector<std::string>> excludes;

  bool operator==(const PolicyDelta&) const = default;

  /// Does this delta replace the exclude list? (An incremental index
  /// build must fall back to a full rebuild then: per-path exclusion
  /// verdicts are precomputed against the old globs.)
  bool touches_excludes() const { return excludes.has_value(); }

  /// Patched entry lines (the paper's "update lines").
  std::size_t entry_count() const;

  /// Canonical JSON. parse(serialize()) is the identity on valid deltas
  /// (the fuzz target's fixed-point contract).
  json::Value to_json() const;
  std::string serialize() const;

  /// Strict decode: version pinned, digests 64 lowercase hex, entries
  /// strictly path-sorted with per-op hash arity enforced, unknown
  /// fields rejected. Anything the decoder accepts re-serializes
  /// byte-identically.
  static Result<PolicyDelta> from_json(const json::Value& doc);
  static Result<PolicyDelta> parse(const std::string& text);

  /// Serialized wire size — what a delta push actually moves.
  std::uint64_t byte_size() const;
};

/// Structural diff: the minimal add/remove/replace patch turning `base`
/// into `target`, digest-bound to both.
PolicyDelta diff(const RuntimePolicy& base, const RuntimePolicy& target);

/// Apply `delta` to `base`, verifying provenance on both ends: the base
/// must hash to delta.base_digest and the patched result must hash to
/// delta.target_digest, else an error (and no observable state anywhere
/// — the base is copied before mutation). Structural conflicts (adding
/// a path that exists, replacing/removing one that does not) are also
/// errors: they cannot occur in a delta minted by diff() against the
/// right base, so they indicate a wrong-base or tampered delta even
/// before the digest check would catch it.
Result<RuntimePolicy> apply(const RuntimePolicy& base,
                            const PolicyDelta& delta);

/// The revision store: full policies keyed by digest plus the deltas
/// linking them. put() is idempotent (content addressing: the same
/// policy always lands on the same key) and moves head to the stored
/// revision.
class PolicyStore {
 public:
  /// Store a revision; returns its digest and moves head. Idempotent.
  std::string put(const RuntimePolicy& policy);

  /// Store the delta under its (base, target) digest pair.
  void put_delta(const PolicyDelta& delta);

  /// The stored revision for a digest (nullptr when unknown).
  const RuntimePolicy* get(const std::string& digest) const;

  /// The stored delta rebasing `base_digest` onto `target_digest`
  /// (nullptr when none was put).
  const PolicyDelta* delta_between(const std::string& base_digest,
                                   const std::string& target_digest) const;

  /// Digest of the most recently put revision (empty before any put).
  const std::string& head() const { return head_; }

  std::size_t revision_count() const { return revisions_.size(); }
  std::size_t delta_count() const { return deltas_.size(); }

 private:
  std::map<std::string, RuntimePolicy> revisions_;
  std::map<std::pair<std::string, std::string>, PolicyDelta> deltas_;
  std::string head_;
};

}  // namespace cia::keylime::policy_store
