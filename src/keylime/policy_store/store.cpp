#include "keylime/policy_store/store.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace cia::keylime::policy_store {

namespace {

bool is_hex64(const std::string& s) {
  if (s.size() != 64) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

Status check_hashes(const std::vector<std::string>& hashes,
                    const std::string& path) {
  if (hashes.empty()) {
    return err(Errc::kCorrupted, "delta entry for " + path + " has no hashes");
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    if (!is_hex64(hashes[i])) {
      return err(Errc::kCorrupted, "bad delta hash for " + path);
    }
    // RuntimePolicy::allow dedups, so a duplicated hash could never
    // reproduce the target digest — reject it at the decode boundary.
    for (std::size_t j = 0; j < i; ++j) {
      if (hashes[j] == hashes[i]) {
        return err(Errc::kCorrupted, "duplicate delta hash for " + path);
      }
    }
  }
  return Status::ok_status();
}

}  // namespace

std::string policy_digest(const RuntimePolicy& policy) {
  return crypto::digest_hex(crypto::sha256(policy.to_json().dump()));
}

namespace {

// Digest two policies as one sha256_batch call: the canonical dumps are
// long single-segment messages, exactly the pair shape the 2-lane
// SHA-NI kernel streams side by side without copying. diff() is the one
// place that needs two policy digests at the same time.
std::pair<std::string, std::string> policy_digest_pair(
    const RuntimePolicy& a, const RuntimePolicy& b) {
  const std::string da = a.to_json().dump();
  const std::string db = b.to_json().dump();
  crypto::HashInput in[2];
  in[0].a = reinterpret_cast<const std::uint8_t*>(da.data());
  in[0].a_len = da.size();
  in[1].a = reinterpret_cast<const std::uint8_t*>(db.data());
  in[1].a_len = db.size();
  crypto::Digest out[2];
  crypto::sha256_batch(in, 2, out);
  return {crypto::digest_hex(out[0]), crypto::digest_hex(out[1])};
}

}  // namespace

const char* delta_op_name(DeltaEntry::Op op) {
  switch (op) {
    case DeltaEntry::Op::kAdd: return "add";
    case DeltaEntry::Op::kRemove: return "remove";
    case DeltaEntry::Op::kReplace: return "replace";
  }
  return "?";
}

std::size_t PolicyDelta::entry_count() const {
  std::size_t lines = 0;
  for (const DeltaEntry& e : entries) {
    lines += e.op == DeltaEntry::Op::kRemove ? 1 : e.hashes.size();
  }
  return lines;
}

json::Value PolicyDelta::to_json() const {
  json::Value doc;
  doc.set("version", 1);
  doc.set("base", base_digest);
  doc.set("target", target_digest);
  json::Value list{json::Array{}};
  for (const DeltaEntry& e : entries) {
    json::Value entry;
    entry.set("op", delta_op_name(e.op));
    entry.set("path", e.path);
    if (e.op != DeltaEntry::Op::kRemove) {
      json::Value hashes{json::Array{}};
      for (const std::string& h : e.hashes) hashes.push_back(h);
      entry.set("hashes", std::move(hashes));
    }
    list.push_back(std::move(entry));
  }
  doc.set("entries", std::move(list));
  if (excludes) {
    json::Value globs{json::Array{}};
    for (const std::string& g : *excludes) globs.push_back(g);
    doc.set("excludes", std::move(globs));
  }
  return doc;
}

std::string PolicyDelta::serialize() const { return to_json().dump(); }

std::uint64_t PolicyDelta::byte_size() const { return serialize().size(); }

Result<PolicyDelta> PolicyDelta::from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return err(Errc::kCorrupted, "delta document is not an object");
  }
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "version" && key != "base" && key != "target" &&
        key != "entries" && key != "excludes") {
      return err(Errc::kCorrupted, "delta has unknown field " + key);
    }
  }
  const json::Value* version = doc.find("version");
  if (!version || !version->is_number() || version->as_number() != 1) {
    return err(Errc::kCorrupted, "delta version is not 1");
  }
  PolicyDelta delta;
  for (const char* which : {"base", "target"}) {
    const json::Value* digest = doc.find(which);
    if (!digest || !digest->is_string() || !is_hex64(digest->as_string())) {
      return err(Errc::kCorrupted,
                 std::string("delta ") + which + " is not a sha256 digest");
    }
    (which[0] == 'b' ? delta.base_digest : delta.target_digest) =
        digest->as_string();
  }
  if (delta.base_digest == delta.target_digest) {
    return err(Errc::kCorrupted, "delta base and target are identical");
  }
  const json::Value* entries = doc.find("entries");
  if (!entries || !entries->is_array()) {
    return err(Errc::kCorrupted, "delta entries is not an array");
  }
  for (const json::Value& item : entries->as_array()) {
    if (!item.is_object()) {
      return err(Errc::kCorrupted, "delta entry is not an object");
    }
    for (const auto& [key, value] : item.as_object()) {
      (void)value;
      if (key != "op" && key != "path" && key != "hashes") {
        return err(Errc::kCorrupted, "delta entry has unknown field " + key);
      }
    }
    DeltaEntry entry;
    const json::Value* op = item.find("op");
    if (!op || !op->is_string()) {
      return err(Errc::kCorrupted, "delta entry has no op");
    }
    if (op->as_string() == "add") {
      entry.op = DeltaEntry::Op::kAdd;
    } else if (op->as_string() == "remove") {
      entry.op = DeltaEntry::Op::kRemove;
    } else if (op->as_string() == "replace") {
      entry.op = DeltaEntry::Op::kReplace;
    } else {
      return err(Errc::kCorrupted, "bad delta op " + op->as_string());
    }
    const json::Value* path = item.find("path");
    if (!path || !path->is_string() || path->as_string().empty()) {
      return err(Errc::kCorrupted, "delta entry has no path");
    }
    entry.path = path->as_string();
    // Strictly increasing path order: the canonical form diff() emits,
    // and what makes an incremental index patch a single ordered sweep.
    if (!delta.entries.empty() && delta.entries.back().path >= entry.path) {
      return err(Errc::kCorrupted,
                 "delta entries not in strict path order at " + entry.path);
    }
    const json::Value* hashes = item.find("hashes");
    if (entry.op == DeltaEntry::Op::kRemove) {
      if (hashes != nullptr) {
        return err(Errc::kCorrupted,
                   "remove entry for " + entry.path + " carries hashes");
      }
    } else {
      if (!hashes || !hashes->is_array()) {
        return err(Errc::kCorrupted,
                   "delta entry for " + entry.path + " has no hashes array");
      }
      for (const json::Value& h : hashes->as_array()) {
        if (!h.is_string()) {
          return err(Errc::kCorrupted, "delta hash is not a string");
        }
        entry.hashes.push_back(h.as_string());
      }
      if (Status st = check_hashes(entry.hashes, entry.path); !st.ok()) {
        return st.error();
      }
    }
    delta.entries.push_back(std::move(entry));
  }
  if (const json::Value* globs = doc.find("excludes")) {
    if (!globs->is_array()) {
      return err(Errc::kCorrupted, "delta excludes is not an array");
    }
    std::vector<std::string> excludes;
    for (const json::Value& g : globs->as_array()) {
      if (!g.is_string() || g.as_string().empty()) {
        return err(Errc::kCorrupted, "delta exclude is not a glob string");
      }
      excludes.push_back(g.as_string());
    }
    delta.excludes = std::move(excludes);
  }
  if (delta.entries.empty() && !delta.excludes) {
    return err(Errc::kCorrupted, "delta patches nothing");
  }
  return delta;
}

Result<PolicyDelta> PolicyDelta::parse(const std::string& text) {
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  return from_json(doc.value());
}

PolicyDelta diff(const RuntimePolicy& base, const RuntimePolicy& target) {
  PolicyDelta delta;
  std::tie(delta.base_digest, delta.target_digest) =
      policy_digest_pair(base, target);

  // Both visit in sorted path order (the allow map is ordered), so one
  // merge walk over snapshots yields the patch already canonically
  // sorted.
  using PathRef = std::pair<const std::string*, const std::vector<std::string>*>;
  std::vector<PathRef> lhs, rhs;
  lhs.reserve(base.path_count());
  rhs.reserve(target.path_count());
  base.for_each_path([&](const std::string& path,
                         const std::vector<std::string>& hashes) {
    lhs.emplace_back(&path, &hashes);
  });
  target.for_each_path([&](const std::string& path,
                           const std::vector<std::string>& hashes) {
    rhs.emplace_back(&path, &hashes);
  });

  std::size_t i = 0, j = 0;
  while (i < lhs.size() || j < rhs.size()) {
    if (j == rhs.size() ||
        (i < lhs.size() && *lhs[i].first < *rhs[j].first)) {
      delta.entries.push_back(
          {DeltaEntry::Op::kRemove, *lhs[i].first, {}});
      ++i;
    } else if (i == lhs.size() || *rhs[j].first < *lhs[i].first) {
      delta.entries.push_back(
          {DeltaEntry::Op::kAdd, *rhs[j].first, *rhs[j].second});
      ++j;
    } else {
      if (*lhs[i].second != *rhs[j].second) {
        delta.entries.push_back(
            {DeltaEntry::Op::kReplace, *rhs[j].first, *rhs[j].second});
      }
      ++i;
      ++j;
    }
  }

  if (base.excludes() != target.excludes()) {
    delta.excludes = target.excludes();
  }
  return delta;
}

Result<RuntimePolicy> apply(const RuntimePolicy& base,
                            const PolicyDelta& delta) {
  // Provenance, incoming side: the delta must name the policy it is
  // applied to. A wrong-base delta dies here with the base untouched.
  if (policy_digest(base) != delta.base_digest) {
    return err(Errc::kProtocolViolation,
               "delta base digest does not match the installed revision");
  }
  RuntimePolicy patched = base;  // apply is pure: mutate a copy only
  for (const DeltaEntry& e : delta.entries) {
    const bool present = patched.hashes_for(e.path) != nullptr;
    switch (e.op) {
      case DeltaEntry::Op::kAdd:
        if (present) {
          return err(Errc::kProtocolViolation,
                     "delta adds existing path " + e.path);
        }
        patched.set_hashes(e.path, e.hashes);
        break;
      case DeltaEntry::Op::kReplace:
        if (!present) {
          return err(Errc::kProtocolViolation,
                     "delta replaces unknown path " + e.path);
        }
        patched.set_hashes(e.path, e.hashes);
        break;
      case DeltaEntry::Op::kRemove:
        if (patched.remove_path(e.path) == 0) {
          return err(Errc::kProtocolViolation,
                     "delta removes unknown path " + e.path);
        }
        break;
    }
  }
  if (delta.excludes) patched.set_excludes(*delta.excludes);
  // Provenance, outgoing side: the patched policy must hash to the
  // claimed target, or the delta lied about what it builds.
  if (policy_digest(patched) != delta.target_digest) {
    return err(Errc::kProtocolViolation,
               "patched policy does not hash to the delta target digest");
  }
  return patched;
}

std::string PolicyStore::put(const RuntimePolicy& policy) {
  std::string digest = policy_digest(policy);
  revisions_.emplace(digest, policy);  // idempotent: content addressed
  head_ = digest;
  return digest;
}

void PolicyStore::put_delta(const PolicyDelta& delta) {
  deltas_[{delta.base_digest, delta.target_digest}] = delta;
}

const RuntimePolicy* PolicyStore::get(const std::string& digest) const {
  auto it = revisions_.find(digest);
  return it == revisions_.end() ? nullptr : &it->second;
}

const PolicyDelta* PolicyStore::delta_between(
    const std::string& base_digest, const std::string& target_digest) const {
  auto it = deltas_.find({base_digest, target_digest});
  return it == deltas_.end() ? nullptr : &it->second;
}

}  // namespace cia::keylime::policy_store
