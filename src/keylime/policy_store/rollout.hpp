// Staged policy rollout: canary slice -> bake window -> promote/rollback.
//
// A new policy revision never hits the whole fleet at once. begin()
// pushes it to a deterministic canary slice of agents (ring-style hash
// over agent id and a rollout seed, so the slice is invariant to shard
// count and reproducible per seed); the controller then rides the pool's
// round-boundary hook (VerifierPool::use_rollout) for a configurable
// bake window, watching the merged alert stream — the same stream the
// cia_alert_*/cia_incident_* counters export — for alerts attributed to
// the canary revision. Inside the window the gate trips the moment the
// budget is exceeded and the canary slice is rolled back to the base
// revision; a quiet window promotes the revision fleet-wide.
//
// Costs are asymmetric by design: the canary push pays one index build
// (incremental when a delta rebases it from the fleet's installed
// revision), the promote reuses that exact index for the rest of the
// fleet (zero builds), and a rollback patches the canary index back
// with the reverse delta. Everything runs at round boundaries under the
// pool's drive_mu_ discipline — the appraisal hot path gains no locks,
// and since pushes only ever name canary agents until promotion, a
// non-canary agent can never appraise against a revision that later
// rolls back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "keylime/policy_store/store.hpp"
#include "keylime/verifier_pool.hpp"
#include "telemetry/metrics.hpp"

namespace cia::keylime::policy_store {

/// The deterministic canary slice: ids whose hashed (id, seed) point
/// lands in the first `fraction` of the hash space, in sorted id order.
/// Shard-count invariant and stable per seed. A non-zero fraction over a
/// non-empty fleet always selects at least one canary (the smallest
/// hash point), so a rollout can never silently skip its bake.
std::vector<std::string> canary_slice(const std::vector<std::string>& ids,
                                      double fraction, std::uint64_t seed);

enum class RolloutState { kIdle, kBaking, kPromoted, kRolledBack };

const char* rollout_state_name(RolloutState s);

struct RolloutConfig {
  /// Fraction of the fleet in the canary slice, (0, 1].
  double canary_fraction = 0.25;
  /// Canary-slice selection seed.
  std::uint64_t seed = 1;
  /// Round boundaries the canary must stay healthy before promotion.
  std::int64_t bake_rounds = 3;
  /// Alerts attributable to the canary revision tolerated during the
  /// bake window; one more trips the rollback.
  std::uint64_t alert_budget = 0;
};

class RolloutController : public RolloutHook {
 public:
  RolloutController(VerifierPool* pool, RolloutConfig config);

  /// Export rollout telemetry (cia_rollout_*) to `metrics`; nullptr off.
  void use_telemetry(telemetry::MetricsRegistry* metrics);

  /// Start a staged rollout of `target` over a fleet currently on
  /// `base`: select the canary slice, push the target revision to it
  /// (delta-rebased), and arm the bake window. Call between rounds; the
  /// caller should have attached the controller via pool->use_rollout().
  Status begin(const RuntimePolicy& base, const RuntimePolicy& target);

  /// RolloutHook: one bake step. Reads the merged alert stream, trips
  /// the rollback gate or promotes after the window. Invoked by the pool
  /// at every round boundary (driver thread, drive_mu_ held).
  void on_round_boundary(SimTime now) override;

  RolloutState state() const { return state_; }
  const std::vector<std::string>& canary_agents() const { return canary_; }
  const std::string& base_digest() const { return base_digest_; }
  const std::string& target_digest() const { return target_digest_; }

  /// Pool revision number the canary push was tagged with (0 before
  /// begin). Alerts raised under the canary revision carry it.
  std::uint64_t target_revision() const { return target_revision_; }
  /// Pool revision number of the rollback push (0 unless rolled back).
  std::uint64_t rollback_revision() const { return rollback_revision_; }

  struct Stats {
    std::uint64_t started = 0;
    std::uint64_t promoted = 0;
    std::uint64_t rolled_back = 0;
    std::uint64_t rounds_baked = 0;
    /// Alerts attributed to the canary revision when the gate last read
    /// the stream.
    std::uint64_t observed_alerts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void export_state();

  VerifierPool* pool_;
  RolloutConfig config_;
  RolloutState state_ = RolloutState::kIdle;

  RuntimePolicy base_policy_;
  RuntimePolicy target_policy_;
  std::string base_digest_;
  std::string target_digest_;
  PolicyDelta forward_;  // base -> target (canary push)
  PolicyDelta reverse_;  // target -> base (rollback push)
  std::vector<std::string> canary_;
  std::vector<std::string> rest_;  // fleet minus canary, for promotion
  std::uint64_t target_revision_ = 0;
  std::uint64_t rollback_revision_ = 0;
  std::int64_t rounds_baked_this_rollout_ = 0;

  Stats stats_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace cia::keylime::policy_store
